//! The shared-computation detector bank behind the 30-combination monitor.
//!
//! The paper's experiments run every predictor × margin combination
//! simultaneously so all of them perceive identical network conditions. As
//! independent [`FailureDetector`](crate::FailureDetector)s that costs 30
//! virtual-dispatch predictor updates and 30 margin updates per heartbeat —
//! even though the grid contains only **5 distinct predictors**, the three
//! `SM_CI(γ)` margins differ **only by the γ factor** (one shared Welford
//! statistic suffices), and the `SM_JAC(φ)` / `SM_RTO(k)` recursions are
//! φ/k-independent per error stream.
//!
//! [`DetectorBank`] exploits exactly that structure:
//!
//! * each **distinct** predictor is updated once per heartbeat (ARIMA fits
//!   and refits once, not once per margin variant), via enum dispatch
//!   ([`PredictorState`]) instead of `Box<dyn Predictor>`;
//! * one [`CiCore`] serves every `SM_CI(γ)` combination (γ at read time);
//! * one [`JacCore`] / [`RtoCore`] per distinct predictor serves every
//!   `SM_JAC(φ)` / `SM_RTO(k)` combination over that predictor's error
//!   stream (φ/k at read time);
//! * the per-combination state (freshness point, suspicion flag) is laid
//!   out struct-of-arrays and updated in one tight loop.
//!
//! The arithmetic is arranged to be **bit-identical** to the boxed
//! single-detector path: the differential property test
//! `tests/bank_differential.rs` drives both implementations on shared random
//! heartbeat/loss/crash schedules and asserts identical transition
//! sequences, deadlines and suspicion flags for all 30 combinations.

use fd_arima::ArimaSpec;
use fd_sim::{SimDuration, SimTime};

use crate::combinations::{Combination, MarginKind, PredictorKind};
use crate::detector::FdTransition;
use crate::margin::{CiCore, JacCore, RtoCore};
use crate::predictor::{
    AdaptiveWindow, ArimaPredictor, Last, Lpf, Mean, MlPredictor, PhiAccrual, Predictor, WinMean,
};
use crate::snapshot::{BankSnapshot, PredictorSnapshot, SnapshotError};

/// Enum-dispatched predictor state, mirroring [`PredictorKind`].
///
/// Holds the same concrete predictor structs the boxed path uses, so the
/// floating-point trajectories are identical; only the dispatch differs.
// A bank holds at most one state per *distinct* predictor (five for the
// paper grid); keeping ARIMA inline trades a few hundred bytes for zero
// pointer chasing in the per-heartbeat observe loop.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum PredictorState {
    /// `LAST`.
    Last(Last),
    /// `MEAN`.
    Mean(Mean),
    /// `WINMEAN(N)`.
    WinMean(WinMean),
    /// `LPF(β)`.
    Lpf(Lpf),
    /// `ARIMA(p,d,q)` with periodic refit.
    Arima(ArimaPredictor),
    /// `PHI(N,φ*)` with the two-phase flap lifecycle.
    Phi(PhiAccrual),
    /// `ADWIN(N,K)` adaptive μ+Kσ window.
    Adw(AdaptiveWindow),
    /// `ML(p,r)` online-trained model.
    Ml(MlPredictor),
}

impl PredictorState {
    /// Instantiates the state machine for a [`PredictorKind`].
    pub fn from_kind(kind: PredictorKind) -> Self {
        match kind {
            PredictorKind::Last => PredictorState::Last(Last::new()),
            PredictorKind::Mean => PredictorState::Mean(Mean::new()),
            PredictorKind::WinMean { window } => PredictorState::WinMean(WinMean::new(window)),
            PredictorKind::Lpf { beta } => PredictorState::Lpf(Lpf::new(beta)),
            PredictorKind::Arima {
                p,
                d,
                q,
                refit_every,
            } => PredictorState::Arima(ArimaPredictor::new(ArimaSpec::new(p, d, q), refit_every)),
            PredictorKind::PhiAccrual {
                window,
                threshold,
                two_phase,
            } => PredictorState::Phi(PhiAccrual::new(window, threshold, two_phase)),
            PredictorKind::AdaptiveWindow { window, k } => {
                PredictorState::Adw(AdaptiveWindow::new(window, k))
            }
            PredictorKind::MlPredictor { lags, rate } => {
                PredictorState::Ml(MlPredictor::new(lags, rate))
            }
        }
    }

    /// Consumes one delay observation together with the sequence gap that
    /// preceded it (0 for in-order and stale heartbeats; only the
    /// lifecycle-aware φ-accrual predictor reads the gap).
    pub fn observe(&mut self, delay_ms: f64, gap: u64) {
        match self {
            PredictorState::Last(p) => p.observe(delay_ms),
            PredictorState::Mean(p) => p.observe(delay_ms),
            PredictorState::WinMean(p) => p.observe(delay_ms),
            PredictorState::Lpf(p) => p.observe(delay_ms),
            PredictorState::Arima(p) => p.observe(delay_ms),
            PredictorState::Phi(p) => p.observe_gap(delay_ms, gap),
            PredictorState::Adw(p) => p.observe(delay_ms),
            PredictorState::Ml(p) => p.observe(delay_ms),
        }
    }

    /// The current one-step forecast.
    pub fn predict(&self) -> f64 {
        match self {
            PredictorState::Last(p) => p.predict(),
            PredictorState::Mean(p) => p.predict(),
            PredictorState::WinMean(p) => p.predict(),
            PredictorState::Lpf(p) => p.predict(),
            PredictorState::Arima(p) => p.predict(),
            PredictorState::Phi(p) => p.predict(),
            PredictorState::Adw(p) => p.predict(),
            PredictorState::Ml(p) => p.predict(),
        }
    }

    /// Observations consumed so far.
    pub fn observations(&self) -> u64 {
        match self {
            PredictorState::Last(p) => p.observations(),
            PredictorState::Mean(p) => p.observations(),
            PredictorState::WinMean(p) => p.observations(),
            PredictorState::Lpf(p) => p.observations(),
            PredictorState::Arima(p) => p.observations(),
            PredictorState::Phi(p) => p.observations(),
            PredictorState::Adw(p) => p.observations(),
            PredictorState::Ml(p) => p.observations(),
        }
    }

    /// The underlying ARIMA predictor, if this is the ARIMA variant
    /// (observation/refit counters for diagnostics and tests).
    pub fn as_arima(&self) -> Option<&ArimaPredictor> {
        match self {
            PredictorState::Arima(p) => Some(p),
            _ => None,
        }
    }
}

/// A suspect/trust edge of one bank combination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BankTransition {
    /// Index of the combination (position in the slice the bank was built
    /// from).
    pub combo: usize,
    /// The edge.
    pub transition: FdTransition,
}

/// Per-distinct-predictor shared margin state: the error-stream-driven
/// cores, allocated only when some combination actually reads them.
/// (Shared with [`crate::source_bank::SourceBank`], which replicates this
/// layout per source.)
#[derive(Debug, Clone, Default)]
pub(crate) struct ErrorCores {
    pub(crate) jac: Option<JacCore>,
    pub(crate) rto: Option<RtoCore>,
}

/// The shared-computation, enum-dispatch engine running many
/// predictor × margin combinations over one heartbeat stream.
///
/// ```
/// use fd_core::bank::DetectorBank;
/// use fd_core::all_combinations;
/// use fd_sim::{SimDuration, SimTime};
///
/// let eta = SimDuration::from_secs(1);
/// let mut bank = DetectorBank::new(&all_combinations(), eta);
/// assert_eq!(bank.len(), 30);
/// assert_eq!(bank.distinct_predictor_count(), 5);
///
/// // Heartbeat m_0 arrives after 200 ms: every combination gets a deadline.
/// assert!(bank.observe_heartbeat(0, SimTime::from_millis(200)));
/// assert!(bank.next_deadline(0).is_some());
///
/// // Nothing arrives for a long time: every combination starts suspecting.
/// let started = bank.check_at(SimTime::from_secs(60)).len();
/// assert_eq!(started, 30);
/// ```
#[derive(Debug, Clone)]
pub struct DetectorBank {
    eta: SimDuration,
    combos: Vec<Combination>,
    /// Distinct predictors, each updated once per heartbeat.
    predictors: Vec<PredictorState>,
    /// `pred_of_combo[i]` = index into `predictors` for combination `i`.
    pred_of_combo: Vec<usize>,
    /// One Welford core shared by every `SM_CI(γ)` combination (the CI
    /// margin depends only on the observation stream).
    ci: CiCore,
    /// Per distinct predictor: the φ/k-independent error-stream cores.
    error_cores: Vec<ErrorCores>,
    /// Scratch: post-observation prediction per distinct predictor.
    predictions: Vec<f64>,
    // Struct-of-arrays per-combination state.
    next_freshness: Vec<Option<SimTime>>,
    suspecting: Vec<bool>,
    // Freshness bookkeeping depends only on the sequence stream, so it is
    // shared by all combinations.
    highest_seq: Option<u64>,
    heartbeats: u64,
    stale_heartbeats: u64,
    transitions: Vec<BankTransition>,
}

impl DetectorBank {
    /// Builds a bank over the given combinations with heartbeat period
    /// `eta`. Duplicate predictors across combinations are collapsed into
    /// one state machine each.
    ///
    /// # Panics
    ///
    /// Panics if `eta` is zero.
    pub fn new(combos: &[Combination], eta: SimDuration) -> Self {
        assert!(!eta.is_zero(), "heartbeat period must be positive");
        let mut predictors: Vec<PredictorState> = Vec::new();
        let mut kinds: Vec<PredictorKind> = Vec::new();
        let mut pred_of_combo = Vec::with_capacity(combos.len());
        for combo in combos {
            let p_idx = match kinds.iter().position(|k| *k == combo.predictor) {
                Some(i) => i,
                None => {
                    kinds.push(combo.predictor);
                    predictors.push(PredictorState::from_kind(combo.predictor));
                    predictors.len() - 1
                }
            };
            pred_of_combo.push(p_idx);
        }
        let mut error_cores = vec![ErrorCores::default(); predictors.len()];
        for combo in combos {
            let p_idx = kinds
                .iter()
                .position(|k| *k == combo.predictor)
                .expect("predictor registered above");
            match combo.margin {
                MarginKind::Ci { .. } => {}
                MarginKind::Jac { phi: _ } => {
                    error_cores[p_idx]
                        .jac
                        .get_or_insert_with(|| JacCore::new(0.25));
                }
                MarginKind::Rto { k: _ } => {
                    error_cores[p_idx].rto.get_or_insert_with(RtoCore::new);
                }
            }
        }
        let n = combos.len();
        Self {
            eta,
            combos: combos.to_vec(),
            predictions: vec![0.0; predictors.len()],
            predictors,
            pred_of_combo,
            ci: CiCore::new(),
            error_cores,
            next_freshness: vec![None; n],
            suspecting: vec![false; n],
            highest_seq: None,
            heartbeats: 0,
            stale_heartbeats: 0,
            transitions: Vec::new(),
        }
    }

    /// Builds the bank over the paper's full 30-combination grid.
    pub fn paper_grid(eta: SimDuration) -> Self {
        Self::new(&crate::combinations::all_combinations(), eta)
    }

    /// Number of combinations.
    pub fn len(&self) -> usize {
        self.combos.len()
    }

    /// `true` if the bank has no combinations.
    pub fn is_empty(&self) -> bool {
        self.combos.is_empty()
    }

    /// The heartbeat period η.
    pub fn eta(&self) -> SimDuration {
        self.eta
    }

    /// The combinations, in index order.
    pub fn combos(&self) -> &[Combination] {
        &self.combos
    }

    /// The combination labels, in index order (e.g. `"LAST+SM_JAC(2)"`).
    pub fn labels(&self) -> Vec<String> {
        self.combos.iter().map(|c| c.label()).collect()
    }

    /// Number of distinct predictor state machines (5 for the paper grid).
    pub fn distinct_predictor_count(&self) -> usize {
        self.predictors.len()
    }

    /// The distinct predictor states (diagnostics, tests).
    pub fn predictor_states(&self) -> &[PredictorState] {
        &self.predictors
    }

    /// Heartbeats observed so far (fresh + stale), shared by all
    /// combinations.
    pub fn heartbeats(&self) -> u64 {
        self.heartbeats
    }

    /// Heartbeats that arrived out of order (did not advance freshness).
    pub fn stale_heartbeats(&self) -> u64 {
        self.stale_heartbeats
    }

    /// The next freshness point `τ_{k+1}` of combination `idx`.
    pub fn next_deadline(&self, idx: usize) -> Option<SimTime> {
        self.next_freshness[idx]
    }

    /// `true` while combination `idx` suspects the monitored process.
    pub fn is_suspecting(&self, idx: usize) -> bool {
        self.suspecting[idx]
    }

    /// The current forecast feeding combination `idx`, in milliseconds.
    pub fn predicted_delay_ms(&self, idx: usize) -> f64 {
        self.predictions[self.pred_of_combo[idx]]
    }

    /// The current safety margin of combination `idx`, in milliseconds.
    pub fn margin_ms(&self, idx: usize) -> f64 {
        let p_idx = self.pred_of_combo[idx];
        match self.combos[idx].margin {
            MarginKind::Ci { gamma } => self.ci.margin(gamma),
            MarginKind::Jac { phi } => self.error_cores[p_idx]
                .jac
                .expect("JacCore allocated for Jac combo")
                .margin(phi),
            MarginKind::Rto { k } => self.error_cores[p_idx]
                .rto
                .expect("RtoCore allocated for Rto combo")
                .margin(k),
        }
    }

    /// The current time-out component `δ = pred + sm` of combination `idx`.
    pub fn current_timeout_ms(&self, idx: usize) -> f64 {
        self.predicted_delay_ms(idx) + self.margin_ms(idx)
    }

    /// The transitions produced by the most recent
    /// [`observe_heartbeat`](Self::observe_heartbeat) or
    /// [`check_at`](Self::check_at) call, in combination-index order.
    pub fn transitions(&self) -> &[BankTransition] {
        &self.transitions
    }

    /// Handles the arrival of heartbeat `seq` at global time `arrival` for
    /// **all** combinations at once: each distinct predictor observes the
    /// delay once, the shared margin cores advance once per error stream,
    /// and the 30 freshness points are refreshed in one loop.
    ///
    /// Returns `true` if the heartbeat was fresh (advanced the shared
    /// freshness bookkeeping). `EndSuspect` edges are collected in
    /// [`transitions`](Self::transitions), ordered by combination index.
    pub fn observe_heartbeat(&mut self, seq: u64, arrival: SimTime) -> bool {
        self.transitions.clear();
        self.heartbeats += 1;

        // Observed transmission delay, clamped exactly like the boxed path.
        let sigma = SimTime::ZERO + self.eta * seq;
        let delay_ms = arrival
            .checked_duration_since(sigma)
            .map_or(0.0, |d| d.as_millis_f64());

        // The sequence gap this heartbeat closes (0 for stale deliveries),
        // computed against the pre-update freshness bookkeeping exactly
        // like the boxed path.
        let gap = match self.highest_seq {
            Some(h) if seq > h => seq - h - 1,
            _ => 0,
        };

        // Each DISTINCT predictor: one error, one observe (ARIMA refits
        // once here, not once per margin variant), one error-core advance.
        for (p_idx, predictor) in self.predictors.iter_mut().enumerate() {
            let err = delay_ms - predictor.predict();
            predictor.observe(delay_ms, gap);
            let cores = &mut self.error_cores[p_idx];
            if let Some(jac) = cores.jac.as_mut() {
                jac.update(err);
            }
            if let Some(rto) = cores.rto.as_mut() {
                rto.update(err);
            }
            self.predictions[p_idx] = predictor.predict();
        }
        // The CI margin depends only on the observation stream: one Welford
        // update serves every SM_CI(γ) combination.
        self.ci.update(delay_ms);

        let fresh = self.highest_seq.is_none_or(|h| seq > h);
        if !fresh {
            self.stale_heartbeats += 1;
            return false;
        }
        self.highest_seq = Some(seq);

        // Fan out: 30 freshness points and suspicion edges, one tight loop.
        let sigma_next = SimTime::ZERO + self.eta * (seq + 1);
        for idx in 0..self.combos.len() {
            let timeout_ms = self.current_timeout_ms(idx);
            let delta = SimDuration::from_millis_f64(timeout_ms.max(0.0));
            self.next_freshness[idx] = Some(sigma_next + delta);
            if self.suspecting[idx] {
                self.suspecting[idx] = false;
                self.transitions.push(BankTransition {
                    combo: idx,
                    transition: FdTransition::EndSuspect,
                });
            }
        }
        true
    }

    /// Evaluates the freshness condition of **every** combination at `now`.
    ///
    /// Returns the `StartSuspect` edges fired at this instant, ordered by
    /// combination index (also available via
    /// [`transitions`](Self::transitions)).
    pub fn check_at(&mut self, now: SimTime) -> &[BankTransition] {
        self.transitions.clear();
        for idx in 0..self.combos.len() {
            if self.suspecting[idx] {
                continue;
            }
            if let Some(deadline) = self.next_freshness[idx] {
                if now >= deadline {
                    self.suspecting[idx] = true;
                    self.transitions.push(BankTransition {
                        combo: idx,
                        transition: FdTransition::StartSuspect,
                    });
                }
            }
        }
        &self.transitions
    }

    /// Evaluates the freshness condition of one combination at `now` (the
    /// per-deadline timer path of the monitor layer).
    pub fn check_one(&mut self, idx: usize, now: SimTime) -> Option<FdTransition> {
        if self.suspecting[idx] {
            return None;
        }
        match self.next_freshness[idx] {
            Some(deadline) if now >= deadline => {
                self.suspecting[idx] = true;
                Some(FdTransition::StartSuspect)
            }
            _ => None,
        }
    }

    /// Captures the bank's complete mutable state.
    ///
    /// Restoring the snapshot into a bank built over the same combinations
    /// (via [`DetectorBank::restore`]) is **bit-exact**: the restored bank
    /// produces transitions, deadlines and margins identical to an
    /// uncrashed bank fed the same subsequent heartbeats. Serialize with
    /// [`BankSnapshot::to_bytes`].
    pub fn snapshot(&self) -> BankSnapshot {
        let predictors = self
            .predictors
            .iter()
            .map(|p| match p {
                PredictorState::Last(p) => {
                    let (last, n) = p.raw_parts();
                    PredictorSnapshot::Last { last, n }
                }
                PredictorState::Mean(p) => {
                    let (mean, n) = p.raw_parts();
                    PredictorSnapshot::Mean { mean, n }
                }
                PredictorState::WinMean(p) => {
                    let (window, capacity, sum, n) = p.raw_parts();
                    PredictorSnapshot::WinMean {
                        window,
                        capacity,
                        sum,
                        n,
                    }
                }
                PredictorState::Lpf(p) => {
                    let (beta, pred, n) = p.raw_parts();
                    PredictorSnapshot::Lpf { beta, pred, n }
                }
                PredictorState::Arima(p) => PredictorSnapshot::Arima(p.snapshot()),
                PredictorState::Phi(p) => {
                    let (ring, pos, len, sum, sumsq, start_left, flaps, mean_up, up_len, n) =
                        p.raw_parts();
                    PredictorSnapshot::Phi {
                        ring,
                        pos,
                        len,
                        sum,
                        sumsq,
                        start_left,
                        flaps,
                        mean_up,
                        up_len,
                        n,
                    }
                }
                PredictorState::Adw(p) => {
                    let (ring, sum, sumsq, n) = p.raw_parts();
                    PredictorSnapshot::Adw {
                        ring,
                        sum,
                        sumsq,
                        n,
                    }
                }
                PredictorState::Ml(p) => {
                    let (w, hist, n) = p.raw_parts();
                    PredictorSnapshot::Ml { w, hist, n }
                }
            })
            .collect();
        let error_cores = self
            .error_cores
            .iter()
            .map(|c| {
                (
                    c.jac.as_ref().map(|j| j.raw_parts()),
                    c.rto.as_ref().map(|r| r.raw_parts()),
                )
            })
            .collect();
        let (stats, sigma, inner_sqrt) = self.ci.raw_parts();
        BankSnapshot {
            eta_us: self.eta.as_micros(),
            n_combos: self.combos.len(),
            predictors,
            ci: (stats, sigma, inner_sqrt),
            error_cores,
            predictions: self.predictions.clone(),
            next_freshness_us: self
                .next_freshness
                .iter()
                .map(|nf| nf.map(|t| t.as_micros()))
                .collect(),
            suspecting: self.suspecting.clone(),
            highest_seq: self.highest_seq,
            heartbeats: self.heartbeats,
            stale_heartbeats: self.stale_heartbeats,
        }
    }

    /// Replaces this bank's mutable state with a snapshot's.
    ///
    /// The bank must have been built over the **same** combinations and η
    /// as the snapshotted one; any shape or parameter mismatch is rejected
    /// with [`SnapshotError::Mismatch`] and leaves the bank untouched.
    pub fn restore(&mut self, snapshot: &BankSnapshot) -> Result<(), SnapshotError> {
        if snapshot.eta_us != self.eta.as_micros() {
            return Err(SnapshotError::Mismatch("heartbeat period"));
        }
        if snapshot.n_combos != self.combos.len()
            || snapshot.next_freshness_us.len() != self.combos.len()
            || snapshot.suspecting.len() != self.combos.len()
        {
            return Err(SnapshotError::Mismatch("combination count"));
        }
        if snapshot.predictors.len() != self.predictors.len()
            || snapshot.error_cores.len() != self.predictors.len()
            || snapshot.predictions.len() != self.predictors.len()
        {
            return Err(SnapshotError::Mismatch("distinct predictor count"));
        }
        let mut predictors = Vec::with_capacity(self.predictors.len());
        for (current, snap) in self.predictors.iter().zip(&snapshot.predictors) {
            predictors.push(restore_predictor(current, snap)?);
        }
        let mut error_cores = Vec::with_capacity(self.error_cores.len());
        for (current, (jac, rto)) in self.error_cores.iter().zip(&snapshot.error_cores) {
            if current.jac.is_some() != jac.is_some() || current.rto.is_some() != rto.is_some() {
                return Err(SnapshotError::Mismatch("error-core allocation"));
            }
            let jac = match jac {
                Some((alpha, base)) => Some(
                    JacCore::from_raw_parts(*alpha, *base)
                        .ok_or(SnapshotError::Invalid("jacobson alpha"))?,
                ),
                None => None,
            };
            let rto = rto.map(|(gain, mu, dev)| RtoCore::from_raw_parts(gain, mu, dev));
            error_cores.push(ErrorCores { jac, rto });
        }
        self.predictors = predictors;
        self.error_cores = error_cores;
        self.ci = CiCore::from_raw_parts(snapshot.ci.0, snapshot.ci.1, snapshot.ci.2);
        self.predictions = snapshot.predictions.clone();
        self.next_freshness = snapshot
            .next_freshness_us
            .iter()
            .map(|nf| nf.map(SimTime::from_micros))
            .collect();
        self.suspecting = snapshot.suspecting.clone();
        self.highest_seq = snapshot.highest_seq;
        self.heartbeats = snapshot.heartbeats;
        self.stale_heartbeats = snapshot.stale_heartbeats;
        self.transitions.clear();
        Ok(())
    }
}

/// Rebuilds one predictor state from its snapshot, validating that both
/// the variant and its configuration parameters match the bank's.
fn restore_predictor(
    current: &PredictorState,
    snap: &PredictorSnapshot,
) -> Result<PredictorState, SnapshotError> {
    match (current, snap) {
        (PredictorState::Last(_), PredictorSnapshot::Last { last, n }) => {
            Ok(PredictorState::Last(Last::from_raw_parts(*last, *n)))
        }
        (PredictorState::Mean(_), PredictorSnapshot::Mean { mean, n }) => {
            Ok(PredictorState::Mean(Mean::from_raw_parts(*mean, *n)))
        }
        (
            PredictorState::WinMean(cur),
            PredictorSnapshot::WinMean {
                window,
                capacity,
                sum,
                n,
            },
        ) => {
            if cur.capacity() != *capacity {
                return Err(SnapshotError::Mismatch("window capacity"));
            }
            WinMean::from_raw_parts(window.clone(), *capacity, *sum, *n)
                .map(PredictorState::WinMean)
                .ok_or(SnapshotError::Invalid("window state"))
        }
        (PredictorState::Lpf(cur), PredictorSnapshot::Lpf { beta, pred, n }) => {
            if cur.beta().to_bits() != beta.to_bits() {
                return Err(SnapshotError::Mismatch("smoothing factor"));
            }
            Lpf::from_raw_parts(*beta, *pred, *n)
                .map(PredictorState::Lpf)
                .ok_or(SnapshotError::Invalid("lpf state"))
        }
        (PredictorState::Arima(cur), PredictorSnapshot::Arima(a)) => {
            if cur.inner().spec() != a.spec {
                return Err(SnapshotError::Mismatch("arima spec"));
            }
            ArimaPredictor::from_snapshot(a.clone())
                .map(PredictorState::Arima)
                .ok_or(SnapshotError::Invalid("arima state"))
        }
        (
            PredictorState::Phi(cur),
            PredictorSnapshot::Phi {
                ring,
                pos,
                len,
                sum,
                sumsq,
                start_left,
                flaps,
                mean_up,
                up_len,
                n,
            },
        ) => {
            if cur.window() != ring.len() {
                return Err(SnapshotError::Mismatch("phi window"));
            }
            PhiAccrual::from_raw_parts(
                cur.window(),
                cur.threshold(),
                cur.two_phase(),
                ring.clone(),
                *pos,
                *len,
                *sum,
                *sumsq,
                *start_left,
                *flaps,
                *mean_up,
                *up_len,
                *n,
            )
            .map(PredictorState::Phi)
            .ok_or(SnapshotError::Invalid("phi state"))
        }
        (
            PredictorState::Adw(cur),
            PredictorSnapshot::Adw {
                ring,
                sum,
                sumsq,
                n,
            },
        ) => {
            if cur.window() != ring.len() {
                return Err(SnapshotError::Mismatch("adaptive window"));
            }
            AdaptiveWindow::from_raw_parts(cur.window(), cur.k(), ring.clone(), *sum, *sumsq, *n)
                .map(PredictorState::Adw)
                .ok_or(SnapshotError::Invalid("adaptive-window state"))
        }
        (PredictorState::Ml(cur), PredictorSnapshot::Ml { w, hist, n }) => {
            if cur.lags() != hist.len() {
                return Err(SnapshotError::Mismatch("ml lags"));
            }
            MlPredictor::from_raw_parts(cur.lags(), cur.rate(), w.clone(), hist.clone(), *n)
                .map(PredictorState::Ml)
                .ok_or(SnapshotError::Invalid("ml state"))
        }
        _ => Err(SnapshotError::Mismatch("predictor kind")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::combinations::all_combinations;
    use fd_arima::OnlineArima;

    fn eta() -> SimDuration {
        SimDuration::from_secs(1)
    }

    fn arrival(seq: u64, delay_ms: u64) -> SimTime {
        SimTime::ZERO + eta() * seq + SimDuration::from_millis(delay_ms)
    }

    #[test]
    fn paper_grid_has_five_distinct_predictors() {
        let bank = DetectorBank::paper_grid(eta());
        assert_eq!(bank.len(), 30);
        assert_eq!(bank.distinct_predictor_count(), 5);
        assert_eq!(bank.labels().len(), 30);
        assert!(!bank.is_empty());
        assert_eq!(bank.eta(), eta());
    }

    #[test]
    fn bank_matches_boxed_on_fixed_schedule() {
        let combos = all_combinations();
        let mut bank = DetectorBank::new(&combos, eta());
        let mut boxed: Vec<_> = combos.iter().map(|c| c.build(eta())).collect();
        let delays = [200u64, 220, 190, 1_950, 240, 200, 3_000, 210];
        for (i, &d) in delays.iter().enumerate() {
            let seq = i as u64;
            let at = arrival(seq, d);
            // Monitor order: deadlines first, then the heartbeat.
            for (idx, fd) in boxed.iter_mut().enumerate() {
                let a = fd.check(at);
                let b = bank.check_one(idx, at);
                assert_eq!(a, b, "check mismatch at step {i} combo {idx}");
            }
            let boxed_ends: Vec<usize> = boxed
                .iter_mut()
                .enumerate()
                .filter_map(|(idx, fd)| fd.on_heartbeat(seq, at).map(|_| idx))
                .collect();
            bank.observe_heartbeat(seq, at);
            let bank_ends: Vec<usize> = bank.transitions().iter().map(|t| t.combo).collect();
            assert_eq!(boxed_ends, bank_ends, "EndSuspect mismatch at step {i}");
            for (idx, fd) in boxed.iter().enumerate() {
                assert_eq!(
                    fd.next_deadline(),
                    bank.next_deadline(idx),
                    "deadline mismatch at step {i} combo {idx} ({})",
                    fd.name()
                );
                assert_eq!(fd.is_suspecting(), bank.is_suspecting(idx));
            }
        }
    }

    #[test]
    fn stale_heartbeats_update_predictors_but_not_freshness() {
        let mut bank = DetectorBank::paper_grid(eta());
        assert!(bank.observe_heartbeat(5, arrival(5, 200)));
        let deadlines: Vec<_> = (0..bank.len()).map(|i| bank.next_deadline(i)).collect();
        assert!(!bank.observe_heartbeat(3, arrival(3, 2_250)));
        assert_eq!(bank.stale_heartbeats(), 1);
        assert_eq!(bank.heartbeats(), 2);
        for idx in 0..bank.len() {
            assert_eq!(bank.next_deadline(idx), deadlines[idx]);
        }
        // But every distinct predictor saw both observations.
        for p in bank.predictor_states() {
            assert_eq!(p.observations(), 2);
        }
    }

    /// The single-ARIMA-refit invariant, asserted by counters: with all six
    /// ARIMA × margin combinations in the bank, the ARIMA model observes
    /// each heartbeat ONCE and refits on the same schedule as a directly
    /// driven `OnlineArima` — while six boxed detectors observe 6× and
    /// refit 6×.
    #[test]
    fn arima_observes_and_refits_once_per_heartbeat() {
        let arima = PredictorKind::Arima {
            p: 2,
            d: 1,
            q: 1,
            refit_every: 100,
        };
        let combos: Vec<Combination> = MarginKind::paper_set()
            .into_iter()
            .map(|m| Combination::new(arima, m))
            .collect();
        assert_eq!(combos.len(), 6);
        let mut bank = DetectorBank::new(&combos, eta());
        let mut boxed: Vec<_> = combos.iter().map(|c| c.build(eta())).collect();
        let mut reference = OnlineArima::new(ArimaSpec::new(2, 1, 1), 100);

        let n = 350u64;
        for seq in 0..n {
            let delay = 200 + (seq * 37) % 50;
            let at = arrival(seq, delay);
            bank.observe_heartbeat(seq, at);
            for fd in &mut boxed {
                fd.on_heartbeat(seq, at);
            }
            let sigma = SimTime::ZERO + eta() * seq;
            reference.observe(at.checked_duration_since(sigma).unwrap().as_millis_f64());
        }

        assert_eq!(bank.distinct_predictor_count(), 1);
        let bank_arima = bank.predictor_states()[0]
            .as_arima()
            .expect("ARIMA predictor state")
            .inner();
        // The bank observed each heartbeat once and refit on schedule …
        assert_eq!(bank_arima.observed() as u64, n);
        assert_eq!(bank_arima.refits(), reference.refits());
        assert!(bank_arima.refits() >= 3, "refits={}", bank_arima.refits());
        // … while the boxed path fed six private ARIMA models, each
        // observing (and refitting over) the full stream.
        let boxed_total: u64 = boxed.iter().map(|fd| fd.predictor_observations()).sum();
        assert_eq!(boxed_total, 6 * n);
    }

    /// The shared-Welford γ-scaling invariant: the three `SM_CI(γ)` margins
    /// read one core and differ exactly by γ.
    #[test]
    fn shared_welford_gamma_scaling() {
        let combos: Vec<Combination> = [1.0, 2.0, 3.31]
            .iter()
            .map(|&gamma| Combination::new(PredictorKind::Last, MarginKind::Ci { gamma }))
            .collect();
        let mut bank = DetectorBank::new(&combos, eta());
        for seq in 0..20u64 {
            let delay = 180 + (seq * 53) % 80;
            bank.observe_heartbeat(seq, arrival(seq, delay));
        }
        let m1 = bank.margin_ms(0);
        let m2 = bank.margin_ms(1);
        let m331 = bank.margin_ms(2);
        assert!(m1 > 0.0);
        // Bit-exact scaling: the values come from one core, γ applied last.
        assert_eq!((1.0 * m1 / 1.0).to_bits(), m1.to_bits());
        assert_eq!(m2.to_bits(), (2.0 * (m1 / 1.0)).to_bits());
        assert_eq!(m331.to_bits(), (3.31 * (m1 / 1.0)).to_bits());
        // And they match three independent boxed margins bit for bit.
        let boxed: Vec<_> = combos.iter().map(|c| c.build(eta())).collect();
        let mut check = DetectorBank::new(&combos, eta());
        let mut boxed = boxed;
        for seq in 0..20u64 {
            let delay = 180 + (seq * 53) % 80;
            let at = arrival(seq, delay);
            check.observe_heartbeat(seq, at);
            for fd in &mut boxed {
                fd.on_heartbeat(seq, at);
            }
        }
        for (idx, fd) in boxed.iter().enumerate() {
            assert_eq!(fd.margin_ms().to_bits(), check.margin_ms(idx).to_bits());
        }
    }

    #[test]
    fn check_at_fires_all_expired_combos_in_index_order() {
        let mut bank = DetectorBank::paper_grid(eta());
        bank.observe_heartbeat(0, arrival(0, 200));
        let fired = bank.check_at(SimTime::from_secs(120)).to_vec();
        assert_eq!(fired.len(), 30);
        for (i, t) in fired.iter().enumerate() {
            assert_eq!(t.combo, i);
            assert_eq!(t.transition, FdTransition::StartSuspect);
        }
        // Idempotent while suspecting.
        assert!(bank.check_at(SimTime::from_secs(121)).is_empty());
        // A fresh heartbeat ends every suspicion, in index order.
        bank.observe_heartbeat(1, SimTime::from_secs(121));
        let ends = bank.transitions();
        assert_eq!(ends.len(), 30);
        assert!(ends
            .iter()
            .all(|t| t.transition == FdTransition::EndSuspect));
    }

    #[test]
    #[should_panic(expected = "heartbeat period must be positive")]
    fn zero_eta_rejected() {
        let _ = DetectorBank::new(&all_combinations(), SimDuration::ZERO);
    }

    /// Warm restart is bit-exact: a bank restored mid-run from a
    /// serialized snapshot continues identically to the uncrashed original
    /// for every combination — deadlines, margins, suspicion flags and
    /// transition sequences.
    #[test]
    fn snapshot_restore_continues_bit_identically() {
        let combos = all_combinations();
        let mut original = DetectorBank::new(&combos, eta());
        for seq in 0..25u64 {
            let delay = 150 + (seq * 71) % 120;
            original.observe_heartbeat(seq, arrival(seq, delay));
        }
        // Serialize through the byte format — the restored bank sees only
        // what would survive a real crash.
        let bytes = original.snapshot().to_bytes();
        let snap = crate::snapshot::BankSnapshot::from_bytes(&bytes).unwrap();
        let mut restored = DetectorBank::new(&combos, eta());
        restored.restore(&snap).unwrap();

        for seq in 25..60u64 {
            // A gap at seq 40 exercises suspicion edges on both banks.
            if seq == 40 {
                let late = arrival(seq, 30_000);
                let a = original.check_at(late).to_vec();
                let b = restored.check_at(late).to_vec();
                assert_eq!(a, b);
                continue;
            }
            let delay = 150 + (seq * 71) % 120;
            let at = arrival(seq, delay);
            original.observe_heartbeat(seq, at);
            restored.observe_heartbeat(seq, at);
            assert_eq!(original.transitions(), restored.transitions());
            for idx in 0..combos.len() {
                assert_eq!(original.next_deadline(idx), restored.next_deadline(idx));
                assert_eq!(
                    original.margin_ms(idx).to_bits(),
                    restored.margin_ms(idx).to_bits(),
                    "margin mismatch combo {idx}"
                );
                assert_eq!(original.is_suspecting(idx), restored.is_suspecting(idx));
            }
        }
        assert_eq!(original.heartbeats(), restored.heartbeats());
        assert_eq!(original.stale_heartbeats(), restored.stale_heartbeats());
    }

    #[test]
    fn restore_rejects_mismatched_bank() {
        let snap = DetectorBank::paper_grid(eta()).snapshot();
        // Different combination count.
        let mut small = DetectorBank::new(&all_combinations()[..4], eta());
        assert!(small.restore(&snap).is_err());
        // Different eta.
        let mut other_eta = DetectorBank::paper_grid(SimDuration::from_millis(500));
        assert!(other_eta.restore(&snap).is_err());
        // Matching bank accepts it.
        let mut ok = DetectorBank::paper_grid(eta());
        assert!(ok.restore(&snap).is_ok());
    }
}
