//! The safety margins of Section 3.2.
//!
//! The margin `sm_{k+1}` is the slack added to the predicted delay to limit
//! premature time-outs. Two adaptive families are compared in the paper:
//!
//! * **`SM_CI(γ)`** — a confidence-interval-style margin that depends *only*
//!   on the delay process:
//!   `sm = γ·σ̂·sqrt(1 + 1/n + (obs_n − ō)² / Σ_j (obs_j − ō)²)`
//!   with γ ∈ {1, 2, 3.31} (low/med/high, Table 1);
//! * **`SM_JAC(φ)`** — Jacobson's RTT estimator applied to the *prediction
//!   error*: `sm_{k+1} = φ·(sm_k + α·(|obs_n − pred_k| − sm_k))` with
//!   α = 1/4 and φ ∈ {1, 2, 4}.
//!
//! The constant margin of Chen et al.'s NFD-E is provided for the baseline.

use fd_stat::RunningStats;

/// The γ-independent state of `SM_CI`: the Welford statistics of the
/// observed delays plus the last `σ̂·sqrt(1 + 1/n + dev²/ssd)` factor.
///
/// The CI margin is `γ × (that factor)`, so the three paper variants
/// (γ ∈ {1, 2, 3.31}) — and in fact every `SM_CI(γ)` watching the same
/// heartbeat stream — can share ONE core and apply their γ at read time.
/// [`ConfidenceMargin`] delegates to this core; the
/// [`DetectorBank`](crate::bank::DetectorBank) keeps a single core for all
/// its CI combinations.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CiCore {
    stats: RunningStats,
    sigma: f64,
    inner_sqrt: f64,
}

impl CiCore {
    /// Creates an empty core.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes one delay observation.
    pub fn update(&mut self, obs_ms: f64) {
        self.stats.push(obs_ms);
        let n = self.stats.count();
        if n < 2 {
            self.sigma = 0.0;
            self.inner_sqrt = 0.0;
            return;
        }
        let dev = obs_ms - self.stats.mean();
        let ssd = self.stats.sum_sq_dev();
        let inner = 1.0 + 1.0 / n as f64 + if ssd > 0.0 { dev * dev / ssd } else { 0.0 };
        self.sigma = self.stats.sample_std();
        self.inner_sqrt = inner.sqrt();
    }

    /// The margin for a given γ. Zero before two observations.
    pub fn margin(&self, gamma: f64) -> f64 {
        // Left-associated exactly like the historical single-margin code
        // ((γ·σ)·sqrt), so shared and per-margin paths are bit-identical.
        gamma * self.sigma * self.inner_sqrt
    }

    /// Observations consumed so far.
    pub fn count(&self) -> u64 {
        self.stats.count()
    }

    /// The raw state `(stats, sigma, inner_sqrt)` for checkpoint/restore.
    pub fn raw_parts(&self) -> (RunningStats, f64, f64) {
        (self.stats, self.sigma, self.inner_sqrt)
    }

    /// Rebuilds the core from [`CiCore::raw_parts`] output.
    pub fn from_raw_parts(stats: RunningStats, sigma: f64, inner_sqrt: f64) -> Self {
        Self {
            stats,
            sigma,
            inner_sqrt,
        }
    }
}

/// The φ-independent state of `SM_JAC`: the unscaled smoothed deviation
/// `base_{k+1} = base_k + α·(|err_k| − base_k)`.
///
/// The margin is `φ × base`, so every `SM_JAC(φ)` driven by the same
/// prediction-error stream (i.e. the same predictor) can share one core.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JacCore {
    alpha: f64,
    base: f64,
}

impl JacCore {
    /// Creates a core with gain `alpha` (the paper uses 1/4).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < alpha <= 1`.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha out of (0, 1]: {alpha}");
        Self { alpha, base: 0.0 }
    }

    /// Consumes one prediction error.
    pub fn update(&mut self, prediction_error_ms: f64) {
        self.base += self.alpha * (prediction_error_ms.abs() - self.base);
    }

    /// The margin for a given φ.
    pub fn margin(&self, phi: f64) -> f64 {
        phi * self.base
    }

    /// The raw state `(alpha, base)` for checkpoint/restore.
    pub fn raw_parts(&self) -> (f64, f64) {
        (self.alpha, self.base)
    }

    /// Rebuilds the core from [`JacCore::raw_parts`] output.
    ///
    /// Returns `None` if `alpha` is outside `(0, 1]`.
    pub fn from_raw_parts(alpha: f64, base: f64) -> Option<Self> {
        (alpha > 0.0 && alpha <= 1.0).then_some(Self { alpha, base })
    }
}

/// The k-independent state of `SM_RTO`: smoothed signed error `μ̂` and
/// smoothed absolute deviation `d̂`. The margin is `max(μ̂ + k·d̂, 0)`, so
/// every `SM_RTO(k)` over the same error stream shares one core.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RtoCore {
    gain: f64,
    mu: f64,
    dev: f64,
}

impl RtoCore {
    /// Creates a core with the classical 1/8 mean gain (deviation gain 1/4).
    pub fn new() -> Self {
        Self {
            gain: 0.125,
            mu: 0.0,
            dev: 0.0,
        }
    }

    /// Consumes one prediction error.
    pub fn update(&mut self, prediction_error_ms: f64) {
        let err = prediction_error_ms;
        self.dev += 2.0 * self.gain * ((err - self.mu).abs() - self.dev);
        self.mu += self.gain * (err - self.mu);
    }

    /// The margin for a given deviation multiplier `k` (never negative).
    pub fn margin(&self, k: f64) -> f64 {
        (self.mu + k * self.dev).max(0.0)
    }

    /// The raw state `(gain, mu, dev)` for checkpoint/restore.
    pub fn raw_parts(&self) -> (f64, f64, f64) {
        (self.gain, self.mu, self.dev)
    }

    /// Rebuilds the core from [`RtoCore::raw_parts`] output.
    pub fn from_raw_parts(gain: f64, mu: f64, dev: f64) -> Self {
        Self { gain, mu, dev }
    }
}

impl Default for RtoCore {
    fn default() -> Self {
        Self::new()
    }
}

/// An adaptive (or constant) safety margin over heartbeat delays.
pub trait SafetyMargin: Send {
    /// Consumes a new observation: the observed delay and the error of the
    /// prediction that had been made for it (`err = obs − pred`).
    fn update(&mut self, obs_ms: f64, prediction_error_ms: f64);

    /// The current margin `sm_{k+1}` in milliseconds.
    fn margin(&self) -> f64;

    /// The margin's label, e.g. `"SM_CI(2)"`.
    fn name(&self) -> String;
}

impl<T: SafetyMargin + ?Sized> SafetyMargin for Box<T> {
    fn update(&mut self, obs_ms: f64, prediction_error_ms: f64) {
        (**self).update(obs_ms, prediction_error_ms)
    }
    fn margin(&self) -> f64 {
        (**self).margin()
    }
    fn name(&self) -> String {
        (**self).name()
    }
}

/// `SM_CI(γ)`: confidence-interval margin, independent of the predictor.
///
/// ```
/// use fd_core::{ConfidenceMargin, SafetyMargin};
///
/// let mut sm = ConfidenceMargin::new(ConfidenceMargin::GAMMA_MED);
/// for obs in [200.0, 207.0, 195.0, 203.0] {
///     sm.update(obs, 0.0); // the prediction error argument is ignored
/// }
/// assert!(sm.margin() > 0.0);
/// assert_eq!(sm.name(), "SM_CI(2)");
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceMargin {
    gamma: f64,
    core: CiCore,
}

impl ConfidenceMargin {
    /// Creates the margin with multiplier `gamma`.
    ///
    /// # Panics
    ///
    /// Panics if `gamma` is not strictly positive.
    pub fn new(gamma: f64) -> Self {
        assert!(gamma > 0.0, "gamma must be positive, got {gamma}");
        Self {
            gamma,
            core: CiCore::new(),
        }
    }

    /// The γ multiplier.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// The paper's Table 1 values: γ_low = 1, γ_med = 2, γ_high = 3.31.
    pub const GAMMA_LOW: f64 = 1.0;
    /// γ_med of Table 1.
    pub const GAMMA_MED: f64 = 2.0;
    /// γ_high of Table 1.
    pub const GAMMA_HIGH: f64 = 3.31;
}

impl SafetyMargin for ConfidenceMargin {
    fn update(&mut self, obs_ms: f64, _prediction_error_ms: f64) {
        self.core.update(obs_ms);
    }

    fn margin(&self) -> f64 {
        self.core.margin(self.gamma)
    }

    fn name(&self) -> String {
        format!("SM_CI({})", self.gamma)
    }
}

/// `SM_JAC(φ)`: Jacobson-style margin driven by the predictor's error.
///
/// ```
/// use fd_core::{JacobsonMargin, SafetyMargin};
///
/// let mut sm = JacobsonMargin::new(JacobsonMargin::PHI_LOW);
/// sm.update(0.0, 8.0); // |err| = 8 → sm = ¼·8 = 2
/// assert_eq!(sm.margin(), 2.0);
/// // A perfect predictor drives the margin back toward zero.
/// for _ in 0..100 {
///     sm.update(0.0, 0.0);
/// }
/// assert!(sm.margin() < 0.01);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JacobsonMargin {
    phi: f64,
    core: JacCore,
}

impl JacobsonMargin {
    /// Creates the margin with multiplier `phi` and the paper's α = 1/4.
    ///
    /// # Panics
    ///
    /// Panics if `phi` is not strictly positive.
    pub fn new(phi: f64) -> Self {
        Self::with_alpha(phi, 0.25)
    }

    /// Creates the margin with an explicit gain α.
    ///
    /// # Panics
    ///
    /// Panics unless `phi > 0` and `0 < alpha <= 1`.
    pub fn with_alpha(phi: f64, alpha: f64) -> Self {
        assert!(phi > 0.0, "phi must be positive, got {phi}");
        Self {
            phi,
            core: JacCore::new(alpha),
        }
    }

    /// The φ multiplier.
    pub fn phi(&self) -> f64 {
        self.phi
    }

    /// The paper's Table 1 values: φ_low = 1, φ_med = 2, φ_high = 4.
    pub const PHI_LOW: f64 = 1.0;
    /// φ_med of Table 1.
    pub const PHI_MED: f64 = 2.0;
    /// φ_high of Table 1.
    pub const PHI_HIGH: f64 = 4.0;
}

impl SafetyMargin for JacobsonMargin {
    fn update(&mut self, _obs_ms: f64, prediction_error_ms: f64) {
        // sm_{k+1} = φ · (base_k + α·(|err_k| − base_k)); the recursion state
        // is the *unscaled* smoothed deviation, as in Jacobson's RTO.
        self.core.update(prediction_error_ms);
    }

    fn margin(&self) -> f64 {
        self.core.margin(self.phi)
    }

    fn name(&self) -> String {
        format!("SM_JAC({})", self.phi)
    }
}

/// The full Jacobson/Karels round-trip estimator as a safety margin:
/// `sm = μ̂ + k·d̂`, where `μ̂` is the smoothed *signed* prediction error and
/// `d̂` the smoothed absolute deviation from it (TCP's RTO structure, and
/// the margin style of Bertier, Marin & Sens's adaptable detector that the
/// paper extends). Provided as an extension beyond the paper's two margin
/// families.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RtoMargin {
    k: f64,
    core: RtoCore,
}

impl RtoMargin {
    /// Creates the margin with deviation multiplier `k` (TCP uses 4) and
    /// the classical gains (1/8 for the mean, 1/4 for the deviation).
    ///
    /// # Panics
    ///
    /// Panics if `k` is not strictly positive.
    pub fn new(k: f64) -> Self {
        assert!(k > 0.0, "k must be positive, got {k}");
        Self {
            k,
            core: RtoCore::new(),
        }
    }

    /// The deviation multiplier.
    pub fn k(&self) -> f64 {
        self.k
    }
}

impl SafetyMargin for RtoMargin {
    fn update(&mut self, _obs_ms: f64, prediction_error_ms: f64) {
        self.core.update(prediction_error_ms);
    }

    fn margin(&self) -> f64 {
        // A persistent negative error (over-prediction) must not drive the
        // margin negative: the time-out would precede the prediction itself.
        self.core.margin(self.k)
    }

    fn name(&self) -> String {
        format!("SM_RTO({})", self.k)
    }
}

/// The constant safety margin used by NFD-E (Chen et al.), where the value is
/// derived from QoS requirements and a probabilistic characterisation of the
/// network rather than adapted online.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConstantMargin {
    alpha_ms: f64,
}

impl ConstantMargin {
    /// Creates a constant margin of `alpha_ms` milliseconds.
    ///
    /// # Panics
    ///
    /// Panics if `alpha_ms` is negative or not finite.
    pub fn new(alpha_ms: f64) -> Self {
        assert!(
            alpha_ms.is_finite() && alpha_ms >= 0.0,
            "invalid constant margin {alpha_ms}"
        );
        Self { alpha_ms }
    }
}

impl SafetyMargin for ConstantMargin {
    fn update(&mut self, _obs_ms: f64, _prediction_error_ms: f64) {}
    fn margin(&self) -> f64 {
        self.alpha_ms
    }
    fn name(&self) -> String {
        format!("CONST({}ms)", self.alpha_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ci_margin_is_zero_before_two_observations() {
        let mut m = ConfidenceMargin::new(2.0);
        assert_eq!(m.margin(), 0.0);
        m.update(200.0, 0.0);
        assert_eq!(m.margin(), 0.0);
        m.update(210.0, 0.0);
        assert!(m.margin() > 0.0);
    }

    #[test]
    fn ci_margin_matches_formula() {
        let mut m = ConfidenceMargin::new(2.0);
        let obs = [200.0, 210.0, 190.0, 205.0];
        for &o in &obs {
            m.update(o, 0.0);
        }
        // Recompute by hand.
        let n = obs.len() as f64;
        let mean = obs.iter().sum::<f64>() / n;
        let ssd: f64 = obs.iter().map(|o| (o - mean) * (o - mean)).sum();
        let sigma = (ssd / (n - 1.0)).sqrt();
        let last_dev = obs[obs.len() - 1] - mean;
        let expect = 2.0 * sigma * (1.0 + 1.0 / n + last_dev * last_dev / ssd).sqrt();
        assert!(
            (m.margin() - expect).abs() < 1e-9,
            "{} vs {expect}",
            m.margin()
        );
    }

    #[test]
    fn ci_margin_scales_with_gamma() {
        let obs = [200.0, 195.0, 207.0, 199.0, 212.0];
        let margins: Vec<f64> = [1.0, 2.0, 3.31]
            .iter()
            .map(|&g| {
                let mut m = ConfidenceMargin::new(g);
                for &o in &obs {
                    m.update(o, 0.0);
                }
                m.margin()
            })
            .collect();
        assert!(margins[0] < margins[1] && margins[1] < margins[2]);
        assert!((margins[1] / margins[0] - 2.0).abs() < 1e-9);
        assert!((margins[2] / margins[0] - 3.31).abs() < 1e-9);
    }

    #[test]
    fn ci_margin_ignores_prediction_error() {
        let mut a = ConfidenceMargin::new(1.0);
        let mut b = ConfidenceMargin::new(1.0);
        for i in 0..10 {
            let obs = 200.0 + i as f64;
            a.update(obs, 0.0);
            b.update(obs, 1_000.0); // wildly wrong predictor
        }
        assert_eq!(a.margin(), b.margin());
    }

    #[test]
    fn ci_margin_constant_series_is_zero() {
        let mut m = ConfidenceMargin::new(3.31);
        for _ in 0..50 {
            m.update(200.0, 0.0);
        }
        assert_eq!(m.margin(), 0.0);
    }

    #[test]
    fn jac_margin_recursion() {
        let mut m = JacobsonMargin::new(1.0);
        m.update(0.0, 8.0);
        // sm_1 = 1·(0 + ¼·(8 − 0)) = 2
        assert!((m.margin() - 2.0).abs() < 1e-12);
        m.update(0.0, 10.0);
        // base = 2; sm_2 = 2 + ¼·(10 − 2) = 4
        assert!((m.margin() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn jac_margin_scaling_with_phi() {
        // With identical error streams, sm(φ) = φ · sm(1) because the
        // recursion state is the unscaled smoothed deviation.
        let errs = [5.0, -3.0, 8.0, 2.0, -7.0];
        let run = |phi: f64| {
            let mut m = JacobsonMargin::new(phi);
            for &e in &errs {
                m.update(0.0, e);
            }
            m.margin()
        };
        assert!((run(2.0) - 2.0 * run(1.0)).abs() < 1e-9);
        assert!((run(4.0) - 4.0 * run(1.0)).abs() < 1e-9);
    }

    #[test]
    fn jac_margin_tracks_error_magnitude() {
        let mut m = JacobsonMargin::new(1.0);
        for _ in 0..100 {
            m.update(0.0, 6.0);
        }
        // Converges to |err| = 6.
        assert!((m.margin() - 6.0).abs() < 0.01);
        // Perfect predictor drives it back toward zero.
        for _ in 0..100 {
            m.update(0.0, 0.0);
        }
        assert!(m.margin() < 0.01);
    }

    #[test]
    fn jac_ignores_observation_value() {
        let mut a = JacobsonMargin::new(2.0);
        let mut b = JacobsonMargin::new(2.0);
        for i in 0..10 {
            a.update(1.0, i as f64);
            b.update(9_999.0, i as f64);
        }
        assert_eq!(a.margin(), b.margin());
    }

    #[test]
    fn rto_margin_tracks_mean_plus_deviation() {
        let mut m = RtoMargin::new(4.0);
        // Alternating ±5 errors: μ̂ → 0, d̂ → 5, margin → 20.
        for i in 0..500 {
            m.update(0.0, if i % 2 == 0 { 5.0 } else { -5.0 });
        }
        assert!((m.margin() - 20.0).abs() < 1.5, "margin={}", m.margin());
        assert_eq!(m.name(), "SM_RTO(4)");
        assert_eq!(m.k(), 4.0);
    }

    #[test]
    fn rto_margin_never_negative() {
        let mut m = RtoMargin::new(1.0);
        // Persistent over-prediction: signed mean is negative, deviation → 0.
        for _ in 0..500 {
            m.update(0.0, -10.0);
        }
        assert!(m.margin() >= 0.0, "margin={}", m.margin());
    }

    #[test]
    fn rto_margin_grows_with_k() {
        let errs = [3.0, -4.0, 6.0, -1.0, 2.0];
        let run = |k: f64| {
            let mut m = RtoMargin::new(k);
            for &e in &errs {
                m.update(0.0, e);
            }
            m.margin()
        };
        assert!(run(4.0) >= run(2.0));
        assert!(run(2.0) >= run(1.0));
    }

    #[test]
    fn constant_margin_never_moves() {
        let mut m = ConstantMargin::new(150.0);
        for i in 0..100 {
            m.update(i as f64, i as f64 * 2.0);
        }
        assert_eq!(m.margin(), 150.0);
        assert_eq!(m.name(), "CONST(150ms)");
    }

    #[test]
    fn names_follow_paper_notation() {
        assert_eq!(ConfidenceMargin::new(3.31).name(), "SM_CI(3.31)");
        assert_eq!(JacobsonMargin::new(4.0).name(), "SM_JAC(4)");
    }

    #[test]
    #[should_panic(expected = "gamma must be positive")]
    fn ci_rejects_nonpositive_gamma() {
        let _ = ConfidenceMargin::new(0.0);
    }

    #[test]
    #[should_panic(expected = "phi must be positive")]
    fn jac_rejects_nonpositive_phi() {
        let _ = JacobsonMargin::new(-1.0);
    }

    /// One shared [`CiCore`] with γ applied at read time is bit-identical to
    /// three independent `ConfidenceMargin`s — the invariant the
    /// `DetectorBank` relies on to collapse the three `SM_CI(γ)` variants.
    #[test]
    fn ci_core_shared_across_gammas_is_bit_identical() {
        let gammas = [1.0, 2.0, 3.31];
        let mut core = CiCore::new();
        let mut boxed: Vec<ConfidenceMargin> =
            gammas.iter().map(|&g| ConfidenceMargin::new(g)).collect();
        let obs = [200.0, 195.5, 207.25, 199.0, 212.125, 203.0, 198.75];
        for (step, &o) in obs.iter().enumerate() {
            core.update(o);
            for m in &mut boxed {
                m.update(o, f64::NAN); // error argument must be irrelevant
            }
            for (&g, m) in gammas.iter().zip(&boxed) {
                assert_eq!(
                    core.margin(g).to_bits(),
                    m.margin().to_bits(),
                    "step {step}, gamma {g}"
                );
            }
        }
        assert_eq!(core.count(), obs.len() as u64);
    }

    /// One shared [`JacCore`] with φ applied at read time is bit-identical
    /// to independent `JacobsonMargin`s over the same error stream.
    #[test]
    fn jac_core_shared_across_phis_is_bit_identical() {
        let phis = [1.0, 2.0, 4.0];
        let mut core = JacCore::new(0.25);
        let mut boxed: Vec<JacobsonMargin> = phis.iter().map(|&p| JacobsonMargin::new(p)).collect();
        for e in [5.0, -3.25, 8.5, 0.0, -7.75, 2.125, 9.0] {
            core.update(e);
            for m in &mut boxed {
                m.update(f64::NAN, e);
            }
            for (&p, m) in phis.iter().zip(&boxed) {
                assert_eq!(core.margin(p).to_bits(), m.margin().to_bits(), "phi {p}");
            }
        }
    }

    /// One shared [`RtoCore`] with k applied at read time matches
    /// independent `RtoMargin`s bit for bit.
    #[test]
    fn rto_core_shared_across_ks_is_bit_identical() {
        let ks = [1.0, 2.0, 4.0];
        let mut core = RtoCore::new();
        let mut boxed: Vec<RtoMargin> = ks.iter().map(|&k| RtoMargin::new(k)).collect();
        for e in [3.0, -4.5, 6.25, -1.0, 2.0, -10.0] {
            core.update(e);
            for m in &mut boxed {
                m.update(f64::NAN, e);
            }
            for (&k, m) in ks.iter().zip(&boxed) {
                assert_eq!(core.margin(k).to_bits(), m.margin().to_bits(), "k {k}");
            }
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Both adaptive margins are always non-negative and finite.
        #[test]
        fn margins_nonnegative(
            obs in proptest::collection::vec(0.0f64..1e4, 1..200),
            errs in proptest::collection::vec(-1e3f64..1e3, 1..200),
        ) {
            let mut ci = ConfidenceMargin::new(2.0);
            let mut jac = JacobsonMargin::new(2.0);
            for (o, e) in obs.iter().zip(&errs) {
                ci.update(*o, *e);
                jac.update(*o, *e);
                prop_assert!(ci.margin() >= 0.0 && ci.margin().is_finite());
                prop_assert!(jac.margin() >= 0.0 && jac.margin().is_finite());
            }
        }

        /// SM_JAC is bounded by φ times the running max |err|.
        #[test]
        fn jac_bounded_by_max_error(errs in proptest::collection::vec(-1e3f64..1e3, 1..100)) {
            let mut m = JacobsonMargin::new(4.0);
            let mut max_abs: f64 = 0.0;
            for &e in &errs {
                max_abs = max_abs.max(e.abs());
                m.update(0.0, e);
                prop_assert!(m.margin() <= 4.0 * max_abs + 1e-9);
            }
        }
    }
}
