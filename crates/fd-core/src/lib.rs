//! Modular adaptive push-style failure detectors.
//!
//! This crate implements the DSN'05 paper's contribution: a push-style crash
//! failure detector whose time-out `δ_i` is split into a **predictor** of the
//! next heartbeat delay plus a **safety margin**:
//!
//! ```text
//! τ_i = σ_i + δ_i,   δ_i = pred_i + sm_i,   σ_i = i·η
//! ```
//!
//! The monitor suspects the monitored process if, at a time in
//! `[τ_i, τ_{i+1}]`, no heartbeat with sequence ≥ i has been received.
//!
//! * [`predictor`] — the five predictors of the paper: `LAST`, `MEAN`,
//!   `WINMEAN(N)`, `LPF(β)`, `ARIMA(p,d,q)`;
//! * [`margin`] — the two adaptive safety-margin families (`SM_CI(γ)`,
//!   `SM_JAC(φ)`) plus the constant margin of the NFD-E baseline;
//! * [`detector`] — the freshness-point state machine;
//! * [`bank`] — the shared-computation [`DetectorBank`]: all 30
//!   combinations behind one batched engine, each distinct predictor
//!   updated once per heartbeat and the margin cores shared;
//! * [`source_bank`] — the many-source [`SourceBank`]: N sources × M
//!   combinations in struct-of-arrays layout with contiguous per-combo
//!   deadline arrays and a batch heartbeat path;
//! * [`combinations`] — the registry of the paper's 30 predictor × margin
//!   combinations;
//! * [`nfd`] — the Chen–Toueg–Aguilera NFD-E baseline the paper extends.
//!
//! # Example
//!
//! ```
//! use fd_core::combinations::Combination;
//! use fd_core::{MarginKind, PredictorKind};
//! use fd_sim::{SimDuration, SimTime};
//!
//! let eta = SimDuration::from_secs(1);
//! let combo = Combination::new(PredictorKind::Last, MarginKind::Jac { phi: 1.0 });
//! let mut fd = combo.build(eta);
//!
//! // Heartbeat m_0 sent at 0 s arrives after 200 ms.
//! fd.on_heartbeat(0, SimTime::from_millis(200));
//! assert!(!fd.is_suspecting());
//! // Well past the next freshness point with no heartbeat: suspect.
//! fd.check(SimTime::from_secs(5));
//! assert!(fd.is_suspecting());
//! ```

pub mod bank;
pub mod combinations;
pub mod detector;
pub mod margin;
pub mod nfd;
pub mod predictor;
pub mod pull;
pub mod snapshot;
pub mod source_bank;

pub use bank::{BankTransition, DetectorBank, PredictorState};
pub use combinations::{
    all_combinations, extended_combinations, Combination, MarginKind, PredictorKind,
};
pub use detector::{FailureDetector, FdOutput, FdTransition};
pub use margin::{
    CiCore, ConfidenceMargin, ConstantMargin, JacCore, JacobsonMargin, RtoCore, RtoMargin,
    SafetyMargin,
};
pub use nfd::nfd_e;
pub use predictor::{
    AdaptiveWindow, ArimaPredictor, Last, Lpf, Mean, MlPredictor, PhiAccrual, Predictor, WinMean,
};
pub use pull::PullFailureDetector;
pub use snapshot::{BankSnapshot, SnapshotError};
pub use source_bank::{HeartbeatObs, SourceBank, SourceTransition};
