//! The freshness-point state machine of the modular push-style failure
//! detector (Section 2.3).
//!
//! The monitored process sends heartbeat `m_i` at `σ_i = i·η`. When the
//! monitor receives a *fresh* heartbeat (larger sequence than any seen), it
//! computes the next freshness point
//!
//! ```text
//! τ_{k+1} = σ_{k+1} + pred_{k+1} + sm_{k+1}
//! ```
//!
//! and trusts the process until `τ_{k+1}` passes without a fresher
//! heartbeat, at which point it suspects; the suspicion ends with the next
//! fresh heartbeat. Delay observations are taken from *every* received
//! heartbeat (the `obs` list may be unordered w.r.t. sequence numbers, as in
//! the paper), but only fresh heartbeats refresh trust.

use std::fmt;

use fd_sim::{SimDuration, SimTime};

use crate::margin::SafetyMargin;
use crate::predictor::Predictor;

/// The detector's current opinion of the monitored process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FdOutput {
    /// The process is believed alive.
    Trust,
    /// The process is suspected to have crashed.
    Suspect,
}

/// An edge of the detector's output, as produced by
/// [`FailureDetector::on_heartbeat`] / [`FailureDetector::check`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FdTransition {
    /// Trust → Suspect (a freshness point expired).
    StartSuspect,
    /// Suspect → Trust (a fresh heartbeat arrived: the suspicion was either
    /// a mistake being corrected or a restore being noticed).
    EndSuspect,
}

/// A modular push-style failure detector = predictor + safety margin.
///
/// ```
/// use fd_core::{FailureDetector, JacobsonMargin, Last};
/// use fd_sim::{SimDuration, SimTime};
///
/// let eta = SimDuration::from_secs(1);
/// let mut fd = FailureDetector::new("demo", Last::new(), JacobsonMargin::new(2.0), eta);
///
/// // Heartbeats 0 and 1 arrive ~200 ms after their send times.
/// fd.on_heartbeat(0, SimTime::from_millis(200));
/// fd.on_heartbeat(1, SimTime::from_millis(1_210));
/// assert!(!fd.is_suspecting());
///
/// // The freshness point τ_2 = 2η + pred + sm; nothing arrives → suspect.
/// let deadline = fd.next_deadline().unwrap();
/// assert!(fd.check(deadline).is_some());
/// assert!(fd.is_suspecting());
///
/// // Heartbeat 2 finally arrives: the mistake is corrected.
/// assert!(fd.on_heartbeat(2, SimTime::from_millis(2_400)).is_some());
/// assert!(!fd.is_suspecting());
/// ```
pub struct FailureDetector {
    name: String,
    predictor: Box<dyn Predictor>,
    margin: Box<dyn SafetyMargin>,
    eta: SimDuration,
    highest_seq: Option<u64>,
    next_freshness: Option<SimTime>,
    suspecting: bool,
    heartbeats: u64,
    stale_heartbeats: u64,
}

impl fmt::Debug for FailureDetector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FailureDetector")
            .field("name", &self.name)
            .field("eta", &self.eta)
            .field("highest_seq", &self.highest_seq)
            .field("next_freshness", &self.next_freshness)
            .field("suspecting", &self.suspecting)
            .field("heartbeats", &self.heartbeats)
            .finish()
    }
}

impl FailureDetector {
    /// Creates a detector from its parts.
    ///
    /// # Panics
    ///
    /// Panics if `eta` is zero.
    pub fn new(
        name: impl Into<String>,
        predictor: impl Predictor + 'static,
        margin: impl SafetyMargin + 'static,
        eta: SimDuration,
    ) -> Self {
        Self::from_boxed(name, Box::new(predictor), Box::new(margin), eta)
    }

    /// Creates a detector from boxed parts (used by the combination
    /// registry).
    ///
    /// # Panics
    ///
    /// Panics if `eta` is zero.
    pub fn from_boxed(
        name: impl Into<String>,
        predictor: Box<dyn Predictor>,
        margin: Box<dyn SafetyMargin>,
        eta: SimDuration,
    ) -> Self {
        assert!(!eta.is_zero(), "heartbeat period must be positive");
        Self {
            name: name.into(),
            predictor,
            margin,
            eta,
            highest_seq: None,
            next_freshness: None,
            suspecting: false,
            heartbeats: 0,
            stale_heartbeats: 0,
        }
    }

    /// The detector's label, e.g. `"LAST+SM_JAC(1)"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The heartbeat period η.
    pub fn eta(&self) -> SimDuration {
        self.eta
    }

    /// The detector's current output.
    pub fn output(&self) -> FdOutput {
        if self.suspecting {
            FdOutput::Suspect
        } else {
            FdOutput::Trust
        }
    }

    /// `true` while the detector suspects the monitored process.
    pub fn is_suspecting(&self) -> bool {
        self.suspecting
    }

    /// The next freshness point `τ_{k+1}`, if a heartbeat has been seen.
    /// The monitor should call [`FailureDetector::check`] at (or after)
    /// this instant.
    pub fn next_deadline(&self) -> Option<SimTime> {
        self.next_freshness
    }

    /// Heartbeats received so far (fresh + stale).
    pub fn heartbeats(&self) -> u64 {
        self.heartbeats
    }

    /// Heartbeats that arrived out of order (did not advance freshness).
    pub fn stale_heartbeats(&self) -> u64 {
        self.stale_heartbeats
    }

    /// The current time-out component `δ = pred + sm` in milliseconds.
    pub fn current_timeout_ms(&self) -> f64 {
        self.predictor.predict() + self.margin.margin()
    }

    /// The predictor's current forecast in milliseconds.
    pub fn predicted_delay_ms(&self) -> f64 {
        self.predictor.predict()
    }

    /// Observations consumed by this detector's private predictor. In a
    /// bank, detectors sharing a predictor share this count instead.
    pub fn predictor_observations(&self) -> u64 {
        self.predictor.observations()
    }

    /// The current safety margin in milliseconds.
    pub fn margin_ms(&self) -> f64 {
        self.margin.margin()
    }

    /// Handles the arrival of heartbeat `seq` at global time `arrival`.
    ///
    /// Returns `Some(FdTransition::EndSuspect)` if the heartbeat corrected
    /// an ongoing suspicion, `None` otherwise.
    pub fn on_heartbeat(&mut self, seq: u64, arrival: SimTime) -> Option<FdTransition> {
        self.heartbeats += 1;

        // Observed transmission delay: obs_j = Arr_i − σ_i. With
        // synchronised clocks this is non-negative; clamp defensively for
        // the real engine where residual NTP offset may leak through.
        let sigma = SimTime::ZERO + self.eta * seq;
        let delay_ms = arrival
            .checked_duration_since(sigma)
            .map_or(0.0, |d| d.as_millis_f64());

        // The sequence gap this heartbeat closes: how many expected
        // heartbeats never arrived between the freshest seen and this one.
        // Stale (reordered) deliveries close no gap.
        let gap = match self.highest_seq {
            Some(h) if seq > h => seq - h - 1,
            None => 0, // first heartbeat: nothing was expected before it
            _ => 0,    // stale
        };

        // err_k = obs_n − pred_k uses the prediction that was in force
        // before this observation.
        let err = delay_ms - self.predictor.predict();
        self.predictor.observe_gap(delay_ms, gap);
        self.margin.update(delay_ms, err);

        let fresh = self.highest_seq.is_none_or(|h| seq > h);
        if !fresh {
            self.stale_heartbeats += 1;
            return None;
        }
        self.highest_seq = Some(seq);

        // τ_{k+1} = σ_{k+1} + pred_{k+1} + sm_{k+1}.
        let delta = SimDuration::from_millis_f64(self.current_timeout_ms().max(0.0));
        let sigma_next = SimTime::ZERO + self.eta * (seq + 1);
        self.next_freshness = Some(sigma_next + delta);

        if self.suspecting {
            self.suspecting = false;
            Some(FdTransition::EndSuspect)
        } else {
            None
        }
    }

    /// Evaluates the freshness condition at time `now`.
    ///
    /// Returns `Some(FdTransition::StartSuspect)` if the detector begins
    /// suspecting at this instant, `None` otherwise (already suspecting,
    /// deadline not yet reached, or no heartbeat seen yet).
    pub fn check(&mut self, now: SimTime) -> Option<FdTransition> {
        if self.suspecting {
            return None;
        }
        match self.next_freshness {
            Some(deadline) if now >= deadline => {
                self.suspecting = true;
                Some(FdTransition::StartSuspect)
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::margin::{ConstantMargin, JacobsonMargin};
    use crate::predictor::Last;

    fn secs(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    /// LAST + CONST(100ms): deadline after heartbeat i at delay 200ms is
    /// (i+1)·η + 200 + 100.
    fn simple_fd() -> FailureDetector {
        FailureDetector::new("t", Last::new(), ConstantMargin::new(100.0), ms(1000))
    }

    #[test]
    fn no_suspicion_before_first_heartbeat() {
        let mut fd = simple_fd();
        assert_eq!(fd.check(secs(100)), None);
        assert_eq!(fd.output(), FdOutput::Trust);
        assert_eq!(fd.next_deadline(), None);
    }

    #[test]
    fn deadline_is_freshness_point() {
        let mut fd = simple_fd();
        fd.on_heartbeat(0, SimTime::from_millis(200));
        // τ_1 = 1·η + pred(=200) + sm(=100) = 1300ms.
        assert_eq!(fd.next_deadline(), Some(SimTime::from_millis(1300)));
        assert_eq!(fd.check(SimTime::from_millis(1299)), None);
        assert_eq!(
            fd.check(SimTime::from_millis(1300)),
            Some(FdTransition::StartSuspect)
        );
        assert!(fd.is_suspecting());
    }

    #[test]
    fn fresh_heartbeat_corrects_mistake() {
        let mut fd = simple_fd();
        fd.on_heartbeat(0, SimTime::from_millis(200));
        fd.check(SimTime::from_millis(1300));
        assert!(fd.is_suspecting());
        let tr = fd.on_heartbeat(1, SimTime::from_millis(1400));
        assert_eq!(tr, Some(FdTransition::EndSuspect));
        assert_eq!(fd.output(), FdOutput::Trust);
        // New deadline: 2·η + 400 (LAST saw delay 400) + 100 = 2500ms.
        assert_eq!(fd.next_deadline(), Some(SimTime::from_millis(2500)));
    }

    #[test]
    fn check_is_idempotent_while_suspecting() {
        let mut fd = simple_fd();
        fd.on_heartbeat(0, SimTime::from_millis(200));
        assert_eq!(fd.check(secs(10)), Some(FdTransition::StartSuspect));
        assert_eq!(fd.check(secs(11)), None);
        assert_eq!(fd.check(secs(12)), None);
    }

    #[test]
    fn stale_heartbeat_updates_predictor_not_freshness() {
        let mut fd = simple_fd();
        fd.on_heartbeat(5, SimTime::from_millis(5_200));
        let deadline = fd.next_deadline();
        // Reordered older heartbeat: delay observed (predictor sees it) but
        // the freshness point is untouched and no transition fires.
        let tr = fd.on_heartbeat(3, SimTime::from_millis(5_250));
        assert_eq!(tr, None);
        assert_eq!(fd.next_deadline(), deadline);
        assert_eq!(fd.stale_heartbeats(), 1);
        assert_eq!(fd.heartbeats(), 2);
        // LAST now predicts the stale delay (3 sent at 3s, arrived 5.25s).
        assert_eq!(fd.predicted_delay_ms(), 2_250.0);
    }

    #[test]
    fn lost_heartbeats_do_not_clear_suspicion() {
        let mut fd = simple_fd();
        fd.on_heartbeat(0, SimTime::from_millis(200));
        fd.check(secs(60));
        assert!(fd.is_suspecting());
        // Time passes; still no heartbeat: remains suspecting (permanent
        // detection of a crash).
        assert_eq!(fd.check(secs(120)), None);
        assert!(fd.is_suspecting());
    }

    #[test]
    fn gap_in_sequence_still_refreshes() {
        let mut fd = simple_fd();
        fd.on_heartbeat(0, SimTime::from_millis(200));
        fd.check(secs(5));
        assert!(fd.is_suspecting());
        // Heartbeats 1..=4 lost; 5 arrives and clears the suspicion.
        let tr = fd.on_heartbeat(5, SimTime::from_millis(5_180));
        assert_eq!(tr, Some(FdTransition::EndSuspect));
        // τ_6 = 6·η + 180 + 100.
        assert_eq!(fd.next_deadline(), Some(SimTime::from_millis(6_280)));
    }

    #[test]
    fn adaptive_margin_widens_after_errors() {
        let mut fd = FailureDetector::new("jac", Last::new(), JacobsonMargin::new(4.0), ms(1000));
        fd.on_heartbeat(0, SimTime::from_millis(200));
        let m0 = fd.margin_ms();
        // A big delay jump is a big prediction error for LAST.
        fd.on_heartbeat(1, SimTime::from_millis(1_000) + ms(320));
        assert!(fd.margin_ms() > m0);
        assert!(fd.current_timeout_ms() >= fd.predicted_delay_ms());
    }

    #[test]
    fn negative_apparent_delay_clamps_to_zero() {
        let mut fd = simple_fd();
        // Heartbeat 5 "arrives" before its send time (clock skew).
        fd.on_heartbeat(5, SimTime::from_millis(4_900));
        assert_eq!(fd.predicted_delay_ms(), 0.0);
        // Deadline still computed sanely: 6·η + 0 + 100.
        assert_eq!(fd.next_deadline(), Some(SimTime::from_millis(6_100)));
    }

    #[test]
    #[should_panic(expected = "heartbeat period must be positive")]
    fn zero_eta_rejected() {
        let _ = FailureDetector::new(
            "x",
            Last::new(),
            ConstantMargin::new(1.0),
            SimDuration::ZERO,
        );
    }

    #[test]
    fn debug_and_name() {
        let fd = simple_fd();
        assert_eq!(fd.name(), "t");
        assert!(format!("{fd:?}").contains("FailureDetector"));
        assert_eq!(fd.eta(), ms(1000));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::margin::JacobsonMargin;
    use crate::predictor::WinMean;
    use proptest::prelude::*;

    proptest! {
        /// Freshness points strictly increase with fresh heartbeats, and the
        /// detector's transitions alternate Start/End.
        #[test]
        fn freshness_monotone_and_transitions_alternate(
            delays in proptest::collection::vec(0u64..2_000, 1..100),
        ) {
            let eta = SimDuration::from_millis(1_000);
            let mut fd = FailureDetector::new(
                "prop",
                WinMean::new(5),
                JacobsonMargin::new(2.0),
                eta,
            );
            let mut last_deadline: Option<SimTime> = None;
            let mut last_transition: Option<FdTransition> = None;
            for (i, &d) in delays.iter().enumerate() {
                let seq = i as u64;
                let arrival = SimTime::ZERO + eta * seq + SimDuration::from_millis(d);
                // Let time advance to the arrival; the monitor checks first.
                if let Some(tr) = fd.check(arrival) {
                    prop_assert_ne!(Some(tr), last_transition);
                    last_transition = Some(tr);
                }
                if let Some(tr) = fd.on_heartbeat(seq, arrival) {
                    prop_assert_ne!(Some(tr), last_transition);
                    last_transition = Some(tr);
                }
                let deadline = fd.next_deadline().expect("deadline after heartbeat");
                if let Some(prev) = last_deadline {
                    prop_assert!(deadline > prev, "deadline must advance");
                }
                // τ_{k+1} is never before the next send time σ_{k+1}.
                prop_assert!(deadline >= SimTime::ZERO + eta * (seq + 1));
                last_deadline = Some(deadline);
            }
        }
    }
}
