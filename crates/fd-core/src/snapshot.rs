//! Checkpoint/restore of a live [`DetectorBank`](crate::bank::DetectorBank).
//!
//! A [`BankSnapshot`] is a plain-data image of everything a bank needs to
//! continue a heartbeat stream **bit-identically** after a monitor crash:
//! the five distinct predictor states (including the full ARIMA window,
//! model coefficients and innovation recursion), the shared Welford
//! [`CiCore`](crate::margin::CiCore), the per-predictor
//! [`JacCore`](crate::margin::JacCore)/[`RtoCore`](crate::margin::RtoCore)
//! error cores, and the per-combination freshness points and suspicion
//! flags.
//!
//! The serialized form is a versioned, hand-rolled little-endian byte
//! format: every `f64` is stored via [`f64::to_bits`], so a decode→encode
//! round trip is exact and a restored bank's floating-point trajectory is
//! the original's. No textual format (JSON, CSV) can guarantee that.
//!
//! The snapshot does **not** store the combination grid itself — that is
//! configuration, not state. [`DetectorBank::restore`] validates that the
//! snapshot's shape (η, combination count, predictor kinds and parameters)
//! matches the bank it is being restored into and rejects mismatches with
//! [`SnapshotError::Mismatch`].

use std::fmt;

use fd_arima::{ArimaSnapshot, ArimaSpec};
use fd_stat::RunningStats;

/// Errors from [`BankSnapshot::from_bytes`] and
/// [`DetectorBank::restore`](crate::bank::DetectorBank::restore).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotError {
    /// The byte stream ended before the snapshot was complete.
    Truncated,
    /// The leading magic bytes are not `FDBK`.
    BadMagic,
    /// The format version is newer than this build understands.
    UnsupportedVersion(u8),
    /// An enum tag byte was out of range.
    BadTag(u8),
    /// Bytes remained after the snapshot was fully decoded.
    TrailingBytes(usize),
    /// A decoded value is inconsistent (e.g. an overfull window).
    Invalid(&'static str),
    /// The snapshot does not fit the bank it is being restored into.
    Mismatch(&'static str),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Truncated => write!(f, "snapshot truncated"),
            SnapshotError::BadMagic => write!(f, "bad snapshot magic"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(f, "unsupported snapshot version {v}")
            }
            SnapshotError::BadTag(t) => write!(f, "bad snapshot tag {t}"),
            SnapshotError::TrailingBytes(n) => {
                write!(f, "{n} trailing bytes after snapshot")
            }
            SnapshotError::Invalid(what) => write!(f, "invalid snapshot field: {what}"),
            SnapshotError::Mismatch(what) => {
                write!(f, "snapshot does not match bank: {what}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Image of one distinct predictor's state, mirroring
/// [`PredictorState`](crate::bank::PredictorState).
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum PredictorSnapshot {
    Last {
        last: f64,
        n: u64,
    },
    Mean {
        mean: f64,
        n: u64,
    },
    WinMean {
        window: Vec<f64>,
        capacity: usize,
        sum: f64,
        n: u64,
    },
    Lpf {
        beta: f64,
        pred: f64,
        n: u64,
    },
    Arima(ArimaSnapshot),
    Phi {
        ring: Vec<f64>,
        pos: u32,
        len: u32,
        sum: f64,
        sumsq: f64,
        start_left: u32,
        flaps: u64,
        mean_up: f64,
        up_len: u64,
        n: u64,
    },
    Adw {
        ring: Vec<f64>,
        sum: f64,
        sumsq: f64,
        n: u64,
    },
    Ml {
        w: Vec<f64>,
        hist: Vec<f64>,
        n: u64,
    },
}

/// A complete, restorable image of a
/// [`DetectorBank`](crate::bank::DetectorBank)'s mutable state.
///
/// Produced by [`DetectorBank::snapshot`](crate::bank::DetectorBank::snapshot),
/// consumed by [`DetectorBank::restore`](crate::bank::DetectorBank::restore),
/// and serialized with [`BankSnapshot::to_bytes`] /
/// [`BankSnapshot::from_bytes`].
#[derive(Debug, Clone, PartialEq)]
pub struct BankSnapshot {
    pub(crate) eta_us: u64,
    pub(crate) n_combos: usize,
    pub(crate) predictors: Vec<PredictorSnapshot>,
    /// `(stats, sigma, inner_sqrt)` of the shared CI core.
    pub(crate) ci: (RunningStats, f64, f64),
    /// Per distinct predictor: `(jac (alpha, base), rto (gain, mu, dev))`.
    pub(crate) error_cores: Vec<(Option<(f64, f64)>, Option<(f64, f64, f64)>)>,
    pub(crate) predictions: Vec<f64>,
    pub(crate) next_freshness_us: Vec<Option<u64>>,
    pub(crate) suspecting: Vec<bool>,
    pub(crate) highest_seq: Option<u64>,
    pub(crate) heartbeats: u64,
    pub(crate) stale_heartbeats: u64,
}

const MAGIC: &[u8; 4] = b"FDBK";
/// Version 2 added the new-family predictor tags (φ-accrual, adaptive
/// window, ML). The body layout of version 1 is unchanged — its tags 0–4
/// decode exactly as before — so v1 bytes restore bit-identically.
const VERSION: u8 = 2;
const OLDEST_READABLE_VERSION: u8 = 1;

const TAG_LAST: u8 = 0;
const TAG_MEAN: u8 = 1;
const TAG_WINMEAN: u8 = 2;
const TAG_LPF: u8 = 3;
const TAG_ARIMA: u8 = 4;
const TAG_PHI: u8 = 5;
const TAG_ADW: u8 = 6;
const TAG_ML: u8 = 7;

impl BankSnapshot {
    /// Heartbeats the snapshotted bank had observed (fresh + stale).
    pub fn heartbeats(&self) -> u64 {
        self.heartbeats
    }

    /// Number of combinations the snapshotted bank ran.
    pub fn combo_count(&self) -> usize {
        self.n_combos
    }

    /// Serializes to the compact versioned byte format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.bytes(MAGIC);
        w.u8(VERSION);
        w.u64(self.eta_us);
        w.u64(self.n_combos as u64);
        w.u64(self.predictors.len() as u64);
        for p in &self.predictors {
            match p {
                PredictorSnapshot::Last { last, n } => {
                    w.u8(TAG_LAST);
                    w.f64(*last);
                    w.u64(*n);
                }
                PredictorSnapshot::Mean { mean, n } => {
                    w.u8(TAG_MEAN);
                    w.f64(*mean);
                    w.u64(*n);
                }
                PredictorSnapshot::WinMean {
                    window,
                    capacity,
                    sum,
                    n,
                } => {
                    w.u8(TAG_WINMEAN);
                    w.u64(*capacity as u64);
                    w.vec_f64(window);
                    w.f64(*sum);
                    w.u64(*n);
                }
                PredictorSnapshot::Lpf { beta, pred, n } => {
                    w.u8(TAG_LPF);
                    w.f64(*beta);
                    w.f64(*pred);
                    w.u64(*n);
                }
                PredictorSnapshot::Arima(a) => {
                    w.u8(TAG_ARIMA);
                    write_arima(&mut w, a);
                }
                PredictorSnapshot::Phi {
                    ring,
                    pos,
                    len,
                    sum,
                    sumsq,
                    start_left,
                    flaps,
                    mean_up,
                    up_len,
                    n,
                } => {
                    w.u8(TAG_PHI);
                    w.vec_f64(ring);
                    w.u32(*pos);
                    w.u32(*len);
                    w.f64(*sum);
                    w.f64(*sumsq);
                    w.u32(*start_left);
                    w.u64(*flaps);
                    w.f64(*mean_up);
                    w.u64(*up_len);
                    w.u64(*n);
                }
                PredictorSnapshot::Adw {
                    ring,
                    sum,
                    sumsq,
                    n,
                } => {
                    w.u8(TAG_ADW);
                    w.vec_f64(ring);
                    w.f64(*sum);
                    w.f64(*sumsq);
                    w.u64(*n);
                }
                PredictorSnapshot::Ml {
                    w: weights,
                    hist,
                    n,
                } => {
                    w.u8(TAG_ML);
                    w.vec_f64(weights);
                    w.vec_f64(hist);
                    w.u64(*n);
                }
            }
        }
        let (n, mean, m2, min, max) = self.ci.0.raw_parts();
        w.u64(n);
        w.f64(mean);
        w.f64(m2);
        w.f64(min);
        w.f64(max);
        w.f64(self.ci.1);
        w.f64(self.ci.2);
        for (jac, rto) in &self.error_cores {
            match jac {
                Some((alpha, base)) => {
                    w.u8(1);
                    w.f64(*alpha);
                    w.f64(*base);
                }
                None => w.u8(0),
            }
            match rto {
                Some((gain, mu, dev)) => {
                    w.u8(1);
                    w.f64(*gain);
                    w.f64(*mu);
                    w.f64(*dev);
                }
                None => w.u8(0),
            }
        }
        w.vec_f64(&self.predictions);
        for nf in &self.next_freshness_us {
            w.opt_u64(*nf);
        }
        for s in &self.suspecting {
            w.u8(*s as u8);
        }
        w.opt_u64(self.highest_seq);
        w.u64(self.heartbeats);
        w.u64(self.stale_heartbeats);
        w.buf
    }

    /// Deserializes a snapshot produced by [`BankSnapshot::to_bytes`].
    ///
    /// Never panics on malformed input: truncated, corrupted or
    /// version-skewed bytes yield a [`SnapshotError`].
    pub fn from_bytes(data: &[u8]) -> Result<BankSnapshot, SnapshotError> {
        let mut r = Reader::new(data);
        if r.bytes(4)? != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = r.u8()?;
        if !(OLDEST_READABLE_VERSION..=VERSION).contains(&version) {
            return Err(SnapshotError::UnsupportedVersion(version));
        }
        let eta_us = r.u64()?;
        let n_combos = r.len()?;
        let n_predictors = r.len()?;
        let mut predictors = Vec::with_capacity(n_predictors.min(64));
        for _ in 0..n_predictors {
            let tag = r.u8()?;
            predictors.push(match tag {
                TAG_LAST => PredictorSnapshot::Last {
                    last: r.f64()?,
                    n: r.u64()?,
                },
                TAG_MEAN => PredictorSnapshot::Mean {
                    mean: r.f64()?,
                    n: r.u64()?,
                },
                TAG_WINMEAN => PredictorSnapshot::WinMean {
                    capacity: r.len()?,
                    window: r.vec_f64()?,
                    sum: r.f64()?,
                    n: r.u64()?,
                },
                TAG_LPF => PredictorSnapshot::Lpf {
                    beta: r.f64()?,
                    pred: r.f64()?,
                    n: r.u64()?,
                },
                TAG_ARIMA => PredictorSnapshot::Arima(read_arima(&mut r)?),
                TAG_PHI => {
                    let ring = r.vec_f64()?;
                    let pos = r.u32()?;
                    let len = r.u32()?;
                    let sum = r.f64()?;
                    let sumsq = r.f64()?;
                    let start_left = r.u32()?;
                    let flaps = r.u64()?;
                    let mean_up = r.f64()?;
                    let up_len = r.u64()?;
                    let n = r.u64()?;
                    PredictorSnapshot::Phi {
                        ring,
                        pos,
                        len,
                        sum,
                        sumsq,
                        start_left,
                        flaps,
                        mean_up,
                        up_len,
                        n,
                    }
                }
                TAG_ADW => PredictorSnapshot::Adw {
                    ring: r.vec_f64()?,
                    sum: r.f64()?,
                    sumsq: r.f64()?,
                    n: r.u64()?,
                },
                TAG_ML => PredictorSnapshot::Ml {
                    w: r.vec_f64()?,
                    hist: r.vec_f64()?,
                    n: r.u64()?,
                },
                t => return Err(SnapshotError::BadTag(t)),
            });
        }
        let ci_stats = {
            let n = r.u64()?;
            let mean = r.f64()?;
            let m2 = r.f64()?;
            let min = r.f64()?;
            let max = r.f64()?;
            RunningStats::from_raw_parts(n, mean, m2, min, max)
        };
        let ci = (ci_stats, r.f64()?, r.f64()?);
        let mut error_cores = Vec::with_capacity(n_predictors.min(64));
        for _ in 0..n_predictors {
            let jac = match r.u8()? {
                0 => None,
                1 => Some((r.f64()?, r.f64()?)),
                t => return Err(SnapshotError::BadTag(t)),
            };
            let rto = match r.u8()? {
                0 => None,
                1 => Some((r.f64()?, r.f64()?, r.f64()?)),
                t => return Err(SnapshotError::BadTag(t)),
            };
            error_cores.push((jac, rto));
        }
        let predictions = r.vec_f64()?;
        let mut next_freshness_us = Vec::with_capacity(n_combos.min(1024));
        for _ in 0..n_combos {
            next_freshness_us.push(r.opt_u64()?);
        }
        let mut suspecting = Vec::with_capacity(n_combos.min(1024));
        for _ in 0..n_combos {
            suspecting.push(match r.u8()? {
                0 => false,
                1 => true,
                t => return Err(SnapshotError::BadTag(t)),
            });
        }
        let highest_seq = r.opt_u64()?;
        let heartbeats = r.u64()?;
        let stale_heartbeats = r.u64()?;
        if r.remaining() > 0 {
            return Err(SnapshotError::TrailingBytes(r.remaining()));
        }
        if predictions.len() != n_predictors {
            return Err(SnapshotError::Invalid("prediction count"));
        }
        Ok(BankSnapshot {
            eta_us,
            n_combos,
            predictors,
            ci,
            error_cores,
            predictions,
            next_freshness_us,
            suspecting,
            highest_seq,
            heartbeats,
            stale_heartbeats,
        })
    }
}

pub(crate) fn write_arima(w: &mut Writer, a: &ArimaSnapshot) {
    w.u64(a.spec.p as u64);
    w.u64(a.spec.d as u64);
    w.u64(a.spec.q as u64);
    w.u64(a.refit_every as u64);
    w.vec_f64(&a.window);
    match &a.model {
        Some((intercept, phi, psi, sigma2)) => {
            w.u8(1);
            w.f64(*intercept);
            w.vec_f64(phi);
            w.vec_f64(psi);
            w.f64(*sigma2);
        }
        None => w.u8(0),
    }
    w.vec_f64(&a.diff_recent);
    w.vec_f64(&a.recent_z);
    w.vec_f64(&a.recent_innov);
    w.opt_f64(a.pending_diff_forecast);
    w.opt_f64(a.last_level);
    w.u64(a.observed as u64);
    w.u64(a.refits as u64);
    w.u64(a.failed_fits as u64);
}

pub(crate) fn read_arima(r: &mut Reader<'_>) -> Result<ArimaSnapshot, SnapshotError> {
    let p = r.len()?;
    let d = r.len()?;
    let q = r.len()?;
    // `ArimaState` stores orders in a byte each and panics past 255; a
    // corrupted snapshot must surface as a decode error instead.
    if p > 255 || d > 255 || q > 255 {
        return Err(SnapshotError::Invalid("arima order"));
    }
    let spec = ArimaSpec::new(p, d, q);
    let refit_every = r.len()?;
    let window = r.vec_f64()?;
    let model = match r.u8()? {
        0 => None,
        1 => {
            let intercept = r.f64()?;
            let phi = r.vec_f64()?;
            let psi = r.vec_f64()?;
            let sigma2 = r.f64()?;
            Some((intercept, phi, psi, sigma2))
        }
        t => return Err(SnapshotError::BadTag(t)),
    };
    Ok(ArimaSnapshot {
        spec,
        refit_every,
        window,
        model,
        diff_recent: r.vec_f64()?,
        recent_z: r.vec_f64()?,
        recent_innov: r.vec_f64()?,
        pending_diff_forecast: r.opt_f64()?,
        last_level: r.opt_f64()?,
        observed: r.len()?,
        refits: r.len()?,
        failed_fits: r.len()?,
    })
}

/// Little-endian byte writer shared by the bank snapshot formats
/// (`FDBK` for [`BankSnapshot`], `FDSB` for the
/// [`SourceBank`](crate::source_bank::SourceBank) image).
pub(crate) struct Writer {
    pub(crate) buf: Vec<u8>,
}

impl Writer {
    pub(crate) fn new() -> Self {
        Self { buf: Vec::new() }
    }
    pub(crate) fn bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }
    pub(crate) fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    pub(crate) fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    pub(crate) fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    pub(crate) fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    pub(crate) fn vec_f64(&mut self, v: &[f64]) {
        self.u64(v.len() as u64);
        for &x in v {
            self.f64(x);
        }
    }
    pub(crate) fn vec_u32(&mut self, v: &[u32]) {
        self.u64(v.len() as u64);
        for &x in v {
            self.u32(x);
        }
    }
    pub(crate) fn vec_u64(&mut self, v: &[u64]) {
        self.u64(v.len() as u64);
        for &x in v {
            self.u64(x);
        }
    }
    pub(crate) fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            Some(x) => {
                self.u8(1);
                self.u64(x);
            }
            None => self.u8(0),
        }
    }
    pub(crate) fn opt_f64(&mut self, v: Option<f64>) {
        match v {
            Some(x) => {
                self.u8(1);
                self.f64(x);
            }
            None => self.u8(0),
        }
    }
}

/// The matching never-panicking reader: truncation, corruption and
/// length-claim overflows all surface as [`SnapshotError`].
pub(crate) struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(data: &'a [u8]) -> Self {
        Self { data, pos: 0 }
    }
    pub(crate) fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }
    pub(crate) fn bytes(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.remaining() < n {
            return Err(SnapshotError::Truncated);
        }
        let out = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }
    pub(crate) fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.bytes(1)?[0])
    }
    pub(crate) fn u32(&mut self) -> Result<u32, SnapshotError> {
        let b = self.bytes(4)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4-byte slice")))
    }
    pub(crate) fn u64(&mut self) -> Result<u64, SnapshotError> {
        let b = self.bytes(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8-byte slice")))
    }
    pub(crate) fn f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.u64()?))
    }
    /// A u64 that must fit in usize (lengths, counters).
    pub(crate) fn len(&mut self) -> Result<usize, SnapshotError> {
        usize::try_from(self.u64()?).map_err(|_| SnapshotError::Invalid("length overflows usize"))
    }
    pub(crate) fn vec_f64(&mut self) -> Result<Vec<f64>, SnapshotError> {
        let n = self.len()?;
        // A length claim beyond the bytes actually present is corruption;
        // reject before allocating.
        if n > self.remaining() / 8 {
            return Err(SnapshotError::Truncated);
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.f64()?);
        }
        Ok(out)
    }
    pub(crate) fn vec_u32(&mut self) -> Result<Vec<u32>, SnapshotError> {
        let n = self.len()?;
        if n > self.remaining() / 4 {
            return Err(SnapshotError::Truncated);
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.u32()?);
        }
        Ok(out)
    }
    pub(crate) fn vec_u64(&mut self) -> Result<Vec<u64>, SnapshotError> {
        let n = self.len()?;
        if n > self.remaining() / 8 {
            return Err(SnapshotError::Truncated);
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.u64()?);
        }
        Ok(out)
    }
    pub(crate) fn opt_u64(&mut self) -> Result<Option<u64>, SnapshotError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u64()?)),
            t => Err(SnapshotError::BadTag(t)),
        }
    }
    pub(crate) fn opt_f64(&mut self) -> Result<Option<f64>, SnapshotError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.f64()?)),
            t => Err(SnapshotError::BadTag(t)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bank::DetectorBank;
    use crate::combinations::all_combinations;
    use fd_sim::{SimDuration, SimTime};

    fn sample_bank() -> DetectorBank {
        let eta = SimDuration::from_secs(1);
        let mut bank = DetectorBank::new(&all_combinations(), eta);
        for seq in 0..40u64 {
            let delay = 180 + (seq * 53) % 90;
            let at = SimTime::ZERO + eta * seq + SimDuration::from_millis(delay);
            bank.observe_heartbeat(seq, at);
        }
        bank
    }

    #[test]
    fn byte_round_trip_is_exact() {
        let snap = sample_bank().snapshot();
        let bytes = snap.to_bytes();
        let back = BankSnapshot::from_bytes(&bytes).unwrap();
        assert_eq!(snap, back);
        assert_eq!(back.heartbeats(), 40);
        assert_eq!(back.combo_count(), 30);
    }

    #[test]
    fn truncation_never_panics() {
        let bytes = sample_bank().snapshot().to_bytes();
        for cut in 0..bytes.len() {
            let err = BankSnapshot::from_bytes(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, SnapshotError::Truncated | SnapshotError::BadMagic),
                "cut={cut}: {err:?}"
            );
        }
    }

    #[test]
    fn corruption_is_detected_or_decodes_cleanly() {
        // Flipping any single byte must never panic; it either errors or
        // yields some decoded snapshot (corrupted floats decode fine — the
        // format cannot checksum those without a cost the hot path rejects).
        let bytes = sample_bank().snapshot().to_bytes();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0xA5;
            let _ = BankSnapshot::from_bytes(&bad);
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = sample_bank().snapshot().to_bytes();
        bytes.push(0);
        assert_eq!(
            BankSnapshot::from_bytes(&bytes).unwrap_err(),
            SnapshotError::TrailingBytes(1)
        );
    }

    #[test]
    fn version_skew_rejected() {
        let mut bytes = sample_bank().snapshot().to_bytes();
        bytes[4] = 99;
        assert_eq!(
            BankSnapshot::from_bytes(&bytes).unwrap_err(),
            SnapshotError::UnsupportedVersion(99)
        );
    }

    #[test]
    fn version1_bytes_still_decode_bit_identically() {
        // A paper-grid bank uses only tags 0–4, whose encoding is unchanged
        // since version 1 — rewriting the version byte reconstructs the
        // exact image a v1 encoder produced.
        let snap = sample_bank().snapshot();
        let mut v1 = snap.to_bytes();
        assert_eq!(v1[4], 2, "current version is 2");
        v1[4] = 1;
        let back = BankSnapshot::from_bytes(&v1).expect("v1 bytes must decode");
        assert_eq!(back, snap, "v1 decode must be bit-identical to v2");
        let mut bank = DetectorBank::new(&all_combinations(), SimDuration::from_secs(1));
        bank.restore(&back).expect("v1 image must restore");
        assert_eq!(bank.snapshot().to_bytes()[5..], v1[5..]);
    }

    #[test]
    fn extended_grid_snapshot_round_trips() {
        let eta = SimDuration::from_secs(1);
        let mut bank = DetectorBank::new(&crate::combinations::extended_combinations(), eta);
        for seq in 0..40u64 {
            // A gap at seq 20 arms the φ lifecycle so non-trivial state
            // crosses the wire.
            if (20..25).contains(&seq) {
                continue;
            }
            let delay = 180 + (seq * 53) % 90;
            let at = SimTime::ZERO + eta * seq + SimDuration::from_millis(delay);
            bank.observe_heartbeat(seq, at);
        }
        let snap = bank.snapshot();
        let bytes = snap.to_bytes();
        let back = BankSnapshot::from_bytes(&bytes).unwrap();
        assert_eq!(snap, back);
        let mut restored = DetectorBank::new(&crate::combinations::extended_combinations(), eta);
        restored
            .restore(&back)
            .expect("extended image must restore");
        assert_eq!(restored.snapshot().to_bytes(), bytes);
        // Malformed new-version bytes are rejected totally, not panicking.
        for cut in 0..bytes.len() {
            let _ = BankSnapshot::from_bytes(&bytes[..cut]);
        }
    }

    #[test]
    fn error_display_is_informative() {
        assert!(SnapshotError::Truncated.to_string().contains("truncated"));
        assert!(SnapshotError::Mismatch("eta").to_string().contains("eta"));
    }
}
