//! Litmus tests of the model checker itself: classic memory-model
//! shapes with known verdicts. If these move, the checker — not the
//! code under test — is broken.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::AtomicBool as StdBool;
use std::sync::Arc;

use fd_check::sync::{fence, AtomicU64, Mutex, Ordering};
use fd_check::{model, model_with, thread, Config};

fn fails(f: impl Fn() + Send + Sync + 'static) -> String {
    let err = catch_unwind(AssertUnwindSafe(move || {
        model_with(
            Config {
                preemption_bound: 2,
                dfs_schedules: 50_000,
                ..Config::default()
            },
            f,
        )
    }))
    .expect_err("the model checker must find this violation");
    *err.downcast::<String>().expect("string panic payload")
}

#[test]
fn message_passing_with_release_store_is_safe() {
    let report = model(|| {
        let data = Arc::new(AtomicU64::new(0));
        let flag = Arc::new(AtomicU64::new(0));
        let (d, f) = (Arc::clone(&data), Arc::clone(&flag));
        let writer = thread::spawn_named("writer", move || {
            d.store(42, Ordering::Relaxed);
            f.store(1, Ordering::Release);
        });
        let (d, f) = (Arc::clone(&data), Arc::clone(&flag));
        let reader = thread::spawn_named("reader", move || {
            if f.load(Ordering::Acquire) == 1 {
                assert_eq!(
                    d.load(Ordering::Relaxed),
                    42,
                    "release store must publish data"
                );
            }
        });
        writer.join().unwrap();
        reader.join().unwrap();
    });
    assert!(report.dfs_explored > 0);
}

#[test]
fn message_passing_with_relaxed_flag_is_caught() {
    let msg = fails(|| {
        let data = Arc::new(AtomicU64::new(0));
        let flag = Arc::new(AtomicU64::new(0));
        let (d, f) = (Arc::clone(&data), Arc::clone(&flag));
        let writer = thread::spawn_named("writer", move || {
            d.store(42, Ordering::Relaxed);
            f.store(1, Ordering::Relaxed); // bug: flag can commit first
        });
        let (d, f) = (Arc::clone(&data), Arc::clone(&flag));
        let reader = thread::spawn_named("reader", move || {
            if f.load(Ordering::Acquire) == 1 {
                assert_eq!(d.load(Ordering::Relaxed), 42);
            }
        });
        writer.join().unwrap();
        reader.join().unwrap();
    });
    assert!(
        msg.contains("invariant violated"),
        "unexpected report: {msg}"
    );
}

#[test]
fn release_fence_orders_earlier_stores_like_release_store() {
    model(|| {
        let data = Arc::new(AtomicU64::new(0));
        let flag = Arc::new(AtomicU64::new(0));
        let (d, f) = (Arc::clone(&data), Arc::clone(&flag));
        let writer = thread::spawn_named("writer", move || {
            d.store(42, Ordering::Relaxed);
            fence(Ordering::Release);
            f.store(1, Ordering::Relaxed); // fence upgrades this to a publish
        });
        let (d, f) = (Arc::clone(&data), Arc::clone(&flag));
        let reader = thread::spawn_named("reader", move || {
            if f.load(Ordering::Acquire) == 1 {
                assert_eq!(d.load(Ordering::Relaxed), 42);
            }
        });
        writer.join().unwrap();
        reader.join().unwrap();
    });
}

#[test]
fn store_buffering_reorder_is_reachable() {
    // Dekker/SB: both threads store then load the other's flag. Under
    // sequential consistency at least one load sees 1; with store
    // buffers both may see 0. The checker must reach that outcome —
    // it is the relaxation the PR-4 seqlock bug lives on.
    let both_zero = Arc::new(StdBool::new(false));
    let witness = Arc::clone(&both_zero);
    model(move || {
        let x = Arc::new(AtomicU64::new(0));
        let y = Arc::new(AtomicU64::new(0));
        let (xs, ys) = (Arc::clone(&x), Arc::clone(&y));
        let t1 = thread::spawn_named("t1", move || {
            xs.store(1, Ordering::Relaxed);
            ys.load(Ordering::Relaxed)
        });
        let (xs, ys) = (Arc::clone(&x), Arc::clone(&y));
        let t2 = thread::spawn_named("t2", move || {
            ys.store(1, Ordering::Relaxed);
            xs.load(Ordering::Relaxed)
        });
        let r1 = t1.join().unwrap();
        let r2 = t2.join().unwrap();
        if r1 == 0 && r2 == 0 {
            witness.store(true, Ordering::Relaxed);
        }
    });
    assert!(
        both_zero.load(Ordering::Relaxed),
        "store buffering must make the 0/0 outcome reachable"
    );
}

#[test]
fn seqcst_fences_forbid_store_buffering() {
    model(|| {
        let x = Arc::new(AtomicU64::new(0));
        let y = Arc::new(AtomicU64::new(0));
        let (xs, ys) = (Arc::clone(&x), Arc::clone(&y));
        let t1 = thread::spawn_named("t1", move || {
            xs.store(1, Ordering::SeqCst);
            ys.load(Ordering::SeqCst)
        });
        let (xs, ys) = (Arc::clone(&x), Arc::clone(&y));
        let t2 = thread::spawn_named("t2", move || {
            ys.store(1, Ordering::SeqCst);
            xs.load(Ordering::SeqCst)
        });
        let r1 = t1.join().unwrap();
        let r2 = t2.join().unwrap();
        assert!(r1 == 1 || r2 == 1, "SeqCst forbids the 0/0 outcome");
    });
}

#[test]
fn rmw_increments_never_lose_updates() {
    model(|| {
        let n = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let n = Arc::clone(&n);
                thread::spawn_named("incr", move || {
                    for _ in 0..2 {
                        n.fetch_add(1, Ordering::Relaxed);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(n.load(Ordering::Relaxed), 4);
    });
}

#[test]
fn mutex_guards_critical_sections() {
    model(|| {
        let cell = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let cell = Arc::clone(&cell);
                thread::spawn_named("locker", move || {
                    let mut g = cell.lock().expect("unpoisoned");
                    *g += 1;
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*cell.lock().expect("unpoisoned"), 2);
    });
}

#[test]
fn join_commits_the_joined_threads_buffer() {
    model(|| {
        let data = Arc::new(AtomicU64::new(0));
        let d = Arc::clone(&data);
        let t = thread::spawn_named("writer", move || {
            d.store(7, Ordering::Relaxed);
        });
        t.join().unwrap();
        // join() is a synchronization edge: the relaxed store must be
        // visible afterwards even though the writer never fenced.
        assert_eq!(data.load(Ordering::Relaxed), 7);
    });
}

#[test]
fn violation_reports_carry_the_schedule_trace() {
    let msg = fails(|| {
        let x = Arc::new(AtomicU64::new(0));
        let xs = Arc::clone(&x);
        let t = thread::spawn_named("writer", move || xs.store(1, Ordering::SeqCst));
        t.join().unwrap();
        assert_eq!(x.load(Ordering::Relaxed), 0, "deliberate failure");
    });
    assert!(
        msg.contains("schedule trace"),
        "report missing trace: {msg}"
    );
    assert!(msg.contains("store(SeqCst)"), "trace missing events: {msg}");
}

#[test]
fn exploration_is_deterministic() {
    let run = || {
        model_with(
            Config {
                preemption_bound: 1,
                dfs_schedules: 5_000,
                ..Config::default()
            },
            || {
                let x = Arc::new(AtomicU64::new(0));
                let xs = Arc::clone(&x);
                let t = thread::spawn_named("w", move || {
                    xs.store(1, Ordering::Relaxed);
                    xs.store(2, Ordering::Release);
                });
                x.load(Ordering::Acquire);
                t.join().unwrap();
            },
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a.dfs_explored, b.dfs_explored);
    assert_eq!(a.exhausted, b.exhausted);
    assert_eq!(a.max_depth, b.max_depth);
}

#[test]
fn random_phase_runs_after_dfs_budget() {
    let report = model_with(
        Config {
            preemption_bound: 2,
            dfs_schedules: 50,
            random_schedules: 25,
            ..Config::default()
        },
        || {
            let x = Arc::new(AtomicU64::new(0));
            let xs = Arc::clone(&x);
            let t = thread::spawn_named("w", move || {
                xs.store(1, Ordering::Relaxed);
                xs.store(2, Ordering::Relaxed);
            });
            x.load(Ordering::Acquire);
            t.join().unwrap();
        },
    );
    // The DFS either hits its budget or exhausts the space first;
    // either way the random phase must top up afterwards.
    assert!(report.dfs_explored == 50 || report.exhausted);
    assert_eq!(report.random_explored, 25);
}
