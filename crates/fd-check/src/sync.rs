//! Drop-in shims for `std::sync` primitives that route through the
//! model checker when the calling thread belongs to a [`crate::model`]
//! run, and fall straight through to `std` otherwise.
//!
//! The passthrough makes the shims safe to leave compiled in: a crate
//! built against them (e.g. `fd-serve` with `--features check`) runs
//! its ordinary test suite unchanged, and only closures executed under
//! [`crate::model`] pay the scheduling cost. Production builds without
//! the feature do not reference this module at all.

use std::sync::LockResult;

use crate::sched::{
    current_ctx, shim_fence, shim_load, shim_lock, shim_rmw, shim_store, shim_unlock,
};

pub use std::sync::atomic::Ordering;

macro_rules! atomic_shim {
    ($name:ident, $std:ty, $raw:ty) => {
        /// Model-checked drop-in for the `std::sync::atomic` type of
        /// the same name. Under a model run, `Relaxed`/`Release` stores
        /// enter the thread's store buffer and loads read committed
        /// memory (with self-forwarding); RMWs flush and act directly.
        #[derive(Debug, Default)]
        pub struct $name {
            cell: $std,
        }

        impl $name {
            /// Creates the atomic with an initial value.
            pub const fn new(v: $raw) -> $name {
                $name {
                    cell: <$std>::new(v),
                }
            }

            fn addr(&self) -> usize {
                self as *const $name as usize
            }

            fn init(&self) -> u64 {
                self.cell.load(Ordering::Relaxed) as u64
            }

            /// Loads the value.
            pub fn load(&self, ord: Ordering) -> $raw {
                match current_ctx() {
                    None => self.cell.load(ord),
                    Some((ctx, me)) => shim_load(&ctx, me, self.addr(), self.init()) as $raw,
                }
            }

            /// Stores a value.
            pub fn store(&self, val: $raw, ord: Ordering) {
                match current_ctx() {
                    None => self.cell.store(val, ord),
                    Some((ctx, me)) => shim_store(&ctx, me, self.addr(), val as u64, ord),
                }
            }

            /// Swaps in a value, returning the previous one.
            pub fn swap(&self, val: $raw, ord: Ordering) -> $raw {
                match current_ctx() {
                    None => self.cell.swap(val, ord),
                    Some((ctx, me)) => {
                        shim_rmw(&ctx, me, self.addr(), self.init(), |_| Some(val as u64)) as $raw
                    }
                }
            }

            /// Adds to the value, wrapping, returning the previous one.
            pub fn fetch_add(&self, val: $raw, ord: Ordering) -> $raw {
                match current_ctx() {
                    None => self.cell.fetch_add(val, ord),
                    Some((ctx, me)) => shim_rmw(&ctx, me, self.addr(), self.init(), |old| {
                        Some((old as $raw).wrapping_add(val) as u64)
                    }) as $raw,
                }
            }

            /// Bitwise-ors into the value, returning the previous one.
            pub fn fetch_or(&self, val: $raw, ord: Ordering) -> $raw {
                match current_ctx() {
                    None => self.cell.fetch_or(val, ord),
                    Some((ctx, me)) => shim_rmw(&ctx, me, self.addr(), self.init(), |old| {
                        Some(((old as $raw) | val) as u64)
                    }) as $raw,
                }
            }

            /// Compare-and-exchange; on success stores `new` and returns
            /// `Ok(current)`, otherwise `Err(actual)`.
            pub fn compare_exchange(
                &self,
                current: $raw,
                new: $raw,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$raw, $raw> {
                match current_ctx() {
                    None => self.cell.compare_exchange(current, new, success, failure),
                    Some((ctx, me)) => {
                        let old = shim_rmw(&ctx, me, self.addr(), self.init(), |old| {
                            (old as $raw == current).then_some(new as u64)
                        }) as $raw;
                        if old == current {
                            Ok(old)
                        } else {
                            Err(old)
                        }
                    }
                }
            }
        }
    };
}

atomic_shim!(AtomicU64, std::sync::atomic::AtomicU64, u64);
atomic_shim!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);

/// Model-checked drop-in for `std::sync::atomic::AtomicBool`, modeled
/// as a 0/1 word.
#[derive(Debug, Default)]
pub struct AtomicBool {
    cell: std::sync::atomic::AtomicBool,
}

impl AtomicBool {
    /// Creates the atomic with an initial value.
    pub const fn new(v: bool) -> AtomicBool {
        AtomicBool {
            cell: std::sync::atomic::AtomicBool::new(v),
        }
    }

    fn addr(&self) -> usize {
        self as *const AtomicBool as usize
    }

    fn init(&self) -> u64 {
        self.cell.load(Ordering::Relaxed) as u64
    }

    /// Loads the value.
    pub fn load(&self, ord: Ordering) -> bool {
        match current_ctx() {
            None => self.cell.load(ord),
            Some((ctx, me)) => shim_load(&ctx, me, self.addr(), self.init()) != 0,
        }
    }

    /// Stores a value.
    pub fn store(&self, val: bool, ord: Ordering) {
        match current_ctx() {
            None => self.cell.store(val, ord),
            Some((ctx, me)) => shim_store(&ctx, me, self.addr(), val as u64, ord),
        }
    }

    /// Swaps in a value, returning the previous one.
    pub fn swap(&self, val: bool, ord: Ordering) -> bool {
        match current_ctx() {
            None => self.cell.swap(val, ord),
            Some((ctx, me)) => {
                shim_rmw(&ctx, me, self.addr(), self.init(), |_| Some(val as u64)) != 0
            }
        }
    }
}

/// Model-checked drop-in for `std::sync::atomic::fence`. Release and
/// SeqCst fences seal the calling thread's store-buffer barrier group;
/// a SeqCst fence additionally flushes it.
pub fn fence(ord: Ordering) {
    match current_ctx() {
        None => std::sync::atomic::fence(ord),
        Some((ctx, me)) => shim_fence(&ctx, me, ord),
    }
}

/// Model-checked drop-in for `std::sync::Mutex`. Under a model run,
/// acquiring blocks (as a scheduler transition) until the committed
/// lock word is free; releasing buffers a release-store of the lock
/// word, so everything sequenced before the unlock commits first.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates the mutex holding `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    fn addr(&self) -> usize {
        self as *const Mutex<T> as *const () as usize
    }

    /// Acquires the mutex, mirroring `std::sync::Mutex::lock`'s
    /// poisoning contract.
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        let ctx = current_ctx();
        if let Some((c, me)) = &ctx {
            shim_lock(c, *me, self.addr());
        }
        // The inner lock is uncontended under a model run: another
        // modeled thread can only reach this point after our release
        // entry committed, which happens after our guard dropped.
        match self.inner.lock() {
            Ok(g) => Ok(MutexGuard {
                inner: Some(g),
                addr: self.addr(),
                ctx,
            }),
            Err(poisoned) => {
                let g = MutexGuard {
                    inner: Some(poisoned.into_inner()),
                    addr: self.addr(),
                    ctx,
                };
                Err(std::sync::PoisonError::new(g))
            }
        }
    }
}

/// RAII guard of [`Mutex`]; releases the model lock word on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
    addr: usize,
    ctx: Option<(std::sync::Arc<crate::sched::Ctx>, usize)>,
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard live")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard live")
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Free the real lock first; modeled waiters cannot race for it
        // until the model release below commits.
        self.inner.take();
        if let Some((ctx, me)) = self.ctx.take() {
            // Unwinding (a failed assert, or a poisoned-execution
            // abort): skip the scheduling point — parking inside a
            // panic risks a double panic. The execution is over either
            // way; the model lock staying held at worst turns into a
            // reported deadlock instead of masking the real failure.
            if !std::thread::panicking() {
                shim_unlock(&ctx, me, self.addr);
            }
        }
    }
}
