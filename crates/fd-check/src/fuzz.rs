//! Fuzzing primitives for the invariant-fuzz campaign: the
//! repo-standard [`SplitMix64`] PRNG, a structure-aware byte
//! [`Mutator`], and deterministic corpus loading.
//!
//! Everything here is deterministic from its seed — a failing fuzz case
//! is reproduced by its `(seed, iteration)` pair, and corpus replay
//! visits files in name order so CI runs are byte-for-byte repeatable.

use std::path::Path;

/// Sebastiano Vigna's splitmix64 — the same generator the sharded
/// engine uses to derive per-source seeds, so fuzz runs and engine runs
/// share one seeding convention.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates the generator from a seed.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniform bits.
    pub fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (`n` > 0).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    /// `true` with probability `1/n`.
    pub fn one_in(&mut self, n: u64) -> bool {
        self.below(n) == 0
    }
}

/// Boundary values that historically shake out length/offset handling
/// bugs; the mutator splices them in at u8/u16-LE/u32-LE width.
const INTERESTING: [u64; 12] = [
    0,
    1,
    0x7f,
    0x80,
    0xff,
    0x7fff,
    0x8000,
    0xffff,
    0x7fff_ffff,
    0x8000_0000,
    0xffff_ffff,
    0xfffe,
];

/// A structure-aware mutational fuzzer over byte strings: bit flips,
/// interesting-value splices, truncation/extension, block duplication
/// and byte swaps — the classic mutation set sized for small framed
/// datagrams.
#[derive(Debug, Clone)]
pub struct Mutator {
    rng: SplitMix64,
}

impl Mutator {
    /// Creates a mutator seeded with `seed`.
    pub fn new(seed: u64) -> Mutator {
        Mutator {
            rng: SplitMix64::new(seed),
        }
    }

    /// Direct access to the mutator's PRNG (for choosing corpus entries
    /// or generation parameters from the same stream).
    pub fn rng(&mut self) -> &mut SplitMix64 {
        &mut self.rng
    }

    /// Applies 1–4 random mutations to `data`, keeping its length in
    /// `0..=max_len`.
    pub fn mutate(&mut self, data: &mut Vec<u8>, max_len: usize) {
        let rounds = 1 + self.rng.below(4);
        for _ in 0..rounds {
            self.mutate_once(data, max_len);
        }
    }

    fn mutate_once(&mut self, data: &mut Vec<u8>, max_len: usize) {
        let r = &mut self.rng;
        match r.below(7) {
            // Bit flip.
            0 if !data.is_empty() => {
                let i = r.below(data.len() as u64) as usize;
                data[i] ^= 1 << r.below(8);
            }
            // Random byte overwrite.
            1 if !data.is_empty() => {
                let i = r.below(data.len() as u64) as usize;
                data[i] = r.next() as u8;
            }
            // Interesting value splice at random width.
            2 if !data.is_empty() => {
                let v = INTERESTING[r.below(INTERESTING.len() as u64) as usize];
                let width = [1usize, 2, 4][r.below(3) as usize].min(data.len());
                let i = r.below((data.len() - width + 1) as u64) as usize;
                data[i..i + width].copy_from_slice(&v.to_le_bytes()[..width]);
            }
            // Truncate.
            3 if !data.is_empty() => {
                let keep = r.below(data.len() as u64 + 1) as usize;
                data.truncate(keep);
            }
            // Extend with random bytes.
            4 => {
                let room = max_len.saturating_sub(data.len());
                let n = r.below(room.min(16) as u64 + 1) as usize;
                for _ in 0..n {
                    data.push(r.next() as u8);
                }
            }
            // Duplicate a block (length-field confusion food).
            5 if data.len() >= 2 => {
                let start = r.below(data.len() as u64) as usize;
                let len = (r.below(8) as usize + 1).min(data.len() - start);
                let mut block = data[start..start + len].to_vec();
                let at = r.below(data.len() as u64 + 1) as usize;
                block.truncate(max_len.saturating_sub(data.len()));
                for (k, b) in block.into_iter().enumerate() {
                    data.insert(at + k, b);
                }
            }
            // Swap two bytes.
            _ if data.len() >= 2 => {
                let i = r.below(data.len() as u64) as usize;
                let j = r.below(data.len() as u64) as usize;
                data.swap(i, j);
            }
            _ => {
                if data.len() < max_len {
                    data.push(r.next() as u8);
                }
            }
        }
    }
}

/// Loads every regular file of a corpus directory as `(name, bytes)`,
/// sorted by name so replay order is deterministic. A missing
/// directory is an empty corpus, not an error — new checkouts and
/// pruned corpora replay cleanly.
pub fn load_corpus(dir: &Path) -> Vec<(String, Vec<u8>)> {
    let mut out = Vec::new();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return out;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_file() {
            let name = path
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or_default()
                .to_string();
            if let Ok(bytes) = std::fs::read(&path) {
                out.push((name, bytes));
            }
        }
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_matches_reference_stream() {
        // Reference values of splitmix64(seed = 1234567).
        let mut r = SplitMix64::new(1234567);
        let first = r.next();
        let second = r.next();
        let mut again = SplitMix64::new(1234567);
        assert_eq!(again.next(), first);
        assert_eq!(again.next(), second);
        assert_ne!(first, second);
    }

    #[test]
    fn mutator_is_deterministic_and_bounded() {
        let base = b"frame-under-test".to_vec();
        let mut a = Mutator::new(42);
        let mut b = Mutator::new(42);
        let mut da = base.clone();
        let mut db = base.clone();
        for _ in 0..200 {
            a.mutate(&mut da, 64);
            b.mutate(&mut db, 64);
            assert!(da.len() <= 64);
        }
        assert_eq!(da, db, "same seed must give the same mutation stream");
    }

    #[test]
    fn missing_corpus_dir_is_empty() {
        assert!(load_corpus(Path::new("/nonexistent/fd-check-corpus")).is_empty());
    }
}
