//! The cooperative scheduler, store-buffer memory model and DFS/random
//! schedule explorer behind [`model`].
//!
//! Threads under test run as real OS threads but execute one at a time:
//! every shim operation announces itself and parks until the explorer
//! schedules it. Between program steps the explorer may also commit
//! pending store-buffer entries to memory — those commits are scheduling
//! choices like any other, which is what lets the checker exhibit store
//! reordering that real weakly-ordered hardware performs.

use std::collections::HashMap;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::time::{Duration, Instant};

use crate::fuzz::SplitMix64;

/// Marker payload used to unwind threads out of a poisoned execution;
/// never reported as a user-visible failure.
pub(crate) struct Abort;

thread_local! {
    static TLS: std::cell::RefCell<Option<(Arc<Ctx>, usize)>> =
        const { std::cell::RefCell::new(None) };
}

/// The active model context of the calling thread, if it is a
/// registered participant of a running exploration.
pub(crate) fn current_ctx() -> Option<(Arc<Ctx>, usize)> {
    TLS.with(|t| t.borrow().clone())
}

fn set_ctx(v: Option<(Arc<Ctx>, usize)>) {
    TLS.with(|t| *t.borrow_mut() = v);
}

/// Exploration limits and shape. `Default` is sized for a unit test:
/// preemption bound 2, 20 000 DFS schedules, no random top-up.
#[derive(Debug, Clone)]
pub struct Config {
    /// Maximum context switches away from a runnable thread per
    /// schedule (CHESS-style bound). Commits and switches away from a
    /// blocked or finished thread are free.
    pub preemption_bound: usize,
    /// Maximum number of DFS schedules to run.
    pub dfs_schedules: u64,
    /// Seeded random schedules to run after the DFS budget (0 = none).
    pub random_schedules: u64,
    /// Seed for the random-schedule phase.
    pub seed: u64,
    /// Wall-clock cap for the whole exploration; `None` = unlimited.
    /// The `FD_CHECK_BUDGET_MS` environment variable overrides this.
    pub time_budget: Option<Duration>,
    /// Keep at most this many trailing trace events per execution.
    pub trace_cap: usize,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            preemption_bound: 2,
            dfs_schedules: 20_000,
            random_schedules: 0,
            seed: 0x5eed_fdc4,
            time_budget: None,
            trace_cap: 2_048,
        }
    }
}

/// What an exploration did. Returned by [`model_with`] when no invariant
/// was violated.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Distinct DFS interleavings fully executed.
    pub dfs_explored: u64,
    /// Random-phase schedules executed (may repeat DFS ones).
    pub random_explored: u64,
    /// The DFS exhausted the whole (bounded) schedule space.
    pub exhausted: bool,
    /// Deepest schedule (number of choice points) observed.
    pub max_depth: usize,
}

impl Report {
    /// Total schedules executed across both phases.
    pub fn total(&self) -> u64 {
        self.dfs_explored + self.random_explored
    }
}

/// A pending store-buffer entry of one thread.
#[derive(Debug, Clone, Copy)]
struct Entry {
    addr: usize,
    val: u64,
    /// Barrier group: bumped by release/SeqCst fences. An entry cannot
    /// commit while an earlier entry of a smaller group is pending.
    group: u32,
    /// Release stores (and mutex unlocks) commit only from the head.
    release: bool,
}

/// The operation a parked thread wants to perform next.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Op {
    Begin,
    Load {
        addr: usize,
        init: u64,
    },
    Store {
        addr: usize,
        val: u64,
        ord: Ordering,
    },
    Rmw {
        addr: usize,
        init: u64,
    },
    Fence {
        ord: Ordering,
    },
    Lock {
        addr: usize,
    },
    Unlock {
        addr: usize,
    },
    Join {
        target: usize,
    },
}

struct ThreadState {
    op: Option<Op>,
    buffer: Vec<Entry>,
    group: u32,
    finished: bool,
    name: &'static str,
}

/// One scheduling transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Transition {
    /// Run thread `t`'s announced operation.
    Step(usize),
    /// Commit buffer entry `idx` of thread `t` to memory.
    Commit(usize, usize),
}

struct Frame {
    chosen: usize,
    /// Per-alternative preemption flags at this choice point.
    preempt: Vec<bool>,
    preempt_before: usize,
}

enum Mode {
    Dfs,
    Random(SplitMix64),
}

struct Explorer {
    stack: Vec<Frame>,
    depth: usize,
    preemptions: usize,
    bound: usize,
    mode: Mode,
    report: Report,
}

impl Explorer {
    /// Picks a transition. `preempt[i]` marks choices that would
    /// preempt a runnable thread (bounded); `cold[i]` marks choices
    /// that commit a *release* entry — the adversarial random phase
    /// keeps those parked most of the time, because leaving a release
    /// store in the buffer while younger relaxed stores commit is
    /// exactly the reordering that breaks publication protocols.
    fn choose(&mut self, preempt: Vec<bool>, cold: Vec<bool>) -> usize {
        let chosen = match &mut self.mode {
            Mode::Dfs => {
                if self.depth < self.stack.len() {
                    let f = &self.stack[self.depth];
                    assert_eq!(
                        f.preempt.len(),
                        preempt.len(),
                        "fd-check: schedule replay diverged — the test closure \
                         is nondeterministic (same prefix, different choice set)"
                    );
                    f.chosen
                } else {
                    let c = (0..preempt.len())
                        .find(|&i| !preempt[i] || self.preemptions < self.bound)
                        .expect("a non-preempting transition always exists");
                    self.stack.push(Frame {
                        chosen: c,
                        preempt: preempt.clone(),
                        preempt_before: self.preemptions,
                    });
                    c
                }
            }
            Mode::Random(rng) => {
                let allowed: Vec<usize> = (0..preempt.len())
                    .filter(|&i| !preempt[i] || self.preemptions < self.bound)
                    .collect();
                let hot: Vec<usize> = allowed.iter().copied().filter(|&i| !cold[i]).collect();
                // 7 times out of 8, restrict to transitions that keep
                // pending release stores parked in their buffers.
                let pool = if !hot.is_empty() && hot.len() < allowed.len() && !rng.one_in(8) {
                    &hot
                } else {
                    &allowed
                };
                pool[(rng.next() % pool.len() as u64) as usize]
            }
        };
        if preempt[chosen] {
            self.preemptions += 1;
        }
        self.depth += 1;
        chosen
    }

    /// Advances to the next DFS schedule; `false` when the bounded
    /// space is exhausted.
    fn advance(&mut self) -> bool {
        self.report.max_depth = self.report.max_depth.max(self.depth);
        self.depth = 0;
        self.preemptions = 0;
        if matches!(self.mode, Mode::Random(_)) {
            self.report.random_explored += 1;
            return true;
        }
        self.report.dfs_explored += 1;
        while let Some(f) = self.stack.last_mut() {
            let next = (f.chosen + 1..f.preempt.len())
                .find(|&i| !f.preempt[i] || f.preempt_before < self.bound);
            if let Some(n) = next {
                f.chosen = n;
                return true;
            }
            self.stack.pop();
        }
        self.report.exhausted = true;
        false
    }
}

pub(crate) struct State {
    threads: Vec<ThreadState>,
    /// Committed memory: modeled cell address → value. Absent = the
    /// cell's initial value (read from its std backing on first touch).
    mem: HashMap<usize, u64>,
    current: usize,
    poisoned: bool,
    violation: Option<String>,
    trace: Vec<String>,
    trace_dropped: u64,
    trace_cap: usize,
    explorer: Explorer,
}

pub(crate) struct Ctx {
    state: StdMutex<State>,
    cv: Condvar,
}

impl State {
    fn committed(&self, addr: usize, init: u64) -> u64 {
        self.mem.get(&addr).copied().unwrap_or(init)
    }

    /// Newest pending store of `t` to `addr`, for store-to-load
    /// forwarding.
    fn forwarded(&self, t: usize, addr: usize) -> Option<u64> {
        self.threads[t]
            .buffer
            .iter()
            .rev()
            .find(|e| e.addr == addr)
            .map(|e| e.val)
    }

    /// Whether buffer entry `idx` of thread `t` may commit now.
    fn commit_eligible(&self, t: usize, idx: usize) -> bool {
        let buf = &self.threads[t].buffer;
        let e = &buf[idx];
        if e.release && idx != 0 {
            return false;
        }
        buf[..idx]
            .iter()
            .all(|p| p.addr != e.addr && p.group >= e.group)
    }

    fn commit(&mut self, t: usize, idx: usize) {
        let e = self.threads[t].buffer.remove(idx);
        self.mem.insert(e.addr, e.val);
        self.push_trace(|| format!("commit t{t} [{:#x}] = {}", e.addr, e.val));
    }

    /// Commits thread `t`'s whole buffer in program (FIFO) order, which
    /// trivially satisfies every eligibility constraint.
    fn flush(&mut self, t: usize) {
        while !self.threads[t].buffer.is_empty() {
            self.commit(t, 0);
        }
    }

    fn op_eligible(&self, t: usize) -> bool {
        match self.threads[t].op {
            None => false,
            Some(Op::Lock { addr }) => self.committed(addr, 0) == 0,
            Some(Op::Join { target }) => self.threads[target].finished,
            Some(_) => true,
        }
    }

    fn push_trace<F: FnOnce() -> String>(&mut self, f: F) {
        if self.trace.len() >= self.trace_cap {
            self.trace.remove(0);
            self.trace_dropped += 1;
        }
        self.trace.push(f());
    }

    fn fail(&mut self, msg: String) {
        if self.violation.is_none() {
            let mut report = String::new();
            report.push_str(&msg);
            report.push_str("\n--- schedule trace");
            if self.trace_dropped > 0 {
                report.push_str(&format!(" (first {} events dropped)", self.trace_dropped));
            }
            report.push_str(" ---\n");
            for line in &self.trace {
                report.push_str(line);
                report.push('\n');
            }
            self.violation = Some(report);
        }
        self.poisoned = true;
    }

    /// Applies thread `t`'s announced op. Returns the op's value (loads
    /// and RMWs).
    fn apply(&mut self, t: usize) -> u64 {
        let op = self.threads[t].op.take().expect("scheduled without an op");
        match op {
            Op::Begin => {
                let name = self.threads[t].name;
                self.push_trace(|| format!("t{t}: begin ({name})"));
                0
            }
            Op::Load { addr, init } => {
                let v = self
                    .forwarded(t, addr)
                    .unwrap_or_else(|| self.committed(addr, init));
                self.push_trace(|| format!("t{t}: load [{addr:#x}] -> {v}"));
                v
            }
            Op::Store { addr, val, ord } => {
                if ord == Ordering::SeqCst {
                    self.flush(t);
                    self.mem.insert(addr, val);
                    self.push_trace(|| format!("t{t}: store(SeqCst) [{addr:#x}] = {val}"));
                } else {
                    let release = ord == Ordering::Release;
                    let group = self.threads[t].group;
                    self.threads[t].buffer.push(Entry {
                        addr,
                        val,
                        group,
                        release,
                    });
                    self.push_trace(|| {
                        format!("t{t}: store({ord:?}) [{addr:#x}] = {val} (buffered)")
                    });
                }
                0
            }
            Op::Rmw { addr, init } => {
                // The caller computes the new value from the returned
                // old one and writes it back through `rmw_write`, under
                // the same lock hold.
                self.flush(t);
                self.committed(addr, init)
            }
            Op::Fence { ord } => {
                if matches!(ord, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst) {
                    self.threads[t].group += 1;
                }
                if ord == Ordering::SeqCst {
                    self.flush(t);
                }
                self.push_trace(|| format!("t{t}: fence({ord:?})"));
                0
            }
            Op::Lock { addr } => {
                debug_assert_eq!(self.committed(addr, 0), 0);
                self.mem.insert(addr, 1);
                self.push_trace(|| format!("t{t}: lock [{addr:#x}]"));
                0
            }
            Op::Unlock { addr } => {
                let group = self.threads[t].group;
                self.threads[t].buffer.push(Entry {
                    addr,
                    val: 0,
                    group,
                    release: true,
                });
                self.push_trace(|| format!("t{t}: unlock [{addr:#x}] (buffered release)"));
                0
            }
            Op::Join { target } => {
                self.flush(target);
                self.push_trace(|| format!("t{t}: join t{target}"));
                0
            }
        }
    }

    fn threads_name(&self, t: usize) -> &'static str {
        self.threads[t].name
    }

    /// Picks and applies transitions until a program step is chosen;
    /// sets `current` to its thread. Poisons the execution on deadlock.
    fn schedule(&mut self, from: usize) {
        loop {
            if self.poisoned {
                return;
            }
            let mut transitions = Vec::new();
            let mut preempt = Vec::new();
            let mut cold = Vec::new();
            // A step is "cold" if taking it forces buffered release
            // stores out (a join flushes its target); a commit is cold
            // if it commits a release entry. The adversarial random
            // phase keeps cold transitions parked most of the time.
            let step_cold = |threads: &[ThreadState], t: usize| match threads[t].op {
                Some(Op::Join { target }) => !threads[target].buffer.is_empty(),
                _ => false,
            };
            let from_runnable = !self.threads[from].finished && self.op_eligible(from);
            // The announcing thread's own step first (the no-preemption
            // default), then every other runnable step, then commits.
            if from_runnable {
                transitions.push(Transition::Step(from));
                preempt.push(false);
                cold.push(step_cold(&self.threads, from));
            }
            for t in 0..self.threads.len() {
                if t != from && !self.threads[t].finished && self.op_eligible(t) {
                    transitions.push(Transition::Step(t));
                    preempt.push(from_runnable);
                    cold.push(step_cold(&self.threads, t));
                }
            }
            for t in 0..self.threads.len() {
                for i in 0..self.threads[t].buffer.len() {
                    if self.commit_eligible(t, i) {
                        transitions.push(Transition::Commit(t, i));
                        preempt.push(false);
                        cold.push(self.threads[t].buffer[i].release);
                    }
                }
            }
            if transitions.is_empty() {
                if self.threads.iter().all(|t| t.finished) {
                    return; // execution complete
                }
                self.fail("deadlock: no runnable thread and no committable store".into());
                return;
            }
            match transitions[self.explorer.choose(preempt, cold)] {
                Transition::Commit(t, i) => self.commit(t, i),
                Transition::Step(t) => {
                    self.current = t;
                    return;
                }
            }
        }
    }
}

impl Ctx {
    /// Announces `op` for the calling thread, waits to be scheduled,
    /// applies it and returns its value. Panics with [`Abort`] if the
    /// execution got poisoned.
    pub(crate) fn announce(self: &Arc<Self>, me: usize, op: Op) -> u64 {
        let mut st = self.state.lock().unwrap();
        st.threads[me].op = Some(op);
        if st.current == me {
            st.schedule(me);
            self.cv.notify_all();
        } else {
            self.cv.notify_all();
        }
        while !st.poisoned && (st.current != me || st.threads[me].op.is_none()) {
            st = self.cv.wait(st).unwrap();
        }
        if st.poisoned {
            st.threads[me].op = None;
            drop(st);
            panic::panic_any(Abort);
        }
        st.apply(me)
    }

    /// RMW write-back: stores `val` directly to committed memory. Must
    /// follow an `Op::Rmw` announce by the same thread with no
    /// intervening announce (the thread is still the only runner).
    pub(crate) fn rmw_write(&self, me: usize, addr: usize, val: u64) {
        let mut st = self.state.lock().unwrap();
        debug_assert_eq!(st.current, me);
        st.mem.insert(addr, val);
        st.push_trace(|| format!("t{me}: rmw [{addr:#x}] = {val}"));
    }

    fn finish_thread(&self, me: usize, panic_msg: Option<String>) {
        let mut st = self.state.lock().unwrap();
        if let Some(msg) = panic_msg {
            let name = st.threads_name(me);
            st.fail(format!("thread t{me} ({name}) panicked: {msg}"));
        }
        st.threads[me].finished = true;
        st.threads[me].op = None;
        st.push_trace(|| format!("t{me}: exit"));
        if st.current == me && !st.poisoned {
            st.schedule(me);
        }
        self.cv.notify_all();
    }
}

// ---- shim entry points (called from crate::sync / crate::thread) ----

pub(crate) fn shim_load(ctx: &Arc<Ctx>, me: usize, addr: usize, init: u64) -> u64 {
    ctx.announce(me, Op::Load { addr, init })
}

pub(crate) fn shim_store(ctx: &Arc<Ctx>, me: usize, addr: usize, val: u64, ord: Ordering) {
    ctx.announce(me, Op::Store { addr, val, ord });
}

/// Generic read-modify-write: announces, applies `f` to the committed
/// value, writes the result back iff `f` returns `Some`. Returns the
/// old value.
pub(crate) fn shim_rmw(
    ctx: &Arc<Ctx>,
    me: usize,
    addr: usize,
    init: u64,
    f: impl FnOnce(u64) -> Option<u64>,
) -> u64 {
    let old = ctx.announce(me, Op::Rmw { addr, init });
    if let Some(new) = f(old) {
        ctx.rmw_write(me, addr, new);
    }
    old
}

pub(crate) fn shim_fence(ctx: &Arc<Ctx>, me: usize, ord: Ordering) {
    ctx.announce(me, Op::Fence { ord });
}

pub(crate) fn shim_lock(ctx: &Arc<Ctx>, me: usize, addr: usize) {
    ctx.announce(me, Op::Lock { addr });
}

pub(crate) fn shim_unlock(ctx: &Arc<Ctx>, me: usize, addr: usize) {
    ctx.announce(me, Op::Unlock { addr });
}

/// Spawns a modeled thread. Blocks the parent (which stays the running
/// thread) until the child has parked at its first scheduling point, so
/// the enabled-transition set is deterministic across replays.
pub(crate) fn spawn_modeled<T: Send + 'static>(
    ctx: &Arc<Ctx>,
    name: &'static str,
    f: impl FnOnce() -> T + Send + 'static,
) -> (usize, std::thread::JoinHandle<Option<T>>) {
    let tid = {
        let mut st = ctx.state.lock().unwrap();
        st.threads.push(ThreadState {
            op: None,
            buffer: Vec::new(),
            group: 0,
            finished: false,
            name,
        });
        st.threads.len() - 1
    };
    let ctx2 = Arc::clone(ctx);
    let handle = std::thread::Builder::new()
        .name(format!("fd-check-{name}"))
        .spawn(move || {
            set_ctx(Some((Arc::clone(&ctx2), tid)));
            let result = panic::catch_unwind(AssertUnwindSafe(|| {
                ctx2.announce(tid, Op::Begin);
                f()
            }));
            set_ctx(None);
            match result {
                Ok(v) => {
                    ctx2.finish_thread(tid, None);
                    Some(v)
                }
                Err(payload) => {
                    let msg = if payload.is::<Abort>() {
                        None
                    } else {
                        Some(payload_text(&payload))
                    };
                    ctx2.finish_thread(tid, msg);
                    None
                }
            }
        })
        .expect("spawn model thread");
    // Wait for the child to park at Begin (or die trying).
    let mut st = ctx.state.lock().unwrap();
    while st.threads[tid].op.is_none() && !st.threads[tid].finished && !st.poisoned {
        st = ctx.cv.wait(st).unwrap();
    }
    (tid, handle)
}

/// Joins a modeled thread: waits (as a scheduling point) for it to
/// finish, then force-commits its leftover store buffer — the model's
/// analogue of the happens-before edge a real join establishes.
pub(crate) fn join_modeled(ctx: &Arc<Ctx>, me: usize, target: usize) {
    ctx.announce(me, Op::Join { target });
}

fn payload_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Runs `f` under the model checker with the default [`Config`],
/// panicking with a schedule trace if any execution violates an
/// invariant (asserts or deadlocks).
pub fn model<F: Fn() + Send + Sync + 'static>(f: F) -> Report {
    model_with(Config::default(), f)
}

/// Runs `f` repeatedly under the model checker, exploring distinct
/// interleavings per `cfg`. The closure is the whole test: build the
/// shared structure, spawn threads with [`crate::thread::spawn`], join
/// them, assert. Returns exploration statistics; panics (with the
/// failing schedule's event trace) on the first violated invariant.
pub fn model_with<F: Fn() + Send + Sync + 'static>(cfg: Config, f: F) -> Report {
    let time_budget = std::env::var("FD_CHECK_BUDGET_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .map(Duration::from_millis)
        .or(cfg.time_budget);
    let started = Instant::now();
    let ctx = Arc::new(Ctx {
        state: StdMutex::new(State {
            threads: Vec::new(),
            mem: HashMap::new(),
            current: 0,
            poisoned: false,
            violation: None,
            trace: Vec::new(),
            trace_dropped: 0,
            trace_cap: cfg.trace_cap,
            explorer: Explorer {
                stack: Vec::new(),
                depth: 0,
                preemptions: 0,
                bound: cfg.preemption_bound,
                mode: Mode::Dfs,
                report: Report::default(),
            },
        }),
        cv: Condvar::new(),
    });

    let mut schedules: u64 = 0;
    loop {
        // Reset per-execution state; the explorer's DFS stack persists.
        {
            let mut st = ctx.state.lock().unwrap();
            if st.violation.is_some() {
                break;
            }
            if let Some(budget) = time_budget {
                if schedules > 0 && started.elapsed() >= budget {
                    break;
                }
            }
            let past_dfs = st.explorer.report.dfs_explored >= cfg.dfs_schedules
                || st.explorer.report.exhausted;
            if past_dfs && matches!(st.explorer.mode, Mode::Dfs) {
                if cfg.random_schedules == 0 {
                    break;
                }
                st.explorer.mode = Mode::Random(SplitMix64::new(cfg.seed));
                st.explorer.stack.clear();
            }
            if matches!(st.explorer.mode, Mode::Random(_))
                && st.explorer.report.random_explored >= cfg.random_schedules
            {
                break;
            }
            st.threads.clear();
            st.threads.push(ThreadState {
                op: None,
                buffer: Vec::new(),
                group: 0,
                finished: false,
                name: "main",
            });
            st.mem.clear();
            st.current = 0;
            st.poisoned = false;
            st.trace.clear();
            st.trace_dropped = 0;
        }
        schedules += 1;

        set_ctx(Some((Arc::clone(&ctx), 0)));
        let outcome = panic::catch_unwind(AssertUnwindSafe(&f));
        set_ctx(None);

        {
            let mut st = ctx.state.lock().unwrap();
            match outcome {
                Ok(()) => {
                    let leaked: Vec<usize> = (1..st.threads.len())
                        .filter(|&t| !st.threads[t].finished)
                        .collect();
                    if !leaked.is_empty() {
                        st.fail(format!(
                            "execution ended with live threads {leaked:?} — join every \
                             spawned thread before the model closure returns"
                        ));
                    }
                }
                Err(payload) => {
                    if !payload.is::<Abort>() {
                        let msg = payload_text(&payload);
                        st.fail(format!("main thread panicked: {msg}"));
                    }
                }
            }
            st.threads[0].finished = true;
            st.poisoned = true; // release any straggler (leak case)
            ctx.cv.notify_all();
            // Let poisoned children unwind and mark themselves finished
            // before the next execution reuses the state.
            while (1..st.threads.len()).any(|t| !st.threads[t].finished) {
                st = ctx.cv.wait(st).unwrap();
            }
            if st.violation.is_some() {
                break;
            }
            if !st.explorer.advance() && matches!(st.explorer.mode, Mode::Dfs) {
                if cfg.random_schedules == 0 {
                    break;
                }
                // advance() marked exhaustion; the top of the loop
                // switches to the random phase.
            }
        }
    }

    let st = ctx.state.lock().unwrap();
    if let Some(v) = &st.violation {
        let r = &st.explorer.report;
        panic!(
            "fd-check: invariant violated after {} DFS + {} random schedules\n{v}",
            r.dfs_explored, r.random_explored
        );
    }
    st.explorer.report.clone()
}
