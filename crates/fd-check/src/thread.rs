//! Thread spawn/join shims: modeled cooperative threads inside a
//! [`crate::model`] run, plain `std::thread` otherwise.

use std::sync::Arc;

use crate::sched::{current_ctx, join_modeled, spawn_modeled, Ctx};

enum Imp<T> {
    Std(std::thread::JoinHandle<T>),
    Model {
        tid: usize,
        ctx: Arc<Ctx>,
        handle: std::thread::JoinHandle<Option<T>>,
    },
}

/// Handle to a spawned thread; join it before the model closure
/// returns (the checker reports leaked threads as violations).
pub struct JoinHandle<T> {
    imp: Imp<T>,
}

impl<T> std::fmt::Debug for JoinHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("JoinHandle(..)")
    }
}

/// Spawns a thread participating in the current model run (or a plain
/// `std` thread outside one).
pub fn spawn<T, F>(f: F) -> JoinHandle<T>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    spawn_named("worker", f)
}

/// [`spawn`] with a name used in the checker's schedule traces.
pub fn spawn_named<T, F>(name: &'static str, f: F) -> JoinHandle<T>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    match current_ctx() {
        None => JoinHandle {
            imp: Imp::Std(std::thread::spawn(f)),
        },
        Some((ctx, _)) => {
            let (tid, handle) = spawn_modeled(&ctx, name, f);
            JoinHandle {
                imp: Imp::Model { tid, ctx, handle },
            }
        }
    }
}

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish and returns its value. Under a
    /// model run the wait is a scheduling point, and the join edge
    /// commits the joined thread's remaining store buffer.
    pub fn join(self) -> std::thread::Result<T> {
        match self.imp {
            Imp::Std(h) => h.join(),
            Imp::Model { tid, ctx, handle } => {
                let me = current_ctx()
                    .map(|(_, me)| me)
                    .expect("model thread joined from outside its model run");
                join_modeled(&ctx, me, tid);
                match handle.join() {
                    Ok(Some(v)) => Ok(v),
                    Ok(None) => Err(Box::new("thread failed under model checker")
                        as Box<dyn std::any::Any + Send>),
                    Err(e) => Err(e),
                }
            }
        }
    }
}
