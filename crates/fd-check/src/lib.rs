//! fd-check: an in-repo concurrency model checker and fuzzing toolkit.
//!
//! crates.io is unreachable in the environments this repo targets, so
//! loom and miri are not available — yet PR 4 shipped a real
//! memory-ordering bug (mixed-epoch seqlock snapshots on weakly-ordered
//! hardware) that only a human review caught. This crate is the
//! mechanical replacement for that review: a small, dependency-free,
//! loom-style model checker plus the fuzzing primitives used by the
//! repo's invariant-fuzz campaign.
//!
//! # The model checker ([`model`], [`sync`], [`thread`])
//!
//! Test code builds its data structures out of the shim types in
//! [`sync`] (`AtomicU64`, `AtomicUsize`, `AtomicBool`, `Mutex`,
//! `fence`) — drop-in signatures for their `std::sync` counterparts —
//! and runs under [`model`], which executes the closure many times,
//! enumerating thread interleavings. Outside a [`model`] run the shims
//! pass straight through to `std`, so a crate compiled against them
//! (e.g. `fd-serve` with its `check` feature) behaves identically in
//! ordinary tests.
//!
//! ## Memory model: PSO-style store buffering
//!
//! Sequentially-consistent interleaving alone cannot represent the PR-4
//! bug class, so the checker gives every modeled thread a FIFO *store
//! buffer* and makes buffer→memory commits explicit scheduler
//! transitions:
//!
//! * `Relaxed`/`Release` stores enter the writer's buffer; any thread's
//!   loads see only *committed* memory (with store-to-load forwarding
//!   of the loader's own newest pending store).
//! * Pending stores to **different** locations may commit out of order
//!   (that is the PSO relaxation that reorders epoch `e+2`'s word
//!   stores ahead of the epoch `e+1` seq store); same-location stores
//!   commit in program order.
//! * A `Release` **store** commits only from the buffer head — every
//!   program-order-earlier store commits first.
//! * A `Release`/`SeqCst` **fence** seals a barrier group: stores
//!   buffered after the fence cannot commit before any store buffered
//!   ahead of it.
//! * RMWs and `SeqCst` stores flush the issuing thread's buffer and act
//!   directly on committed memory.
//! * `Mutex` lock is an acquire on committed state; unlock buffers a
//!   release of the lock word, so a critical section becomes visible
//!   only after everything sequenced before it.
//!
//! This is deliberately *weaker* than x86-TSO where it matters (store
//! reordering to distinct locations) and *stronger* than C11 where it
//! does not (loads are not reordered), which is exactly enough to
//! express — and therefore regress-test — the seqlock fence bug.
//!
//! ## Schedule exploration
//!
//! Scheduling is cooperative: threads run one at a time and hand
//! control back at every shim operation. The explorer does DFS over the
//! choice tree with a CHESS-style bounded number of *preemptions*
//! (switching away from a runnable thread; commits and blocked-thread
//! switches are free), then optionally tops up with seeded random
//! schedules past the DFS budget. Every DFS execution is a distinct
//! interleaving; a violated invariant panics with the event trace of
//! the failing schedule, which is fully deterministic and replayable.
//!
//! # The fuzzer ([`fuzz`])
//!
//! [`fuzz::SplitMix64`] (the repo-standard seeding PRNG),
//! [`fuzz::Mutator`] (structure-aware byte mutations: bit flips,
//! interesting values, truncate/extend/splice) and corpus helpers used
//! by the wire-protocol fuzz tests under `tests/`.

pub mod fuzz;
mod sched;
pub mod sync;
pub mod thread;

pub use sched::{model, model_with, Config, Report};
