//! The predictor-accuracy experiment (Section 5.1, Tables 2 and 3).
//!
//! The paper collects the one-way delays of `N_one_way = 100 000` heartbeats
//! over the Italy–Japan link, then scores each predictor by `msqerr` — the
//! mean square one-step prediction error. ARIMA's orders were first chosen
//! by searching `[0,0,0]–[10,10,10]` with the RPS toolkit; here the same
//! search runs over [`fd_arima::select_best_model`].

use std::fmt;

use fd_arima::SelectionReport;
use fd_core::predictor::{one_step_predictions, Predictor};
use fd_core::PredictorKind;
use fd_net::{DelayTrace, WanProfile};
use fd_stat::mean_squared_error;
use serde::{Deserialize, Serialize};

use crate::config::AccuracyParams;

/// Observations skipped before scoring, so cold-start behaviour (empty
/// windows, unfitted ARIMA) does not distort the comparison. Identical for
/// every predictor, hence fair.
const WARMUP: usize = 200;

/// One row of the Table 3 reproduction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccuracyRow {
    /// Predictor label.
    pub predictor: String,
    /// Mean square one-step prediction error (ms²).
    pub msqerr: f64,
}

/// The Table 3 reproduction: predictors ranked by accuracy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccuracyTable {
    /// Rows sorted by ascending `msqerr` (most accurate first).
    pub rows: Vec<AccuracyRow>,
    /// Observations scored (after warm-up).
    pub scored: usize,
    /// The link profile used.
    pub profile: String,
}

impl AccuracyTable {
    /// The rank (0 = most accurate) of a predictor by label prefix, e.g.
    /// `"ARIMA"`.
    pub fn rank_of(&self, label_prefix: &str) -> Option<usize> {
        self.rows
            .iter()
            .position(|r| r.predictor.starts_with(label_prefix))
    }

    /// The msqerr of a predictor by label prefix.
    pub fn msqerr_of(&self, label_prefix: &str) -> Option<f64> {
        self.rows
            .iter()
            .find(|r| r.predictor.starts_with(label_prefix))
            .map(|r| r.msqerr)
    }
}

impl fmt::Display for AccuracyTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Predictor accuracy on '{}' ({} scored observations)",
            self.profile, self.scored
        )?;
        writeln!(f, "{:<16} {:>14}", "Predictor", "msqerr (ms²)")?;
        for row in &self.rows {
            writeln!(f, "{:<16} {:>14.3}", row.predictor, row.msqerr)?;
        }
        Ok(())
    }
}

/// Runs the Table 3 experiment: collects a delay trace over `profile` and
/// scores the five paper predictors.
///
/// # Panics
///
/// Panics if the parameters collect fewer than `WARMUP + 2` delays.
pub fn predictor_accuracy_experiment(
    profile: &WanProfile,
    params: &AccuracyParams,
) -> AccuracyTable {
    let trace = DelayTrace::record(profile, params.n_one_way, params.eta, params.seed);
    accuracy_table_for_delays(&trace.delays_ms(), &profile.name)
}

/// Scores the five paper predictors on an explicit delay series (used for
/// trace replay and tests).
///
/// # Panics
///
/// Panics if the series is shorter than the warm-up plus two observations.
pub fn accuracy_table_for_delays(delays: &[f64], profile_name: &str) -> AccuracyTable {
    assert!(
        delays.len() > WARMUP + 2,
        "need more than {} delays, got {}",
        WARMUP + 2,
        delays.len()
    );
    let mut rows = Vec::new();
    for kind in PredictorKind::paper_set() {
        let mut predictor = kind.build();
        let preds = one_step_predictions(&mut predictor, delays);
        let msqerr = mean_squared_error(&delays[WARMUP..], &preds[WARMUP..]);
        rows.push(AccuracyRow {
            predictor: predictor.name(),
            msqerr,
        });
    }
    rows.sort_by(|a, b| a.msqerr.partial_cmp(&b.msqerr).expect("finite msqerr"));
    AccuracyTable {
        rows,
        scored: delays.len() - WARMUP,
        profile: profile_name.to_owned(),
    }
}

/// Runs the Table 2 experiment: the ARIMA order search the paper performed
/// with the RPS toolkit. `*_max` bound the grid (`[0,10]³` in the paper; the
/// default binaries use a reduced grid for runtime, which the paper's winner
/// `(2,1,1)` lies well inside).
///
/// Returns `None` if no candidate could be fitted.
pub fn arima_selection_experiment(
    profile: &WanProfile,
    params: &AccuracyParams,
    p_max: usize,
    d_max: usize,
    q_max: usize,
) -> Option<SelectionReport> {
    let trace = DelayTrace::record(profile, params.n_one_way, params.eta, params.seed);
    fd_arima::select_best_model(&trace.delays_ms(), p_max, d_max, q_max)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_table() -> AccuracyTable {
        let profile = WanProfile::italy_japan();
        let params = AccuracyParams::quick();
        predictor_accuracy_experiment(&profile, &params)
    }

    #[test]
    fn all_five_predictors_are_scored() {
        let table = quick_table();
        assert_eq!(table.rows.len(), 5);
        let labels: Vec<&str> = table.rows.iter().map(|r| r.predictor.as_str()).collect();
        for expect in ["ARIMA(2,1,1)", "LAST", "MEAN", "WINMEAN(10)", "LPF(0.125)"] {
            assert!(labels.contains(&expect), "{labels:?} missing {expect}");
        }
    }

    #[test]
    fn rows_are_sorted_by_accuracy() {
        let table = quick_table();
        for pair in table.rows.windows(2) {
            assert!(pair[0].msqerr <= pair[1].msqerr);
        }
    }

    #[test]
    fn arima_is_most_accurate_and_mean_beats_last() {
        if !crate::real_rng_enabled() {
            eprintln!("skipped: accuracy ranking needs rand's SmallRng; set FD_REAL_RNG=1");
            return;
        }
        // The paper's two robust accuracy findings on the WAN trace.
        let profile = WanProfile::italy_japan();
        let params = AccuracyParams {
            n_one_way: 20_000,
            ..AccuracyParams::quick()
        };
        let table = predictor_accuracy_experiment(&profile, &params);
        assert_eq!(table.rank_of("ARIMA"), Some(0), "{table}");
        let mean_rank = table.rank_of("MEAN").unwrap();
        let last_rank = table.rank_of("LAST").unwrap();
        assert!(mean_rank < last_rank, "{table}");
    }

    #[test]
    fn msqerr_lookup_by_prefix() {
        let table = quick_table();
        assert!(table.msqerr_of("ARIMA").unwrap() > 0.0);
        assert!(table.msqerr_of("NOPE").is_none());
        assert!(table.rank_of("NOPE").is_none());
    }

    #[test]
    fn display_renders_all_rows() {
        let table = quick_table();
        let s = table.to_string();
        assert!(s.contains("msqerr"));
        assert!(s.contains("ARIMA"));
        assert!(s.lines().count() >= 7);
    }

    #[test]
    fn deterministic_under_same_seed() {
        let a = quick_table();
        let b = quick_table();
        assert_eq!(a, b);
    }

    #[test]
    fn selection_finds_a_low_order_model() {
        let profile = WanProfile::italy_japan();
        let params = AccuracyParams {
            n_one_way: 4_000,
            ..AccuracyParams::quick()
        };
        let report = arima_selection_experiment(&profile, &params, 2, 1, 1).unwrap();
        // The winner must beat the pure mean model on a correlated link.
        let mean = report
            .ranked
            .iter()
            .find(|r| r.spec == fd_arima::ArimaSpec::new(0, 0, 0))
            .unwrap();
        assert!(report.best.msqerr <= mean.msqerr);
    }
}
