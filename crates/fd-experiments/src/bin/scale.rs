//! Scaling baseline for the many-source monitor: runs the sharded
//! engine across source counts and the 1000-source cycle benchmark, and
//! writes `BENCH_scale.json`.
//!
//! ```text
//! scale [--smoke] [--sources 1k,10k,100k,1M] [--cycles N]
//!       [--shards N | --threads N] [--seed N] [--out PATH] [--no-isolate]
//!       [--crossover]
//! ```
//!
//! `--sources` accepts `1k` / `10k` / `100k` / `1M` style counts
//! (comma-separated). `--smoke` is the CI configuration: a small
//! population, a shard-invariance assertion (the streaming digest over
//! 1, 2 and 3 shards must be identical), and no file written.
//! `--crossover` times the scalar and cache-blocked `observe_all` bodies
//! at each `--sources` count (default 256..16k) and prints the table
//! behind fd-core's `OBS_SCALAR_CROSSOVER` dispatch constant — nothing
//! written.
//!
//! Each row runs in a **child process** by default: peak RSS comes from
//! `VmHWM`, a process-lifetime high-water mark, so rows sharing a
//! process would all inherit the biggest row's peak. `--no-isolate`
//! (and the hidden `--one-row` child mode) run in-process.

use fd_experiments::scale::{
    crossover_benchmark, cycle_benchmark, render_json_from_rows, render_row_json, run_scale_row,
    sweep_benchmark, PR1_CYCLE_BASELINE_MS,
};

fn arg_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

/// Parses `1000`, `1k`, `10K`, `1m`, `1M` style source counts.
fn parse_count(s: &str) -> Option<usize> {
    let t = s.trim();
    let (digits, mult) = match t.chars().last() {
        Some('k' | 'K') => (&t[..t.len() - 1], 1_000),
        Some('m' | 'M') => (&t[..t.len() - 1], 1_000_000),
        _ => (t, 1),
    };
    digits.parse::<usize>().ok().map(|n| n * mult)
}

/// Runs one row in this process and prints its JSON line (child mode) or
/// returns it (in-process fallback). The human-readable line goes to
/// stderr so parents can pipe stdout as pure data.
fn one_row(sources: usize, cycles: u64, shards: usize, seed: u64) -> String {
    let row = run_scale_row(sources, cycles, shards, seed);
    eprintln!(
        "  {:>9} sources: {:>10.1} ms wall, {:>8.1} cycles/s, {:>7.3} µs/source/cycle, \
         {} hb, {} events, {} episodes, rss {} KiB ({:.0} B/source), {} threads",
        row.sources,
        row.wall_ms,
        row.cycles_per_sec,
        row.us_per_source_cycle,
        row.heartbeats,
        row.events,
        row.mistakes,
        row.peak_rss_kb.unwrap_or(0),
        row.rss_per_source_bytes.unwrap_or(0.0),
        row.threads,
    );
    render_row_json(&row)
}

/// Runs one row in a fresh child process so its `VmHWM` is honest.
/// Falls back to in-process measurement if the child cannot be spawned
/// (then the row's RSS inherits this process's prior peak).
fn isolated_row(sources: usize, cycles: u64, shards: usize, seed: u64) -> String {
    let exe = match std::env::current_exe() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("  (no current_exe ({e}); measuring row in-process)");
            return one_row(sources, cycles, shards, seed);
        }
    };
    let out = std::process::Command::new(exe)
        .args([
            "--one-row".to_string(),
            "--sources".to_string(),
            sources.to_string(),
            "--cycles".to_string(),
            cycles.to_string(),
            "--shards".to_string(),
            shards.to_string(),
            "--seed".to_string(),
            seed.to_string(),
        ])
        .stderr(std::process::Stdio::inherit())
        .output();
    match out {
        Ok(o) if o.status.success() => {
            let line = String::from_utf8_lossy(&o.stdout).trim().to_string();
            assert!(
                line.starts_with('{') && line.ends_with('}'),
                "child row produced no JSON: {line:?}"
            );
            line
        }
        Ok(o) => panic!("child row failed with {}", o.status),
        Err(e) => {
            eprintln!("  (cannot spawn child ({e}); measuring row in-process)");
            one_row(sources, cycles, shards, seed)
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let seed = arg_value(&args, "--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(42u64);
    let cycles = arg_value(&args, "--cycles")
        .and_then(|v| v.parse().ok())
        .unwrap_or(10u64);
    let shards = arg_value(&args, "--threads")
        .or_else(|| arg_value(&args, "--shards"))
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });

    if args.iter().any(|a| a == "--crossover") {
        // Locate the scalar-vs-blocked observe_all dispatch point: the
        // measurement behind fd-core's OBS_SCALAR_CROSSOVER constant.
        let counts: Vec<usize> = match arg_value(&args, "--sources") {
            Some(list) => list
                .split(',')
                .map(|s| parse_count(s).unwrap_or_else(|| panic!("bad source count: {s}")))
                .collect(),
            None => vec![256, 1_024, 4_096, 16_384],
        };
        println!("observe_all dispatch crossover (scalar loop vs cache-blocked walk):");
        for n in counts {
            let b = crossover_benchmark(n, 16, 24);
            println!(
                "  {:>7} sources: scalar {:>8.4} ms/cycle   blocked {:>8.4} ms/cycle   \
                 blocked speedup {:.2}×",
                b.sources, b.scalar_ms, b.blocked_ms, b.blocked_speedup,
            );
        }
        return;
    }

    if args.iter().any(|a| a == "--one-row") {
        let sources = arg_value(&args, "--sources")
            .and_then(parse_count)
            .expect("--one-row needs --sources");
        println!("{}", one_row(sources, cycles, shards, seed));
        return;
    }
    if args.iter().any(|a| a == "--smoke") {
        run_smoke(seed, shards);
        return;
    }

    let counts: Vec<usize> = match arg_value(&args, "--sources") {
        Some(list) => list
            .split(',')
            .map(|s| parse_count(s).unwrap_or_else(|| panic!("bad source count: {s}")))
            .collect(),
        None => vec![1_000, 10_000, 100_000],
    };
    let out = arg_value(&args, "--out").unwrap_or("BENCH_scale.json");
    let isolate = !args.iter().any(|a| a == "--no-isolate");

    println!("scale: sources={counts:?} cycles={cycles} threads={shards} seed={seed}");
    let row_jsons: Vec<String> = counts
        .iter()
        .map(|&n| {
            if isolate {
                isolated_row(n, cycles, shards, seed)
            } else {
                one_row(n, cycles, shards, seed)
            }
        })
        .collect();

    println!("cycle benchmark (1000 sources × 30 combos, PR 1 methodology):");
    let bench = cycle_benchmark(1_000, 64, 50);
    println!(
        "  DetectorBank loop: {:.3} ms/cycle   SourceBank batch: {:.3} ms/cycle   \
         speedup {:.2}×   (PR 1 baseline {PR1_CYCLE_BASELINE_MS:.1} ms)",
        bench.detector_bank_ms, bench.source_bank_ms, bench.speedup,
    );

    println!("deadline sweep (100k sources × 30 combos, steady-state no-fire scan):");
    let sweep = sweep_benchmark(100_000, 50);
    println!(
        "  lane-swept: {:.4} ms/scan   scalar: {:.4} ms/scan   speedup {:.2}×",
        sweep.lane_ms, sweep.scalar_ms, sweep.speedup,
    );

    let doc = render_json_from_rows(&row_jsons, &bench, &sweep, shards, seed);
    std::fs::write(out, &doc).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
    println!("wrote {out}");
}

/// CI gate: small population, streaming-digest shard invariance asserted
/// across 1, 2 and 3 shards, nothing written.
fn run_smoke(seed: u64, threads: usize) {
    println!("scale --smoke: 192 sources × 4 cycles, digest invariance over 1/2/3 shards");
    let a = run_scale_row(192, 4, 1, seed);
    for shards in [2usize, 3] {
        let b = run_scale_row(192, 4, shards, seed);
        assert_eq!(
            a.digest, b.digest,
            "shard-count invariance violated at {shards} shards: {:016x} vs {:016x}",
            a.digest, b.digest
        );
        assert_eq!(a.heartbeats, b.heartbeats);
        assert_eq!(
            a.mistakes, b.mistakes,
            "QoS roll-up diverged at {shards} shards"
        );
    }
    assert!(a.heartbeats > 0);
    // And one row at the requested thread count (CI passes --threads 2).
    let t = run_scale_row(192, 4, threads.max(1), seed);
    assert_eq!(a.digest, t.digest);
    let bench = cycle_benchmark(64, 8, 4);
    assert!(bench.source_bank_ms > 0.0 && bench.detector_bank_ms > 0.0);
    println!(
        "  ok: digest {:016x}, {} heartbeats, {} events, {} episodes; \
         cycle bench {:.3} ms (bank loop) vs {:.3} ms (batch)",
        a.digest, a.heartbeats, a.events, a.mistakes, bench.detector_bank_ms, bench.source_bank_ms,
    );
}
