//! Scaling baseline for the many-source monitor: runs the sharded
//! engine across source counts and the 1000-source cycle benchmark, and
//! writes `BENCH_scale.json`.
//!
//! ```text
//! scale [--smoke] [--sources 1k,10k,100k] [--cycles N] [--shards N]
//!       [--seed N] [--out PATH]
//! ```
//!
//! `--sources` accepts `1k` / `10k` / `100k` / `1M` style counts
//! (comma-separated). `--smoke` is the CI configuration: a small
//! population, a shard-invariance assertion (1 vs 3 shards must produce
//! identical fingerprints), and no file written.

use fd_experiments::scale::{
    cycle_benchmark, render_json, run_scale, run_scale_row, PR1_CYCLE_BASELINE_MS,
};

fn arg_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

/// Parses `1000`, `1k`, `10K`, `1m`, `1M` style source counts.
fn parse_count(s: &str) -> Option<usize> {
    let t = s.trim();
    let (digits, mult) = match t.chars().last() {
        Some('k' | 'K') => (&t[..t.len() - 1], 1_000),
        Some('m' | 'M') => (&t[..t.len() - 1], 1_000_000),
        _ => (t, 1),
    };
    digits.parse::<usize>().ok().map(|n| n * mult)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let seed = arg_value(&args, "--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(42u64);

    if smoke {
        run_smoke(seed);
        return;
    }

    let counts: Vec<usize> = match arg_value(&args, "--sources") {
        Some(list) => list
            .split(',')
            .map(|s| parse_count(s).unwrap_or_else(|| panic!("bad source count: {s}")))
            .collect(),
        None => vec![1_000, 10_000, 100_000],
    };
    let cycles = arg_value(&args, "--cycles")
        .and_then(|v| v.parse().ok())
        .unwrap_or(10u64);
    let shards = arg_value(&args, "--shards")
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
    let out = arg_value(&args, "--out").unwrap_or("BENCH_scale.json");

    println!("scale: sources={counts:?} cycles={cycles} shards={shards} seed={seed}");
    let rows = run_scale(&counts, cycles, shards, seed);
    for r in &rows {
        println!(
            "  {:>9} sources: {:>10.1} ms wall, {:>8.1} cycles/s, {:>7.3} µs/source/cycle, \
             {} hb, {} events, rss {} KiB",
            r.sources,
            r.wall_ms,
            r.cycles_per_sec,
            r.us_per_source_cycle,
            r.heartbeats,
            r.events,
            r.peak_rss_kb.unwrap_or(0),
        );
    }

    println!("cycle benchmark (1000 sources × 30 combos, PR 1 methodology):");
    let bench = cycle_benchmark(1_000, 64, 50);
    println!(
        "  DetectorBank loop: {:.3} ms/cycle   SourceBank batch: {:.3} ms/cycle   \
         speedup {:.2}×   (PR 1 baseline {PR1_CYCLE_BASELINE_MS:.1} ms)",
        bench.detector_bank_ms, bench.source_bank_ms, bench.speedup,
    );

    let doc = render_json(&rows, &bench, shards, seed);
    std::fs::write(out, &doc).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
    println!("wrote {out}");
}

/// CI gate: small population, shard invariance asserted, nothing written.
fn run_smoke(seed: u64) {
    println!("scale --smoke: 192 sources × 4 cycles, shard invariance 1 vs 3");
    let a = run_scale_row(192, 4, 1, seed);
    let b = run_scale_row(192, 4, 3, seed);
    assert_eq!(
        a.fingerprint, b.fingerprint,
        "shard-count invariance violated: {:016x} vs {:016x}",
        a.fingerprint, b.fingerprint
    );
    assert_eq!(a.heartbeats, b.heartbeats);
    assert!(a.heartbeats > 0);
    let bench = cycle_benchmark(64, 8, 4);
    assert!(bench.source_bank_ms > 0.0 && bench.detector_bank_ms > 0.0);
    println!(
        "  ok: fingerprint {:016x}, {} heartbeats, {} events; \
         cycle bench {:.3} ms (bank loop) vs {:.3} ms (batch)",
        a.fingerprint, a.heartbeats, a.events, bench.detector_bank_ms, bench.source_bank_ms,
    );
}
