//! Quantifies the paper's synchronised-clock assumption (offset_pq = 0,
//! ρ_pq = 0, enforced with NTP in the paper's setup).
//!
//! Two findings this experiment demonstrates:
//!
//! * a **constant offset** is invisible to adaptive push detectors — the
//!   heartbeat schedule and the freshness points both live on relative
//!   time-outs, so every QoS metric is bit-identical across offsets;
//! * **clock drift** is not: a drifting monitored clock stretches or
//!   shrinks the inter-heartbeat period in true time, so the observed
//!   "delays" trend without bound. Tracking predictors follow the trend
//!   cheaply; `MEAN` lags it, and `SM_CI`'s variance estimate balloons on
//!   the trending history — detection times inflate by hundreds of ms while
//!   fast-clock drift (delays clamped toward 0) stalls detection for every
//!   detector by the accumulated skew.
//!
//! ```text
//! cargo run --release -p fd-experiments --bin clock_skew
//! ```

use fd_core::combinations::Combination;
use fd_core::{MarginKind, PredictorKind};
use fd_experiments::{HeartbeaterLayer, MonitorLayer, SimCrashLayer};
use fd_net::WanProfile;
use fd_runtime::{ClockModel, Process, ProcessId, SimEngine};
use fd_sim::{SeedTree, SimTime};
use fd_stat::{extract_metrics, QosMetrics};

fn run_with_clock(clock: ClockModel) -> Vec<(String, QosMetrics)> {
    let profile = WanProfile::italy_japan();
    let params = fd_experiments::ExperimentParams {
        num_cycles: 3_000,
        ..fd_experiments::ExperimentParams::paper()
    };
    let seeds = SeedTree::new(params.seed).subtree("skew");
    let detectors = vec![
        Combination::new(PredictorKind::Last, MarginKind::Jac { phi: 2.0 }).build(params.eta),
        Combination::new(PredictorKind::Mean, MarginKind::Ci { gamma: 2.0 }).build(params.eta),
    ];
    let labels: Vec<String> = detectors.iter().map(|d| d.name().to_owned()).collect();
    let mut engine = SimEngine::new();
    engine.add_process(Process::new(ProcessId(0)).with_layer(MonitorLayer::new(detectors)));
    engine.add_process(
        Process::new(ProcessId(1))
            .with_layer(SimCrashLayer::new(
                params.mttc,
                params.ttr,
                seeds.rng("crash"),
            ))
            .with_layer(
                HeartbeaterLayer::new(ProcessId(0), params.eta).with_max_cycles(params.num_cycles),
            ),
    );
    engine.set_clock(ProcessId(1), clock);
    engine.set_link(ProcessId(1), ProcessId(0), profile.link(seeds.rng("link")));
    let end = SimTime::ZERO + params.run_duration();
    engine.run_until(end);
    labels
        .into_iter()
        .enumerate()
        .map(|(i, l)| (l, extract_metrics(engine.event_log(), i as u32, end)))
        .collect()
}

fn print_rows(tag: &str, rows: &[(String, QosMetrics)]) {
    for (label, m) in rows {
        println!(
            "{tag:<16} {label:<20} {:>10.1} {:>10} {:>10.5}",
            m.mean_td().unwrap_or(f64::NAN),
            m.mistake_durations_ms.len(),
            m.query_accuracy().unwrap_or(f64::NAN),
        );
    }
}

fn main() {
    println!(
        "{:<16} {:<20} {:>10} {:>10} {:>10}",
        "clock", "detector", "T_D (ms)", "mistakes", "P_A"
    );

    // Constant offsets: QoS must be identical (the invariance finding).
    let baseline = run_with_clock(ClockModel::synchronized());
    print_rows("offset +0ms", &baseline);
    let offset = run_with_clock(ClockModel::with_offset_us(250_000));
    print_rows("offset +250ms", &offset);
    let invariant = baseline.iter().zip(&offset).all(|((_, a), (_, b))| a == b);
    println!(
        "constant offset invariance: {}",
        if invariant { "CONFIRMED" } else { "BROKEN" }
    );

    // Drift: the monitored clock runs fast (its η shrinks in true time →
    // observed delays drift downward) or slow (delays drift upward).
    println!();
    for drift_ppm in [-2_000.0f64, -200.0, 200.0, 2_000.0] {
        let rows = run_with_clock(ClockModel::new(0, drift_ppm));
        print_rows(&format!("drift {drift_ppm:+}ppm"), &rows);
    }
    println!("\n(the paper's NTP setup keeps |drift| well below 100 ppm: inside that envelope");
    println!(" both detectors behave as in the synchronised case; beyond it MEAN+SM_CI's");
    println!(" detection time inflates first, and strong fast-clock drift stalls everyone)");
}
