//! Serving-plane benchmark: runs the sharded monitor with the fd-serve
//! publication hook, hammers the UDP query server from load threads, and
//! writes `BENCH_serve.json` (queries/sec, latency percentiles, snapshot
//! staleness).
//!
//! ```text
//! serve [--smoke] [--sources 1k,100k] [--cycles N] [--shards N]
//!       [--threads N] [--seed N] [--out PATH]
//! ```
//!
//! `--sources` accepts `1k` / `100k` / `1M` style counts
//! (comma-separated). `--smoke` is the CI configuration: the seqlock
//! torn-read race, a small end-to-end run asserting at least one
//! published epoch, and malformed-frame rejection — nothing written.

use fd_experiments::serve::{render_json, run_serve, run_smoke};

fn arg_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

/// Parses `1000`, `1k`, `10K`, `1m`, `1M` style source counts.
fn parse_count(s: &str) -> Option<usize> {
    let t = s.trim();
    let (digits, mult) = match t.chars().last() {
        Some('k' | 'K') => (&t[..t.len() - 1], 1_000),
        Some('m' | 'M') => (&t[..t.len() - 1], 1_000_000),
        _ => (t, 1),
    };
    digits.parse::<usize>().ok().map(|n| n * mult)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let seed = arg_value(&args, "--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(42u64);

    if smoke {
        println!("serve --smoke: seqlock race, end-to-end epoch, malformed rejection");
        run_smoke(seed);
        println!("  ok");
        return;
    }

    let counts: Vec<usize> = match arg_value(&args, "--sources") {
        Some(list) => list
            .split(',')
            .map(|s| parse_count(s).unwrap_or_else(|| panic!("bad source count: {s}")))
            .collect(),
        None => vec![1_000, 100_000],
    };
    let cycles = arg_value(&args, "--cycles")
        .and_then(|v| v.parse().ok())
        .unwrap_or(10u64);
    let shards = arg_value(&args, "--shards")
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
    let threads = arg_value(&args, "--threads")
        .and_then(|v| v.parse().ok())
        .unwrap_or(4usize);
    let out = arg_value(&args, "--out").unwrap_or("BENCH_serve.json");

    println!(
        "serve: sources={counts:?} cycles={cycles} shards={shards} threads={threads} seed={seed}"
    );
    let rows = run_serve(&counts, cycles, shards, seed, threads);
    for r in &rows {
        println!(
            "  {:>9} sources: {:>9.0} q/s, p50 {:>6.0} µs, p99 {:>7.0} µs, \
             staleness {:>8.2} ms mean / {:>8.2} ms max ({:.2} / {:.2} epochs), \
             {} epochs, {} torn retries",
            r.sources,
            r.qps,
            r.p50_us,
            r.p99_us,
            r.staleness_mean_ms,
            r.staleness_max_ms,
            r.epoch_lag_mean,
            r.epoch_lag_max,
            r.epochs_published,
            r.torn_retries,
        );
    }

    let doc = render_json(&rows, shards, seed);
    std::fs::write(out, &doc).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
    println!("wrote {out}");
}
