//! Serving-plane benchmark: runs the sharded monitor with the fd-serve
//! publication hook under the churn-adaptive cadence, hammers the UDP
//! query server from load threads, drives a two-level relay tree with a
//! large simulated subscriber population, and writes `BENCH_serve.json`
//! (queries/sec, latency percentiles, snapshot staleness, relay fan-out
//! and per-hop age).
//!
//! ```text
//! serve [--smoke] [--sources 1k,10k,100k] [--cycles N] [--shards N]
//!       [--threads N] [--seed N] [--out PATH]
//!       [--publish-min-ms N] [--publish-max-ms N] [--churn N]
//!       [--relay-sources N] [--relay-subs N]
//! ```
//!
//! `--sources` accepts `1k` / `100k` / `1M` style counts
//! (comma-separated). `--relay-subs 0` skips the relay-tree row.
//! `--smoke` is the CI configuration: the seqlock torn-read race, a
//! small end-to-end run asserting at least one published epoch and a
//! bounded staleness mean, a two-level relay parity/hop/age gate, and
//! malformed-frame rejection — nothing written.

use fd_experiments::serve::{default_cadence, render_json, run_relay_row, run_serve, run_smoke};
use fd_runtime::sharded::PublishCadence;
use fd_sim::SimDuration;

fn arg_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

/// Parses `1000`, `1k`, `10K`, `1m`, `1M` style source counts.
fn parse_count(s: &str) -> Option<usize> {
    let t = s.trim();
    let (digits, mult) = match t.chars().last() {
        Some('k' | 'K') => (&t[..t.len() - 1], 1_000),
        Some('m' | 'M') => (&t[..t.len() - 1], 1_000_000),
        _ => (t, 1),
    };
    digits.parse::<usize>().ok().map(|n| n * mult)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let seed = arg_value(&args, "--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(42u64);

    if smoke {
        println!(
            "serve --smoke: seqlock race, end-to-end staleness bound, relay chain, \
             malformed rejection"
        );
        run_smoke(seed);
        println!("  ok");
        return;
    }

    let counts: Vec<usize> = match arg_value(&args, "--sources") {
        Some(list) => list
            .split(',')
            .map(|s| parse_count(s).unwrap_or_else(|| panic!("bad source count: {s}")))
            .collect(),
        None => vec![1_000, 10_000, 100_000],
    };
    let cycles = arg_value(&args, "--cycles")
        .and_then(|v| v.parse().ok())
        .unwrap_or(10u64);
    let shards = arg_value(&args, "--shards")
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
    let threads = arg_value(&args, "--threads")
        .and_then(|v| v.parse().ok())
        .unwrap_or(4usize);
    let out = arg_value(&args, "--out").unwrap_or("BENCH_serve.json");
    let default = default_cadence();
    let publish_min = arg_value(&args, "--publish-min-ms")
        .and_then(|v| v.parse().ok())
        .map(SimDuration::from_millis)
        .unwrap_or(default.min);
    let publish_max = arg_value(&args, "--publish-max-ms")
        .and_then(|v| v.parse().ok())
        .map(SimDuration::from_millis)
        .unwrap_or(default.max);
    let churn = arg_value(&args, "--churn")
        .and_then(|v| v.parse().ok())
        .unwrap_or(default.churn_threshold);
    let cadence = PublishCadence::adaptive(publish_min, publish_max, churn);
    let relay_sources = arg_value(&args, "--relay-sources")
        .and_then(parse_count)
        .unwrap_or(4_096);
    let relay_subs = arg_value(&args, "--relay-subs")
        .and_then(|v| v.parse().ok())
        .unwrap_or(100_000usize);

    println!(
        "serve: sources={counts:?} cycles={cycles} shards={shards} threads={threads} \
         seed={seed} cadence={}..{}ms/{} edges",
        cadence.min.as_micros() / 1_000,
        cadence.max.as_micros() / 1_000,
        cadence.churn_threshold,
    );
    let rows = run_serve(&counts, cycles, shards, seed, threads, cadence);
    for r in &rows {
        println!(
            "  {:>9} sources: {:>9.0} q/s, p50 {:>6.0} µs, p99 {:>7.0} µs, \
             staleness {:>8.2} ms mean / {:>8.2} ms max ({:.2} / {:.2} epochs), \
             {} epochs, {} torn retries",
            r.sources,
            r.qps,
            r.p50_us,
            r.p99_us,
            r.staleness_mean_ms,
            r.staleness_max_ms,
            r.epoch_lag_mean,
            r.epoch_lag_max,
            r.epochs_published,
            r.torn_retries,
        );
    }

    let relay_rows = if relay_subs > 0 {
        println!("relay tree: {relay_sources} sources, {relay_subs} subscribers over 2 levels");
        let row = run_relay_row(
            relay_sources,
            cycles.min(8),
            shards.min(2),
            seed,
            relay_subs,
        );
        println!(
            "  {} relays, {} / {} subscribers registered ({} retained), \
             {} pushes, {} deltas applied, {} catch-ups",
            row.relays,
            row.subscribers_registered,
            row.subscribers_target,
            row.subscribers_retained,
            row.pushes_to_subscribers,
            row.deltas_applied,
            row.catch_ups,
        );
        println!(
            "  age by level (ms): mean {:?}, max {:?}; per-hop penalty {:.3} ms, \
             max hops {}",
            row.age_mean_ms, row.age_max_ms, row.hop_penalty_mean_ms, row.max_hops_seen,
        );
        vec![row]
    } else {
        Vec::new()
    };

    let doc = render_json(&rows, &relay_rows, shards, seed, cadence);
    std::fs::write(out, &doc).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
    println!("wrote {out}");
}
