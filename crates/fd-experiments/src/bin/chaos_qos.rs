//! Runs the 30-detector grid under the chaos fault-schedule matrix and
//! prints the QoS degradation of each schedule against the quiet baseline.
//!
//! ```text
//! chaos_qos [--smoke] [--runs N] [--cycles N] [--seed N]
//! ```
//!
//! `--smoke` is the CI configuration: one short run per schedule, enough to
//! prove every fault family injects, nothing panics, and corrupted or
//! duplicated heartbeats are counted and dropped.

use fd_experiments::chaos_qos::{format_report, run_chaos_qos, schedule_matrix, ChaosRunReport};
use fd_experiments::ExperimentParams;
use fd_sim::SimDuration;

fn arg_value(args: &[String], flag: &str) -> Option<u64> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");

    let mut params = if smoke {
        ExperimentParams {
            num_cycles: 240,
            runs: 1,
            mttc: SimDuration::from_secs(60),
            ttr: SimDuration::from_secs(10),
            ..ExperimentParams::quick()
        }
    } else {
        ExperimentParams {
            num_cycles: 2_000,
            runs: 5,
            ..ExperimentParams::paper()
        }
    };
    if let Some(r) = arg_value(&args, "--runs") {
        params.runs = r as usize;
    }
    if let Some(c) = arg_value(&args, "--cycles") {
        params.num_cycles = c;
    }
    if let Some(s) = arg_value(&args, "--seed") {
        params.seed = s;
    }

    let matrix = schedule_matrix(params.run_duration());
    eprintln!(
        "chaos matrix: {} schedules × {} runs × {} cycles (η = {}) …",
        matrix.len(),
        params.runs,
        params.num_cycles,
        params.eta,
    );

    let mut reports: Vec<ChaosRunReport> = Vec::new();
    for schedule in &matrix {
        eprintln!("  running '{}' …", schedule.name);
        let report = run_chaos_qos(&params, schedule);
        let c = &report.counters;
        eprintln!(
            "    stalls={} steps={} dup={} decode-fail={} corrupt-drop={} \
             jitter={} crashes={} failed-restarts={} dropped={}",
            c.stalls,
            c.clock_steps,
            c.duplicates,
            c.decode_failures,
            c.corrupt_dropped,
            c.jitter_delays,
            c.monitor_crashes,
            c.failed_restarts,
            c.dropped_while_down,
        );
        reports.push(report);
    }

    println!("{}", format_report(&reports));

    if smoke {
        // CI gate: every non-baseline schedule must actually have injected
        // faults, and every schedule must still detect crashes.
        let mut ok = true;
        for r in &reports {
            let c = &r.counters;
            let injected = c.stalls
                + c.clock_steps
                + c.duplicates
                + c.decode_failures
                + c.corrupt_dropped
                + c.jitter_delays
                + c.monitor_crashes;
            if r.schedule_name != "baseline" && injected == 0 {
                eprintln!("SMOKE FAIL: '{}' injected nothing", r.schedule_name);
                ok = false;
            }
            if r.metrics.iter().all(|m| m.detection_times_ms.is_empty()) {
                eprintln!("SMOKE FAIL: '{}' detected nothing", r.schedule_name);
                ok = false;
            }
        }
        if !ok {
            std::process::exit(1);
        }
        eprintln!("smoke OK: all schedules injected and detected");
    }
}
