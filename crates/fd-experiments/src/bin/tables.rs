//! Prints the experiment's constant tables (the paper's Tables 1, 2 and 5).
//!
//! ```text
//! cargo run -p fd-experiments --bin tables
//! ```

use fd_core::{MarginKind, PredictorKind};
use fd_experiments::ExperimentParams;

fn main() {
    println!("Table 1 — Safety margin parameters");
    println!("{:<10} {:>8}    {:<10} {:>8}", "SM_CI", "γ", "SM_JAC", "φ");
    let labels = ["low", "med", "high"];
    let margins = MarginKind::paper_set();
    for (i, label) in labels.iter().enumerate() {
        let MarginKind::Ci { gamma } = margins[i] else {
            unreachable!("first three are CI");
        };
        let MarginKind::Jac { phi } = margins[i + 3] else {
            unreachable!("last three are JAC");
        };
        println!("γ_{label:<8} {gamma:>8}    φ_{label:<8} {phi:>8}");
    }

    println!("\nTable 2 — Predictor parameters");
    println!("{:<12} Parameters", "Predictor");
    for kind in PredictorKind::paper_set() {
        let params = match kind {
            PredictorKind::Arima {
                p,
                d,
                q,
                refit_every,
            } => {
                format!("p = {p}, d = {d}, q = {q} (refit every {refit_every} obs)")
            }
            PredictorKind::Lpf { beta } => format!("β = {beta}"),
            PredictorKind::WinMean { window } => format!("N = {window}"),
            PredictorKind::Last | PredictorKind::Mean => "—".to_owned(),
            PredictorKind::PhiAccrual {
                window,
                threshold,
                two_phase,
            } => format!("N = {window}, φ* = {threshold}, two-phase = {two_phase}"),
            PredictorKind::AdaptiveWindow { window, k } => format!("N = {window}, K = {k}"),
            PredictorKind::MlPredictor { lags, rate } => format!("p = {lags}, r = {rate}"),
        };
        println!("{:<12} {params}", kind.label());
    }

    println!("\nTable 5 — Experiment parameters");
    let p = ExperimentParams::paper();
    println!("NumCycles   {}", p.num_cycles);
    println!("MTTC        {}", p.mttc);
    println!("TTR         {}", p.ttr);
    println!("η           {}", p.eta);
    println!("runs        {}", p.runs);
    println!(
        "(expected T_D samples per run ≈ {:.1}, as in the paper's Section 5.2)",
        p.expected_td_samples()
    );
}
