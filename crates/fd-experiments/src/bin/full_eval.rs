//! Runs the complete evaluation — every table and every figure — and prints
//! them in paper order. This is the one-shot reproduction driver behind
//! `EXPERIMENTS.md`.
//!
//! ```text
//! cargo run --release -p fd-experiments --bin full_eval [-- --quick]
//! ```

use fd_core::{MarginKind, PredictorKind};
use fd_experiments::{
    arima_selection_experiment, predictor_accuracy_experiment, run_qos_experiment, AccuracyParams,
    ExperimentParams, Metric,
};
use fd_net::{DelayTrace, WanProfile};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let profile = WanProfile::italy_japan();

    // --- Constant tables (1, 2, 5).
    println!("Table 1 — Safety margins: {:?}", MarginKind::paper_set());
    println!(
        "Table 2 — Predictors: {:?}",
        PredictorKind::paper_set()
            .iter()
            .map(PredictorKind::label)
            .collect::<Vec<_>>()
    );
    let params = if quick {
        ExperimentParams {
            num_cycles: 2_000,
            runs: 3,
            ..ExperimentParams::paper()
        }
    } else {
        ExperimentParams::paper()
    };
    println!(
        "Table 5 — NumCycles={} MTTC={} TTR={} η={} runs={}",
        params.num_cycles, params.mttc, params.ttr, params.eta, params.runs
    );

    // --- Table 2 selection (reduced grid unless the user has time).
    let acc_params = if quick {
        AccuracyParams {
            n_one_way: 8_000,
            ..AccuracyParams::paper()
        }
    } else {
        AccuracyParams {
            n_one_way: 30_000,
            ..AccuracyParams::paper()
        }
    };
    eprintln!("[1/4] ARIMA order selection …");
    if let Some(report) = arima_selection_experiment(&profile, &acc_params, 3, 1, 2) {
        println!(
            "\nTable 2 (identification) — best order on this link: {} (msqerr {:.3} ms²)",
            report.best.spec, report.best.msqerr
        );
    }

    // --- Table 3.
    eprintln!("[2/4] predictor accuracy …");
    let table3_params = if quick {
        AccuracyParams {
            n_one_way: 10_000,
            ..AccuracyParams::paper()
        }
    } else {
        AccuracyParams::paper()
    };
    let table3 = predictor_accuracy_experiment(&profile, &table3_params);
    println!("\nTable 3 — Predictor accuracy");
    print!("{table3}");

    // --- Table 4.
    eprintln!("[3/4] link characterisation …");
    let trace = DelayTrace::record(
        &profile,
        table3_params.n_one_way,
        table3_params.eta,
        table3_params.seed,
    );
    println!("\nTable 4 — WAN connection characteristics");
    println!("{}", trace.characteristics().expect("non-empty trace"));
    println!("Number of hops          {:>10}", profile.hops);

    // --- Figures 4–8.
    eprintln!(
        "[4/4] QoS experiment ({} runs × {} cycles) …",
        params.runs, params.num_cycles
    );
    let results = run_qos_experiment(&profile, &params);
    println!();
    for m in Metric::all() {
        println!("{}", results.figure(m));
    }

    // --- The paper's synthesis.
    let td = results.figure(Metric::Td);
    let pa = results.figure(Metric::Pa);
    if let (Some((tp, tm_label, tv)), Some((pp, pm, pv))) = (td.best(), pa.best()) {
        println!("best mean T_D: {tp} + {tm_label} = {tv:.1} ms");
        println!("best P_A:      {pp} + {pm} = {pv:.5}");
    }
}
