//! Regenerates the paper's Figures 4–8: the QoS of all 30 failure detectors
//! over 13 runs of 10 000 heartbeat cycles with crash injection.
//!
//! ```text
//! cargo run --release -p fd-experiments --bin figures [-- --quick] \
//!     [--metric td|tdu|tm|tmr|pa] [--runs N] [--cycles N] [--baseline] [--detail] \
//!     [--trace PATH.csv]
//!
//! With `--trace`, the link replays a recorded delay trace (as written by
//! `table4_link_characteristics --save` or `DelayTrace::save_csv`) instead
//! of the synthetic Italy–Japan profile — bring your own measurements.
//! ```
//!
//! Without `--metric`, all five figures print.

use fd_experiments::{run_qos_experiment, run_qos_experiment_on_trace, ExperimentParams, Metric};
use fd_net::{DelayTrace, WanProfile};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let baseline = args.iter().any(|a| a == "--baseline");
    let detail = args.iter().any(|a| a == "--detail");
    let metric = args
        .iter()
        .position(|a| a == "--metric")
        .and_then(|i| args.get(i + 1))
        .map(|m| match m.as_str() {
            "td" => Metric::Td,
            "tdu" => Metric::TdUpper,
            "tm" => Metric::Tm,
            "tmr" => Metric::Tmr,
            "pa" => Metric::Pa,
            other => {
                eprintln!("unknown metric '{other}' (td|tdu|tm|tmr|pa)");
                std::process::exit(2);
            }
        });

    let mut params = if quick {
        ExperimentParams {
            num_cycles: 2_000,
            runs: 3,
            ..ExperimentParams::paper()
        }
    } else {
        ExperimentParams::paper()
    };
    if let Some(runs) = flag_value(&args, "--runs") {
        params.runs = runs;
    }
    if let Some(cycles) = flag_value(&args, "--cycles") {
        params.num_cycles = cycles as u64;
    }
    params.include_nfd_baseline = baseline;

    let trace_path = args
        .iter()
        .position(|a| a == "--trace")
        .and_then(|i| args.get(i + 1));

    let results = match trace_path {
        Some(path) => {
            let trace = DelayTrace::load_csv(path).unwrap_or_else(|e| {
                eprintln!("cannot load trace '{path}': {e}");
                std::process::exit(2);
            });
            // One replay pass cannot outlast the trace.
            params.num_cycles = params.num_cycles.min(trace.len() as u64);
            eprintln!(
                "replaying trace '{path}' ({} heartbeats) — {} runs × {} cycles …",
                trace.len(),
                params.runs,
                params.num_cycles,
            );
            run_qos_experiment_on_trace(&trace, &params).unwrap_or_else(|e| {
                eprintln!("cannot replay trace '{path}': {e}");
                std::process::exit(2);
            })
        }
        None => {
            let profile = WanProfile::italy_japan();
            eprintln!(
                "running {} runs × {} cycles (η = {}) on '{}' — {} detectors …",
                params.runs,
                params.num_cycles,
                params.eta,
                profile.name,
                30 + usize::from(baseline),
            );
            run_qos_experiment(&profile, &params)
        }
    };

    match metric {
        Some(m) => println!("{}", results.figure(m)),
        None => {
            for m in Metric::all() {
                println!("{}", results.figure(m));
            }
        }
    }

    if detail {
        println!("{}", results.detail_report());
    }

    if baseline {
        let report = &results.reports()[30];
        println!("NFD-E baseline: {report:?}");
    }
}

fn flag_value(args: &[String], flag: &str) -> Option<usize> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}
