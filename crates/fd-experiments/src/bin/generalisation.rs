//! The paper's future work, realised: "we are now running further
//! experiments on different WAN connections, to understand if and how these
//! results can be generalized to other environments. Planned activities will
//! involve also mobile networks."
//!
//! Runs the QoS experiment on four link profiles (LAN, Italy–Japan WAN,
//! congested WAN, mobile) and reports which combination wins each metric on
//! each link.
//!
//! ```text
//! cargo run --release -p fd-experiments --bin generalisation [-- --full]
//! ```

use fd_experiments::{run_qos_experiment, ExperimentParams, Metric};
use fd_net::WanProfile;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let params = if full {
        ExperimentParams::paper()
    } else {
        ExperimentParams {
            num_cycles: 3_000,
            runs: 4,
            ..ExperimentParams::paper()
        }
    };

    let profiles = [
        WanProfile::lan(),
        WanProfile::italy_japan(),
        WanProfile::congested_wan(),
        WanProfile::mobile(),
    ];

    println!(
        "{:<16} {:<26} {:<26} {:<26}",
        "link", "best T_D", "best P_A", "worst P_A"
    );
    for profile in &profiles {
        eprintln!("running '{}' …", profile.name);
        let results = run_qos_experiment(profile, &params);
        let td = results.figure(Metric::Td);
        let pa = results.figure(Metric::Pa);
        let fmt = |x: Option<(String, String, f64)>, pct: bool| match x {
            Some((p, m, v)) => {
                if pct {
                    format!("{p}+{m} ({v:.4})")
                } else {
                    format!("{p}+{m} ({v:.0}ms)")
                }
            }
            None => "-".to_owned(),
        };
        println!(
            "{:<16} {:<26} {:<26} {:<26}",
            profile.name,
            fmt(td.best(), false),
            fmt(pa.best(), true),
            fmt(pa.worst(), true),
        );
    }
    println!(
        "\n(figures per profile: rerun with RUST_LOG or use the `figures` binary; \
         the trade-off structure persists across environments, the winning \
         margins shift with link volatility)"
    );
}
