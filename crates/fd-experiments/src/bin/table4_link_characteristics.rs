//! Regenerates the paper's Table 4: characteristics of the WAN connection,
//! measured from a long heartbeat trace over the synthetic Italy–Japan link.
//!
//! ```text
//! cargo run --release -p fd-experiments --bin table4_link_characteristics [-- --n N] [--save PATH]
//! ```

use fd_experiments::AccuracyParams;
use fd_net::{DelayTrace, WanProfile};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n = args
        .iter()
        .position(|a| a == "--n")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(100_000);
    let save = args
        .iter()
        .position(|a| a == "--save")
        .and_then(|i| args.get(i + 1));

    let profile = WanProfile::italy_japan();
    let params = AccuracyParams::paper();
    eprintln!("characterising '{}' from {n} heartbeats …", profile.name);
    let trace = DelayTrace::record(&profile, n, params.eta, params.seed);
    let ch = trace.characteristics().expect("non-empty trace");

    println!("Table 4 — Characteristics of the WAN connection used in the experiments");
    println!("{ch}");
    println!("Number of hops          {:>10}", profile.hops);
    println!(
        "\n(paper's live link: mean ≈ 200 ms, σ 7.6 ms, max 340 ms, min 192 ms, 18 hops, loss < 1%)"
    );

    if let Some(path) = save {
        trace.save_csv(path).expect("write trace CSV");
        eprintln!("trace saved to {path}");
    }
}
