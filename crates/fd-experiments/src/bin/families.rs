//! Detector-families benchmark: runs the extended 54-combination grid
//! (paper 30 + φ-accrual ×2, adaptive μ+Kσ, online model) at 1k and
//! 100k sources, rolls QoS up per predictor family, adds the
//! deterministic flapping-source and Impact-FD weight comparisons, and
//! writes `BENCH_families.json`.
//!
//! ```text
//! families [--smoke] [--sources 1k,100k] [--cycles N]
//!          [--shards N | --threads N] [--seed N] [--out PATH]
//! ```
//!
//! `--smoke` is the CI configuration: a small population with the
//! experiment's invariants asserted — every family (new ones included)
//! detects the injected crashes, the two-phase φ lifecycle rides out
//! the flapping schedule with zero wrongful suspicions while the
//! stable-only variant spikes on every flap, and the impact plane ranks
//! a lost heavy source below three lost light ones. Nothing is written
//! in smoke mode.

use fd_experiments::families::{render_json, run_families, run_flapping, run_impact};

fn arg_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

/// Parses `1000`, `10k`, `100K`, `1m`, `1M` style source counts.
fn parse_count(s: &str) -> Option<usize> {
    let t = s.trim();
    let (digits, mult) = match t.chars().last() {
        Some('k' | 'K') => (&t[..t.len() - 1], 1_000),
        Some('m' | 'M') => (&t[..t.len() - 1], 1_000_000),
        _ => (t, 1),
    };
    digits.parse::<usize>().ok().map(|n| n * mult)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let seed = arg_value(&args, "--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(42u64);
    let cycles = arg_value(&args, "--cycles")
        .and_then(|v| v.parse().ok())
        .unwrap_or(8u64);
    let shards = arg_value(&args, "--threads")
        .or_else(|| arg_value(&args, "--shards"))
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });

    if args.iter().any(|a| a == "--smoke") {
        run_smoke(seed, shards);
        return;
    }

    let counts: Vec<usize> = match arg_value(&args, "--sources") {
        Some(list) => list
            .split(',')
            .map(|s| parse_count(s).unwrap_or_else(|| panic!("bad source count: {s}")))
            .collect(),
        None => vec![1_000, 100_000],
    };
    let out = arg_value(&args, "--out").unwrap_or("BENCH_families.json");

    println!("families: sources={counts:?} cycles={cycles} threads={shards} seed={seed}");
    let bench = run_families(&counts, cycles, shards, seed);
    for scale in &bench.scales {
        eprintln!(
            "  {:>9} sources ({} shards): digest {:016x}, {:.0} ms",
            scale.sources, scale.shards, scale.digest, scale.wall_ms
        );
        for row in &scale.rows {
            eprintln!(
                "    {:<22} {} T_D {:>10.1} µs  P_A {:.7}  ({} det / {} crashes, {} mistakes)",
                row.family,
                if row.extended { "ext " } else { "base" },
                row.mean_td_us,
                row.pa,
                row.detections,
                row.crashes,
                row.mistakes,
            );
        }
    }
    eprintln!(
        "  flapping: two-phase {} vs stable-only {} wrongful suspicions over {} flaps",
        bench.flapping.wrongful_two_phase,
        bench.flapping.wrongful_stable_only,
        bench.flapping.flap_cycles,
    );
    eprintln!(
        "  impact: heavy lost {:.1} < three light lost {:.1} (total {:.1})",
        bench.impact.trust_heavy_lost, bench.impact.trust_three_light_lost, bench.impact.total,
    );

    let doc = render_json(&bench, shards);
    std::fs::write(out, &doc).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
    println!("wrote {out}");
}

/// CI gate: full-grid coverage, the flapping story and the impact-weight
/// ordering asserted on a small population; nothing written.
fn run_smoke(seed: u64, threads: usize) {
    let shards = threads.max(2);
    let sources = 96 * shards;
    println!(
        "families --smoke: {sources} sources × 6 cycles over {shards} shards, \
         54-combo grid + flapping + impact asserted"
    );
    let bench = run_families(&[sources], 6, shards, seed);
    let scale = &bench.scales[0];
    assert_eq!(scale.rows.len(), 9, "5 paper + 4 extended families");
    assert_eq!(scale.rows.iter().filter(|r| r.extended).count(), 4);
    for row in &scale.rows {
        assert_eq!(row.combos, 6, "{}: six margins per family", row.family);
        assert!(row.crashes > 0, "{}: crash plan never fired", row.family);
        assert!(row.detections > 0, "{}: no crash detected", row.family);
        assert!(
            row.pa > 0.0 && row.pa <= 1.0,
            "{}: pa {} out of range",
            row.family,
            row.pa
        );
    }
    let f = &bench.flapping;
    assert_eq!(
        f.wrongful_two_phase, 0,
        "two-phase φ wrongly suspected an up source"
    );
    assert!(
        f.wrongful_stable_only >= f.flap_cycles,
        "stable-only variant should spike on every flap"
    );
    assert_eq!(f.readmissions, f.flap_cycles, "missed re-admissions");
    let im = &bench.impact;
    assert!(
        im.trust_heavy_lost < im.trust_three_light_lost,
        "impact weights did not rank the heavy source above three light ones"
    );
    assert!(
        im.unweighted_heavy_lost > im.unweighted_three_light_lost,
        "unweighted popcount should order by count, not weight"
    );
    println!(
        "  ok: digest {:016x}, flapping {} vs {}, impact {:.1} < {:.1}",
        scale.digest,
        f.wrongful_two_phase,
        f.wrongful_stable_only,
        im.trust_heavy_lost,
        im.trust_three_light_lost,
    );

    // Shard invariance on the extended grid, while we are here: the
    // digest must not move with the worker count.
    let again = run_families(&[sources], 6, shards + 3, seed);
    assert_eq!(
        again.scales[0].digest, scale.digest,
        "extended-grid digest moved with the shard count"
    );
    // The side measurements are deterministic end to end.
    let f2 = run_flapping();
    assert_eq!(f2.wrongful_stable_only, f.wrongful_stable_only);
    let im2 = run_impact(16, 8.0);
    assert_eq!(
        im2.trust_heavy_lost.to_bits(),
        im.trust_heavy_lost.to_bits()
    );
    println!("  ok: digest shard-invariant at {} shards", shards + 3);
}
