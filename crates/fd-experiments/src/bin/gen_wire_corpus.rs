//! Regenerates the pinned wire-fuzz seed corpus in
//! `tests/corpus/wire/` from the *current* codec, so a deliberate
//! layout change re-stamps every seed in one command instead of a
//! by-hand hexdump session:
//!
//! ```text
//! cargo run -p fd-experiments --bin gen_wire_corpus
//! ```
//!
//! `req_*`/`resp_*` seeds are produced by the real encoders (the fuzz
//! campaign asserts they decode as named); the hostile shapes
//! (`bad_*`, `zero_len`, `truncated_body`) and the counted-body liar
//! seeds are byte-surgery on valid frames, each checked here to still
//! be rejected the way the regression tests expect.

use std::fs;
use std::path::Path;

use fd_net::framing::FrameError;
use fd_serve::wire::{
    ERR_OUT_OF_RANGE, FLAG_PUBLISHED, FLAG_SEGMENT_DEGRADED, FLAG_SUSPECTING, MAGIC, VERSION,
};
use fd_serve::{Request, Response};

/// magic u32 + version u8 + tag u8 + token u32.
const PREFIX: usize = 10;

fn main() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/corpus/wire");
    fs::create_dir_all(&dir).expect("create corpus dir");

    // -- request seeds (one per tag, accepted by Request::decode),
    //    then response seeds (one per tag, accepted by Response::decode)
    let mut seeds: Vec<(&str, Vec<u8>)> = vec![
        (
            "req_point",
            Request::Point {
                token: 0x0102_0304,
                source: 5,
                combo: 2,
            }
            .encode(),
        ),
        (
            "req_range",
            Request::Range {
                token: 0x0a0b_0c0d,
                combo: 0,
                first_source: 0,
                max_words: 4,
            }
            .encode(),
        ),
        (
            "req_range_huge",
            Request::Range {
                token: 7,
                combo: 1,
                first_source: 64,
                max_words: u16::MAX,
            }
            .encode(),
        ),
        (
            "req_delta_since",
            Request::DeltaSince {
                token: 42,
                segment: 0,
                since_epoch: 1,
            }
            .encode(),
        ),
        (
            "req_subscribe",
            Request::Subscribe {
                token: 43,
                segment: 0,
                since_epoch: 0,
            }
            .encode(),
        ),
        (
            "req_unsubscribe",
            Request::Unsubscribe {
                token: 44,
                segment: 0,
            }
            .encode(),
        ),
        ("req_info", Request::Info { token: 45 }.encode()),
        (
            "resp_point",
            Response::PointResp {
                token: 1,
                epoch: 9,
                flags: FLAG_SUSPECTING | FLAG_PUBLISHED,
                age_us: 1_500,
                hops: 1,
            }
            .encode(),
        ),
    ];
    let range = Response::RangeResp {
        token: 2,
        segment: 0,
        epoch: 9,
        combo: 1,
        flags: FLAG_PUBLISHED,
        age_us: 2_750,
        hops: 2,
        first_word_source: 64,
        words: vec![0xAAAA, 0x5555],
    };
    seeds.push(("resp_range", range.encode()));
    let delta = Response::DeltaResp {
        token: 3,
        segment: 1,
        from_epoch: 1,
        to_epoch: 3,
        virtual_us: 2_000_000,
        age_us: 310,
        hops: 1,
        flags: 0,
        changes: vec![(0, 0xFF)],
    };
    seeds.push(("resp_delta", delta.encode()));
    // The pure health-transition push: no epoch movement, flag only.
    seeds.push((
        "resp_delta_degraded",
        Response::DeltaResp {
            token: 3,
            segment: 1,
            from_epoch: 3,
            to_epoch: 3,
            virtual_us: 2_000_000,
            age_us: 310,
            hops: 0,
            flags: FLAG_SEGMENT_DEGRADED,
            changes: Vec::new(),
        }
        .encode(),
    ));
    seeds.push((
        "resp_resync",
        Response::Resync {
            token: 4,
            segment: 0,
            current_epoch: 12,
        }
        .encode(),
    ));
    seeds.push((
        "resp_err",
        Response::Err {
            token: 5,
            code: ERR_OUT_OF_RANGE,
        }
        .encode(),
    ));
    seeds.push((
        "resp_info",
        Response::InfoResp {
            token: 6,
            sources: 128,
            combos: 2,
            seg_lens: vec![64, 64],
        }
        .encode(),
    ));

    // -- counted-body liars: valid frame, count field patched to claim
    //    far more elements than the datagram carries ---------------------
    // RangeResp fixed body: segment 2 + epoch 8 + combo 2 + flags 1 +
    // age 8 + hops 1 + first_word_source 4 = 26, count next.
    let mut liar = range.encode();
    liar[PREFIX + 26..PREFIX + 28].copy_from_slice(&u16::MAX.to_be_bytes());
    seeds.push(("resp_range_liar", liar));
    // DeltaResp fixed body: segment 2 + from 8 + to 8 + virtual 8 +
    // age 8 + hops 1 + flags 1 = 36, count next.
    let mut liar = delta.encode();
    liar[PREFIX + 36..PREFIX + 38].copy_from_slice(&u16::MAX.to_be_bytes());
    seeds.push(("resp_delta_liar", liar));

    // -- hostile shapes: rejected by both decoders ----------------------
    let valid = Request::Point {
        token: 0,
        source: 0,
        combo: 0,
    }
    .encode();
    let mut bad_magic = valid.clone();
    bad_magic[..4].copy_from_slice(b"FDQS");
    seeds.push(("bad_magic", bad_magic));
    let mut bad_version = valid.clone();
    bad_version[4] = VERSION + 8;
    seeds.push(("bad_version", bad_version));
    let mut bad_tag = Vec::new();
    bad_tag.extend_from_slice(&MAGIC.to_be_bytes());
    bad_tag.push(VERSION);
    bad_tag.push(0x4D); // a tag neither codec knows
    bad_tag.extend_from_slice(&[0, 0, 0, 0]);
    seeds.push(("bad_tag", bad_tag));
    seeds.push(("zero_len", Vec::new()));
    seeds.push(("truncated_body", valid[..PREFIX + 2].to_vec()));

    // Re-check every seed decodes (or refuses) exactly as its name
    // promises before touching the files.
    for (name, bytes) in &seeds {
        let req = Request::decode(bytes);
        let resp = Response::decode(bytes);
        if name.starts_with("req_") {
            assert!(req.is_ok(), "{name} must decode as a request: {req:?}");
        } else if name.starts_with("resp_") && !name.ends_with("_liar") {
            assert!(resp.is_ok(), "{name} must decode as a response: {resp:?}");
        } else if name.ends_with("_liar") {
            assert!(
                matches!(resp, Err(FrameError::Truncated { .. })),
                "{name} must be rejected as truncated: {resp:?}"
            );
        } else {
            assert!(
                req.is_err() && resp.is_err(),
                "{name} must be rejected by both decoders"
            );
        }
    }

    for (name, bytes) in &seeds {
        let path = dir.join(format!("{name}.bin"));
        fs::write(&path, bytes).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
        println!("{:>22}  {} bytes", format!("{name}.bin"), bytes.len());
    }
    println!("corpus: {} seeds -> {}", seeds.len(), dir.display());
}
