//! Sweeps the heartbeat period η: the fundamental message-cost vs detection
//! trade-off behind the paper's Table 5 choice of η = 1 s.
//!
//! Detection time scales with η (≈ η/2 waiting for the next freshness point
//! plus delay and margin); message cost scales with 1/η; accuracy moves with
//! both. This sweep makes the paper's parameter choice inspectable.
//!
//! ```text
//! cargo run --release -p fd-experiments --bin eta_sweep
//! ```

use fd_core::combinations::Combination;
use fd_core::{MarginKind, PredictorKind};
use fd_experiments::{HeartbeaterLayer, MonitorLayer, SimCrashLayer};
use fd_net::WanProfile;
use fd_runtime::{Process, ProcessId, SimEngine};
use fd_sim::{SeedTree, SimDuration, SimTime};
use fd_stat::extract_metrics;

fn main() {
    let profile = WanProfile::italy_japan();
    let horizon = SimTime::from_secs(3_000);
    println!(
        "{:>10} {:>12} {:>12} {:>10} {:>10} {:>12}",
        "η (ms)", "T_D (ms)", "T_M (ms)", "mistakes", "P_A", "msgs/min"
    );
    for eta_ms in [250u64, 500, 1_000, 2_000, 5_000] {
        let eta = SimDuration::from_millis(eta_ms);
        let seeds = SeedTree::new(0xE7A).subtree(&format!("eta-{eta_ms}"));
        let fd = Combination::new(PredictorKind::Last, MarginKind::Jac { phi: 2.0 }).build(eta);
        let mut engine = SimEngine::new();
        engine.add_process(Process::new(ProcessId(0)).with_layer(MonitorLayer::new(vec![fd])));
        engine.add_process(
            Process::new(ProcessId(1))
                .with_layer(SimCrashLayer::new(
                    SimDuration::from_secs(300),
                    SimDuration::from_secs(30),
                    seeds.rng("crash"),
                ))
                .with_layer(HeartbeaterLayer::new(ProcessId(0), eta)),
        );
        engine.set_link(ProcessId(1), ProcessId(0), profile.link(seeds.rng("link")));
        engine.run_until(horizon);
        let sent = engine.link_stats(ProcessId(1), ProcessId(0)).unwrap().sent;
        let m = extract_metrics(engine.event_log(), 0, horizon);
        println!(
            "{:>10} {:>12.1} {:>12.1} {:>10} {:>10.5} {:>12.1}",
            eta_ms,
            m.mean_td().unwrap_or(f64::NAN),
            m.mean_tm().unwrap_or(f64::NAN),
            m.mistake_durations_ms.len(),
            m.query_accuracy().unwrap_or(f64::NAN),
            sent as f64 / horizon.as_secs_f64() * 60.0,
        );
    }
    println!("\n(the paper's η = 1 s sits where T_D ≈ 0.7 s at one message per second;");
    println!(" halving η halves T_D but doubles the message cost — Chen et al.'s trade-off)");
}
