//! Shard-chaos recovery benchmark: crashes shards mid-run at scale,
//! attributes the QoS cost (ΔT_D, ΔP_A) and serving-plane availability
//! to warm vs cold recovery, and writes `BENCH_chaos.json`.
//!
//! ```text
//! chaos_scale [--smoke] [--sources 10k,100k] [--cycles N]
//!             [--shards N | --threads N] [--seed N] [--out PATH]
//! ```
//!
//! `--smoke` is the CI configuration: a small population scaled to the
//! thread count, with the experiment's two invariants asserted — a warm
//! restart is digest-bit-identical to the unfaulted baseline (ΔT_D and
//! ΔP_A exactly zero), and a dead shard degrades exactly its own segment
//! while the survivors keep answering. Nothing is written in smoke mode.

use fd_experiments::chaos_scale::{render_json, run_chaos_row};

fn arg_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

/// Parses `1000`, `10k`, `100K`, `1m`, `1M` style source counts.
fn parse_count(s: &str) -> Option<usize> {
    let t = s.trim();
    let (digits, mult) = match t.chars().last() {
        Some('k' | 'K') => (&t[..t.len() - 1], 1_000),
        Some('m' | 'M') => (&t[..t.len() - 1], 1_000_000),
        _ => (t, 1),
    };
    digits.parse::<usize>().ok().map(|n| n * mult)
}

fn print_row(row: &fd_experiments::chaos_scale::ChaosScaleRow) {
    eprintln!(
        "  {:>9} sources ({} shards): baseline T_D {:>9.1} µs, P_A {:.7}",
        row.sources, row.shards, row.baseline.mean_td_us, row.baseline.pa,
    );
    for v in [&row.warm, &row.cold, &row.dead] {
        eprintln!(
            "    {:<8} ΔT_D {:>+9.1} µs  ΔP_A {:>+12.9}  {} crash(es), {} warm / {} cold \
             restores, {} replayed, {} dead, availability {:.4}",
            v.name,
            v.mean_td_us - row.baseline.mean_td_us,
            v.pa - row.baseline.pa,
            v.shard_crashes,
            v.warm_restores,
            v.cold_restores,
            v.replayed_events,
            v.dead_shards,
            v.query_availability(),
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let seed = arg_value(&args, "--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(42u64);
    let cycles = arg_value(&args, "--cycles")
        .and_then(|v| v.parse().ok())
        .unwrap_or(8u64);
    let shards = arg_value(&args, "--threads")
        .or_else(|| arg_value(&args, "--shards"))
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });

    if args.iter().any(|a| a == "--smoke") {
        run_smoke(seed, shards);
        return;
    }

    let counts: Vec<usize> = match arg_value(&args, "--sources") {
        Some(list) => list
            .split(',')
            .map(|s| parse_count(s).unwrap_or_else(|| panic!("bad source count: {s}")))
            .collect(),
        None => vec![10_000, 100_000],
    };
    let out = arg_value(&args, "--out").unwrap_or("BENCH_chaos.json");

    println!("chaos_scale: sources={counts:?} cycles={cycles} threads={shards} seed={seed}");
    let rows: Vec<_> = counts
        .iter()
        .map(|&n| {
            let row = run_chaos_row(n, cycles, shards, seed);
            print_row(&row);
            assert_eq!(
                row.warm.digest, row.baseline.digest,
                "warm recovery diverged from the baseline at {n} sources"
            );
            row
        })
        .collect();

    let doc = render_json(&rows, cycles, shards, seed);
    std::fs::write(out, &doc).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
    println!("wrote {out}");
}

/// CI gate: warm bit-identity, cold divergence and single-segment
/// degradation asserted on a small population; nothing written.
fn run_smoke(seed: u64, threads: usize) {
    let shards = threads.max(2);
    let sources = 128 * shards;
    println!(
        "chaos_scale --smoke: {sources} sources × 6 cycles over {shards} shards, \
         warm bit-identity + dead-shard degradation asserted"
    );
    let row = run_chaos_row(sources, 6, shards, seed);
    print_row(&row);
    assert_eq!(
        row.warm.digest, row.baseline.digest,
        "warm restart not bit-identical: {:016x} vs {:016x}",
        row.warm.digest, row.baseline.digest
    );
    assert_eq!(row.delta_td_warm_us, 0.0, "warm recovery moved T_D");
    assert_eq!(row.delta_pa_warm, 0.0, "warm recovery moved P_A");
    assert!(
        row.warm.shard_crashes >= 2 * row.shards as u64,
        "plan under-fired"
    );
    assert_ne!(
        row.cold.digest, row.baseline.digest,
        "cold restart unexpectedly bit-identical"
    );
    assert_eq!(
        row.dead.dead_shards, 1,
        "dead variant lost the wrong shard count"
    );
    assert_eq!(
        row.dead.degraded_segments, 1,
        "degradation did not reach the view"
    );
    assert!(
        row.dead.surviving_sources < sources,
        "dead shard's block still counted as surviving"
    );
    assert!(
        row.baseline.detections > 0,
        "no detection work to attribute"
    );
    println!(
        "  ok: digest {:016x}, ΔT_D cold {:+.1} µs, ΔP_A cold {:+.9}, \
         {} warm restores ({} events replayed)",
        row.baseline.digest,
        row.delta_td_cold_us,
        row.delta_pa_cold,
        row.warm.warm_restores,
        row.warm.replayed_events,
    );
}
