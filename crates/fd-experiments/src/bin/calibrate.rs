//! Fits a synthetic link profile to a measured delay trace and verifies the
//! fit by regenerating and re-characterising.
//!
//! ```text
//! cargo run --release -p fd-experiments --bin calibrate -- --trace PATH.csv [--name NAME]
//! ```
//!
//! Without `--trace`, a demonstration trace is recorded from the built-in
//! Italy–Japan profile and re-fitted.

use fd_net::{calibrate_profile, DelayTrace, WanProfile};
use fd_sim::SimDuration;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let name = args
        .iter()
        .position(|a| a == "--name")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "calibrated".to_owned());
    let trace = match args
        .iter()
        .position(|a| a == "--trace")
        .and_then(|i| args.get(i + 1))
    {
        Some(path) => DelayTrace::load_csv(path).unwrap_or_else(|e| {
            eprintln!("cannot load trace '{path}': {e}");
            std::process::exit(2);
        }),
        None => {
            eprintln!("no --trace given: recording 30k heartbeats from the built-in profile …");
            DelayTrace::record(
                &WanProfile::italy_japan(),
                30_000,
                SimDuration::from_secs(1),
                0xCAFE,
            )
        }
    };

    let Some((profile, diag)) = calibrate_profile(&trace, &name) else {
        eprintln!("trace too short to calibrate (need ≥ 100 delivered samples)");
        std::process::exit(1);
    };

    println!("diagnostics:");
    println!("  floor            {:.1} ms", diag.floor_ms);
    println!(
        "  spike threshold  {:.1} ms (fraction {:.4})",
        diag.spike_threshold_ms, diag.spike_fraction
    );
    println!(
        "  body mean/var    {:.1} ms / {:.1} ms²",
        diag.body_mean_ms, diag.body_var_ms2
    );
    println!("  lag-1 autocorr   {:.3}", diag.lag1);

    println!("\nfitted profile: {profile:#?}");

    // Verification: regenerate and compare Table-4 style characteristics.
    let original = trace.characteristics().expect("non-empty trace");
    let regenerated = DelayTrace::record(
        &profile,
        trace.len().max(5_000),
        SimDuration::from_secs(1),
        7,
    )
    .characteristics()
    .expect("non-empty regeneration");
    println!("\nverification (original vs regenerated):");
    println!(
        "  mean  {:.1} vs {:.1} ms",
        original.mean_ms, regenerated.mean_ms
    );
    println!(
        "  std   {:.1} vs {:.1} ms",
        original.std_ms, regenerated.std_ms
    );
    println!(
        "  min   {:.1} vs {:.1} ms",
        original.min_ms, regenerated.min_ms
    );
    println!(
        "  max   {:.1} vs {:.1} ms",
        original.max_ms, regenerated.max_ms
    );
    println!(
        "  loss  {:.3}% vs {:.3}%",
        original.loss_probability * 100.0,
        regenerated.loss_probability * 100.0
    );
}
