//! Configures a constant-margin (NFD-E style) detector for explicit QoS
//! requirements against the calibrated WAN link — the configuration story of
//! Chen et al. that the paper's baseline relies on, done by simulation.
//!
//! ```text
//! cargo run --release -p fd-experiments --bin qos_config [-- --td-upper MS] \
//!     [--tmr-lower MS] [--tm-upper MS]
//! ```

use fd_experiments::{configure_nfd, QosRequirements};
use fd_net::WanProfile;

fn flag(args: &[String], name: &str, default: f64) -> f64 {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let req = QosRequirements {
        td_upper_ms: flag(&args, "--td-upper", 4_000.0),
        tmr_lower_ms: flag(&args, "--tmr-lower", 20_000.0),
        tm_upper_ms: flag(&args, "--tm-upper", 3_000.0),
    };
    let profile = WanProfile::italy_japan();
    println!("requirements on '{}':", profile.name);
    println!("  T_D^U  ≤ {:.0} ms", req.td_upper_ms);
    println!("  T_MR   ≥ {:.0} ms", req.tmr_lower_ms);
    println!("  T_M    ≤ {:.0} ms", req.tm_upper_ms);

    match configure_nfd(&profile, &req, 0xC0F1) {
        Some(outcome) => {
            println!("\nconfigured NFD-E detector:");
            println!(
                "  η = {}   α = {:.1} ms",
                outcome.config.eta, outcome.config.alpha_ms
            );
            println!("\nverified by simulation:");
            println!(
                "  T_D^U = {:.0} ms   (crashes {}/{} detected)",
                outcome.verified.td_upper().unwrap_or(f64::NAN),
                outcome.verified.total_crashes - outcome.verified.undetected_crashes,
                outcome.verified.total_crashes,
            );
            match outcome.verified.mean_tmr() {
                Some(tmr) => println!("  T_MR  = {tmr:.0} ms"),
                None => println!("  T_MR  = (≤1 mistake in the whole run)"),
            }
            match outcome.verified.mean_tm() {
                Some(tm) => println!("  T_M   = {tm:.0} ms"),
                None => println!("  T_M   = (no mistakes)"),
            }
        }
        None => {
            println!("\nno (η, α) configuration can meet these requirements on this link");
            println!("(e.g. a T_D^U below one network delay, or accuracy bounds the loss");
            println!(" rate makes impossible at any constant margin)");
            std::process::exit(1);
        }
    }
}
