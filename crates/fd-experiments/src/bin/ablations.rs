//! Accuracy ablations of the design choices DESIGN.md calls out: how the
//! predictor tunables move `msqerr`, and how the safety-margin parameters
//! move the QoS metrics (interpolating the paper's low/med/high levels).
//!
//! ```text
//! cargo run --release -p fd-experiments --bin ablations [-- --quick]
//! ```

use fd_arima::ArimaSpec;
use fd_core::combinations::Combination;
use fd_core::predictor::{one_step_predictions, ArimaPredictor, Lpf, WinMean};
use fd_core::{MarginKind, PredictorKind};
use fd_experiments::{ExperimentParams, Metric};
use fd_net::{DelayTrace, WanProfile};
use fd_stat::mean_squared_error;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let profile = WanProfile::italy_japan();
    let n = if quick { 8_000 } else { 40_000 };
    let trace = DelayTrace::record(&profile, n, fd_sim::SimDuration::from_secs(1), 0xAB1A);
    let delays = trace.delays_ms();
    let warmup = 200;
    let score = |preds: &[f64]| mean_squared_error(&delays[warmup..], &preds[warmup..]);

    println!("Ablation 1 — WINMEAN window size (paper: N = 10)");
    println!("{:<10} {:>14}", "N", "msqerr (ms²)");
    for window in [2usize, 5, 10, 25, 50, 200] {
        let mut p = WinMean::new(window);
        let preds = one_step_predictions(&mut p, &delays);
        println!("{window:<10} {:>14.3}", score(&preds));
    }

    println!("\nAblation 2 — LPF smoothing factor (paper: β = 1/8)");
    println!("{:<10} {:>14}", "β", "msqerr (ms²)");
    for beta in [0.03125f64, 0.0625, 0.125, 0.25, 0.5, 1.0] {
        let mut p = Lpf::new(beta);
        let preds = one_step_predictions(&mut p, &delays);
        println!("{beta:<10} {:>14.3}", score(&preds));
    }

    println!("\nAblation 3 — ARIMA refit interval (paper: N_Arima = 1000)");
    println!("{:<10} {:>14}", "N_Arima", "msqerr (ms²)");
    for refit in [250usize, 500, 1_000, 2_000, 5_000] {
        let mut p = ArimaPredictor::new(ArimaSpec::new(2, 1, 1), refit);
        let preds = one_step_predictions(&mut p, &delays);
        println!("{refit:<10} {:>14.3}", score(&preds));
    }

    println!("\nAblation 4 — safety-margin level vs QoS (LAST predictor)");
    let params = ExperimentParams {
        num_cycles: if quick { 1_000 } else { 4_000 },
        runs: if quick { 2 } else { 4 },
        ..ExperimentParams::paper()
    };
    println!(
        "{:<16} {:>12} {:>12} {:>12} {:>10}",
        "margin", "T_D (ms)", "T_M (ms)", "T_MR (ms)", "P_A"
    );
    for margin in [
        MarginKind::Ci { gamma: 0.5 },
        MarginKind::Ci { gamma: 1.0 },
        MarginKind::Ci { gamma: 2.0 },
        MarginKind::Ci { gamma: 3.31 },
        MarginKind::Ci { gamma: 5.0 },
        MarginKind::Jac { phi: 0.5 },
        MarginKind::Jac { phi: 1.0 },
        MarginKind::Jac { phi: 2.0 },
        MarginKind::Jac { phi: 4.0 },
        MarginKind::Jac { phi: 8.0 },
    ] {
        // One-detector experiment: rebuild the grid machinery by hand.
        let results = run_margin_probe(&profile, &params, margin);
        println!(
            "{:<16} {:>12.1} {:>12.1} {:>12.1} {:>10.5}",
            Combination::new(PredictorKind::Last, margin).label(),
            results.0,
            results.1,
            results.2,
            results.3
        );
    }
}

/// Runs the quick QoS experiment and pulls one (T_D, T_M, T_MR, P_A) row for
/// `LAST + margin` out of a single-combination experiment.
fn run_margin_probe(
    profile: &WanProfile,
    params: &ExperimentParams,
    margin: MarginKind,
) -> (f64, f64, f64, f64) {
    use fd_experiments::{HeartbeaterLayer, MonitorLayer, SimCrashLayer};
    use fd_runtime::{Process, ProcessId, SimEngine};
    use fd_sim::{SeedTree, SimTime};

    let mut pooled = fd_stat::QosMetrics::default();
    for run in 0..params.runs {
        let seeds = SeedTree::new(params.seed).subtree(&format!("ablation-{run}"));
        let fd = Combination::new(PredictorKind::Last, margin).build(params.eta);
        let mut engine = SimEngine::new();
        engine.add_process(Process::new(ProcessId(0)).with_layer(MonitorLayer::new(vec![fd])));
        engine.add_process(
            Process::new(ProcessId(1))
                .with_layer(SimCrashLayer::new(
                    params.mttc,
                    params.ttr,
                    seeds.rng("crash"),
                ))
                .with_layer(
                    HeartbeaterLayer::new(ProcessId(0), params.eta)
                        .with_max_cycles(params.num_cycles),
                ),
        );
        engine.set_link(ProcessId(1), ProcessId(0), profile.link(seeds.rng("link")));
        let end = SimTime::ZERO + params.run_duration();
        engine.run_until(end);
        pooled.merge(&fd_stat::extract_metrics(engine.event_log(), 0, end));
    }
    (
        Metric::Td.of(&pooled).unwrap_or(f64::NAN),
        Metric::Tm.of(&pooled).unwrap_or(f64::NAN),
        Metric::Tmr.of(&pooled).unwrap_or(f64::NAN),
        Metric::Pa.of(&pooled).unwrap_or(f64::NAN),
    )
}
