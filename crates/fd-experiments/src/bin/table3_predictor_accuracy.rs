//! Regenerates the paper's Table 3: predictor accuracy (msqerr) over
//! `N_one_way = 100 000` one-way heartbeat delays on the Italy–Japan link.
//!
//! ```text
//! cargo run --release -p fd-experiments --bin table3_predictor_accuracy [-- --quick] [--profile NAME]
//! ```

use fd_experiments::{predictor_accuracy_experiment, AccuracyParams};
use fd_net::WanProfile;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let profile = match args
        .iter()
        .position(|a| a == "--profile")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
    {
        Some("lan") => WanProfile::lan(),
        Some("congested-wan") => WanProfile::congested_wan(),
        Some("mobile") => WanProfile::mobile(),
        Some("italy-japan") | None => WanProfile::italy_japan(),
        Some(other) => {
            eprintln!("unknown profile '{other}' (italy-japan|lan|congested-wan|mobile)");
            std::process::exit(2);
        }
    };
    let params = if quick {
        AccuracyParams::quick()
    } else {
        AccuracyParams::paper()
    };
    eprintln!(
        "collecting {} one-way delays on '{}' …",
        params.n_one_way, profile.name
    );
    let table = predictor_accuracy_experiment(&profile, &params);
    println!("Table 3 — Predictor accuracy");
    print!("{table}");
}
