//! Regenerates the paper's Table 2 ARIMA identification: searches
//! `(p, d, q)` for the minimum held-out one-step msqerr, as the paper did
//! with the RPS toolkit over `[0,0,0]–[10,10,10]`.
//!
//! The default grid is `[0..=3] × [0..=1] × [0..=2]` (the paper's winner
//! `(2,1,1)` lies well inside); pass `--full` for `[0..=10]³`, which takes
//! considerably longer.
//!
//! ```text
//! cargo run --release -p fd-experiments --bin table2_arima_selection [-- --full] [--n N]
//! ```

use fd_experiments::{arima_selection_experiment, AccuracyParams};
use fd_net::WanProfile;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let full = args.iter().any(|a| a == "--full");
    let n = args
        .iter()
        .position(|a| a == "--n")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(20_000);
    let (p_max, d_max, q_max) = if full { (10, 10, 10) } else { (3, 1, 2) };

    let profile = WanProfile::italy_japan();
    let params = AccuracyParams {
        n_one_way: n,
        ..AccuracyParams::paper()
    };
    eprintln!("searching ARIMA orders in [0..{p_max}]x[0..{d_max}]x[0..{q_max}] over {n} delays …");
    match arima_selection_experiment(&profile, &params, p_max, d_max, q_max) {
        Some(report) => {
            println!("Table 2 — ARIMA order selection (RPS-toolkit analog)");
            println!(
                "winner: {}   (held-out msqerr {:.3} ms²; paper's winner on its live trace: ARIMA(2,1,1))",
                report.best.spec, report.best.msqerr
            );
            println!("\ntop candidates:");
            println!("{:<16} {:>14}", "order", "msqerr (ms²)");
            for r in report.ranked.iter().take(10) {
                println!("{:<16} {:>14.3}", r.spec.to_string(), r.msqerr);
            }
            if report.failed > 0 {
                println!("({} candidates failed to fit)", report.failed);
            }
        }
        None => {
            eprintln!("no candidate could be fitted — series too short?");
            std::process::exit(1);
        }
    }
}
