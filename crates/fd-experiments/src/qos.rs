//! The QoS experiment behind Figures 4–8.
//!
//! Thirteen independent runs (Section 5.2), each `NumCycles` heartbeat
//! cycles long, with SimCrash injecting crashes on the monitored process and
//! all 30 combinations driven by one shared-computation
//! [`fd_core::DetectorBank`] on the monitor. Per detector, the
//! runs' `T_D`, `T_M`, `T_MR` samples are pooled and the derived `T_D^U`
//! and `P_A` computed.

use fd_core::{all_combinations, nfd, Combination};
use fd_net::WanProfile;
use fd_runtime::{Process, ProcessId, SimEngine};
use fd_sim::{SeedTree, SimTime};
use fd_stat::{accumulate_metrics, EventLog, QosMetrics, QosReport};
use serde::{Deserialize, Serialize};

use crate::config::ExperimentParams;
use crate::layers::{HeartbeaterLayer, MonitorLayer, SimCrashLayer};
use crate::report::FigureTable;

/// The five QoS quantities the paper plots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Metric {
    /// Mean detection time (Figure 4).
    Td,
    /// Maximum observed detection time (Figure 5).
    TdUpper,
    /// Mean mistake duration (Figure 6).
    Tm,
    /// Mean mistake recurrence time (Figure 7).
    Tmr,
    /// Query accuracy probability (Figure 8).
    Pa,
}

impl Metric {
    /// Extracts this metric's scalar from pooled samples.
    pub fn of(&self, m: &QosMetrics) -> Option<f64> {
        match self {
            Metric::Td => m.mean_td(),
            Metric::TdUpper => m.td_upper(),
            Metric::Tm => m.mean_tm(),
            Metric::Tmr => m.mean_tmr(),
            Metric::Pa => m.query_accuracy(),
        }
    }

    /// The paper figure number this metric reproduces.
    pub fn figure_number(&self) -> u32 {
        match self {
            Metric::Td => 4,
            Metric::TdUpper => 5,
            Metric::Tm => 6,
            Metric::Tmr => 7,
            Metric::Pa => 8,
        }
    }

    /// Display title, e.g. `"T_D (ms)"`.
    pub fn title(&self) -> &'static str {
        match self {
            Metric::Td => "Delay metric T_D (ms)",
            Metric::TdUpper => "Delay metric T_D^U (ms)",
            Metric::Tm => "Accuracy metric T_M (ms)",
            Metric::Tmr => "Accuracy metric T_MR (ms)",
            Metric::Pa => "Accuracy metric P_A",
        }
    }

    /// `true` if smaller values are better for this metric.
    pub fn smaller_is_better(&self) -> bool {
        matches!(self, Metric::Td | Metric::TdUpper | Metric::Tm)
    }

    /// All five, in figure order.
    pub fn all() -> [Metric; 5] {
        [
            Metric::Td,
            Metric::TdUpper,
            Metric::Tm,
            Metric::Tmr,
            Metric::Pa,
        ]
    }
}

/// The pooled outcome of a QoS experiment.
#[derive(Debug, Clone)]
pub struct ExperimentResults {
    /// The 30 paper combinations, index-aligned with `labels`/`metrics`.
    pub combos: Vec<Combination>,
    /// Detector labels (combinations first, then any baseline).
    pub labels: Vec<String>,
    /// Pooled metric samples per detector.
    pub metrics: Vec<QosMetrics>,
    /// The parameters used.
    pub params: ExperimentParams,
    /// The link profile used.
    pub profile: WanProfile,
}

impl ExperimentResults {
    /// One [`QosReport`] per detector.
    pub fn reports(&self) -> Vec<QosReport> {
        self.labels
            .iter()
            .zip(&self.metrics)
            .map(|(l, m)| QosReport::from_metrics(l.clone(), m))
            .collect()
    }

    /// The figure table (predictor rows × margin columns) for a metric,
    /// covering the 30 grid combinations.
    pub fn figure(&self, metric: Metric) -> FigureTable {
        FigureTable::from_results(self, metric)
    }

    /// The metric value of the detector at `idx`.
    pub fn value(&self, idx: usize, metric: Metric) -> Option<f64> {
        self.metrics.get(idx).and_then(|m| metric.of(m))
    }

    /// Index of a detector by its full label.
    pub fn index_of(&self, label: &str) -> Option<usize> {
        self.labels.iter().position(|l| l == label)
    }

    /// A per-detector statistical report: means with 95% confidence
    /// intervals and sample counts — the uncertainty the paper's figures
    /// omit.
    pub fn detail_report(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<26} {:>18} {:>6} {:>18} {:>6} {:>12} {:>9}",
            "detector", "T_D ms (95% CI)", "n", "T_M ms (95% CI)", "n", "T_MR ms", "P_A"
        );
        for (label, m) in self.labels.iter().zip(&self.metrics) {
            let ci = |xs: &[f64]| {
                fd_stat::Summary::confidence_interval(xs, 0.95).map_or("-".to_owned(), |c| {
                    format!("{:.0} ± {:.0}", c.mean, c.half_width)
                })
            };
            let _ = writeln!(
                out,
                "{:<26} {:>18} {:>6} {:>18} {:>6} {:>12} {:>9}",
                label,
                ci(&m.detection_times_ms),
                m.detection_times_ms.len(),
                ci(&m.mistake_durations_ms),
                m.mistake_durations_ms.len(),
                m.mean_tmr().map_or("-".to_owned(), |t| format!("{t:.0}")),
                m.query_accuracy()
                    .map_or("-".to_owned(), |p| format!("{p:.5}")),
            );
        }
        out
    }
}

/// Builds the monitor for one run: the 30 paper combinations driven by one
/// shared-computation [`fd_core::DetectorBank`] plus, optionally, the NFD-E
/// baseline as a boxed extra detector.
fn build_monitor(
    params: &ExperimentParams,
    profile: &WanProfile,
) -> (Vec<Combination>, MonitorLayer) {
    let combos = all_combinations();
    let mut monitor = MonitorLayer::banked(&combos, params.eta);
    if params.include_nfd_baseline {
        // Configure NFD-E for a 2η worst-case detection target, the natural
        // "one missed heartbeat" requirement.
        let alpha = nfd::alpha_for_detection_target(
            2.0 * params.eta.as_millis_f64(),
            params.eta,
            profile.nominal_mean_ms(),
        )
        .unwrap_or(0.0);
        monitor = monitor.with_extra_detector(nfd::nfd_e(alpha, params.eta));
    }
    (combos, monitor)
}

/// Runs one experiment run with the given run index, returning the event
/// log, run-end time and detector labels.
pub fn run_qos_single(
    profile: &WanProfile,
    params: &ExperimentParams,
    run_idx: usize,
) -> (EventLog, SimTime, Vec<String>) {
    let seeds = SeedTree::new(params.seed).subtree(&format!("run-{run_idx}"));
    let (_combos, monitor) = build_monitor(params, profile);
    let link = profile.link(seeds.rng("link"));
    run_single_with_link(params, monitor, link, seeds.rng("crash"))
}

/// Runs one experiment run over an explicit link model (the
/// bring-your-own-trace path): crash injection and detectors as usual, but
/// the delays/losses come from `link` — typically
/// [`fd_net::DelayTrace::replay_link`] of a trace measured on a real
/// network.
pub fn run_qos_single_with_link(
    params: &ExperimentParams,
    link: fd_net::LinkModel,
    run_idx: usize,
) -> (EventLog, SimTime, Vec<String>) {
    let seeds = SeedTree::new(params.seed).subtree(&format!("trace-run-{run_idx}"));
    // The detector set does not depend on the profile unless the NFD-E
    // baseline is requested, whose α needs a mean-delay estimate.
    let (_combos, monitor) = build_monitor(params, &WanProfile::italy_japan());
    run_single_with_link(params, monitor, link, seeds.rng("crash"))
}

fn run_single_with_link(
    params: &ExperimentParams,
    monitor: MonitorLayer,
    link: fd_net::LinkModel,
    crash_rng: fd_sim::DetRng,
) -> (EventLog, SimTime, Vec<String>) {
    let labels = monitor.labels();
    // Pre-size from the configured workload: a handful of in-flight
    // deliveries/timers per detector, and roughly one sent + one received
    // + a few detector edges recorded per heartbeat cycle.
    let cycles = usize::try_from(params.num_cycles).unwrap_or(usize::MAX);
    let mut engine = SimEngine::with_capacity(
        4 * (labels.len() + 1),
        cycles.saturating_mul(4).min(1 << 22),
    );
    engine.add_process(Process::new(ProcessId(0)).with_layer(monitor));
    engine.add_process(
        Process::new(ProcessId(1))
            .with_layer(SimCrashLayer::new(params.mttc, params.ttr, crash_rng))
            .with_layer(
                HeartbeaterLayer::new(ProcessId(0), params.eta).with_max_cycles(params.num_cycles),
            ),
    );
    engine.set_link(ProcessId(1), ProcessId(0), link);

    let run_end = SimTime::ZERO + params.run_duration();
    engine.run_until(run_end);
    (engine.into_event_log(), run_end, labels)
}

/// The full QoS experiment driven by a recorded delay trace instead of a
/// synthetic profile: each run replays the trace's delays and losses (crash
/// schedules still vary across runs).
///
/// # Errors
///
/// Returns [`fd_net::EmptyTraceError`] if the trace has no delivered entries
/// to replay.
pub fn run_qos_experiment_on_trace(
    trace: &fd_net::DelayTrace,
    params: &ExperimentParams,
) -> Result<ExperimentResults, fd_net::EmptyTraceError> {
    let (combos, monitor) = build_monitor(params, &WanProfile::italy_japan());
    let labels = monitor.labels();
    let n_detectors = labels.len();
    let mut pooled = vec![QosMetrics::default(); n_detectors];
    for run_idx in 0..params.runs {
        let (log, run_end, _) = run_qos_single_with_link(params, trace.replay_link()?, run_idx);
        // One streaming pass over the log folds all detectors at once —
        // bit-identical to per-detector extraction (asserted in debug
        // builds and by the stream_differential tier-1 test).
        for (pool, m) in pooled
            .iter_mut()
            .zip(accumulate_metrics(&log, n_detectors, run_end))
        {
            pool.merge(&m);
        }
    }
    Ok(ExperimentResults {
        combos,
        labels,
        metrics: pooled,
        params: params.clone(),
        profile: WanProfile::italy_japan(),
    })
}

/// Runs the full experiment: `params.runs` independent runs (in parallel
/// threads), metrics pooled per detector.
pub fn run_qos_experiment(profile: &WanProfile, params: &ExperimentParams) -> ExperimentResults {
    let (combos, monitor) = build_monitor(params, profile);
    let labels = monitor.labels();
    let n_detectors = labels.len();

    let handles: Vec<_> = (0..params.runs)
        .map(|run_idx| {
            let profile = profile.clone();
            let params = params.clone();
            std::thread::spawn(move || {
                let (log, run_end, _) = run_qos_single(&profile, &params, run_idx);
                accumulate_metrics(&log, n_detectors, run_end)
            })
        })
        .collect();

    let mut pooled = vec![QosMetrics::default(); n_detectors];
    for h in handles {
        let run_metrics = h.join().expect("experiment run panicked");
        for (pool, m) in pooled.iter_mut().zip(&run_metrics) {
            pool.merge(m);
        }
    }

    ExperimentResults {
        combos,
        labels,
        metrics: pooled,
        params: params.clone(),
        profile: profile.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_results() -> ExperimentResults {
        let profile = WanProfile::italy_japan();
        let params = ExperimentParams::quick();
        run_qos_experiment(&profile, &params)
    }

    #[test]
    fn thirty_detectors_all_measured() {
        let results = quick_results();
        assert_eq!(results.labels.len(), 30);
        assert_eq!(results.metrics.len(), 30);
        for (label, m) in results.labels.iter().zip(&results.metrics) {
            // quick(): 600 s per run, MTTC 60 s / TTR 10 s → ~8 crashes/run,
            // 2 runs. Every detector must have seen them.
            assert!(
                m.total_crashes >= 10,
                "{label}: {} crashes",
                m.total_crashes
            );
            assert!(!m.detection_times_ms.is_empty(), "{label}: no detections");
        }
    }

    #[test]
    fn detection_times_are_sane() {
        let results = quick_results();
        for (label, m) in results.labels.iter().zip(&results.metrics) {
            let td = m.mean_td().unwrap();
            // η = 1 s, delays ≈ 200 ms: mean T_D sits between 0 and ~3 s for
            // every sane detector.
            assert!(td > 0.0 && td < 5_000.0, "{label}: T_D = {td}ms");
            let tdu = m.td_upper().unwrap();
            assert!(tdu >= td, "{label}");
        }
    }

    #[test]
    fn pa_values_are_probabilities() {
        let results = quick_results();
        for (label, m) in results.labels.iter().zip(&results.metrics) {
            if let Some(pa) = m.query_accuracy() {
                assert!((0.0..=1.0).contains(&pa), "{label}: P_A = {pa}");
            }
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let profile = WanProfile::italy_japan();
        let params = ExperimentParams::quick();
        let (log_a, _, _) = run_qos_single(&profile, &params, 0);
        let (log_b, _, _) = run_qos_single(&profile, &params, 0);
        assert_eq!(log_a.len(), log_b.len());
        for (a, b) in log_a.iter().zip(log_b.iter()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn different_runs_differ() {
        let profile = WanProfile::italy_japan();
        let params = ExperimentParams::quick();
        let (log_a, _, _) = run_qos_single(&profile, &params, 0);
        let (log_b, _, _) = run_qos_single(&profile, &params, 1);
        let a: Vec<_> = log_a.iter().map(|e| e.at).collect();
        let b: Vec<_> = log_b.iter().map(|e| e.at).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn baseline_is_appended_when_requested() {
        let profile = WanProfile::italy_japan();
        let params = ExperimentParams {
            include_nfd_baseline: true,
            runs: 1,
            ..ExperimentParams::quick()
        };
        let results = run_qos_experiment(&profile, &params);
        assert_eq!(results.labels.len(), 31);
        assert!(results.labels[30].starts_with("NFD-E"));
        assert!(results.index_of(&results.labels[30]).unwrap() == 30);
        // The baseline also detects crashes.
        assert!(!results.metrics[30].detection_times_ms.is_empty());
    }

    #[test]
    fn metric_accessors() {
        assert_eq!(Metric::Td.figure_number(), 4);
        assert_eq!(Metric::Pa.figure_number(), 8);
        assert!(Metric::Tm.smaller_is_better());
        assert!(!Metric::Tmr.smaller_is_better());
        assert_eq!(Metric::all().len(), 5);
        assert!(Metric::TdUpper.title().contains("T_D^U"));
    }

    #[test]
    fn trace_replay_experiment_detects_crashes() {
        let profile = WanProfile::italy_japan();
        let trace = fd_net::DelayTrace::record(&profile, 700, fd_sim::SimDuration::from_secs(1), 3);
        let params = ExperimentParams {
            num_cycles: 600,
            runs: 2,
            ..ExperimentParams::quick()
        };
        let results = run_qos_experiment_on_trace(&trace, &params).unwrap();
        assert_eq!(results.labels.len(), 30);
        for (label, m) in results.labels.iter().zip(&results.metrics) {
            assert!(m.total_crashes >= 10, "{label}");
            assert!(!m.detection_times_ms.is_empty(), "{label}");
        }
        // Crash schedules differ per run, so pooled counts exceed one run's.
        let (log, run_end, _) = run_qos_single_with_link(&params, trace.replay_link().unwrap(), 0);
        let single = fd_stat::extract_metrics(&log, 0, run_end);
        assert!(results.metrics[0].total_crashes > single.total_crashes);
    }

    #[test]
    fn detail_report_lists_every_detector() {
        let results = quick_results();
        let report = results.detail_report();
        for label in &results.labels {
            assert!(report.contains(label.as_str()), "missing {label}");
        }
        assert!(report.contains("95% CI"));
    }

    #[test]
    fn reports_align_with_labels() {
        let results = quick_results();
        let reports = results.reports();
        assert_eq!(reports.len(), results.labels.len());
        for (r, l) in reports.iter().zip(&results.labels) {
            assert_eq!(&r.detector, l);
        }
    }
}
