//! Configuring a detector to meet QoS requirements.
//!
//! Chen, Toueg and Aguilera's NFD-E is configured *offline*: given QoS
//! requirements — an upper bound `T_D^U` on detection time, a lower bound
//! `T_MR^L` on mistake recurrence and an upper bound `T_M^U` on mistake
//! duration — plus a probabilistic characterisation of the network, their
//! procedure computes the heartbeat period η and the constant margin α.
//!
//! The paper under reproduction uses that idea as its baseline ("a failure
//! detector with constant time-out is very useful in applications where
//! specific QoS requirements such as a maximum detection time T_D^U need to
//! be always guaranteed"). This module implements the configuration step
//! **by simulation over the calibrated link model** instead of closed-form
//! network assumptions: candidate (η, α) pairs are derived from the
//! requirements, then verified against a simulated run, and the first
//! verified candidate with the largest η (fewest messages) is returned.

use fd_net::WanProfile;
use fd_runtime::{Process, ProcessId, SimEngine};
use fd_sim::{SeedTree, SimDuration, SimTime};
use fd_stat::{extract_metrics, QosMetrics, Summary};
use serde::{Deserialize, Serialize};

use crate::layers::{HeartbeaterLayer, MonitorLayer, SimCrashLayer};

/// The QoS requirements of Chen et al.'s configuration problem.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QosRequirements {
    /// Upper bound on the detection time, ms.
    pub td_upper_ms: f64,
    /// Lower bound on the mean mistake recurrence time, ms.
    pub tmr_lower_ms: f64,
    /// Upper bound on the mean mistake duration, ms.
    pub tm_upper_ms: f64,
}

/// A configured constant-margin (NFD-E style) detector.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DetectorConfig {
    /// Heartbeat period η.
    pub eta: SimDuration,
    /// Constant safety margin α in ms.
    pub alpha_ms: f64,
}

/// The configuration result: the chosen parameters and the QoS measured
/// during verification.
#[derive(Debug, Clone)]
pub struct ConfiguredDetector {
    /// The accepted configuration.
    pub config: DetectorConfig,
    /// Metrics of the verification run.
    pub verified: QosMetrics,
}

/// Searches for an (η, α) configuration meeting `req` on `profile`.
///
/// Candidate periods are `T_D^U / k` for `k ∈ 2..=6` (larger η first: fewer
/// messages); for each, the margin is what remains of the detection budget
/// after one period and the link's 99.9th delay percentile. Each candidate
/// is verified by simulation (crash injection for `T_D^U`, the same run's
/// up-periods for the accuracy bounds).
///
/// Returns `None` when no candidate satisfies all three requirements —
/// e.g. a detection bound tighter than one network delay, or accuracy
/// bounds the link's loss rate cannot meet at any margin.
pub fn configure_nfd(
    profile: &WanProfile,
    req: &QosRequirements,
    seed: u64,
) -> Option<ConfiguredDetector> {
    // Characterise the link once: the margin budget needs a delay quantile.
    let trace = fd_net::DelayTrace::record(profile, 4_000, SimDuration::from_secs(1), seed);
    let delays = trace.delays_ms();
    let p999 = Summary::percentile(&delays, 99.9)?;
    let mean_delay = delays.iter().sum::<f64>() / delays.len() as f64;

    for k in 2..=6u32 {
        let eta_ms = req.td_upper_ms / f64::from(k);
        if eta_ms < 1.0 {
            break;
        }
        let eta = SimDuration::from_millis_f64(eta_ms);
        // Detection budget: a crash right after a send is noticed at most
        // η + delay + α later (freshness point of the next heartbeat).
        let alpha_ms = req.td_upper_ms - eta_ms - p999;
        if alpha_ms < 0.0 {
            continue;
        }
        let config = DetectorConfig { eta, alpha_ms };
        let verified = verify(profile, config, mean_delay, seed);
        let meets_td = verified
            .td_upper()
            .is_some_and(|tdu| tdu <= req.td_upper_ms)
            && verified.undetected_crashes == 0;
        let meets_tmr = verified
            .mean_tmr()
            .map_or(verified.mistake_durations_ms.len() <= 1, |tmr| {
                tmr >= req.tmr_lower_ms
            });
        let meets_tm = verified.mean_tm().is_none_or(|tm| tm <= req.tm_upper_ms);
        if meets_td && meets_tmr && meets_tm {
            return Some(ConfiguredDetector { config, verified });
        }
    }
    None
}

/// Verification run: the configured detector against the profile with crash
/// injection, long enough to collect both detection and accuracy samples.
fn verify(
    profile: &WanProfile,
    config: DetectorConfig,
    mean_delay_ms: f64,
    seed: u64,
) -> QosMetrics {
    let seeds = SeedTree::new(seed).subtree("nfd-config");
    let fd = fd_core::nfd::nfd_e(config.alpha_ms, config.eta);
    let _ = mean_delay_ms;
    let mut engine = SimEngine::new();
    engine.add_process(Process::new(ProcessId(0)).with_layer(MonitorLayer::new(vec![fd])));
    // Crash cycle scaled to the heartbeat period so several detections are
    // observed within a bounded number of cycles.
    let mttc = config.eta * 120;
    let ttr = config.eta * 20;
    let cycles: u64 = 2_000;
    engine.add_process(
        Process::new(ProcessId(1))
            .with_layer(SimCrashLayer::new(mttc, ttr, seeds.rng("crash")))
            .with_layer(HeartbeaterLayer::new(ProcessId(0), config.eta).with_max_cycles(cycles)),
    );
    engine.set_link(ProcessId(1), ProcessId(0), profile.link(seeds.rng("link")));
    let end = SimTime::ZERO + config.eta * cycles;
    engine.run_until(end);
    extract_metrics(engine.event_log(), 0, end)
}

/// Convenience check: does an already-verified outcome satisfy requirements?
pub fn satisfies(req: &QosRequirements, m: &QosMetrics) -> bool {
    m.undetected_crashes == 0
        && m.td_upper().is_some_and(|t| t <= req.td_upper_ms)
        && m.mean_tmr().is_none_or(|t| t >= req.tmr_lower_ms)
        && m.mean_tm().is_none_or(|t| t <= req.tm_upper_ms)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feasible_requirements_are_configured_and_verified() {
        if !crate::real_rng_enabled() {
            eprintln!("skipped: configurator verification simulates over rand's SmallRng; set FD_REAL_RNG=1");
            return;
        }
        let profile = WanProfile::italy_japan();
        let req = QosRequirements {
            td_upper_ms: 4_000.0,
            tmr_lower_ms: 10_000.0,
            tm_upper_ms: 3_000.0,
        };
        let outcome = configure_nfd(&profile, &req, 42).expect("feasible");
        assert!(outcome.config.alpha_ms > 0.0);
        assert!(outcome.config.eta.as_millis() >= 500);
        assert!(satisfies(&req, &outcome.verified), "{:?}", outcome.verified);
        // Preference for the largest period: η = T_D^U / 2 when it works.
        assert_eq!(outcome.config.eta, SimDuration::from_millis(2_000));
    }

    #[test]
    fn infeasible_detection_bound_is_rejected() {
        // T_D^U below a single one-way delay can never be met.
        let profile = WanProfile::italy_japan();
        let req = QosRequirements {
            td_upper_ms: 150.0,
            tmr_lower_ms: 0.0,
            tm_upper_ms: f64::MAX,
        };
        assert!(configure_nfd(&profile, &req, 43).is_none());
    }

    #[test]
    fn tighter_detection_bound_gives_smaller_period() {
        let profile = WanProfile::italy_japan();
        let loose = configure_nfd(
            &profile,
            &QosRequirements {
                td_upper_ms: 8_000.0,
                tmr_lower_ms: 5_000.0,
                tm_upper_ms: 5_000.0,
            },
            44,
        )
        .expect("loose feasible");
        let tight = configure_nfd(
            &profile,
            &QosRequirements {
                td_upper_ms: 1_500.0,
                tmr_lower_ms: 5_000.0,
                tm_upper_ms: 5_000.0,
            },
            44,
        )
        .expect("tight feasible");
        assert!(tight.config.eta < loose.config.eta);
        assert!(tight.config.alpha_ms < loose.config.alpha_ms);
    }

    #[test]
    fn impossible_accuracy_bound_is_rejected() {
        if !crate::real_rng_enabled() {
            eprintln!("skipped: configurator verification simulates over rand's SmallRng; set FD_REAL_RNG=1");
            return;
        }
        // A mistake-recurrence floor of ten hours cannot be met on a lossy
        // link at any margin the detection budget allows.
        let profile = WanProfile::congested_wan();
        let req = QosRequirements {
            td_upper_ms: 3_000.0,
            tmr_lower_ms: 36_000_000.0,
            tm_upper_ms: 1_000.0,
        };
        assert!(configure_nfd(&profile, &req, 45).is_none());
    }

    #[test]
    fn configuration_is_deterministic() {
        let profile = WanProfile::italy_japan();
        let req = QosRequirements {
            td_upper_ms: 5_000.0,
            tmr_lower_ms: 10_000.0,
            tm_upper_ms: 4_000.0,
        };
        let a = configure_nfd(&profile, &req, 46).unwrap();
        let b = configure_nfd(&profile, &req, 46).unwrap();
        assert_eq!(a.config, b.config);
        assert_eq!(a.verified, b.verified);
    }

    #[test]
    fn satisfies_is_consistent_with_bounds() {
        let req = QosRequirements {
            td_upper_ms: 1_000.0,
            tmr_lower_ms: 100.0,
            tm_upper_ms: 100.0,
        };
        let mut m = QosMetrics {
            detection_times_ms: vec![900.0],
            total_crashes: 1,
            ..QosMetrics::default()
        };
        assert!(satisfies(&req, &m));
        m.detection_times_ms.push(1_100.0);
        assert!(!satisfies(&req, &m));
    }
}
