//! The detector-families experiment: the extended 54-combination grid
//! (the paper's 30 combos plus φ-accrual in both lifecycles, the
//! adaptive μ+Kσ window and the online model, each under all six paper
//! margins) run at 1k and 100k sources with a seeded source-crash
//! schedule, rolled up per predictor family so the new families' T_D
//! and P_A sit next to the paper baselines in one table.
//!
//! Two deterministic side measurements ride along:
//!
//! * **flapping** — the flapping-source schedule from the chaos suite,
//!   driven directly: the two-phase φ lifecycle (cold restart + floored
//!   start-phase dispersion) absorbs every recovery transient while the
//!   stable-phase-only variant wrongly suspects the source on each flap.
//! * **impact** — the Impact-FD weight plane: losing one high-impact
//!   source costs more trust than losing three low-impact ones, which
//!   the unweighted popcount inverts.
//!
//! The `families` binary writes the table to `BENCH_families.json`.

use fd_core::bank::DetectorBank;
use fd_core::combinations::{all_combinations, extended_combinations};
use fd_core::{Combination, FdTransition, MarginKind, PredictorKind, SourceBank};
use fd_runtime::{ShardedConfig, ShardedEngine, SourceCrashPlan};
use fd_sim::{SimDuration, SimTime};

/// One family's QoS roll-up at one scale: the six margin combinations of
/// a single predictor, aggregated.
#[derive(Debug, Clone)]
pub struct FamilyRow {
    /// Monitored sources.
    pub sources: usize,
    /// Predictor-family label (e.g. `ARIMA(2,1,1)`, `PHI(16,1)`).
    pub family: String,
    /// True for the four new families, false for the paper's five.
    pub extended: bool,
    /// Combinations aggregated into this row (six margins per family).
    pub combos: usize,
    /// Source crashes folded in, summed over the family's combos.
    pub crashes: u64,
    /// Detected crashes, summed over the family's combos.
    pub detections: u64,
    /// Undetected crashes.
    pub undetected: u64,
    /// Completed wrongful-suspicion episodes.
    pub mistakes: u64,
    /// Mean detection time over all of the family's detections, µs.
    pub mean_td_us: f64,
    /// Query accuracy: 1 − wrongful-suspicion time over the family's
    /// sources × combos × nominal horizon.
    pub pa: f64,
}

/// One full extended-grid run at one source count.
#[derive(Debug, Clone)]
pub struct FamiliesScale {
    /// Monitored sources.
    pub sources: usize,
    /// Worker shards the run used.
    pub shards: usize,
    /// Order-independent streaming digest of the run.
    pub digest: u64,
    /// Wall-clock time of the run, milliseconds.
    pub wall_ms: f64,
    /// Heartbeats delivered.
    pub heartbeats: u64,
    /// One row per predictor family, paper families first.
    pub rows: Vec<FamilyRow>,
}

/// The deterministic flapping comparison: wrongful suspicions on an up
/// source, two-phase vs stable-phase-only φ, over three flap cycles.
#[derive(Debug, Clone)]
pub struct FlappingOutcome {
    /// Flap cycles in the schedule (down window + recovery transient).
    pub flap_cycles: u64,
    /// Heartbeat slots in the schedule (delivered or suppressed).
    pub schedule_len: usize,
    /// Wrongful `StartSuspect` edges from the two-phase lifecycle.
    pub wrongful_two_phase: u64,
    /// Wrongful `StartSuspect` edges from the stable-only variant.
    pub wrongful_stable_only: u64,
    /// Post-recovery re-admissions (identical for both variants).
    pub readmissions: u64,
}

/// The Impact-FD weight-plane comparison: one heavy source lost vs three
/// light sources lost, trust under the weighted and unweighted planes.
#[derive(Debug, Clone)]
pub struct ImpactOutcome {
    /// Sources in the bank.
    pub sources: usize,
    /// Weight of the one heavy source (light sources weigh 1).
    pub heavy_weight: f64,
    /// Weighted trust total when every source is trusted.
    pub total: f64,
    /// Weighted trust after the heavy source alone is suspected.
    pub trust_heavy_lost: f64,
    /// Weighted trust after three light sources are suspected.
    pub trust_three_light_lost: f64,
    /// Unweighted trust (plain popcount complement) for the same two
    /// scenarios — the ordering the weight plane corrects.
    pub unweighted_heavy_lost: f64,
    pub unweighted_three_light_lost: f64,
}

/// The whole benchmark document's worth of measurements.
#[derive(Debug, Clone)]
pub struct FamiliesBench {
    pub cycles: u64,
    pub seed: u64,
    pub scales: Vec<FamiliesScale>,
    pub flapping: FlappingOutcome,
    pub impact: ImpactOutcome,
}

/// The shared workload: extended grid over paper-grid WAN defaults plus
/// a seeded source-crash schedule, so every family accumulates real
/// detection-time samples.
fn workload(sources: usize, cycles: u64, shards: usize, seed: u64) -> ShardedConfig {
    let mut cfg = ShardedConfig::paper_grid(sources, cycles, seed);
    cfg.shards = shards.max(1);
    cfg.combos = extended_combinations();
    cfg.loss = 0.02;
    cfg.spike_prob = 0.02;
    cfg.source_crashes = Some(SourceCrashPlan {
        frac: 0.25,
        down_cycles: 2,
    });
    cfg
}

/// Runs the extended grid at one source count and rolls the 54 per-combo
/// QoS summaries up into one row per predictor family.
pub fn run_families_scale(sources: usize, cycles: u64, shards: usize, seed: u64) -> FamiliesScale {
    let cfg = workload(sources, cycles, shards, seed);
    let combos = cfg.combos.clone();
    let paper_len = all_combinations().len();
    let horizon_us = cfg.cycles * cfg.eta.as_micros();
    let report = ShardedEngine::new(cfg).run();
    assert_eq!(report.qos.len(), combos.len(), "one QoS row per combo");

    let mut rows: Vec<FamilyRow> = Vec::new();
    for (idx, combo) in combos.iter().enumerate() {
        let family = combo.predictor.label();
        let q = &report.qos[idx];
        let row = match rows.iter_mut().find(|r| r.family == family) {
            Some(row) => row,
            None => {
                rows.push(FamilyRow {
                    sources,
                    family,
                    extended: idx >= paper_len,
                    combos: 0,
                    crashes: 0,
                    detections: 0,
                    undetected: 0,
                    mistakes: 0,
                    mean_td_us: 0.0,
                    pa: 1.0,
                });
                rows.last_mut().expect("just pushed")
            }
        };
        row.combos += 1;
        row.crashes += q.crashes;
        row.detections += q.detections;
        row.undetected += q.undetected;
        row.mistakes += q.mistakes;
        // Abuse the two f64 fields as µs accumulators until the family
        // is complete; finalised below.
        row.mean_td_us += q.td_sum_us as f64;
        row.pa += q.tm_sum_us as f64;
    }
    for row in &mut rows {
        let td_sum = row.mean_td_us;
        let tm_sum = row.pa - 1.0;
        row.mean_td_us = if row.detections == 0 {
            0.0
        } else {
            td_sum / row.detections as f64
        };
        let monitored_us = (sources * row.combos) as f64 * horizon_us as f64;
        row.pa = if monitored_us == 0.0 {
            1.0
        } else {
            1.0 - tm_sum / monitored_us
        };
    }

    FamiliesScale {
        sources,
        shards: report.shards,
        digest: report.digest,
        wall_ms: report.wall.as_secs_f64() * 1e3,
        heartbeats: report.heartbeats,
        rows,
    }
}

/// The flapping schedule the chaos suite uses: 20 warm beats, then three
/// cycles of a 5-beat down window, a jittery recovery transient and a
/// stable stretch. `None` = heartbeat suppressed.
fn flapping_schedule() -> Vec<Option<u64>> {
    let mut schedule = Vec::new();
    for i in 0..20u64 {
        schedule.push(Some(140 + (i * 7) % 20));
    }
    for _ in 0..3 {
        for _ in 0..5 {
            schedule.push(None);
        }
        for &d in &[150, 450, 380, 300, 240, 200, 170, 160] {
            schedule.push(Some(d));
        }
        for i in 0..12u64 {
            schedule.push(Some(145 + (i * 11) % 18));
        }
    }
    schedule
}

/// Drives both φ lifecycles through the flapping schedule, counting
/// wrongful `StartSuspect` edges (fired at a check instant immediately
/// before a delivered heartbeat: premature timeouts on an up source).
pub fn run_flapping() -> FlappingOutcome {
    let combos = vec![
        Combination::new(
            PredictorKind::PhiAccrual {
                window: 16,
                threshold: 1.0,
                two_phase: true,
            },
            MarginKind::Jac { phi: 1.0 },
        ),
        Combination::new(
            PredictorKind::PhiAccrual {
                window: 16,
                threshold: 1.0,
                two_phase: false,
            },
            MarginKind::Jac { phi: 1.0 },
        ),
    ];
    let eta = SimDuration::from_millis(1_000);
    let mut bank = DetectorBank::new(&combos, eta);
    let schedule = flapping_schedule();
    let mut wrongful = [0u64; 2];
    let mut readmissions = [0u64; 2];
    let mut was_down = false;

    for (i, cycle) in schedule.iter().enumerate() {
        let seq = i as u64;
        let sigma = SimTime::ZERO + eta * seq;
        match cycle {
            Some(delay_ms) => {
                let arrival = sigma + SimDuration::from_millis(*delay_ms);
                for (idx, w) in wrongful.iter_mut().enumerate() {
                    if bank.check_one(idx, arrival) == Some(FdTransition::StartSuspect) {
                        *w += 1;
                    }
                }
                bank.observe_heartbeat(seq, arrival);
                if was_down {
                    for t in bank.transitions() {
                        readmissions[t.combo] += 1;
                    }
                }
                was_down = false;
            }
            None => {
                let end = sigma + eta;
                for idx in 0..combos.len() {
                    bank.check_one(idx, end);
                }
                was_down = true;
            }
        }
    }
    assert_eq!(
        readmissions[0], readmissions[1],
        "both lifecycles re-admit identically"
    );
    FlappingOutcome {
        flap_cycles: 3,
        schedule_len: schedule.len(),
        wrongful_two_phase: wrongful[0],
        wrongful_stable_only: wrongful[1],
        readmissions: readmissions[0],
    }
}

/// Runs one Impact-FD scenario: everyone heartbeats at seq 0, the `lost`
/// sources go silent, everyone else heartbeats at seq 1, and the bank is
/// checked after the lost sources' deadline but before the survivors'
/// next one — exactly the `lost` set is suspected.
fn impact_trust_after_losing(
    combos: &[Combination],
    sources: usize,
    weights: Option<&[f64]>,
    lost: &[u32],
) -> f64 {
    let eta = SimDuration::from_secs(1);
    let mut bank = SourceBank::new(combos, eta, sources);
    if let Some(w) = weights {
        bank.set_impact_weights(w);
    }
    for s in 0..sources as u32 {
        bank.observe_heartbeat(s, 0, SimTime::from_millis(200));
    }
    for s in 0..sources as u32 {
        if !lost.contains(&s) {
            bank.observe_heartbeat(s, 1, SimTime::from_millis(1_200));
        }
    }
    bank.check_all_at(SimTime::from_millis(2_000));
    for s in 0..sources as u32 {
        assert_eq!(
            bank.is_suspecting(s, 0),
            lost.contains(&s),
            "impact scenario must suspect exactly the lost set (source {s})"
        );
    }
    bank.impact_trust(0)
}

/// The weight-plane comparison: source 0 carries `heavy_weight`, every
/// other source weighs 1. Losing source 0 alone must cost more weighted
/// trust than losing three light sources — the opposite of what the
/// unweighted popcount reports.
pub fn run_impact(sources: usize, heavy_weight: f64) -> ImpactOutcome {
    assert!(sources >= 5, "need a heavy source plus three light ones");
    let combos = vec![Combination::new(
        PredictorKind::Last,
        MarginKind::Jac { phi: 1.0 },
    )];
    let mut weights = vec![1.0; sources];
    weights[0] = heavy_weight;
    let total = heavy_weight + (sources - 1) as f64;

    let heavy = impact_trust_after_losing(&combos, sources, Some(&weights), &[0]);
    let light = impact_trust_after_losing(&combos, sources, Some(&weights), &[1, 2, 3]);
    let u_heavy = impact_trust_after_losing(&combos, sources, None, &[0]);
    let u_light = impact_trust_after_losing(&combos, sources, None, &[1, 2, 3]);

    ImpactOutcome {
        sources,
        heavy_weight,
        total,
        trust_heavy_lost: heavy,
        trust_three_light_lost: light,
        unweighted_heavy_lost: u_heavy,
        unweighted_three_light_lost: u_light,
    }
}

/// Runs the whole benchmark: the extended grid at each source count plus
/// the two deterministic side measurements.
pub fn run_families(counts: &[usize], cycles: u64, shards: usize, seed: u64) -> FamiliesBench {
    FamiliesBench {
        cycles,
        seed,
        scales: counts
            .iter()
            .map(|&n| run_families_scale(n, cycles, shards, seed))
            .collect(),
        flapping: run_flapping(),
        impact: run_impact(16, 8.0),
    }
}

/// Renders one family row as a JSON object (hand-rolled: the workspace
/// carries no JSON dependency).
pub fn render_family_json(r: &FamilyRow) -> String {
    format!(
        "{{\"sources\": {}, \"family\": \"{}\", \"extended\": {}, \"combos\": {}, \
         \"crashes\": {}, \"detections\": {}, \"undetected\": {}, \"mistakes\": {}, \
         \"mean_td_us\": {:.1}, \"pa\": {:.9}}}",
        r.sources,
        r.family,
        r.extended,
        r.combos,
        r.crashes,
        r.detections,
        r.undetected,
        r.mistakes,
        r.mean_td_us,
        r.pa,
    )
}

/// Renders the `BENCH_families.json` document.
pub fn render_json(bench: &FamiliesBench, shards: usize) -> String {
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"families\",\n");
    out.push_str(&format!("  \"host_cores\": {host_cores},\n"));
    out.push_str(&format!("  \"shards_requested\": {shards},\n"));
    out.push_str(&format!("  \"cycles\": {},\n", bench.cycles));
    out.push_str(&format!("  \"seed\": {},\n", bench.seed));
    out.push_str("  \"grid_combos\": 54,\n");
    out.push_str("  \"paper_combos\": 30,\n");
    out.push_str("  \"source_crash_frac\": 0.25,\n");
    out.push_str("  \"source_down_cycles\": 2,\n");
    out.push_str("  \"runs\": [\n");
    for (i, scale) in bench.scales.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"sources\": {}, \"shards\": {}, \"digest\": \"{:016x}\", \
             \"wall_ms\": {:.3}, \"heartbeats\": {}}}{}\n",
            scale.sources,
            scale.shards,
            scale.digest,
            scale.wall_ms,
            scale.heartbeats,
            if i + 1 == bench.scales.len() { "" } else { "," },
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"rows\": [\n");
    let total_rows: usize = bench.scales.iter().map(|s| s.rows.len()).sum();
    let mut emitted = 0usize;
    for scale in &bench.scales {
        for row in &scale.rows {
            emitted += 1;
            out.push_str("    ");
            out.push_str(&render_family_json(row));
            out.push_str(if emitted == total_rows { "\n" } else { ",\n" });
        }
    }
    out.push_str("  ],\n");
    let f = &bench.flapping;
    out.push_str(&format!(
        "  \"flapping\": {{\"flap_cycles\": {}, \"schedule_len\": {}, \
         \"wrongful_two_phase\": {}, \"wrongful_stable_only\": {}, \
         \"readmissions\": {}}},\n",
        f.flap_cycles, f.schedule_len, f.wrongful_two_phase, f.wrongful_stable_only, f.readmissions,
    ));
    let im = &bench.impact;
    out.push_str(&format!(
        "  \"impact\": {{\"sources\": {}, \"heavy_weight\": {:.1}, \"total\": {:.1}, \
         \"trust_heavy_lost\": {:.1}, \"trust_three_light_lost\": {:.1}, \
         \"unweighted_heavy_lost\": {:.1}, \"unweighted_three_light_lost\": {:.1}}}\n",
        im.sources,
        im.heavy_weight,
        im.total,
        im.trust_heavy_lost,
        im.trust_three_light_lost,
        im.unweighted_heavy_lost,
        im.unweighted_three_light_lost,
    ));
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn families_roll_up_covers_the_whole_grid() {
        let scale = run_families_scale(120, 6, 2, 7);
        assert_eq!(scale.rows.len(), 9, "5 paper + 4 extended families");
        assert_eq!(scale.rows.iter().map(|r| r.combos).sum::<usize>(), 54);
        assert_eq!(scale.rows.iter().filter(|r| r.extended).count(), 4);
        for row in &scale.rows {
            assert_eq!(row.combos, 6, "{}: six margins per family", row.family);
            assert!(row.crashes > 0, "{}: crash plan fired", row.family);
            assert!(row.detections > 0, "{}: crashes detected", row.family);
            assert!(
                row.pa > 0.0 && row.pa <= 1.0,
                "{}: pa {} out of range",
                row.family,
                row.pa
            );
            assert!(row.mean_td_us > 0.0, "{}: no detection time", row.family);
        }
        // The crash plan is family-independent: every family saw the
        // same crashes.
        let crashes = scale.rows[0].crashes;
        assert!(scale.rows.iter().all(|r| r.crashes == crashes));
    }

    #[test]
    fn flapping_and_impact_tell_their_stories() {
        let f = run_flapping();
        assert_eq!(f.wrongful_two_phase, 0);
        assert!(f.wrongful_stable_only >= f.flap_cycles);
        assert_eq!(f.readmissions, f.flap_cycles);

        let im = run_impact(16, 8.0);
        // Weighted: the heavy source dwarfs three light ones.
        assert!(im.trust_heavy_lost < im.trust_three_light_lost);
        // Unweighted: the ordering inverts — three lost beats one lost.
        assert!(im.unweighted_heavy_lost > im.unweighted_three_light_lost);
        assert!((im.total - im.trust_heavy_lost - im.heavy_weight).abs() < 1e-9);
    }

    #[test]
    fn json_document_is_well_formed_enough() {
        let bench = FamiliesBench {
            cycles: 6,
            seed: 7,
            scales: vec![run_families_scale(96, 6, 2, 7)],
            flapping: run_flapping(),
            impact: run_impact(16, 8.0),
        };
        let doc = render_json(&bench, 2);
        assert!(doc.starts_with('{') && doc.trim_end().ends_with('}'));
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
        for key in [
            "\"bench\": \"families\"",
            "\"flapping\"",
            "\"impact\"",
            "\"wrongful_two_phase\"",
            "\"extended\": true",
            "\"extended\": false",
        ] {
            assert!(doc.contains(key), "missing {key}");
        }
    }
}
