//! Pull-style monitoring layers (the alternative interaction style of the
//! paper's Section 2.2), used to demonstrate the push-vs-pull message-cost
//! claim: "push-style permits to obtain the same quality of detection with
//! half messages exchanged".
//!
//! These layers use `Data` messages (a request/response byte plus the
//! request sequence number) and therefore run on the simulation engine.

use fd_core::{FdTransition, PullFailureDetector};
use fd_runtime::{Context, Layer, Message, MessageKind, ProcessId, TimerId};
use fd_sim::SimDuration;
use fd_stat::EventKind;

/// Payload tag of an interrogation request.
pub const PULL_REQUEST: u8 = 0x50;
/// Payload tag of an interrogation response.
pub const PULL_RESPONSE: u8 = 0x52;

const TIMER_REQUEST: TimerId = 0;
const TIMER_DEADLINE: TimerId = 1;

/// The pull monitor: interrogates `target` every period and times out on
/// missing responses. Suspicion edges are emitted with detector id 0.
pub struct PullMonitorLayer {
    fd: PullFailureDetector,
    target: ProcessId,
}

impl std::fmt::Debug for PullMonitorLayer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PullMonitorLayer")
            .field("fd", &self.fd)
            .field("target", &self.target)
            .finish()
    }
}

impl PullMonitorLayer {
    /// Creates the monitor around a pull detector.
    pub fn new(fd: PullFailureDetector, target: ProcessId) -> Self {
        Self { fd, target }
    }

    /// The underlying detector (for post-run inspection).
    pub fn detector(&self) -> &PullFailureDetector {
        &self.fd
    }
}

impl Layer for PullMonitorLayer {
    fn on_start(&mut self, ctx: &mut Context) {
        ctx.set_timer(SimDuration::ZERO, TIMER_REQUEST);
    }

    fn on_timer(&mut self, ctx: &mut Context, id: TimerId) {
        match id {
            TIMER_REQUEST => {
                let now = ctx.now();
                let seq = self.fd.issue_request(now);
                ctx.emit(EventKind::Sent { seq });
                ctx.send(Message::data(
                    ctx.process(),
                    self.target,
                    seq,
                    now,
                    vec![PULL_REQUEST],
                ));
                if let Some(deadline) = self.fd.deadline() {
                    let delay = deadline
                        .checked_duration_since(now)
                        .unwrap_or(SimDuration::ZERO);
                    ctx.set_timer(delay, TIMER_DEADLINE);
                }
                ctx.set_timer(self.fd.period(), TIMER_REQUEST);
            }
            TIMER_DEADLINE => {
                if let Some(FdTransition::StartSuspect) = self.fd.check(ctx.now()) {
                    ctx.emit(EventKind::StartSuspect { detector: 0 });
                }
            }
            _ => {}
        }
    }

    fn on_deliver(&mut self, ctx: &mut Context, msg: Message) {
        if let MessageKind::Data(ref payload) = msg.kind {
            if payload.first() == Some(&PULL_RESPONSE) {
                ctx.emit(EventKind::Received { seq: msg.seq });
                if let Some(FdTransition::EndSuspect) = self.fd.on_response(msg.seq, ctx.now()) {
                    ctx.emit(EventKind::EndSuspect { detector: 0 });
                }
            }
        }
    }

    fn name(&self) -> &str {
        "pull-monitor"
    }
}

/// The monitored side of pull monitoring: answers every request. Stack it
/// above [`crate::SimCrashLayer`] so crashes silence the responses.
#[derive(Debug, Clone, Copy, Default)]
pub struct ResponderLayer {
    answered: u64,
}

impl ResponderLayer {
    /// Creates the responder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests answered so far.
    pub fn answered(&self) -> u64 {
        self.answered
    }
}

impl Layer for ResponderLayer {
    fn on_deliver(&mut self, ctx: &mut Context, msg: Message) {
        if let MessageKind::Data(ref payload) = msg.kind {
            if payload.first() == Some(&PULL_REQUEST) {
                self.answered += 1;
                ctx.send(Message::data(
                    ctx.process(),
                    msg.from,
                    msg.seq,
                    ctx.now(),
                    vec![PULL_RESPONSE],
                ));
            }
        }
    }

    fn name(&self) -> &str {
        "responder"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::SimCrashLayer;
    use fd_core::{ConstantMargin, Last};
    use fd_net::{ConstantDelay, LinkModel, NoLoss};
    use fd_runtime::{Process, SimEngine};
    use fd_sim::{DetRng, SimTime};
    use fd_stat::extract_metrics;

    fn pull_engine(seed: u64) -> SimEngine {
        let period = SimDuration::from_secs(1);
        let fd = PullFailureDetector::new("pull", Last::new(), ConstantMargin::new(100.0), period);
        let mut engine = SimEngine::new();
        engine.add_process(
            Process::new(fd_stat::ProcessId(0))
                .with_layer(PullMonitorLayer::new(fd, fd_stat::ProcessId(1))),
        );
        engine.add_process(
            Process::new(fd_stat::ProcessId(1))
                .with_layer(SimCrashLayer::new(
                    SimDuration::from_secs(80),
                    SimDuration::from_secs(15),
                    DetRng::seed_from(seed),
                ))
                .with_layer(ResponderLayer::new()),
        );
        for (from, to, s) in [(1u16, 0u16, 1u64), (0, 1, 2)] {
            engine.set_link(
                fd_stat::ProcessId(from),
                fd_stat::ProcessId(to),
                LinkModel::new(
                    ConstantDelay::new(SimDuration::from_millis(100)),
                    NoLoss,
                    DetRng::seed_from(seed + s),
                ),
            );
        }
        engine
    }

    #[test]
    fn pull_detects_crashes_end_to_end() {
        let mut engine = pull_engine(3);
        let end = SimTime::from_secs(600);
        engine.run_until(end);
        let m = extract_metrics(engine.event_log(), 0, end);
        assert!(m.total_crashes >= 4, "crashes={}", m.total_crashes);
        assert_eq!(m.undetected_crashes, 0);
        // Constant link, constant margin: no false positives.
        assert!(m.mistake_durations_ms.is_empty());
        // Detection within one period + RTT + margin.
        for &td in &m.detection_times_ms {
            assert!(td <= 1_000.0 + 300.0 + 1.0, "T_D={td}");
        }
    }

    #[test]
    fn pull_costs_twice_the_messages_of_push() {
        // The paper's Section 2.2 claim, measured: for the same monitoring
        // period, pull sends request + response per cycle, push only the
        // heartbeat.
        let mut engine = pull_engine(4);
        engine.run_until(SimTime::from_secs(100));
        let req = engine
            .link_stats(fd_stat::ProcessId(0), fd_stat::ProcessId(1))
            .unwrap();
        let resp = engine
            .link_stats(fd_stat::ProcessId(1), fd_stat::ProcessId(0))
            .unwrap();
        let pull_messages = req.sent + resp.sent;
        // Push over the same horizon: one heartbeat per second.
        let push_messages = 100u64;
        assert!(
            pull_messages >= 2 * push_messages - 20,
            "pull={pull_messages}, push={push_messages}"
        );
    }

    #[test]
    fn responder_is_silenced_by_simcrash() {
        let mut engine = pull_engine(5);
        let end = SimTime::from_secs(300);
        engine.run_until(end);
        // During crash intervals, requests flow but responses don't: the
        // monitor's Received events must pause between Crash and Restore.
        let log = engine.event_log();
        let crash = log
            .iter()
            .find(|e| matches!(e.kind, EventKind::Crash))
            .unwrap()
            .at;
        let restore = log
            .iter()
            .find(|e| matches!(e.kind, EventKind::Restore) && e.at > crash)
            .unwrap()
            .at;
        let in_flight = crash + SimDuration::from_millis(200);
        for e in log.iter() {
            if matches!(e.kind, EventKind::Received { .. }) {
                assert!(
                    !(e.at > in_flight && e.at < restore),
                    "response received during crash at {}",
                    e.at
                );
            }
        }
    }
}
