//! The experiment layers of the paper's architecture (its Figure 3).

use fd_core::bank::DetectorBank;
use fd_core::snapshot::BankSnapshot;
use fd_core::{Combination, FailureDetector};
use fd_runtime::{BatchedLayer, Context, Layer, Message, ProcessId, Recoverable, TimerId};
use fd_sim::{DetRng, SimDuration, SimTime};
use fd_stat::EventKind;

/// Sends heartbeat `m_i` to the monitor every η, with `σ_i = i·η`.
///
/// Sits on top of [`SimCrashLayer`] on the monitored process: its heartbeats
/// are silently dropped while the simulated crash is in force.
#[derive(Debug)]
pub struct HeartbeaterLayer {
    to: ProcessId,
    eta: SimDuration,
    seq: u64,
    max_cycles: Option<u64>,
}

impl HeartbeaterLayer {
    /// Creates a heartbeater towards `to` with period `eta`.
    ///
    /// # Panics
    ///
    /// Panics if `eta` is zero.
    pub fn new(to: ProcessId, eta: SimDuration) -> Self {
        assert!(!eta.is_zero(), "heartbeat period must be positive");
        Self {
            to,
            eta,
            seq: 0,
            max_cycles: None,
        }
    }

    /// Stops after `cycles` heartbeats (the experiment's `NumCycles`).
    pub fn with_max_cycles(mut self, cycles: u64) -> Self {
        self.max_cycles = Some(cycles);
        self
    }

    /// Heartbeats sent so far.
    pub fn sent(&self) -> u64 {
        self.seq
    }
}

impl Layer for HeartbeaterLayer {
    fn on_start(&mut self, ctx: &mut Context) {
        ctx.set_timer(SimDuration::ZERO, 0);
    }

    fn on_timer(&mut self, ctx: &mut Context, _id: TimerId) {
        if let Some(max) = self.max_cycles {
            if self.seq >= max {
                return;
            }
        }
        ctx.emit(EventKind::Sent { seq: self.seq });
        ctx.send(Message::heartbeat(
            ctx.process(),
            self.to,
            self.seq,
            ctx.now(),
        ));
        self.seq += 1;
        ctx.set_timer(self.eta, 0);
    }

    fn name(&self) -> &str {
        "heartbeater"
    }
}

const TIMER_CRASH: TimerId = 1;
const TIMER_RESTORE: TimerId = 2;

/// Injects crashes of the layers above it.
///
/// "During crash periods it simply drops all the messages from and to the
/// network (the upper layers are thus isolated from the distributed system
/// and appear as crashed), whereas in good periods it simply does nothing."
///
/// Parameters as in the paper: the time to crash is uniform in
/// `[MTTC/2, 3·MTTC/2]`; the repair time `TTR` is constant.
#[derive(Debug)]
pub struct SimCrashLayer {
    schedule: CrashSchedule,
    crashed: bool,
    crashes: u64,
    dropped: u64,
}

/// When crashes happen.
#[derive(Debug)]
enum CrashSchedule {
    /// The paper's model: time-to-crash uniform in `[MTTC/2, 3·MTTC/2]`,
    /// constant repair time, repeating forever.
    Recurring {
        mttc: SimDuration,
        ttr: SimDuration,
        rng: DetRng,
    },
    /// One scripted crash; `repair_after == None` means fail-stop forever.
    Once {
        crash_after: SimDuration,
        repair_after: Option<SimDuration>,
    },
}

impl SimCrashLayer {
    /// Creates the crash injector with its own random stream.
    ///
    /// # Panics
    ///
    /// Panics if `mttc` or `ttr` is zero.
    pub fn new(mttc: SimDuration, ttr: SimDuration, rng: DetRng) -> Self {
        assert!(
            !mttc.is_zero() && !ttr.is_zero(),
            "MTTC and TTR must be positive"
        );
        Self {
            schedule: CrashSchedule::Recurring { mttc, ttr, rng },
            crashed: false,
            crashes: 0,
            dropped: 0,
        }
    }

    /// Creates a scripted one-shot crash: the process fails `crash_after`
    /// into the run and, if `repair_after` is given, restores once that much
    /// later (otherwise it is fail-stop). Used by controlled experiments
    /// (e.g. crashing a consensus coordinator at a known instant).
    pub fn once_at(crash_after: SimDuration, repair_after: Option<SimDuration>) -> Self {
        Self {
            schedule: CrashSchedule::Once {
                crash_after,
                repair_after,
            },
            crashed: false,
            crashes: 0,
            dropped: 0,
        }
    }

    /// `true` while the upper layers are isolated.
    pub fn is_crashed(&self) -> bool {
        self.crashed
    }

    /// Crashes injected so far.
    pub fn crashes(&self) -> u64 {
        self.crashes
    }

    /// Messages dropped while crashed.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    fn schedule_next_crash(&mut self, ctx: &mut Context) {
        match &mut self.schedule {
            CrashSchedule::Recurring { mttc, rng, .. } => {
                let mttc_s = mttc.as_secs_f64();
                let delay = rng.uniform(mttc_s / 2.0, 3.0 * mttc_s / 2.0);
                ctx.set_timer(SimDuration::from_secs_f64(delay), TIMER_CRASH);
            }
            CrashSchedule::Once { crash_after, .. } => {
                // Only the first schedule fires; after a repair the process
                // stays up.
                if self.crashes == 0 {
                    ctx.set_timer(*crash_after, TIMER_CRASH);
                }
            }
        }
    }

    fn schedule_repair(&mut self, ctx: &mut Context) {
        match &self.schedule {
            CrashSchedule::Recurring { ttr, .. } => ctx.set_timer(*ttr, TIMER_RESTORE),
            CrashSchedule::Once { repair_after, .. } => {
                if let Some(r) = repair_after {
                    ctx.set_timer(*r, TIMER_RESTORE);
                }
            }
        }
    }
}

impl Layer for SimCrashLayer {
    fn on_start(&mut self, ctx: &mut Context) {
        self.schedule_next_crash(ctx);
    }

    fn on_send(&mut self, ctx: &mut Context, msg: Message) {
        if self.crashed {
            self.dropped += 1;
        } else {
            ctx.send(msg);
        }
    }

    fn on_deliver(&mut self, ctx: &mut Context, msg: Message) {
        if self.crashed {
            self.dropped += 1;
        } else {
            ctx.deliver(msg);
        }
    }

    fn on_timer(&mut self, ctx: &mut Context, id: TimerId) {
        match id {
            TIMER_CRASH => {
                self.crashed = true;
                self.crashes += 1;
                ctx.emit(EventKind::Crash);
                self.schedule_repair(ctx);
            }
            TIMER_RESTORE => {
                self.crashed = false;
                ctx.emit(EventKind::Restore);
                self.schedule_next_crash(ctx);
            }
            _ => {}
        }
    }

    fn name(&self) -> &str {
        "simcrash"
    }
}

/// The monitor: every failure detector fed from the same delivery stream.
///
/// Owning all detectors in one layer realises the paper's MultiPlexer
/// guarantee by construction — each delivered heartbeat updates every
/// detector at the same instant, so all 30 perceive identical network
/// conditions. Suspicion edges are emitted as `StartSuspect`/`EndSuspect`
/// events tagged with the detector index.
///
/// Two detector populations coexist behind one index space:
///
/// * a [`DetectorBank`] holding the predictor × margin grid (built with
///   [`MonitorLayer::banked`]): each heartbeat updates every **distinct**
///   predictor once and shares the margin cores — the fast path used by the
///   QoS experiments;
/// * boxed [`FailureDetector`]s (built with [`MonitorLayer::new`] or
///   appended with [`MonitorLayer::with_extra_detector`]): the compatibility
///   path for detectors outside the grid, e.g. the NFD-E baseline.
///
/// Bank combinations occupy indices `0..bank.len()`, extras follow. The
/// emitted events and armed timers are identical between the two paths —
/// the differential tests below assert byte-identical event logs.
pub struct MonitorLayer {
    bank: DetectorBank,
    extras: Vec<FailureDetector>,
    source: Option<ProcessId>,
    detector_base: u32,
    received: u64,
    /// Scratch: bank deadlines before an observation (re-arm decisions).
    deadline_scratch: Vec<Option<SimTime>>,
}

impl std::fmt::Debug for MonitorLayer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MonitorLayer")
            .field("bank", &self.bank.len())
            .field("extras", &self.extras.len())
            .field("received", &self.received)
            .finish()
    }
}

impl MonitorLayer {
    /// Creates the monitor over boxed detectors (the compatibility path:
    /// every detector keeps its own predictor + margin).
    ///
    /// # Panics
    ///
    /// Panics if no detector is supplied.
    pub fn new(detectors: Vec<FailureDetector>) -> Self {
        assert!(!detectors.is_empty(), "monitor needs at least one detector");
        let eta = detectors[0].eta();
        Self {
            bank: DetectorBank::new(&[], eta),
            extras: detectors,
            source: None,
            detector_base: 0,
            received: 0,
            deadline_scratch: Vec::new(),
        }
    }

    /// Creates the monitor over a [`DetectorBank`] of combinations (the
    /// shared-computation path: distinct predictors updated once per
    /// heartbeat, margin cores shared).
    ///
    /// # Panics
    ///
    /// Panics if `combos` is empty or `eta` is zero.
    pub fn banked(combos: &[Combination], eta: SimDuration) -> Self {
        assert!(!combos.is_empty(), "monitor needs at least one detector");
        Self {
            bank: DetectorBank::new(combos, eta),
            extras: Vec::new(),
            source: None,
            detector_base: 0,
            received: 0,
            deadline_scratch: Vec::new(),
        }
    }

    /// Appends a boxed detector after the bank combinations (e.g. the NFD-E
    /// baseline, which is not a predictor × margin combination).
    pub fn with_extra_detector(mut self, fd: FailureDetector) -> Self {
        self.extras.push(fd);
        self
    }

    /// Offsets the detector ids used in emitted events, so several
    /// `MonitorLayer`s on one process keep disjoint id ranges.
    pub fn with_detector_base(mut self, base: u32) -> Self {
        self.detector_base = base;
        self
    }

    /// Restricts the monitor to heartbeats from one sender. Without this,
    /// heartbeats from every process feed the detectors — fine for the
    /// two-process experiments, wrong when several senders share a monitor
    /// (their sequence numbers interleave).
    pub fn for_source(mut self, source: ProcessId) -> Self {
        self.source = Some(source);
        self
    }

    /// The detectors' labels, in index order (index = detector id in the
    /// emitted events): bank combinations first, then extras.
    pub fn labels(&self) -> Vec<String> {
        let mut labels = self.bank.labels();
        labels.extend(self.extras.iter().map(|d| d.name().to_owned()));
        labels
    }

    /// Heartbeats received so far.
    pub fn received(&self) -> u64 {
        self.received
    }

    /// Total number of detectors (bank combinations + extras).
    pub fn detector_count(&self) -> usize {
        self.bank.len() + self.extras.len()
    }

    /// The underlying bank (diagnostics, tests).
    pub fn bank(&self) -> &DetectorBank {
        &self.bank
    }

    /// Access to a boxed detector (diagnostics, tests). `idx` is the global
    /// detector index; bank combinations have no boxed representation.
    ///
    /// # Panics
    ///
    /// Panics if `idx` addresses a bank combination — use
    /// [`bank`](Self::bank) for those.
    pub fn detector(&self, idx: usize) -> &FailureDetector {
        assert!(
            idx >= self.bank.len(),
            "detector {idx} lives in the bank; use MonitorLayer::bank()"
        );
        &self.extras[idx - self.bank.len()]
    }

    /// `true` if detector `idx` (bank or extra) currently suspects.
    pub fn is_suspecting(&self, idx: usize) -> bool {
        if idx < self.bank.len() {
            self.bank.is_suspecting(idx)
        } else {
            self.extras[idx - self.bank.len()].is_suspecting()
        }
    }

    /// The heartbeat arrival path shared by the owned and by-reference
    /// delivery entry points. Event and timer order is identical to the
    /// historical per-detector loop: per index ascending, the `EndSuspect`
    /// emit (if any) then the re-armed timer (if the deadline moved).
    fn handle_heartbeat(&mut self, ctx: &mut Context, seq: u64) {
        self.received += 1;
        ctx.emit(EventKind::Received { seq });
        let now = ctx.now();

        let n_bank = self.bank.len();
        if n_bank > 0 {
            self.deadline_scratch.clear();
            for idx in 0..n_bank {
                self.deadline_scratch.push(self.bank.next_deadline(idx));
            }
            self.bank.observe_heartbeat(seq, now);
            let mut ends = self.bank.transitions().iter().peekable();
            for idx in 0..n_bank {
                if ends.next_if(|t| t.combo == idx).is_some() {
                    ctx.emit(EventKind::EndSuspect {
                        detector: self.detector_base + idx as u32,
                    });
                }
                // Re-arm only when the freshness point moved (fresh
                // heartbeat).
                if self.bank.next_deadline(idx) != self.deadline_scratch[idx] {
                    if let Some(deadline) = self.bank.next_deadline(idx) {
                        let delay = deadline
                            .checked_duration_since(now)
                            .unwrap_or(SimDuration::ZERO);
                        ctx.set_timer(delay, idx as TimerId);
                    }
                }
            }
        }

        for (i, fd) in self.extras.iter_mut().enumerate() {
            let idx = n_bank + i;
            let was_deadline = fd.next_deadline();
            if let Some(fd_core::FdTransition::EndSuspect) = fd.on_heartbeat(seq, now) {
                ctx.emit(EventKind::EndSuspect {
                    detector: self.detector_base + idx as u32,
                });
            }
            if fd.next_deadline() != was_deadline {
                if let Some(deadline) = fd.next_deadline() {
                    let delay = deadline
                        .checked_duration_since(now)
                        .unwrap_or(SimDuration::ZERO);
                    ctx.set_timer(delay, idx as TimerId);
                }
            }
        }
    }

    /// The freshness-point timer path shared by both layer flavours.
    fn handle_timer(&mut self, ctx: &mut Context, id: TimerId) {
        let idx = id as usize;
        let n_bank = self.bank.len();
        let fired = if idx < n_bank {
            self.bank.check_one(idx, ctx.now())
        } else if let Some(fd) = self.extras.get_mut(idx - n_bank) {
            fd.check(ctx.now())
        } else {
            None
        };
        if let Some(fd_core::FdTransition::StartSuspect) = fired {
            ctx.emit(EventKind::StartSuspect {
                detector: self.detector_base + idx as u32,
            });
        }
    }

    /// `true` if this heartbeat is for us (heartbeat kind + source filter).
    fn accepts(&self, msg: &Message) -> bool {
        msg.is_heartbeat() && self.source.is_none_or(|s| msg.from == s)
    }
}

impl Layer for MonitorLayer {
    fn on_deliver(&mut self, ctx: &mut Context, msg: Message) {
        if !self.accepts(&msg) {
            // Non-heartbeat traffic (or another sender's heartbeats) is none
            // of the monitor's business.
            ctx.deliver(msg);
            return;
        }
        self.handle_heartbeat(ctx, msg.seq);
        // The monitor is a tap, not a sink: upper layers still see the
        // heartbeat (e.g. a second monitor watching a different sender).
        ctx.deliver(msg);
    }

    fn on_timer(&mut self, ctx: &mut Context, id: TimerId) {
        self.handle_timer(ctx, id);
    }

    fn name(&self) -> &str {
        "monitor"
    }
}

/// As a multiplexer child, the monitor consumes deliveries by reference:
/// it is a top component there (nothing above it to re-deliver to), so the
/// per-child `Message` clone of the fan-out path would be pure overhead.
impl BatchedLayer for MonitorLayer {
    fn on_deliver_ref(&mut self, ctx: &mut Context, msg: &Message) {
        if !self.accepts(msg) {
            return;
        }
        self.handle_heartbeat(ctx, msg.seq);
    }

    fn on_timer_batched(&mut self, ctx: &mut Context, id: TimerId) {
        self.handle_timer(ctx, id);
    }

    fn batched_name(&self) -> &str {
        "monitor"
    }
}

/// Crash-recovery support: a banked monitor checkpoints its
/// [`DetectorBank`] into the compact `fd-core` snapshot format, so a
/// [`fd_runtime::SupervisorLayer`] can warm-restart it bit-identically.
///
/// Only pure-bank monitors are checkpointable: boxed extras have no
/// serialised form, so a monitor carrying extras returns `None` from
/// [`checkpoint`](Recoverable::checkpoint) and the supervisor falls back to
/// a cold restart. A cold [`reset`](Recoverable::reset) rebuilds the bank
/// from its own combination registry; extras (if any) are left as they are.
impl Recoverable for MonitorLayer {
    fn checkpoint(&self) -> Option<Vec<u8>> {
        if self.bank.is_empty() || !self.extras.is_empty() {
            return None;
        }
        Some(self.bank.snapshot().to_bytes())
    }

    fn restore(&mut self, snapshot: &[u8]) -> Result<(), String> {
        let snap = BankSnapshot::from_bytes(snapshot).map_err(|e| e.to_string())?;
        self.bank.restore(&snap).map_err(|e| e.to_string())
    }

    fn reset(&mut self) {
        let combos = self.bank.combos().to_vec();
        let eta = self.bank.eta();
        self.bank = DetectorBank::new(&combos, eta);
    }

    fn rearm(&mut self, ctx: &mut Context) {
        let now = ctx.now();
        for idx in 0..self.bank.len() {
            if let Some(deadline) = self.bank.next_deadline(idx) {
                let delay = deadline
                    .checked_duration_since(now)
                    .unwrap_or(SimDuration::ZERO);
                ctx.set_timer(delay, idx as TimerId);
            }
        }
        for (i, fd) in self.extras.iter().enumerate() {
            if let Some(deadline) = fd.next_deadline() {
                let delay = deadline
                    .checked_duration_since(now)
                    .unwrap_or(SimDuration::ZERO);
                ctx.set_timer(delay, (self.bank.len() + i) as TimerId);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fd_core::{ConstantMargin, Last};
    use fd_net::{ConstantDelay, LinkModel, NoLoss};
    use fd_runtime::{Process, SimEngine};

    fn fixed_fd(name: &str) -> FailureDetector {
        FailureDetector::new(
            name,
            Last::new(),
            ConstantMargin::new(100.0),
            SimDuration::from_secs(1),
        )
    }

    fn build_engine(mttc_s: u64, ttr_s: u64, seed: u64) -> SimEngine {
        let mut engine = SimEngine::new();
        engine.add_process(
            Process::new(ProcessId(0)).with_layer(MonitorLayer::new(vec![fixed_fd("fd0")])),
        );
        engine.add_process(
            Process::new(ProcessId(1))
                .with_layer(SimCrashLayer::new(
                    SimDuration::from_secs(mttc_s),
                    SimDuration::from_secs(ttr_s),
                    DetRng::seed_from(seed),
                ))
                .with_layer(HeartbeaterLayer::new(
                    ProcessId(0),
                    SimDuration::from_secs(1),
                )),
        );
        engine.set_link(
            ProcessId(1),
            ProcessId(0),
            LinkModel::new(
                ConstantDelay::new(SimDuration::from_millis(200)),
                NoLoss,
                DetRng::seed_from(seed + 1),
            ),
        );
        engine
    }

    #[test]
    fn heartbeater_counts_and_stops_at_max() {
        let mut hb =
            HeartbeaterLayer::new(ProcessId(0), SimDuration::from_secs(1)).with_max_cycles(3);
        let mut ctx = Context::new(SimTime::ZERO, ProcessId(1));
        hb.on_start(&mut ctx);
        for _ in 0..5 {
            hb.on_timer(&mut ctx, 0);
        }
        assert_eq!(hb.sent(), 3);
    }

    #[test]
    fn simcrash_alternates_and_isolates() {
        let mut sc = SimCrashLayer::new(
            SimDuration::from_secs(10),
            SimDuration::from_secs(2),
            DetRng::seed_from(9),
        );
        let mut ctx = Context::new(SimTime::ZERO, ProcessId(1));
        assert!(!sc.is_crashed());
        sc.on_timer(&mut ctx, TIMER_CRASH);
        assert!(sc.is_crashed());
        // Messages in both directions are swallowed while crashed.
        sc.on_send(
            &mut ctx,
            Message::heartbeat(ProcessId(1), ProcessId(0), 0, SimTime::ZERO),
        );
        sc.on_deliver(
            &mut ctx,
            Message::heartbeat(ProcessId(0), ProcessId(1), 0, SimTime::ZERO),
        );
        assert_eq!(sc.dropped(), 2);
        sc.on_timer(&mut ctx, TIMER_RESTORE);
        assert!(!sc.is_crashed());
        assert_eq!(sc.crashes(), 1);
    }

    #[test]
    fn end_to_end_crash_detection_cycle() {
        let mut engine = build_engine(60, 10, 42);
        engine.run_until(SimTime::from_secs(600));
        let log = engine.event_log();
        let crashes = log
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Crash))
            .count();
        let starts = log
            .iter()
            .filter(|e| matches!(e.kind, EventKind::StartSuspect { .. }))
            .count();
        let ends = log
            .iter()
            .filter(|e| matches!(e.kind, EventKind::EndSuspect { .. }))
            .count();
        assert!(crashes >= 5, "crashes={crashes}");
        // Every crash must eventually be suspected, and every restore
        // corrected (perfect link: no false positives expected).
        assert_eq!(starts, crashes);
        assert_eq!(ends, crashes);
    }

    #[test]
    fn detection_time_matches_constant_link_analysis() {
        // With constant 200 ms delay and CONST(100ms) margin, after the
        // heartbeat at t the deadline is t+η+300ms. A crash right after a
        // send is detected ≤ η+300ms later.
        let mut engine = build_engine(60, 10, 43);
        engine.run_until(SimTime::from_secs(600));
        let log = engine.event_log().clone();
        let metrics = fd_stat::extract_metrics(&log, 0, SimTime::from_secs(600));
        assert!(!metrics.detection_times_ms.is_empty());
        for &td in &metrics.detection_times_ms {
            assert!(td <= 1_300.0 + 1.0, "T_D = {td}ms");
            assert!(td >= 0.0);
        }
        assert_eq!(metrics.undetected_crashes, 0);
        // No mistakes on a perfect link.
        assert!(metrics.mistake_durations_ms.is_empty());
        assert_eq!(metrics.query_accuracy(), Some(1.0));
    }

    #[test]
    fn monitor_feeds_all_detectors_identically() {
        let mut engine = SimEngine::new();
        engine.add_process(
            Process::new(ProcessId(0)).with_layer(MonitorLayer::new(vec![
                fixed_fd("a"),
                fixed_fd("b"),
                fixed_fd("c"),
            ])),
        );
        engine.add_process(Process::new(ProcessId(1)).with_layer(HeartbeaterLayer::new(
            ProcessId(0),
            SimDuration::from_secs(1),
        )));
        engine.set_link(
            ProcessId(1),
            ProcessId(0),
            LinkModel::new(
                ConstantDelay::new(SimDuration::from_millis(150)),
                NoLoss,
                DetRng::seed_from(5),
            ),
        );
        engine.run_until(SimTime::from_secs(20));
        // All three identical detectors see identical conditions: equal
        // heartbeat counts and equal deadlines.
        let monitor = engine.process_mut(ProcessId(0));
        // (Access via debug formatting of the layer is not enough: reach in
        // through the typed layer API in a white-box way.)
        let layer = monitor.layer_mut(0);
        assert_eq!(layer.name(), "monitor");
    }

    #[test]
    fn monitor_emits_received_events() {
        let mut engine = build_engine(1_000, 10, 44); // crash far away
        engine.run_until(SimTime::from_secs(10));
        let received = engine
            .event_log()
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Received { .. }))
            .count();
        assert!(received >= 9, "received={received}");
    }

    #[test]
    #[should_panic(expected = "at least one detector")]
    fn empty_monitor_rejected() {
        let _ = MonitorLayer::new(Vec::new());
    }

    #[test]
    #[should_panic(expected = "at least one detector")]
    fn empty_banked_monitor_rejected() {
        let _ = MonitorLayer::banked(&[], SimDuration::from_secs(1));
    }

    /// Builds the two-process experiment around a given monitor and returns
    /// the full event log: the comparison target for the banked/boxed and
    /// fan-out/batched differential tests.
    fn run_to_log(monitor_process: Process, secs: u64) -> Vec<fd_stat::Event> {
        let mut engine = SimEngine::new();
        engine.add_process(monitor_process);
        engine.add_process(
            Process::new(ProcessId(1))
                .with_layer(SimCrashLayer::new(
                    SimDuration::from_secs(45),
                    SimDuration::from_secs(8),
                    DetRng::seed_from(7),
                ))
                .with_layer(HeartbeaterLayer::new(
                    ProcessId(0),
                    SimDuration::from_secs(1),
                )),
        );
        engine.set_link(
            ProcessId(1),
            ProcessId(0),
            fd_net::WanProfile::italy_japan().link(DetRng::seed_from(11)),
        );
        engine.run_until(SimTime::from_secs(secs));
        engine.into_event_log().iter().cloned().collect()
    }

    /// The tentpole switch-over guarantee at the layer level: the banked
    /// monitor and the historical boxed-loop monitor produce **identical**
    /// event logs (same events, same timestamps, same order) over the full
    /// 30-combination grid plus a boxed extra, on a lossy WAN link with
    /// crash injection.
    #[test]
    fn banked_and_boxed_monitors_produce_identical_event_logs() {
        let eta = SimDuration::from_secs(1);
        let combos = fd_core::all_combinations();
        let boxed = MonitorLayer::new(combos.iter().map(|c| c.build(eta)).collect())
            .with_extra_detector(fixed_fd("extra"));
        let banked = MonitorLayer::banked(&combos, eta).with_extra_detector(fixed_fd("extra"));
        assert_eq!(boxed.labels().len(), 31);
        assert_eq!(banked.labels(), {
            let mut l: Vec<String> = combos.iter().map(|c| c.label()).collect();
            l.push("extra".to_owned());
            l
        });

        let log_boxed = run_to_log(Process::new(ProcessId(0)).with_layer(boxed), 300);
        let log_banked = run_to_log(Process::new(ProcessId(0)).with_layer(banked), 300);
        assert_eq!(log_boxed.len(), log_banked.len());
        for (a, b) in log_boxed.iter().zip(&log_banked) {
            assert_eq!(a, b);
        }
        // The run exercised suspicions, not just heartbeats.
        let starts = log_banked
            .iter()
            .filter(|e| matches!(e.kind, EventKind::StartSuspect { .. }))
            .count();
        assert!(starts > 0, "no suspicions in the differential window");
    }

    /// The fd-runtime batched-child path: a banked monitor behind
    /// `with_batched_child` (deliveries by reference, no clone) behaves
    /// identically to the same monitor as an owned fan-out child.
    #[test]
    fn batched_multiplexer_child_matches_fanout_child() {
        use fd_runtime::MultiplexerLayer;
        let eta = SimDuration::from_secs(1);
        let combos = fd_core::all_combinations();
        let fanout = MultiplexerLayer::new().with_child(MonitorLayer::banked(&combos, eta));
        let batched =
            MultiplexerLayer::new().with_batched_child(MonitorLayer::banked(&combos, eta));

        let log_fanout = run_to_log(Process::new(ProcessId(0)).with_layer(fanout), 200);
        let log_batched = run_to_log(Process::new(ProcessId(0)).with_layer(batched), 200);
        assert_eq!(log_fanout.len(), log_batched.len());
        for (a, b) in log_fanout.iter().zip(&log_batched) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn banked_monitor_exposes_bank_state() {
        let combos = fd_core::all_combinations();
        let mut layer = MonitorLayer::banked(&combos, SimDuration::from_secs(1))
            .with_extra_detector(fixed_fd("x"));
        assert_eq!(layer.detector_count(), 31);
        assert_eq!(layer.bank().distinct_predictor_count(), 5);
        let mut ctx = Context::new(SimTime::from_millis(200), ProcessId(0));
        layer.on_deliver(
            &mut ctx,
            Message::heartbeat(ProcessId(1), ProcessId(0), 0, SimTime::ZERO),
        );
        assert_eq!(layer.received(), 1);
        assert_eq!(layer.bank().heartbeats(), 1);
        assert_eq!(layer.detector(30).heartbeats(), 1);
        assert!(!layer.is_suspecting(0) && !layer.is_suspecting(30));
    }

    #[test]
    #[should_panic(expected = "lives in the bank")]
    fn detector_accessor_rejects_bank_indices() {
        let layer = MonitorLayer::banked(&fd_core::all_combinations(), SimDuration::from_secs(1));
        let _ = layer.detector(0);
    }

    /// A supervised banked monitor with a quiet crash plan behaves exactly
    /// like the bare monitor: the supervisor is a transparent wrapper.
    #[test]
    fn quiet_supervisor_is_transparent() {
        use fd_runtime::{FaultPlan, RestartMode, SupervisorLayer};
        let eta = SimDuration::from_secs(1);
        let combos = fd_core::all_combinations();
        let bare = MonitorLayer::banked(&combos, eta);
        let supervised = SupervisorLayer::new(
            MonitorLayer::banked(&combos, eta),
            &FaultPlan::new(),
            RestartMode::Warm,
            DetRng::seed_from(21),
        );
        let log_bare = run_to_log(Process::new(ProcessId(0)).with_layer(bare), 200);
        let log_sup = run_to_log(Process::new(ProcessId(0)).with_layer(supervised), 200);
        assert_eq!(log_bare, log_sup);
    }

    /// End-to-end monitor crash-recovery: the monitor process crashes
    /// mid-run, misses heartbeats while down, warm-restarts from its
    /// checkpoint and keeps detecting afterwards.
    #[test]
    fn supervised_monitor_recovers_warm_and_keeps_detecting() {
        use fd_runtime::supervisor::{SUPERVISOR_EVENT_CRASH, SUPERVISOR_EVENT_RECOVERED_WARM};
        use fd_runtime::{FaultKind, FaultPlan, RestartMode, SupervisorLayer};
        let eta = SimDuration::from_secs(1);
        let combos = fd_core::all_combinations();
        let plan = FaultPlan::new().with(
            SimDuration::from_secs(60),
            FaultKind::Crash {
                down_for: SimDuration::from_secs(10),
            },
        );
        let supervised = SupervisorLayer::new(
            MonitorLayer::banked(&combos, eta),
            &plan,
            RestartMode::Warm,
            DetRng::seed_from(22),
        );
        let log = run_to_log(Process::new(ProcessId(0)).with_layer(supervised), 300);

        let crashes: Vec<u64> = log
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::App { code, value } if code == SUPERVISOR_EVENT_CRASH => Some(value),
                _ => None,
            })
            .collect();
        assert_eq!(crashes, vec![1]);
        let recoveries: Vec<u64> = log
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::App { code, value } if code == SUPERVISOR_EVENT_RECOVERED_WARM => {
                    Some(value)
                }
                _ => None,
            })
            .collect();
        assert_eq!(recoveries.len(), 1, "exactly one warm recovery");
        assert_eq!(recoveries[0], 10_000_000, "recovery after the 10 s outage");

        // The monitor kept receiving and detecting after the restart.
        let received_after = log
            .iter()
            .filter(|e| {
                e.at > SimTime::from_secs(75) && matches!(e.kind, EventKind::Received { .. })
            })
            .count();
        assert!(received_after > 0, "no heartbeats processed after recovery");
    }

    #[test]
    fn source_filter_ignores_other_senders() {
        let mut layer = MonitorLayer::new(vec![fixed_fd("f")]).for_source(ProcessId(1));
        let mut ctx = Context::new(SimTime::from_millis(200), ProcessId(0));
        layer.on_deliver(
            &mut ctx,
            Message::heartbeat(ProcessId(2), ProcessId(0), 0, SimTime::ZERO),
        );
        assert_eq!(layer.received(), 0);
        layer.on_deliver(
            &mut ctx,
            Message::heartbeat(ProcessId(1), ProcessId(0), 0, SimTime::ZERO),
        );
        assert_eq!(layer.received(), 1);
        // Only the matching sender advanced the detector.
        assert_eq!(layer.detector(0).heartbeats(), 1);
    }
}
