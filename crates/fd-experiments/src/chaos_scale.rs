//! The shard-chaos scaling experiment: what shard crashes cost at
//! 10k/100k sources, and how much of that cost warm recovery buys back.
//!
//! Four variants run the identical workload (same seed, same source-crash
//! schedule, same per-shard fault plan where supervision is on), so every
//! delta is attributable to the recovery policy alone:
//!
//! * **baseline** — no shard faults, no supervision: the reference
//!   digest, detection times and accuracy.
//! * **warm** — every shard is crashed mid-run (plus seeded chaos) and
//!   restarted warm from its checkpoint. The engine's restart path is
//!   bit-identical, so ΔT_D and ΔP_A must be exactly zero — the paid
//!   cost is wall clock (backoff + replay), not QoS.
//! * **cold** — the same faults, restarts rebuilt with fresh detector
//!   state: the detectors lose their delay history and the QoS moves.
//! * **dead** — one shard is crashed with a zero restart budget: its
//!   segment degrades (stale-with-bound serving), the survivors' QoS is
//!   untouched.
//!
//! Every variant publishes into an in-process [`SuspectView`] with a
//! sampler thread doing point queries throughout the run, so the serving
//! plane's availability under chaos is measured, not assumed. The
//! `chaos_scale` binary writes the table to `BENCH_chaos.json`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use fd_runtime::sharded::{partition, ShardedConfig, ShardedEngine};
use fd_runtime::{RestartMode, ShardFault, ShardFaultKind, SourceCrashPlan, SupervisionConfig};
use fd_serve::{EnginePublisher, SuspectView};

/// What one variant of the workload measured.
#[derive(Debug, Clone)]
pub struct VariantOutcome {
    /// Variant name: `baseline`, `warm`, `cold` or `dead`.
    pub name: &'static str,
    /// Order-independent streaming digest of the merged run (survivors
    /// only when shards died).
    pub digest: u64,
    /// Wall-clock time of the run, milliseconds.
    pub wall_ms: f64,
    /// Source crashes folded into the merged QoS roll-up, summed over
    /// the 30-combination grid.
    pub crashes: u64,
    /// Detected source crashes, summed over the grid.
    pub detections: u64,
    /// Undetected source crashes, summed over the grid.
    pub undetected: u64,
    /// Mean detection time over all detections, microseconds.
    pub mean_td_us: f64,
    /// Query-accuracy estimate: 1 − wrongful-suspicion time over the
    /// surviving sources × combinations × nominal horizon.
    pub pa: f64,
    /// Shard worker panics contained by the supervisor.
    pub shard_crashes: u64,
    /// Restarts restored warm from a checkpoint.
    pub warm_restores: u64,
    /// Restarts rebuilt cold.
    pub cold_restores: u64,
    /// Events replayed across all warm restores.
    pub replayed_events: u64,
    /// Shards that exhausted their restart budget.
    pub dead_shards: u64,
    /// Sources still contributing to the merged report (total minus dead
    /// shards' blocks).
    pub surviving_sources: usize,
    /// View segments left marked degraded after the run.
    pub degraded_segments: u64,
    /// Point queries the sampler issued during the run.
    pub queries: u64,
    /// Queries answered from a healthy published segment.
    pub fresh_answers: u64,
    /// Queries answered stale-with-bound from a degraded segment.
    pub degraded_answers: u64,
    /// Queries against a segment that had not published yet.
    pub unpublished_answers: u64,
}

impl VariantOutcome {
    /// Served answers (fresh + degraded) over all queries: the
    /// degradation-aware plane answers even for dead shards, so this
    /// only drops below 1 during warmup.
    pub fn query_availability(&self) -> f64 {
        if self.queries == 0 {
            return 1.0;
        }
        (self.fresh_answers + self.degraded_answers) as f64 / self.queries as f64
    }
}

/// One row of the chaos table: all four variants at one source count,
/// with the warm/cold QoS deltas against the baseline.
#[derive(Debug, Clone)]
pub struct ChaosScaleRow {
    /// Monitored sources.
    pub sources: usize,
    /// Heartbeat cycles per source.
    pub cycles: u64,
    /// Worker shards (clamped to the source count).
    pub shards: usize,
    /// Root seed shared by every variant.
    pub seed: u64,
    pub baseline: VariantOutcome,
    pub warm: VariantOutcome,
    pub cold: VariantOutcome,
    pub dead: VariantOutcome,
    /// `warm.mean_td_us − baseline.mean_td_us` (zero by construction).
    pub delta_td_warm_us: f64,
    /// `cold.mean_td_us − baseline.mean_td_us`.
    pub delta_td_cold_us: f64,
    /// `warm.pa − baseline.pa` (zero by construction).
    pub delta_pa_warm: f64,
    /// `cold.pa − baseline.pa`.
    pub delta_pa_cold: f64,
}

/// The deterministic per-shard fault plan every supervised variant runs:
/// one plain crash and one checkpoint-then-kill per shard, early enough
/// to fire at any population this experiment uses.
pub fn fault_plan(shards: usize) -> Vec<ShardFault> {
    let mut faults = Vec::with_capacity(2 * shards);
    for s in 0..shards {
        faults.push(ShardFault {
            shard: s,
            after_events: 60 + 13 * s as u64,
            kind: ShardFaultKind::Crash,
        });
        faults.push(ShardFault {
            shard: s,
            after_events: 160 + 17 * s as u64,
            kind: ShardFaultKind::CheckpointThenCrash,
        });
    }
    faults
}

/// The shared workload configuration: paper-grid WAN defaults plus a
/// seeded source-crash schedule, so the QoS roll-ups carry real T_D
/// samples for recovery to move.
fn workload(sources: usize, cycles: u64, shards: usize, seed: u64) -> ShardedConfig {
    assert!(
        cycles >= 4,
        "chaos_scale needs >= 4 cycles for the crash window"
    );
    let mut cfg = ShardedConfig::paper_grid(sources, cycles, seed);
    cfg.shards = shards.max(1);
    cfg.loss = 0.02;
    cfg.source_crashes = Some(SourceCrashPlan {
        frac: 0.25,
        down_cycles: 2,
    });
    cfg
}

/// The sampler's query counts: `(fresh, degraded, unpublished)`.
type SampleCounts = (u64, u64, u64);

/// Queries the view from a second thread for the whole duration of a
/// run, walking sources in a fixed multiplicative stride so samples
/// spread across every segment.
fn sample_queries(
    view: &Arc<SuspectView>,
    stop: &Arc<AtomicBool>,
) -> std::thread::JoinHandle<SampleCounts> {
    let view = Arc::clone(view);
    let stop = Arc::clone(stop);
    std::thread::spawn(move || {
        let (mut fresh, mut degraded, mut unpublished) = (0u64, 0u64, 0u64);
        let sources = view.sources() as u64;
        let combos = view.combos() as u64;
        let mut i = 0u64;
        while !stop.load(Ordering::Acquire) {
            let source = (i.wrapping_mul(2_654_435_761)) % sources;
            let combo = i % combos;
            match view.point(source as u32, combo as u32) {
                Some(ans) if ans.degraded => degraded += 1,
                Some(_) => fresh += 1,
                None => unpublished += 1,
            }
            i += 1;
            if i.is_multiple_of(64) {
                std::thread::sleep(std::time::Duration::from_micros(50));
            }
        }
        (fresh, degraded, unpublished)
    })
}

/// Runs one variant: the workload, published into a fresh view, under
/// the given supervision policy (none = unsupervised baseline), with the
/// query sampler alongside.
fn run_variant(
    name: &'static str,
    cfg: &ShardedConfig,
    sup: Option<&SupervisionConfig>,
) -> VariantOutcome {
    let combos = cfg.combos.len();
    let view = SuspectView::for_engine(combos, cfg.sources, cfg.shards);
    let publisher = EnginePublisher::new(&view);
    let stop = Arc::new(AtomicBool::new(false));
    let sampler = sample_queries(&view, &stop);

    let engine = ShardedEngine::new(cfg.clone());
    let every = cfg.eta;
    let report = match sup {
        None => engine.run_published(every, &publisher),
        Some(sup) => engine.run_supervised_published(sup, every, &publisher),
    };

    stop.store(true, Ordering::Release);
    let (fresh, degraded, unpublished) = sampler.join().expect("sampler panicked");

    let crashes: u64 = report.qos.iter().map(|s| s.crashes).sum();
    let detections: u64 = report.qos.iter().map(|s| s.detections).sum();
    let undetected: u64 = report.qos.iter().map(|s| s.undetected).sum();
    let td_sum_us: u64 = report.qos.iter().map(|s| s.td_sum_us).sum();
    let tm_sum_us: u64 = report.qos.iter().map(|s| s.tm_sum_us).sum();
    let dead_shards = report.shard_status.iter().filter(|s| s.dead).count() as u64;
    let surviving_sources: usize = if report.shard_status.is_empty() {
        cfg.sources
    } else {
        report
            .shard_status
            .iter()
            .filter(|s| !s.dead)
            .map(|s| s.len)
            .sum()
    };
    let horizon_us = cfg.cycles * cfg.eta.as_micros();
    let monitored_us = (surviving_sources * combos) as f64 * horizon_us as f64;
    let degraded_segments = (0..view.segments())
        .filter(|&seg| view.segment_degraded(seg))
        .count() as u64;

    VariantOutcome {
        name,
        digest: report.digest,
        wall_ms: report.wall.as_secs_f64() * 1e3,
        crashes,
        detections,
        undetected,
        mean_td_us: if detections == 0 {
            0.0
        } else {
            td_sum_us as f64 / detections as f64
        },
        pa: if monitored_us == 0.0 {
            1.0
        } else {
            1.0 - tm_sum_us as f64 / monitored_us
        },
        shard_crashes: report
            .shard_status
            .iter()
            .map(|s| u64::from(s.crashes))
            .sum(),
        warm_restores: report
            .shard_status
            .iter()
            .map(|s| u64::from(s.warm_restores))
            .sum(),
        cold_restores: report
            .shard_status
            .iter()
            .map(|s| u64::from(s.cold_restores))
            .sum(),
        replayed_events: report.shard_status.iter().map(|s| s.replayed_events).sum(),
        dead_shards,
        surviving_sources,
        degraded_segments,
        queries: fresh + degraded + unpublished,
        fresh_answers: fresh,
        degraded_answers: degraded,
        unpublished_answers: unpublished,
    }
}

/// Runs the four variants at one source count and computes the deltas.
pub fn run_chaos_row(sources: usize, cycles: u64, shards: usize, seed: u64) -> ChaosScaleRow {
    let cfg = workload(sources, cycles, shards, seed);
    let actual_shards = partition(cfg.sources, cfg.shards).len();
    let faults = fault_plan(actual_shards);
    // Budget: the deterministic plan's two panics per shard, plus every
    // seeded fault in case the stream piles onto one shard.
    let extra = 2 * actual_shards;
    let budget = (2 + extra) as u32;

    let mut warm_sup =
        SupervisionConfig::with_restart(RestartMode::Warm).seeded_chaos(seed, actual_shards, extra);
    warm_sup.faults.extend(faults.iter().copied());
    warm_sup.max_restarts = budget;
    warm_sup.checkpoint_every_events = 5_000;

    let mut cold_sup = warm_sup.clone();
    cold_sup.restart = RestartMode::Cold;

    // Dead: one crash on the last shard, zero restart budget — the
    // shard dies at its first fault and its segment degrades.
    let mut dead_sup = SupervisionConfig::with_restart(RestartMode::Warm);
    dead_sup.max_restarts = 0;
    dead_sup.faults = vec![ShardFault {
        shard: actual_shards - 1,
        after_events: 60,
        kind: ShardFaultKind::Crash,
    }];

    let baseline = run_variant("baseline", &cfg, None);
    let warm = run_variant("warm", &cfg, Some(&warm_sup));
    let cold = run_variant("cold", &cfg, Some(&cold_sup));
    let dead = run_variant("dead", &cfg, Some(&dead_sup));

    ChaosScaleRow {
        sources,
        cycles,
        shards: actual_shards,
        seed,
        delta_td_warm_us: warm.mean_td_us - baseline.mean_td_us,
        delta_td_cold_us: cold.mean_td_us - baseline.mean_td_us,
        delta_pa_warm: warm.pa - baseline.pa,
        delta_pa_cold: cold.pa - baseline.pa,
        baseline,
        warm,
        cold,
        dead,
    }
}

/// Renders one variant as a JSON object (hand-rolled: the workspace
/// carries no JSON dependency).
pub fn render_variant_json(v: &VariantOutcome) -> String {
    format!(
        "{{\"digest\": \"{:016x}\", \"wall_ms\": {:.3}, \"crashes\": {}, \
         \"detections\": {}, \"undetected\": {}, \"mean_td_us\": {:.1}, \
         \"pa\": {:.9}, \"shard_crashes\": {}, \"warm_restores\": {}, \
         \"cold_restores\": {}, \"replayed_events\": {}, \"dead_shards\": {}, \
         \"surviving_sources\": {}, \"degraded_segments\": {}, \"queries\": {}, \
         \"fresh_answers\": {}, \"degraded_answers\": {}, \
         \"unpublished_answers\": {}, \"query_availability\": {:.6}}}",
        v.digest,
        v.wall_ms,
        v.crashes,
        v.detections,
        v.undetected,
        v.mean_td_us,
        v.pa,
        v.shard_crashes,
        v.warm_restores,
        v.cold_restores,
        v.replayed_events,
        v.dead_shards,
        v.surviving_sources,
        v.degraded_segments,
        v.queries,
        v.fresh_answers,
        v.degraded_answers,
        v.unpublished_answers,
        v.query_availability(),
    )
}

/// Renders one row (all four variants plus deltas) as a JSON object.
pub fn render_row_json(r: &ChaosScaleRow) -> String {
    format!(
        "{{\"sources\": {}, \"cycles\": {}, \"shards\": {},\n      \
         \"baseline\": {},\n      \"warm\": {},\n      \"cold\": {},\n      \
         \"dead\": {},\n      \
         \"delta\": {{\"warm_td_us\": {:.3}, \"cold_td_us\": {:.3}, \
         \"warm_pa\": {:.9}, \"cold_pa\": {:.9}}}}}",
        r.sources,
        r.cycles,
        r.shards,
        render_variant_json(&r.baseline),
        render_variant_json(&r.warm),
        render_variant_json(&r.cold),
        render_variant_json(&r.dead),
        r.delta_td_warm_us,
        r.delta_td_cold_us,
        r.delta_pa_warm,
        r.delta_pa_cold,
    )
}

/// Renders the `BENCH_chaos.json` document.
pub fn render_json(rows: &[ChaosScaleRow], cycles: u64, shards: usize, seed: u64) -> String {
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"chaos_scale\",\n");
    out.push_str(&format!("  \"host_cores\": {host_cores},\n"));
    out.push_str(&format!("  \"shards_requested\": {shards},\n"));
    out.push_str(&format!("  \"cycles\": {cycles},\n"));
    out.push_str(&format!("  \"seed\": {seed},\n"));
    out.push_str("  \"grid_combos\": 30,\n");
    out.push_str("  \"source_crash_frac\": 0.25,\n");
    out.push_str("  \"source_down_cycles\": 2,\n");
    out.push_str("  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str("    ");
        out.push_str(&render_row_json(row));
        out.push_str(if i + 1 == rows.len() { "\n" } else { ",\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warm_recovery_is_free_and_cold_is_not() {
        let row = run_chaos_row(96, 6, 2, 11);
        // Warm restarts replay to the identical timeline: no QoS cost.
        assert_eq!(row.warm.digest, row.baseline.digest);
        assert_eq!(row.delta_td_warm_us, 0.0);
        assert_eq!(row.delta_pa_warm, 0.0);
        assert!(row.warm.shard_crashes >= 4, "plan fires twice per shard");
        assert!(row.warm.warm_restores == row.warm.shard_crashes);
        // Cold restarts lose detector memory: the run itself diverges.
        assert_ne!(row.cold.digest, row.baseline.digest);
        assert!(row.cold.cold_restores > 0);
        // The workload generated real detection work to attribute.
        assert!(row.baseline.crashes > 0);
        assert!(row.baseline.detections > 0);
        assert!(row.baseline.pa > 0.0 && row.baseline.pa <= 1.0);
    }

    #[test]
    fn dead_variant_degrades_exactly_one_segment() {
        let row = run_chaos_row(96, 6, 2, 13);
        assert_eq!(row.dead.dead_shards, 1);
        assert_eq!(row.dead.degraded_segments, 1);
        assert_eq!(row.dead.surviving_sources, 48);
        // Survivors keep folding: the merged report still carries QoS.
        assert!(row.dead.crashes > 0);
    }

    #[test]
    fn json_document_is_well_formed_enough() {
        let row = run_chaos_row(64, 4, 2, 5);
        let doc = render_json(&[row], 4, 2, 5);
        assert!(doc.starts_with('{') && doc.trim_end().ends_with('}'));
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
        for key in [
            "\"bench\": \"chaos_scale\"",
            "\"baseline\"",
            "\"warm\"",
            "\"cold\"",
            "\"dead\"",
            "\"warm_td_us\"",
            "\"query_availability\"",
        ] {
            assert!(doc.contains(key), "missing {key} in {doc}");
        }
    }
}
