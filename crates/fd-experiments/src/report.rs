//! Text rendering of the paper's figures and tables.
//!
//! The paper's Figures 4–8 plot one series per predictor over the six safety
//! margins (`CI_low … JAC_high` on the x-axis). [`FigureTable`] is the text
//! equivalent: a predictor × margin matrix of the metric.

use std::fmt;

use fd_core::{MarginKind, PredictorKind};
use serde::{Deserialize, Serialize};

use crate::qos::{ExperimentResults, Metric};

/// A predictor × margin matrix of one QoS metric.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FigureTable {
    /// E.g. `"Figure 4 — Delay metric T_D (ms)"`.
    pub title: String,
    /// Column headers (`CI_low` … `JAC_high`).
    pub margin_labels: Vec<String>,
    /// `(predictor label, one value per margin)`; `None` = not measurable
    /// in the experiment (e.g. no mistakes at all).
    pub rows: Vec<(String, Vec<Option<f64>>)>,
    /// Whether smaller values are better (direction of the paper's arrow).
    pub smaller_is_better: bool,
}

impl FigureTable {
    /// Builds the table for `metric` from experiment results. The 30 grid
    /// combinations are arranged predictor-major in the paper's order; any
    /// extra detectors (baselines) are omitted here and appear only in
    /// [`ExperimentResults::reports`].
    pub fn from_results(results: &ExperimentResults, metric: Metric) -> FigureTable {
        let margins = MarginKind::paper_set();
        let margin_labels: Vec<String> = margins.iter().map(|m| m.axis_label()).collect();
        let mut rows = Vec::new();
        for predictor in PredictorKind::paper_set() {
            let mut values = Vec::with_capacity(margins.len());
            for margin in &margins {
                let idx = results
                    .combos
                    .iter()
                    .position(|c| c.predictor == predictor && c.margin == *margin);
                values.push(idx.and_then(|i| results.value(i, metric)));
            }
            rows.push((predictor.label(), values));
        }
        FigureTable {
            title: format!("Figure {} — {}", metric.figure_number(), metric.title()),
            margin_labels,
            rows,
            smaller_is_better: metric.smaller_is_better(),
        }
    }

    /// The value for (predictor prefix, margin label), if present.
    pub fn value(&self, predictor_prefix: &str, margin_label: &str) -> Option<f64> {
        let col = self.margin_labels.iter().position(|m| m == margin_label)?;
        let row = self
            .rows
            .iter()
            .find(|(p, _)| p.starts_with(predictor_prefix))?;
        row.1[col]
    }

    /// The best (per `smaller_is_better`) combination in the grid.
    pub fn best(&self) -> Option<(String, String, f64)> {
        let mut best: Option<(String, String, f64)> = None;
        for (p, values) in &self.rows {
            for (m, v) in self.margin_labels.iter().zip(values) {
                let Some(v) = *v else { continue };
                let better = match &best {
                    None => true,
                    Some((_, _, b)) => {
                        if self.smaller_is_better {
                            v < *b
                        } else {
                            v > *b
                        }
                    }
                };
                if better {
                    best = Some((p.clone(), m.clone(), v));
                }
            }
        }
        best
    }

    /// The worst combination in the grid.
    pub fn worst(&self) -> Option<(String, String, f64)> {
        let inverted = FigureTable {
            smaller_is_better: !self.smaller_is_better,
            ..self.clone()
        };
        inverted.best()
    }
}

impl fmt::Display for FigureTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.title)?;
        write!(f, "{:<16}", "predictor")?;
        for m in &self.margin_labels {
            write!(f, " {m:>10}")?;
        }
        writeln!(f)?;
        for (p, values) in &self.rows {
            write!(f, "{p:<16}")?;
            for v in values {
                match v {
                    Some(v) if v.abs() < 10.0 => write!(f, " {v:>10.4}")?,
                    Some(v) => write!(f, " {v:>10.1}")?,
                    None => write!(f, " {:>10}", "-")?,
                }
            }
            writeln!(f)?;
        }
        writeln!(
            f,
            "({} is better)",
            if self.smaller_is_better {
                "lower"
            } else {
                "higher"
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_table() -> FigureTable {
        FigureTable {
            title: "Figure 4 — T_D".to_owned(),
            margin_labels: vec!["CI_low".into(), "JAC_low".into()],
            rows: vec![
                ("ARIMA(2,1,1)".into(), vec![Some(500.0), Some(400.0)]),
                ("MEAN".into(), vec![Some(900.0), None]),
            ],
            smaller_is_better: true,
        }
    }

    #[test]
    fn value_lookup() {
        let t = sample_table();
        assert_eq!(t.value("ARIMA", "JAC_low"), Some(400.0));
        assert_eq!(t.value("MEAN", "JAC_low"), None);
        assert_eq!(t.value("MEAN", "CI_low"), Some(900.0));
        assert_eq!(t.value("NOPE", "CI_low"), None);
        assert_eq!(t.value("MEAN", "NOPE"), None);
    }

    #[test]
    fn best_and_worst_respect_direction() {
        let t = sample_table();
        let (p, m, v) = t.best().unwrap();
        assert_eq!(
            (p.as_str(), m.as_str(), v),
            ("ARIMA(2,1,1)", "JAC_low", 400.0)
        );
        let (p, _, v) = t.worst().unwrap();
        assert_eq!((p.as_str(), v), ("MEAN", 900.0));

        let higher = FigureTable {
            smaller_is_better: false,
            ..sample_table()
        };
        assert_eq!(higher.best().unwrap().2, 900.0);
    }

    #[test]
    fn display_renders_dashes_for_missing() {
        let t = sample_table();
        let s = t.to_string();
        assert!(s.contains("Figure 4"));
        assert!(s.contains('-'));
        assert!(s.contains("lower is better"));
        assert!(s.contains("CI_low") && s.contains("JAC_low"));
    }
}
