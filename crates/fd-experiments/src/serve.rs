//! The serving-plane experiment: how fast, and how stale, is the
//! suspect-query plane while the sharded engine monitors a large grid?
//!
//! The `serve` binary drives a [`ShardedEngine`] run with the fd-serve
//! publication hook attached, stands up the UDP query server on
//! loopback, and hammers it from load-generator threads issuing point
//! (and periodic bulk range) queries. Recorded per source count, into
//! `BENCH_serve.json` at the repo root:
//!
//! * **throughput** — answered queries per second across all load
//!   threads;
//! * **latency** — p50/p99 of the client-observed round trip, measured
//!   through the mergeable [`LogHistogram`] so per-thread recordings
//!   combine without precision games;
//! * **staleness** — wall-clock age of the served snapshot (every
//!   `PointResp` carries it) and its translation into publication
//!   epochs, i.e. how many publish intervals behind the live engine a
//!   served answer was.
//!
//! The smoke configuration ([`run_smoke`]) is the CI gate: it asserts at
//! least one epoch was published, that the seqlock never *served* a torn
//! snapshot under a deliberate writer/reader race, and that garbage
//! frames are counted and dropped rather than crashing the server.

use std::net::UdpSocket;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use fd_runtime::sharded::{partition, ShardedConfig, ShardedEngine};
use fd_serve::wire::FLAG_PUBLISHED;
use fd_serve::{EnginePublisher, Response, ServeClient, ServeConfig, ServeServer, SuspectView};
use fd_sim::{SimDuration, SimTime};
use fd_stat::LogHistogram;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One row of the serving benchmark: a monitored grid at one source
/// count with the query plane under load.
#[derive(Debug, Clone)]
pub struct ServeRow {
    /// Monitored sources.
    pub sources: usize,
    /// Heartbeat cycles simulated per source.
    pub cycles: u64,
    /// Engine shards (= view segments).
    pub shards: usize,
    /// Load-generator threads.
    pub query_threads: usize,
    /// Publication epochs across all segments.
    pub epochs_published: u64,
    /// Point queries answered.
    pub point_queries: u64,
    /// Range queries answered.
    pub range_queries: u64,
    /// Client-side receive timeouts (unanswered within 250 ms).
    pub timeouts: u64,
    /// Answered queries per second, all threads combined.
    pub qps: f64,
    /// Median query round trip, microseconds.
    pub p50_us: f64,
    /// 99th-percentile query round trip, microseconds.
    pub p99_us: f64,
    /// Mean wall-clock age of served snapshots, milliseconds.
    pub staleness_mean_ms: f64,
    /// Worst wall-clock age of a served snapshot, milliseconds.
    pub staleness_max_ms: f64,
    /// Mean staleness in publication epochs of one segment.
    pub epoch_lag_mean: f64,
    /// Worst staleness in publication epochs of one segment.
    pub epoch_lag_max: f64,
    /// Seqlock read retries (torn epochs detected and re-read — never
    /// served).
    pub torn_retries: u64,
    /// Malformed frames counted and dropped by the server.
    pub malformed: u64,
    /// Wall time of the monitored run, milliseconds.
    pub engine_wall_ms: f64,
}

/// Per-load-thread accumulator, merged after the run.
struct ThreadOut {
    hist: LogHistogram,
    points: u64,
    ranges: u64,
    timeouts: u64,
    stale_sum_us: f64,
    stale_samples: u64,
    stale_max_us: u64,
}

fn query_loop(
    addr: std::net::SocketAddr,
    sources: usize,
    combos: usize,
    seed: u64,
    done: &AtomicBool,
) -> ThreadOut {
    let mut client =
        ServeClient::connect(addr, Duration::from_millis(250)).expect("connect load client");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut out = ThreadOut {
        hist: LogHistogram::latency_micros(),
        points: 0,
        ranges: 0,
        timeouts: 0,
        stale_sum_us: 0.0,
        stale_samples: 0,
        stale_max_us: 0,
    };
    let mut i = 0u64;
    while !done.load(Ordering::Acquire) {
        i += 1;
        let source = (rng.gen::<u32>() as usize % sources) as u32;
        let combo = (rng.gen::<u32>() as usize % combos) as u16;
        let t0 = Instant::now();
        // Every 64th request is a bulk range read; the rest are points.
        let resp = if i % 64 == 0 {
            client.range(combo, source, 16)
        } else {
            client.point(source, combo)
        };
        match resp {
            Ok(Response::PointResp { flags, age_us, .. }) => {
                out.hist.push(t0.elapsed().as_secs_f64() * 1e6);
                out.points += 1;
                if flags & FLAG_PUBLISHED != 0 {
                    out.stale_sum_us += age_us as f64;
                    out.stale_samples += 1;
                    out.stale_max_us = out.stale_max_us.max(age_us);
                }
            }
            Ok(Response::RangeResp { .. }) => {
                out.hist.push(t0.elapsed().as_secs_f64() * 1e6);
                out.ranges += 1;
            }
            Ok(_) => {}
            Err(_) => out.timeouts += 1,
        }
    }
    out
}

/// Runs the monitored grid at one source count with the query plane
/// under load and reports throughput, latency and staleness.
pub fn run_serve_row(
    sources: usize,
    cycles: u64,
    shards: usize,
    seed: u64,
    query_threads: usize,
) -> ServeRow {
    let mut config = ShardedConfig::paper_grid(sources, cycles, seed);
    config.shards = shards.max(1);
    // Lively enough that suspicion state actually changes between epochs.
    config.loss = 0.02;
    config.spike_prob = 0.02;
    let every = SimDuration::from_millis(500); // η/2: two epochs per cycle
    let blocks = partition(config.sources, config.shards);
    let combos = config.combos.len();

    let view = SuspectView::new(combos, &blocks);
    let publisher = EnginePublisher::new(&view);
    let server = ServeServer::start(
        Arc::clone(&view),
        ServeConfig {
            workers: query_threads.clamp(2, 8),
            ..ServeConfig::default()
        },
    )
    .expect("bind serve server");
    let addr = server.local_addr();
    let engine = ShardedEngine::new(config);
    let done = AtomicBool::new(false);
    let threads = query_threads.max(1);

    let query_started = Instant::now();
    let (report, outs) = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let done = &done;
                s.spawn(move || query_loop(addr, sources, combos, seed ^ (t as u64) << 32, done))
            })
            .collect();
        let report = engine.run_published(every, &publisher);
        done.store(true, Ordering::Release);
        let outs: Vec<ThreadOut> = handles
            .into_iter()
            .map(|h| h.join().expect("load thread panicked"))
            .collect();
        (report, outs)
    });
    let query_wall = query_started.elapsed().as_secs_f64();

    let mut hist = LogHistogram::latency_micros();
    let (mut points, mut ranges, mut timeouts) = (0u64, 0u64, 0u64);
    let (mut stale_sum_us, mut stale_samples, mut stale_max_us) = (0.0f64, 0u64, 0u64);
    for out in outs {
        hist.merge(&out.hist);
        points += out.points;
        ranges += out.ranges;
        timeouts += out.timeouts;
        stale_sum_us += out.stale_sum_us;
        stale_samples += out.stale_samples;
        stale_max_us = stale_max_us.max(out.stale_max_us);
    }
    let epochs_published: u64 = (0..view.segments()).map(|s| view.epoch(s)).sum();
    let engine_wall = report.wall.as_secs_f64();
    // Wall-clock publication rate of one segment: how many epochs of lag
    // a given snapshot age corresponds to.
    let seg_rate = if engine_wall > 0.0 && view.segments() > 0 {
        epochs_published as f64 / view.segments() as f64 / engine_wall
    } else {
        0.0
    };
    let stale_mean_us = if stale_samples > 0 {
        stale_sum_us / stale_samples as f64
    } else {
        0.0
    };
    let answered = points + ranges;
    ServeRow {
        sources,
        cycles,
        shards: report.shards,
        query_threads: threads,
        epochs_published,
        point_queries: points,
        range_queries: ranges,
        timeouts,
        qps: if query_wall > 0.0 {
            answered as f64 / query_wall
        } else {
            0.0
        },
        p50_us: hist.quantile(0.50).unwrap_or(0.0),
        p99_us: hist.quantile(0.99).unwrap_or(0.0),
        staleness_mean_ms: stale_mean_us / 1e3,
        staleness_max_ms: stale_max_us as f64 / 1e3,
        epoch_lag_mean: stale_mean_us * 1e-6 * seg_rate,
        epoch_lag_max: stale_max_us as f64 * 1e-6 * seg_rate,
        torn_retries: view.torn_retries(),
        malformed: server.stats().malformed.load(Ordering::Relaxed),
        engine_wall_ms: engine_wall * 1e3,
    }
}

/// Runs the serving benchmark over several source counts.
pub fn run_serve(
    counts: &[usize],
    cycles: u64,
    shards: usize,
    seed: u64,
    query_threads: usize,
) -> Vec<ServeRow> {
    counts
        .iter()
        .map(|&n| run_serve_row(n, cycles, shards, seed, query_threads))
        .collect()
}

/// The result of the deliberate writer/reader seqlock race.
#[derive(Debug, Clone, Copy)]
pub struct TornCheck {
    /// Validated reads that were *not* a uniform single-epoch snapshot —
    /// must be zero (a nonzero count is a seqlock bug).
    pub torn_served: u64,
    /// Validated reads performed.
    pub reads: u64,
    /// Reads the seqlock detected as racing and retried (the mechanism
    /// working; expected nonzero under this race).
    pub retries: u64,
    /// Epochs published by the racing writer.
    pub epochs: u64,
}

/// Races one publishing writer against `readers` validating reader
/// threads over a 256-source single-combo view. Each epoch's bitmap is a
/// uniform pattern keyed to the epoch's parity, so *any* blend of two
/// epochs — torn words within a snapshot, or words from an epoch other
/// than the validated one — is detectable in the reader.
pub fn torn_read_check(epochs: u64, readers: usize) -> TornCheck {
    const WORDS: usize = 4; // 256 sources, one combination
    const PAT_ODD: u64 = 0x5555_5555_5555_5555;
    const PAT_EVEN: u64 = 0xAAAA_AAAA_AAAA_AAAA;
    let view = SuspectView::new(1, &[(0, WORDS * 64)]);
    let stop = AtomicBool::new(false);
    let torn = AtomicU64::new(0);
    let reads = AtomicU64::new(0);
    std::thread::scope(|s| {
        for _ in 0..readers.max(1) {
            let (view, stop, torn, reads) = (&view, &stop, &torn, &reads);
            s.spawn(move || {
                while !stop.load(Ordering::Acquire) {
                    let Some(r) = view.range(0, 0, WORDS) else {
                        continue;
                    };
                    reads.fetch_add(1, Ordering::Relaxed);
                    let expect = if r.epoch % 2 == 0 { PAT_EVEN } else { PAT_ODD };
                    if r.words.len() != WORDS || r.words.iter().any(|&w| w != expect) {
                        torn.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
        let mut writer = view.writer(0);
        for e in 1..=epochs {
            let pat = if e % 2 == 0 { PAT_EVEN } else { PAT_ODD };
            writer.publish_words(&[pat; WORDS], SimTime::from_micros(e));
        }
        // Under a loaded scheduler the publish loop can finish before a
        // reader thread ever runs; the final epoch stays published, so
        // wait for each reader to validate at least one read before
        // stopping (the race window is over, but the check "a validated
        // read is never torn" still needs validated reads to exist).
        while reads.load(Ordering::Relaxed) < readers.max(1) as u64 {
            std::thread::yield_now();
        }
        stop.store(true, Ordering::Release);
    });
    TornCheck {
        torn_served: torn.load(Ordering::Relaxed),
        reads: reads.load(Ordering::Relaxed),
        retries: view.torn_retries(),
        epochs,
    }
}

/// Counts how many garbage datagrams a live server rejects (polling its
/// malformed counter until it reaches `frames` or the deadline passes).
pub fn malformed_frame_check(frames: usize) -> u64 {
    let view = SuspectView::new(1, &[(0, 64)]);
    let server =
        ServeServer::start(Arc::clone(&view), ServeConfig::default()).expect("bind serve server");
    let socket = UdpSocket::bind("127.0.0.1:0").expect("bind garbage source");
    for i in 0..frames {
        // A mix of empty, short and wrong-magic frames.
        let garbage: Vec<u8> = match i % 3 {
            0 => Vec::new(),
            1 => vec![0xDE, 0xAD],
            _ => vec![0xFF; 32],
        };
        socket
            .send_to(&garbage, server.local_addr())
            .expect("send garbage");
    }
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let seen = server.stats().malformed.load(Ordering::Relaxed);
        if seen >= frames as u64 || Instant::now() > deadline {
            return seen;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// The CI smoke gate: seqlock integrity under a deliberate race, at
/// least one published epoch end-to-end, and malformed-frame rejection.
///
/// # Panics
///
/// Panics (failing the CI job) if any gate is violated.
pub fn run_smoke(seed: u64) {
    let tear = torn_read_check(2_000, 4);
    assert_eq!(
        tear.torn_served, 0,
        "seqlock served a torn snapshot ({} of {} reads)",
        tear.torn_served, tear.reads
    );
    assert!(tear.reads > 0, "readers never observed a published epoch");
    println!(
        "  seqlock race: {} reads over {} epochs, {} retries, 0 torn served",
        tear.reads, tear.epochs, tear.retries
    );

    let row = run_serve_row(256, 4, 2, seed, 2);
    assert!(
        row.epochs_published >= 1,
        "no epoch reached the serving plane"
    );
    assert!(
        row.point_queries + row.range_queries > 0,
        "load generator got no answers"
    );
    println!(
        "  end-to-end: {} epochs, {} answers ({:.0} q/s), p50 {:.0} µs, staleness mean {:.2} ms",
        row.epochs_published,
        row.point_queries + row.range_queries,
        row.qps,
        row.p50_us,
        row.staleness_mean_ms
    );

    let rejected = malformed_frame_check(9);
    assert!(
        rejected >= 9,
        "server counted {rejected}/9 malformed frames"
    );
    println!("  malformed frames: {rejected}/9 counted and dropped");
}

/// Renders the benchmark as the `BENCH_serve.json` document (hand-rolled
/// JSON: the workspace deliberately carries no JSON dependency).
pub fn render_json(rows: &[ServeRow], shards_requested: usize, seed: u64) -> String {
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"serve\",\n");
    out.push_str(&format!("  \"host_cores\": {host_cores},\n"));
    out.push_str(&format!("  \"shards_requested\": {shards_requested},\n"));
    out.push_str(&format!("  \"seed\": {seed},\n"));
    out.push_str("  \"grid_combos\": 30,\n");
    out.push_str("  \"publish_interval_ms\": 500,\n");
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"sources\": {}, \"cycles\": {}, \"shards\": {}, \"query_threads\": {}, \
             \"epochs_published\": {}, \"point_queries\": {}, \"range_queries\": {}, \
             \"timeouts\": {}, \"qps\": {:.1}, \"p50_us\": {:.1}, \"p99_us\": {:.1}, \
             \"staleness_mean_ms\": {:.3}, \"staleness_max_ms\": {:.3}, \
             \"epoch_lag_mean\": {:.4}, \"epoch_lag_max\": {:.4}, \"torn_retries\": {}, \
             \"malformed\": {}, \"engine_wall_ms\": {:.3}}}{}\n",
            r.sources,
            r.cycles,
            r.shards,
            r.query_threads,
            r.epochs_published,
            r.point_queries,
            r.range_queries,
            r.timeouts,
            r.qps,
            r.p50_us,
            r.p99_us,
            r.staleness_mean_ms,
            r.staleness_max_ms,
            r.epoch_lag_mean,
            r.epoch_lag_max,
            r.torn_retries,
            r.malformed,
            r.engine_wall_ms,
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn torn_read_check_is_clean() {
        let tear = torn_read_check(300, 2);
        assert_eq!(tear.torn_served, 0);
        assert!(tear.reads > 0);
    }

    #[test]
    fn serve_row_answers_queries_end_to_end() {
        let row = run_serve_row(128, 3, 2, 7, 1);
        assert!(row.epochs_published >= 2, "two segments × final publish");
        assert!(row.point_queries > 0);
        assert!(row.p50_us >= 0.0);
        assert_eq!(row.shards, 2);
    }

    #[test]
    fn malformed_frames_reach_the_counter() {
        assert!(malformed_frame_check(3) >= 3);
    }

    #[test]
    fn json_document_is_well_formed_enough() {
        let rows = vec![run_serve_row(64, 2, 1, 3, 1)];
        let doc = render_json(&rows, 1, 3);
        assert!(doc.starts_with('{') && doc.trim_end().ends_with('}'));
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
        assert!(doc.contains("\"qps\""));
        assert!(doc.contains("\"epoch_lag_mean\""));
    }
}
