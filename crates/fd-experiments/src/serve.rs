//! The serving-plane experiment: how fast, and how stale, is the
//! suspect-query plane while the sharded engine monitors a large grid?
//!
//! The `serve` binary drives a [`ShardedEngine`] run with the fd-serve
//! publication hook attached, stands up the UDP query server on
//! loopback, and hammers it from load-generator threads issuing point
//! (and periodic bulk range) queries. Recorded per source count, into
//! `BENCH_serve.json` at the repo root:
//!
//! * **throughput** — answered queries per second across all load
//!   threads;
//! * **latency** — p50/p99 of the client-observed round trip, measured
//!   through the mergeable [`LogHistogram`] so per-thread recordings
//!   combine without precision games;
//! * **staleness** — wall-clock age of the served snapshot (every
//!   `PointResp` carries it) and its translation into publication
//!   epochs, i.e. how many publish intervals behind the live engine a
//!   served answer was. Publication runs under the churn-adaptive
//!   [`PublishCadence`] (see [`default_cadence`]), which incremental
//!   dirty-word publishing makes affordable at every population;
//! * **relay fan-out** ([`run_relay_row`]) — a two-level relay tree
//!   (origin → mid relays → leaf relays, each leaf carrying a slice of a
//!   ≥100k simulated subscriber population) with per-level served age,
//!   per-hop age penalty, and delta/catch-up accounting.
//!
//! The smoke configuration ([`run_smoke`]) is the CI gate: it asserts at
//! least one epoch was published with a bounded staleness mean, that the
//! seqlock never *served* a torn snapshot under a deliberate
//! writer/reader race, that a two-level relay chain serves the origin's
//! bits verbatim with exact hop counts and monotone accumulated age, and
//! that garbage frames are counted and dropped rather than crashing the
//! server.

use std::net::UdpSocket;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use fd_runtime::sharded::{partition, PublishCadence, ShardedConfig, ShardedEngine};
use fd_serve::wire::FLAG_PUBLISHED;
use fd_serve::{
    EnginePublisher, Relay, RelayConfig, Response, ServeClient, ServeConfig, ServeServer,
    SuspectView,
};
use fd_sim::{SimDuration, SimTime};
use fd_stat::LogHistogram;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One row of the serving benchmark: a monitored grid at one source
/// count with the query plane under load.
#[derive(Debug, Clone)]
pub struct ServeRow {
    /// Monitored sources.
    pub sources: usize,
    /// Heartbeat cycles simulated per source.
    pub cycles: u64,
    /// Engine shards (= view segments).
    pub shards: usize,
    /// Load-generator threads.
    pub query_threads: usize,
    /// Publication epochs across all segments.
    pub epochs_published: u64,
    /// Point queries answered.
    pub point_queries: u64,
    /// Range queries answered.
    pub range_queries: u64,
    /// Client-side receive timeouts (unanswered within 250 ms).
    pub timeouts: u64,
    /// Answered queries per second, all threads combined.
    pub qps: f64,
    /// Median query round trip, microseconds.
    pub p50_us: f64,
    /// 99th-percentile query round trip, microseconds.
    pub p99_us: f64,
    /// Mean wall-clock age of served snapshots, milliseconds.
    pub staleness_mean_ms: f64,
    /// Worst wall-clock age of a served snapshot, milliseconds.
    pub staleness_max_ms: f64,
    /// Mean staleness in publication epochs of one segment.
    pub epoch_lag_mean: f64,
    /// Worst staleness in publication epochs of one segment.
    pub epoch_lag_max: f64,
    /// Seqlock read retries (torn epochs detected and re-read — never
    /// served).
    pub torn_retries: u64,
    /// Malformed frames counted and dropped by the server.
    pub malformed: u64,
    /// Wall time of the monitored run, milliseconds.
    pub engine_wall_ms: f64,
}

/// Per-load-thread accumulator, merged after the run.
struct ThreadOut {
    hist: LogHistogram,
    points: u64,
    ranges: u64,
    timeouts: u64,
    stale_sum_us: f64,
    stale_samples: u64,
    stale_max_us: u64,
}

fn query_loop(
    addr: std::net::SocketAddr,
    sources: usize,
    combos: usize,
    seed: u64,
    done: &AtomicBool,
) -> ThreadOut {
    let mut client =
        ServeClient::connect(addr, Duration::from_millis(250)).expect("connect load client");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut out = ThreadOut {
        hist: LogHistogram::latency_micros(),
        points: 0,
        ranges: 0,
        timeouts: 0,
        stale_sum_us: 0.0,
        stale_samples: 0,
        stale_max_us: 0,
    };
    let mut i = 0u64;
    while !done.load(Ordering::Acquire) {
        i += 1;
        let source = (rng.gen::<u32>() as usize % sources) as u32;
        let combo = (rng.gen::<u32>() as usize % combos) as u16;
        let t0 = Instant::now();
        // Every 64th request is a bulk range read; the rest are points.
        let resp = if i.is_multiple_of(64) {
            client.range(combo, source, 16)
        } else {
            client.point(source, combo)
        };
        match resp {
            Ok(Response::PointResp { flags, age_us, .. }) => {
                out.hist.push(t0.elapsed().as_secs_f64() * 1e6);
                out.points += 1;
                if flags & FLAG_PUBLISHED != 0 {
                    out.stale_sum_us += age_us as f64;
                    out.stale_samples += 1;
                    out.stale_max_us = out.stale_max_us.max(age_us);
                }
            }
            Ok(Response::RangeResp { .. }) => {
                out.hist.push(t0.elapsed().as_secs_f64() * 1e6);
                out.ranges += 1;
            }
            Ok(_) => {}
            Err(_) => out.timeouts += 1,
        }
    }
    out
}

/// The benchmark's default publication cadence: publish as soon as 16
/// suspicion edges accumulate (with a 1 ms virtual floor), back off
/// toward the old fixed 500 ms interval when quiescent. Incremental
/// dirty-word publication makes the frequent publishes affordable; the
/// churn trigger is what flattens the staleness-vs-sources curve.
pub fn default_cadence() -> PublishCadence {
    PublishCadence::adaptive(
        SimDuration::from_millis(1),
        SimDuration::from_millis(500),
        16,
    )
}

/// Runs the monitored grid at one source count with the query plane
/// under load and reports throughput, latency and staleness.
pub fn run_serve_row(
    sources: usize,
    cycles: u64,
    shards: usize,
    seed: u64,
    query_threads: usize,
    cadence: PublishCadence,
) -> ServeRow {
    let mut config = ShardedConfig::paper_grid(sources, cycles, seed);
    config.shards = shards.max(1);
    // Lively enough that suspicion state actually changes between epochs.
    config.loss = 0.02;
    config.spike_prob = 0.02;
    let blocks = partition(config.sources, config.shards);
    let combos = config.combos.len();

    let view = SuspectView::new(combos, &blocks);
    let publisher = EnginePublisher::new(&view);
    let server = ServeServer::start(
        Arc::clone(&view),
        ServeConfig {
            workers: query_threads.clamp(2, 8),
            ..ServeConfig::default()
        },
    )
    .expect("bind serve server");
    let addr = server.local_addr();
    let engine = ShardedEngine::new(config);
    let done = AtomicBool::new(false);
    let threads = query_threads.max(1);

    let query_started = Instant::now();
    let (report, outs) = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let done = &done;
                s.spawn(move || query_loop(addr, sources, combos, seed ^ (t as u64) << 32, done))
            })
            .collect();
        let report = engine.run_published_with(cadence, &publisher);
        done.store(true, Ordering::Release);
        let outs: Vec<ThreadOut> = handles
            .into_iter()
            .map(|h| h.join().expect("load thread panicked"))
            .collect();
        (report, outs)
    });
    let query_wall = query_started.elapsed().as_secs_f64();

    let mut hist = LogHistogram::latency_micros();
    let (mut points, mut ranges, mut timeouts) = (0u64, 0u64, 0u64);
    let (mut stale_sum_us, mut stale_samples, mut stale_max_us) = (0.0f64, 0u64, 0u64);
    for out in outs {
        hist.merge(&out.hist);
        points += out.points;
        ranges += out.ranges;
        timeouts += out.timeouts;
        stale_sum_us += out.stale_sum_us;
        stale_samples += out.stale_samples;
        stale_max_us = stale_max_us.max(out.stale_max_us);
    }
    let epochs_published: u64 = (0..view.segments()).map(|s| view.epoch(s)).sum();
    let engine_wall = report.wall.as_secs_f64();
    // Wall-clock publication rate of one segment: how many epochs of lag
    // a given snapshot age corresponds to.
    let seg_rate = if engine_wall > 0.0 && view.segments() > 0 {
        epochs_published as f64 / view.segments() as f64 / engine_wall
    } else {
        0.0
    };
    let stale_mean_us = if stale_samples > 0 {
        stale_sum_us / stale_samples as f64
    } else {
        0.0
    };
    let answered = points + ranges;
    ServeRow {
        sources,
        cycles,
        shards: report.shards,
        query_threads: threads,
        epochs_published,
        point_queries: points,
        range_queries: ranges,
        timeouts,
        qps: if query_wall > 0.0 {
            answered as f64 / query_wall
        } else {
            0.0
        },
        p50_us: hist.quantile(0.50).unwrap_or(0.0),
        p99_us: hist.quantile(0.99).unwrap_or(0.0),
        staleness_mean_ms: stale_mean_us / 1e3,
        staleness_max_ms: stale_max_us as f64 / 1e3,
        epoch_lag_mean: stale_mean_us * 1e-6 * seg_rate,
        epoch_lag_max: stale_max_us as f64 * 1e-6 * seg_rate,
        torn_retries: view.torn_retries(),
        malformed: server.stats().malformed.load(Ordering::Relaxed),
        engine_wall_ms: engine_wall * 1e3,
    }
}

/// Runs the serving benchmark over several source counts.
pub fn run_serve(
    counts: &[usize],
    cycles: u64,
    shards: usize,
    seed: u64,
    query_threads: usize,
    cadence: PublishCadence,
) -> Vec<ServeRow> {
    counts
        .iter()
        .map(|&n| run_serve_row(n, cycles, shards, seed, query_threads, cadence))
        .collect()
}

/// One row of the relay fan-out benchmark: a monitored grid served
/// through a k-ary relay tree with a large simulated subscriber
/// population on the leaves.
#[derive(Debug, Clone)]
pub struct RelayRow {
    /// Monitored sources.
    pub sources: usize,
    /// Heartbeat cycles simulated per source.
    pub cycles: u64,
    /// Engine shards (= view segments).
    pub shards: usize,
    /// Relay levels below the origin (leaf answers carry this many hops).
    pub levels: usize,
    /// Total relay nodes in the tree.
    pub relays: usize,
    /// Logical subscribers the run tried to register on the leaves.
    pub subscribers_target: usize,
    /// Subscription-table entries actually registered before the run.
    pub subscribers_registered: usize,
    /// Entries still registered when the run finished.
    pub subscribers_retained: usize,
    /// Delta frames the leaf pushers sent to subscribers.
    pub pushes_to_subscribers: u64,
    /// Upstream delta pushes applied in-order across all relays.
    pub deltas_applied: u64,
    /// Control-plane catch-ups across all relays (lost pushes, resyncs).
    pub catch_ups: u64,
    /// Staleness samples taken per tree level during the run.
    pub age_samples: u64,
    /// Mean served snapshot age per level (index 0 = origin), ms.
    pub age_mean_ms: Vec<f64>,
    /// Worst served snapshot age per level, ms.
    pub age_max_ms: Vec<f64>,
    /// Mean extra age per relay hop (leaf mean minus origin mean, over
    /// the level count), ms.
    pub hop_penalty_mean_ms: f64,
    /// Highest hop count observed in a leaf answer.
    pub max_hops_seen: u8,
    /// Wall time of the monitored run, milliseconds.
    pub engine_wall_ms: f64,
}

/// Per-level staleness accumulator for the relay sampler.
#[derive(Default, Clone, Copy)]
struct AgeAcc {
    sum_us: f64,
    max_us: u64,
    samples: u64,
    max_hops: u8,
}

/// Drives the monitored grid through an origin server and a two-level
/// relay tree (origin → 2 relays → 4 leaves), registers `subscribers`
/// logical subscriptions across the leaves (token-keyed, so a handful
/// of sockets carry tens of thousands of subscriptions each), and
/// samples served snapshot age at every tree level while the engine
/// runs.
pub fn run_relay_row(
    sources: usize,
    cycles: u64,
    shards: usize,
    seed: u64,
    subscribers: usize,
) -> RelayRow {
    const LEVELS: usize = 2;
    const L1: usize = 2;
    const LEAVES: usize = 4;

    let mut config = ShardedConfig::paper_grid(sources, cycles, seed);
    config.shards = shards.max(1);
    config.loss = 0.02;
    config.spike_prob = 0.02;
    let blocks = partition(config.sources, config.shards);
    let combos = config.combos.len();
    let segments = blocks.len();

    let view = SuspectView::new(combos, &blocks);
    let publisher = EnginePublisher::new(&view);
    let engine = ShardedEngine::new(config);
    let origin =
        ServeServer::start(Arc::clone(&view), ServeConfig::default()).expect("bind origin server");

    let relay_cfg = |leaf: bool| RelayConfig {
        serve: ServeConfig {
            workers: 2,
            // Leaves hold the big subscriber table and must never drop a
            // laggard mid-run (the point is counting them, not acking).
            max_subs: if leaf { subscribers + 64 } else { 64 },
            max_sub_lag: if leaf { 1 << 40 } else { 16 },
            // Interior hops push promptly; leaves batch the fan-out.
            push_interval: Duration::from_millis(if leaf { 50 } else { 1 }),
            ..ServeConfig::default()
        },
        push_timeout: Duration::from_millis(25),
        ..RelayConfig::default()
    };
    let mid: Vec<Relay> = (0..L1)
        .map(|_| Relay::start(origin.local_addr(), relay_cfg(false)).expect("start relay"))
        .collect();
    let leaves: Vec<Relay> = (0..LEAVES)
        .map(|i| Relay::start(mid[i % L1].local_addr(), relay_cfg(true)).expect("start leaf"))
        .collect();

    // Register the subscriber population: `per_leaf` tokens per leaf,
    // striped over a few client sockets. Subscribes are idempotent
    // (token-keyed replace), so lost datagrams heal by resending the
    // whole stripe until the table reaches the target.
    let per_leaf = subscribers.div_ceil(LEAVES.max(1)).max(1);
    let mut reg_clients: Vec<Vec<ServeClient>> = leaves
        .iter()
        .map(|leaf| {
            (0..4)
                .map(|_| {
                    ServeClient::connect(leaf.local_addr(), Duration::from_millis(100))
                        .expect("connect registration client")
                })
                .collect()
        })
        .collect();
    let mut registered = 0usize;
    for _round in 0..12 {
        for (li, clients) in reg_clients.iter_mut().enumerate() {
            if leaves[li].server().subscriber_count() >= per_leaf {
                continue;
            }
            let stripes = clients.len();
            for (ci, client) in clients.iter_mut().enumerate() {
                let mut sent = 0u32;
                let mut token = ci;
                while token < per_leaf {
                    let segment = (token % segments) as u16;
                    let _ = client.subscribe_as(token as u32, segment, 0);
                    token += stripes;
                    sent += 1;
                    // Pace the burst so the leaf's receive buffer keeps up.
                    if sent.is_multiple_of(2_048) {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                }
            }
        }
        std::thread::sleep(Duration::from_millis(30));
        registered = leaves.iter().map(|l| l.server().subscriber_count()).sum();
        if registered >= per_leaf * LEAVES {
            break;
        }
    }

    // Sample staleness at one node of each level, leaf-first so a
    // sampling instant can only understate (never inflate) the per-hop
    // penalty the row reports.
    let done = AtomicBool::new(false);
    let sample_addrs = [
        origin.local_addr(),
        mid[0].local_addr(),
        leaves[0].local_addr(),
    ];
    let (report, accs) = std::thread::scope(|s| {
        let sampler = s.spawn(|| {
            let mut clients: Vec<ServeClient> = sample_addrs
                .iter()
                .map(|&a| {
                    ServeClient::connect(a, Duration::from_millis(100)).expect("connect sampler")
                })
                .collect();
            let mut accs = [AgeAcc::default(); LEVELS + 1];
            let mut i = 0u32;
            loop {
                let finished = done.load(Ordering::Acquire);
                i = i.wrapping_add(1);
                let source = (i.wrapping_mul(2_654_435_761) as usize % sources) as u32;
                for (level, client) in clients.iter_mut().enumerate().rev() {
                    if let Ok(Response::PointResp {
                        flags,
                        age_us,
                        hops,
                        ..
                    }) = client.point(source, 0)
                    {
                        if flags & FLAG_PUBLISHED != 0 {
                            let acc = &mut accs[level];
                            acc.sum_us += age_us as f64;
                            acc.max_us = acc.max_us.max(age_us);
                            acc.samples += 1;
                            acc.max_hops = acc.max_hops.max(hops);
                        }
                    }
                }
                if finished {
                    return accs;
                }
                std::thread::sleep(Duration::from_millis(5));
            }
        });
        let report = engine.run_published_with(default_cadence(), &publisher);
        // Let the final publication ripple to the leaves before the
        // sampler takes its last pass.
        std::thread::sleep(Duration::from_millis(150));
        done.store(true, Ordering::Release);
        let accs = sampler.join().expect("sampler panicked");
        (report, accs)
    });

    let retained: usize = leaves.iter().map(|l| l.server().subscriber_count()).sum();
    let pushes: u64 = leaves
        .iter()
        .map(|l| l.server().stats().subs_pushed.load(Ordering::Relaxed))
        .sum();
    let all_relays = mid.iter().chain(leaves.iter());
    let (mut deltas_applied, mut catch_ups) = (0u64, 0u64);
    for r in all_relays {
        deltas_applied += r.stats().deltas_applied.load(Ordering::Relaxed);
        catch_ups += r.stats().catch_ups.load(Ordering::Relaxed);
    }
    let age_mean_ms: Vec<f64> = accs
        .iter()
        .map(|a| {
            if a.samples > 0 {
                a.sum_us / a.samples as f64 / 1e3
            } else {
                0.0
            }
        })
        .collect();
    let age_max_ms: Vec<f64> = accs.iter().map(|a| a.max_us as f64 / 1e3).collect();
    let hop_penalty_mean_ms = if accs[0].samples > 0 && accs[LEVELS].samples > 0 {
        (age_mean_ms[LEVELS] - age_mean_ms[0]) / LEVELS as f64
    } else {
        0.0
    };
    RelayRow {
        sources,
        cycles,
        shards: report.shards,
        levels: LEVELS,
        relays: L1 + LEAVES,
        subscribers_target: subscribers,
        subscribers_registered: registered,
        subscribers_retained: retained,
        pushes_to_subscribers: pushes,
        deltas_applied,
        catch_ups,
        age_samples: accs.iter().map(|a| a.samples).sum(),
        age_mean_ms,
        age_max_ms,
        hop_penalty_mean_ms,
        max_hops_seen: accs[LEVELS].max_hops,
        engine_wall_ms: report.wall.as_secs_f64() * 1e3,
    }
}

/// The result of the deliberate writer/reader seqlock race.
#[derive(Debug, Clone, Copy)]
pub struct TornCheck {
    /// Validated reads that were *not* a uniform single-epoch snapshot —
    /// must be zero (a nonzero count is a seqlock bug).
    pub torn_served: u64,
    /// Validated reads performed.
    pub reads: u64,
    /// Reads the seqlock detected as racing and retried (the mechanism
    /// working; expected nonzero under this race).
    pub retries: u64,
    /// Epochs published by the racing writer.
    pub epochs: u64,
}

/// Races one publishing writer against `readers` validating reader
/// threads over a 256-source single-combo view. Each epoch's bitmap is a
/// uniform pattern keyed to the epoch's parity, so *any* blend of two
/// epochs — torn words within a snapshot, or words from an epoch other
/// than the validated one — is detectable in the reader.
pub fn torn_read_check(epochs: u64, readers: usize) -> TornCheck {
    const WORDS: usize = 4; // 256 sources, one combination
    const PAT_ODD: u64 = 0x5555_5555_5555_5555;
    const PAT_EVEN: u64 = 0xAAAA_AAAA_AAAA_AAAA;
    let view = SuspectView::new(1, &[(0, WORDS * 64)]);
    let stop = AtomicBool::new(false);
    let torn = AtomicU64::new(0);
    let reads = AtomicU64::new(0);
    std::thread::scope(|s| {
        for _ in 0..readers.max(1) {
            let (view, stop, torn, reads) = (&view, &stop, &torn, &reads);
            s.spawn(move || {
                while !stop.load(Ordering::Acquire) {
                    let Some(r) = view.range(0, 0, WORDS) else {
                        continue;
                    };
                    reads.fetch_add(1, Ordering::Relaxed);
                    let expect = if r.epoch % 2 == 0 { PAT_EVEN } else { PAT_ODD };
                    if r.words.len() != WORDS || r.words.iter().any(|&w| w != expect) {
                        torn.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
        let mut writer = view.writer(0);
        for e in 1..=epochs {
            let pat = if e % 2 == 0 { PAT_EVEN } else { PAT_ODD };
            writer.publish_words(&[pat; WORDS], SimTime::from_micros(e));
        }
        // Under a loaded scheduler the publish loop can finish before a
        // reader thread ever runs; the final epoch stays published, so
        // wait for each reader to validate at least one read before
        // stopping (the race window is over, but the check "a validated
        // read is never torn" still needs validated reads to exist).
        while reads.load(Ordering::Relaxed) < readers.max(1) as u64 {
            std::thread::yield_now();
        }
        stop.store(true, Ordering::Release);
    });
    TornCheck {
        torn_served: torn.load(Ordering::Relaxed),
        reads: reads.load(Ordering::Relaxed),
        retries: view.torn_retries(),
        epochs,
    }
}

/// Counts how many garbage datagrams a live server rejects (polling its
/// malformed counter until it reaches `frames` or the deadline passes).
pub fn malformed_frame_check(frames: usize) -> u64 {
    let view = SuspectView::new(1, &[(0, 64)]);
    let server =
        ServeServer::start(Arc::clone(&view), ServeConfig::default()).expect("bind serve server");
    let socket = UdpSocket::bind("127.0.0.1:0").expect("bind garbage source");
    for i in 0..frames {
        // A mix of empty, short and wrong-magic frames.
        let garbage: Vec<u8> = match i % 3 {
            0 => Vec::new(),
            1 => vec![0xDE, 0xAD],
            _ => vec![0xFF; 32],
        };
        socket
            .send_to(&garbage, server.local_addr())
            .expect("send garbage");
    }
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let seen = server.stats().malformed.load(Ordering::Relaxed);
        if seen >= frames as u64 || Instant::now() > deadline {
            return seen;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Checks a two-level relay chain against its origin: every point
/// answer through the chain must match the origin bit for bit, leaf
/// answers must carry the hop count of their depth, and snapshot age
/// queried origin → relay → leaf (in that order, on frozen state) must
/// be monotone — accumulated age is never lost at a hop.
///
/// Returns (sources × combos checked, leaf age in µs).
pub fn relay_chain_check() -> (usize, u64) {
    const SOURCES: usize = 192;
    let view = SuspectView::new(2, &[(0, 96), (96, 96)]);
    let mut w0 = view.writer(0);
    let mut w1 = view.writer(1);
    w0.publish_words(&[0x5a5a, 0x11, 0xfee1, 0x2], SimTime::from_secs(1));
    w1.publish_words(&[0x33cc, 0x7, 0x0, 0x9], SimTime::from_secs(1));
    let origin =
        ServeServer::start(Arc::clone(&view), ServeConfig::default()).expect("bind origin");
    let fast = RelayConfig {
        push_timeout: Duration::from_millis(20),
        ..RelayConfig::default()
    };
    let r1 = Relay::start(origin.local_addr(), fast.clone()).expect("start relay 1");
    let r2 = Relay::start(r1.local_addr(), fast).expect("start relay 2");
    let deadline = Instant::now() + Duration::from_secs(10);
    while (0..2).any(|s| r2.view().epoch(s) < 1) {
        assert!(
            Instant::now() < deadline,
            "leaf relay never converged on the origin state"
        );
        std::thread::sleep(Duration::from_millis(2));
    }

    let mut clients: Vec<ServeClient> = [origin.local_addr(), r1.local_addr(), r2.local_addr()]
        .iter()
        .map(|&a| ServeClient::connect(a, Duration::from_secs(5)).expect("connect"))
        .collect();
    let mut checked = 0usize;
    for source in 0..SOURCES as u32 {
        for combo in 0..2u16 {
            let mut bits = Vec::with_capacity(3);
            for (level, client) in clients.iter_mut().enumerate() {
                match client.point(source, combo).expect("point") {
                    Response::PointResp { flags, hops, .. } => {
                        assert_eq!(
                            usize::from(hops),
                            level,
                            "hop count wrong at level {level} (s{source} c{combo})"
                        );
                        bits.push(flags & fd_serve::wire::FLAG_SUSPECTING != 0);
                    }
                    other => panic!("expected point response, got {other:?}"),
                }
            }
            assert!(
                bits.windows(2).all(|w| w[0] == w[1]),
                "relayed answer diverged from the origin at s{source} c{combo}: {bits:?}"
            );
            checked += 1;
        }
    }

    // Monotone accumulated age: the state is frozen, so querying in
    // origin → relay → leaf order (with a pause that dwarfs the per-hop
    // transit loss) must observe non-decreasing ages.
    let mut ages = [0u64; 3];
    for (level, client) in clients.iter_mut().enumerate() {
        match client.point(0, 0).expect("point") {
            Response::PointResp { age_us, .. } => ages[level] = age_us,
            other => panic!("expected point response, got {other:?}"),
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    assert!(
        ages[0] <= ages[1] && ages[1] <= ages[2],
        "accumulated age lost at a relay hop: {ages:?}"
    );
    (checked, ages[2])
}

/// The CI smoke gate: seqlock integrity under a deliberate race, at
/// least one published epoch end-to-end with bounded staleness under
/// the adaptive cadence, bit-for-bit fidelity and hop/age accounting
/// through a two-level relay chain, and malformed-frame rejection.
///
/// # Panics
///
/// Panics (failing the CI job) if any gate is violated.
pub fn run_smoke(seed: u64) {
    let tear = torn_read_check(2_000, 4);
    assert_eq!(
        tear.torn_served, 0,
        "seqlock served a torn snapshot ({} of {} reads)",
        tear.torn_served, tear.reads
    );
    assert!(tear.reads > 0, "readers never observed a published epoch");
    println!(
        "  seqlock race: {} reads over {} epochs, {} retries, 0 torn served",
        tear.reads, tear.epochs, tear.retries
    );

    let row = run_serve_row(256, 4, 2, seed, 2, default_cadence());
    assert!(
        row.epochs_published >= 1,
        "no epoch reached the serving plane"
    );
    assert!(
        row.point_queries + row.range_queries > 0,
        "load generator got no answers"
    );
    // The staleness cliff guard: under the churn-driven cadence a served
    // answer's age is bounded by the publish floor plus scheduling
    // noise, not by a fixed 500 ms interval. The bound is generous for
    // loaded CI machines but far below the cliff it guards against.
    assert!(
        row.staleness_mean_ms < 250.0,
        "adaptive cadence lost the staleness bound: mean {:.2} ms",
        row.staleness_mean_ms
    );
    println!(
        "  end-to-end: {} epochs, {} answers ({:.0} q/s), p50 {:.0} µs, staleness mean {:.2} ms",
        row.epochs_published,
        row.point_queries + row.range_queries,
        row.qps,
        row.p50_us,
        row.staleness_mean_ms
    );

    let (parity_checked, leaf_age_us) = relay_chain_check();
    println!(
        "  relay chain: {parity_checked} point answers bit-identical through 2 hops, \
         age monotone (leaf {leaf_age_us} µs)"
    );

    let rejected = malformed_frame_check(9);
    assert!(
        rejected >= 9,
        "server counted {rejected}/9 malformed frames"
    );
    println!("  malformed frames: {rejected}/9 counted and dropped");
}

/// Renders the benchmark as the `BENCH_serve.json` document (hand-rolled
/// JSON: the workspace deliberately carries no JSON dependency).
pub fn render_json(
    rows: &[ServeRow],
    relay_rows: &[RelayRow],
    shards_requested: usize,
    seed: u64,
    cadence: PublishCadence,
) -> String {
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"serve\",\n");
    out.push_str(&format!("  \"host_cores\": {host_cores},\n"));
    out.push_str(&format!("  \"shards_requested\": {shards_requested},\n"));
    out.push_str(&format!("  \"seed\": {seed},\n"));
    out.push_str("  \"grid_combos\": 30,\n");
    out.push_str(&format!(
        "  \"publish_cadence\": {{\"min_ms\": {}, \"max_ms\": {}, \"churn_threshold\": {}}},\n",
        cadence.min.as_micros() / 1_000,
        cadence.max.as_micros() / 1_000,
        cadence.churn_threshold,
    ));
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"sources\": {}, \"cycles\": {}, \"shards\": {}, \"query_threads\": {}, \
             \"epochs_published\": {}, \"point_queries\": {}, \"range_queries\": {}, \
             \"timeouts\": {}, \"qps\": {:.1}, \"p50_us\": {:.1}, \"p99_us\": {:.1}, \
             \"staleness_mean_ms\": {:.3}, \"staleness_max_ms\": {:.3}, \
             \"epoch_lag_mean\": {:.4}, \"epoch_lag_max\": {:.4}, \"torn_retries\": {}, \
             \"malformed\": {}, \"engine_wall_ms\": {:.3}}}{}\n",
            r.sources,
            r.cycles,
            r.shards,
            r.query_threads,
            r.epochs_published,
            r.point_queries,
            r.range_queries,
            r.timeouts,
            r.qps,
            r.p50_us,
            r.p99_us,
            r.staleness_mean_ms,
            r.staleness_max_ms,
            r.epoch_lag_mean,
            r.epoch_lag_max,
            r.torn_retries,
            r.malformed,
            r.engine_wall_ms,
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"relay_rows\": [\n");
    let fmt_vec = |v: &[f64]| {
        let items: Vec<String> = v.iter().map(|x| format!("{x:.3}")).collect();
        format!("[{}]", items.join(", "))
    };
    for (i, r) in relay_rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"sources\": {}, \"cycles\": {}, \"shards\": {}, \"levels\": {}, \
             \"relays\": {}, \"subscribers_target\": {}, \"subscribers_registered\": {}, \
             \"subscribers_retained\": {}, \"pushes_to_subscribers\": {}, \
             \"deltas_applied\": {}, \"catch_ups\": {}, \"age_samples\": {}, \
             \"age_mean_ms\": {}, \"age_max_ms\": {}, \"hop_penalty_mean_ms\": {:.3}, \
             \"max_hops_seen\": {}, \"engine_wall_ms\": {:.3}}}{}\n",
            r.sources,
            r.cycles,
            r.shards,
            r.levels,
            r.relays,
            r.subscribers_target,
            r.subscribers_registered,
            r.subscribers_retained,
            r.pushes_to_subscribers,
            r.deltas_applied,
            r.catch_ups,
            r.age_samples,
            fmt_vec(&r.age_mean_ms),
            fmt_vec(&r.age_max_ms),
            r.hop_penalty_mean_ms,
            r.max_hops_seen,
            r.engine_wall_ms,
            if i + 1 == relay_rows.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn torn_read_check_is_clean() {
        let tear = torn_read_check(300, 2);
        assert_eq!(tear.torn_served, 0);
        assert!(tear.reads > 0);
    }

    #[test]
    fn serve_row_answers_queries_end_to_end() {
        let row = run_serve_row(128, 3, 2, 7, 1, default_cadence());
        assert!(row.epochs_published >= 2, "two segments × final publish");
        assert!(row.point_queries > 0);
        assert!(row.p50_us >= 0.0);
        assert_eq!(row.shards, 2);
    }

    #[test]
    fn malformed_frames_reach_the_counter() {
        assert!(malformed_frame_check(3) >= 3);
    }

    #[test]
    fn relay_chain_serves_the_origin_bits() {
        let (checked, _) = relay_chain_check();
        assert_eq!(checked, 192 * 2);
    }

    #[test]
    fn relay_row_registers_and_samples() {
        // Tiny population: the full 100k run is the benchmark's job.
        let row = run_relay_row(128, 3, 2, 7, 400);
        assert_eq!(row.levels, 2);
        assert_eq!(row.relays, 6);
        assert!(
            row.subscribers_registered >= 400,
            "registered only {} of 400 subscriptions",
            row.subscribers_registered
        );
        assert!(row.engine_wall_ms > 0.0);
    }

    #[test]
    fn json_document_is_well_formed_enough() {
        let rows = vec![run_serve_row(64, 2, 1, 3, 1, default_cadence())];
        let relay_rows = vec![run_relay_row(64, 2, 1, 3, 32)];
        let doc = render_json(&rows, &relay_rows, 1, 3, default_cadence());
        assert!(doc.starts_with('{') && doc.trim_end().ends_with('}'));
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
        assert!(doc.contains("\"qps\""));
        assert!(doc.contains("\"epoch_lag_mean\""));
        assert!(doc.contains("\"publish_cadence\""));
        assert!(doc.contains("\"relay_rows\""));
        assert!(doc.contains("\"hop_penalty_mean_ms\""));
    }
}
