//! Experiment parameters (the paper's Table 5 and Section 5.1).

use fd_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// Parameters of the QoS experiment (Table 5).
///
/// The paper's values: η = 1 s, MTTC = 300 s, TTR = 30 s, 13 runs, and a
/// number of cycles chosen so that `N_TD ≈ NumCycles·η/(MTTC+TTR) ≈ 30`
/// detection-time samples are collected per run — i.e. `NumCycles ≈ 10 000`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentParams {
    /// Heartbeat period η.
    pub eta: SimDuration,
    /// Heartbeat cycles per run (`NumCycles`).
    pub num_cycles: u64,
    /// Mean time to crash; actual time-to-crash is uniform in
    /// `[MTTC/2, 3·MTTC/2]`.
    pub mttc: SimDuration,
    /// Constant time to repair.
    pub ttr: SimDuration,
    /// Number of independent runs (the paper uses 13).
    pub runs: usize,
    /// Root seed; run `r` derives its streams from `seed ⊕ r`.
    pub seed: u64,
    /// Also evaluate the NFD-E constant-margin baseline alongside the 30
    /// paper combinations (an extension experiment).
    pub include_nfd_baseline: bool,
}

impl Default for ExperimentParams {
    fn default() -> Self {
        Self::paper()
    }
}

impl ExperimentParams {
    /// The paper's Table 5 configuration.
    pub fn paper() -> Self {
        ExperimentParams {
            eta: SimDuration::from_secs(1),
            num_cycles: 10_000,
            mttc: SimDuration::from_secs(300),
            ttr: SimDuration::from_secs(30),
            runs: 13,
            seed: 0xD5_2005,
            include_nfd_baseline: false,
        }
    }

    /// A scaled-down configuration for tests and benches: same ratios,
    /// shorter run.
    pub fn quick() -> Self {
        ExperimentParams {
            eta: SimDuration::from_secs(1),
            num_cycles: 600,
            mttc: SimDuration::from_secs(60),
            ttr: SimDuration::from_secs(10),
            runs: 2,
            seed: 7,
            include_nfd_baseline: false,
        }
    }

    /// Total virtual duration of one run.
    pub fn run_duration(&self) -> SimDuration {
        self.eta * self.num_cycles
    }

    /// Expected number of detection-time samples per run,
    /// `NumCycles·η/(MTTC+TTR)`.
    pub fn expected_td_samples(&self) -> f64 {
        self.run_duration().as_secs_f64() / (self.mttc + self.ttr).as_secs_f64()
    }
}

/// Parameters of the predictor-accuracy experiment (Section 5.1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccuracyParams {
    /// Number of one-way delay observations (`N_one_way`, paper: 100 000).
    pub n_one_way: usize,
    /// Heartbeat period while collecting.
    pub eta: SimDuration,
    /// Seed of the collection run.
    pub seed: u64,
}

impl Default for AccuracyParams {
    fn default() -> Self {
        Self::paper()
    }
}

impl AccuracyParams {
    /// The paper's configuration: 100 000 one-way delays.
    pub fn paper() -> Self {
        AccuracyParams {
            n_one_way: 100_000,
            eta: SimDuration::from_secs(1),
            seed: 0xACC_2005,
        }
    }

    /// A scaled-down configuration for tests.
    pub fn quick() -> Self {
        AccuracyParams {
            n_one_way: 5_000,
            eta: SimDuration::from_secs(1),
            seed: 11,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_parameters_match_table5() {
        let p = ExperimentParams::paper();
        assert_eq!(p.eta, SimDuration::from_secs(1));
        assert_eq!(p.mttc, SimDuration::from_secs(300));
        assert_eq!(p.ttr, SimDuration::from_secs(30));
        assert_eq!(p.runs, 13);
        // N_TD ≈ 30 per run, as stated in Section 5.2.
        let n_td = p.expected_td_samples();
        assert!((n_td - 30.0).abs() < 1.0, "N_TD = {n_td}");
    }

    #[test]
    fn run_duration_is_cycles_times_eta() {
        let p = ExperimentParams::paper();
        assert_eq!(p.run_duration(), SimDuration::from_secs(10_000));
    }

    #[test]
    fn accuracy_paper_collects_100k() {
        assert_eq!(AccuracyParams::paper().n_one_way, 100_000);
    }
}
