//! The DSN'05 experiments: layers, runners and report formatting.
//!
//! This crate assembles the substrates into the paper's experimental
//! architecture (its Figure 3):
//!
//! ```text
//!   Monitored (p1, "Italy")            Monitor (p0, "Japan")
//!   ┌───────────────────┐              ┌─────────────────────────┐
//!   │  Heartbeater (η)  │              │ Monitor: 30 multiplexed │
//!   ├───────────────────┤              │ failure detectors       │
//!   │  SimCrash         │              └───────────┬─────────────┘
//!   └─────────┬─────────┘                          │
//!             └────────── WAN link model ──────────┘
//! ```
//!
//! * [`layers`] — `HeartbeaterLayer`, `SimCrashLayer` (MTTC/TTR crash
//!   injection), `MonitorLayer` (all failure detectors fed identically, the
//!   multiplexer role);
//! * [`config`] — the paper's Table 5 parameters;
//! * [`accuracy`] — the predictor-accuracy experiment (Tables 2 and 3);
//! * [`qos`] — the 13-run QoS experiment behind Figures 4–8;
//! * [`chaos_qos`] — the same grid under injected faults (monitor stalls,
//!   clock steps, duplication, corruption, rate jitter, monitor crashes with
//!   warm/cold restart), reporting QoS degradation against the baseline;
//! * [`scale`] — the many-source scaling experiment: sharded-engine
//!   throughput per source count plus the 1000-source cycle benchmark
//!   (written to `BENCH_scale.json` by the `scale` binary);
//! * [`chaos_scale`] — shard-crash recovery at scale: warm vs cold
//!   restarts vs a dead shard, QoS deltas and serving-plane availability
//!   (written to `BENCH_chaos.json` by the `chaos_scale` binary);
//! * [`families`] — the extended 54-combination grid (φ-accrual, adaptive
//!   μ+Kσ, online model, Impact-FD weights) rolled up per predictor
//!   family, plus the flapping-source and impact-weight comparisons
//!   (written to `BENCH_families.json` by the `families` binary);
//! * [`report`] — figure/table text rendering.
//!
//! Binaries under `src/bin/` regenerate each table and figure; see
//! `EXPERIMENTS.md` at the repository root for paper-vs-measured results.

/// `true` when the suite runs against the real `rand` crate, signalled
/// by `FD_REAL_RNG=1` in the environment (CI sets it).
///
/// A handful of tests assert *statistical* findings — predictor
/// accuracy rankings, configurator feasibility — that hold for the
/// stream `rand`'s `SmallRng` produces but not necessarily for the
/// simplified stand-in RNG an offline/vendored build may substitute.
/// Those tests skip (with a message) unless this returns `true`, so a
/// hermetic build distinguishes "finding does not hold" from "finding
/// was computed over a different random stream".
pub fn real_rng_enabled() -> bool {
    std::env::var_os("FD_REAL_RNG").is_some_and(|v| v == "1")
}

pub mod accuracy;
pub mod chaos_qos;
pub mod chaos_scale;
pub mod config;
pub mod configurator;
pub mod families;
pub mod layers;
pub mod pull_layers;
pub mod qos;
pub mod report;
pub mod scale;
pub mod serve;

pub use accuracy::{
    arima_selection_experiment, predictor_accuracy_experiment, AccuracyRow, AccuracyTable,
};
pub use chaos_qos::{run_chaos_qos, schedule_matrix, ChaosCounters, ChaosRunReport, ChaosSchedule};
pub use chaos_scale::{run_chaos_row, ChaosScaleRow, VariantOutcome};
pub use config::{AccuracyParams, ExperimentParams};
pub use configurator::{configure_nfd, ConfiguredDetector, DetectorConfig, QosRequirements};
pub use families::{
    run_families, run_families_scale, run_flapping, run_impact, FamiliesBench, FamiliesScale,
    FamilyRow, FlappingOutcome, ImpactOutcome,
};
pub use layers::{HeartbeaterLayer, MonitorLayer, SimCrashLayer};
pub use pull_layers::{PullMonitorLayer, ResponderLayer};
pub use qos::{
    run_qos_experiment, run_qos_experiment_on_trace, run_qos_single, run_qos_single_with_link,
    ExperimentResults, Metric,
};
pub use report::FigureTable;
pub use scale::{cycle_benchmark, run_scale, CycleBench, ScaleRow};
pub use serve::{run_serve, run_serve_row, torn_read_check, ServeRow, TornCheck};
