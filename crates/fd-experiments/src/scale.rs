//! The monitor-scaling experiment: throughput of the many-source fast
//! path across source counts, plus the 1000-source full-grid cycle
//! benchmark tracked against the PR 1 `DetectorBank` baseline.
//!
//! Two measurements, both written into `BENCH_scale.json` at the repo
//! root by the `scale` binary so later changes have a perf trajectory to
//! compare against:
//!
//! 1. **Sharded engine throughput** ([`run_scale`]): the
//!    [`ShardedEngine`] drives N sources × the 30-combination grid
//!    through a full loss/spike workload on the timer-wheel event loop,
//!    reporting wall time, cycles/sec, µs per source-cycle and peak RSS
//!    per source count.
//! 2. **Cycle benchmark** ([`cycle_benchmark`]): one heartbeat cycle
//!    over 1000 sources measured two ways with identical warmup and
//!    arrivals — a loop over 1000 private `DetectorBank`s (exactly the
//!    `bank_1000_sources_cycle` methodology that recorded 15.0 ms in
//!    PR 1) versus one [`SourceBank::observe_all`] batch sweep.

use std::time::Instant;

use fd_core::{DetectorBank, HeartbeatObs, SourceBank};
use fd_runtime::sharded::{ShardedConfig, ShardedEngine};
use fd_sim::{SimDuration, SimTime};

/// PR 1's recorded 1000-source full-grid cycle time, milliseconds — the
/// baseline the acceptance criterion compares against.
pub const PR1_CYCLE_BASELINE_MS: f64 = 15.0;

/// One row of the scaling table: a full sharded run at one source count.
///
/// The run uses the streaming path (no event retention): edges fold into
/// the shard-invariant digest and per-combo QoS roll-ups as they are
/// emitted, so peak memory is the engine state, not the log.
#[derive(Debug, Clone)]
pub struct ScaleRow {
    /// Monitored sources.
    pub sources: usize,
    /// Heartbeat cycles simulated per source.
    pub cycles: u64,
    /// Worker shards used (clamped to the source count).
    pub shards: usize,
    /// OS threads the run executed on — one per shard (a single shard
    /// runs inline on the calling thread, still one thread).
    pub threads: usize,
    /// Heartbeats delivered.
    pub heartbeats: u64,
    /// Heartbeats dropped by the loss model.
    pub lost: u64,
    /// Suspect/trust edges emitted (streamed, not retained).
    pub events: u64,
    /// Suspicion episodes folded into the QoS roll-ups (closed + open),
    /// summed over the grid.
    pub mistakes: u64,
    /// Order-independent streaming digest of the emitted edge tuples
    /// (shard-count invariant).
    pub digest: u64,
    /// Wall-clock time of the run, milliseconds.
    pub wall_ms: f64,
    /// Full monitoring cycles (all sources) per wall-clock second.
    pub cycles_per_sec: f64,
    /// Wall-clock microseconds per source per cycle.
    pub us_per_source_cycle: f64,
    /// Peak resident set size after the run, KiB (`VmHWM`), if the
    /// platform exposes it. Honest only when the row ran in its own
    /// process (`VmHWM` is a process-lifetime high-water mark); the
    /// `scale` binary isolates rows in child processes for this reason.
    pub peak_rss_kb: Option<u64>,
    /// `peak_rss_kb` scaled to bytes per monitored source.
    pub rss_per_source_bytes: Option<f64>,
}

/// The two-way 1000-source cycle measurement.
#[derive(Debug, Clone)]
pub struct CycleBench {
    /// Sources per cycle.
    pub sources: usize,
    /// Warmup cycles before measuring (past the cold-start transient,
    /// before the ARIMA first fit — the PR 1 methodology).
    pub warmup_cycles: u64,
    /// Measured cycles averaged over.
    pub measured_cycles: u64,
    /// Mean cycle time of the looped-`DetectorBank` path, milliseconds.
    pub detector_bank_ms: f64,
    /// Mean cycle time of the `SourceBank` batch path, milliseconds.
    pub source_bank_ms: f64,
    /// `detector_bank_ms / source_bank_ms`.
    pub speedup: f64,
}

/// The deadline-sweep before/after measurement: the lane-swept
/// (bitmask, autovectorizable) full freshness scan against the retired
/// scalar loop, on identical banks.
#[derive(Debug, Clone)]
pub struct SweepBench {
    /// Sources in the bank (× the 30-combination grid).
    pub sources: usize,
    /// Sweeps averaged over.
    pub sweeps: u64,
    /// Mean lane-swept scan time, milliseconds ([`SourceBank::check_all_at`]).
    pub lane_ms: f64,
    /// Mean scalar scan time, milliseconds (`check_all_at_scalar`).
    pub scalar_ms: f64,
    /// `scalar_ms / lane_ms`.
    pub speedup: f64,
}

/// Measures the steady-state full freshness sweep — the no-fire scan
/// over every (source, combo) deadline that dominates idle monitor
/// cycles — through the lane-swept path and the retired scalar loop.
/// Both banks are primed with one delivered heartbeat per source so
/// every deadline is armed, and swept at an instant before any fires.
pub fn sweep_benchmark(sources: usize, sweeps: u64) -> SweepBench {
    let eta = SimDuration::from_secs(1);
    let at = SimTime::ZERO + SimDuration::from_millis(200);
    let mut lane = SourceBank::paper_grid(eta, sources);
    let mut scalar = SourceBank::paper_grid(eta, sources);
    let batch: Vec<HeartbeatObs> = (0..sources as u32)
        .map(|source| HeartbeatObs {
            source,
            seq: 0,
            arrival: at,
        })
        .collect();
    lane.observe_all(&batch);
    scalar.observe_all(&batch);
    // 300 ms: strictly before every armed deadline (η + margin past the
    // 200 ms arrivals), so both paths do pure scanning work.
    let scan_at = SimTime::ZERO + SimDuration::from_millis(300);
    assert!(lane.check_all_at(scan_at).is_empty(), "sweep fired early");
    assert!(scalar.check_all_at_scalar(scan_at).is_empty());

    let started = Instant::now();
    for _ in 0..sweeps {
        std::hint::black_box(lane.check_all_at(scan_at).len());
    }
    let lane_ms = started.elapsed().as_secs_f64() * 1e3 / sweeps as f64;

    let started = Instant::now();
    for _ in 0..sweeps {
        std::hint::black_box(scalar.check_all_at_scalar(scan_at).len());
    }
    let scalar_ms = started.elapsed().as_secs_f64() * 1e3 / sweeps as f64;

    SweepBench {
        sources,
        sweeps,
        lane_ms,
        scalar_ms,
        speedup: scalar_ms / lane_ms,
    }
}

/// Peak resident set size of this process in KiB, from `/proc` (`None`
/// off Linux or when unreadable).
pub fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find(|l| l.starts_with("VmHWM:"))?
        .split_whitespace()
        .nth(1)?
        .parse()
        .ok()
}

/// Runs the sharded engine at one source count and reports throughput.
pub fn run_scale_row(sources: usize, cycles: u64, shards: usize, seed: u64) -> ScaleRow {
    let mut config = ShardedConfig::paper_grid(sources, cycles, seed);
    config.shards = shards.max(1);
    // Lively enough that the log is non-trivial at every scale.
    config.loss = 0.02;
    config.spike_prob = 0.02;
    let report = ShardedEngine::new(config).run();
    let wall_ms = report.wall.as_secs_f64() * 1e3;
    let source_cycles = sources as f64 * cycles as f64;
    let peak = peak_rss_kb();
    ScaleRow {
        sources,
        cycles,
        shards: report.shards,
        threads: report.shards,
        heartbeats: report.heartbeats,
        lost: report.lost,
        events: report.start_suspects + report.end_suspects,
        mistakes: report
            .qos
            .iter()
            .map(|s| s.mistakes + s.open_mistakes)
            .sum(),
        digest: report.digest,
        wall_ms,
        cycles_per_sec: cycles as f64 / (wall_ms / 1e3),
        us_per_source_cycle: wall_ms * 1e3 / source_cycles,
        peak_rss_kb: peak,
        rss_per_source_bytes: peak.map(|kb| kb as f64 * 1024.0 / sources as f64),
    }
}

/// Runs the scaling table over several source counts.
pub fn run_scale(counts: &[usize], cycles: u64, shards: usize, seed: u64) -> Vec<ScaleRow> {
    counts
        .iter()
        .map(|&n| run_scale_row(n, cycles, shards, seed))
        .collect()
}

/// Measures one full-grid heartbeat cycle over `sources` sources, both
/// ways, with the PR 1 warmup and arrival pattern (constant 200 ms
/// delay, η = 1 s).
pub fn cycle_benchmark(sources: usize, warmup_cycles: u64, measured_cycles: u64) -> CycleBench {
    let eta = SimDuration::from_secs(1);
    let arrival = |seq: u64| SimTime::ZERO + eta * seq + SimDuration::from_millis(200);

    // Path A: one private DetectorBank per source, looped — exactly the
    // `bank_1000_sources_cycle` methodology.
    let mut banks: Vec<DetectorBank> = (0..sources)
        .map(|_| DetectorBank::paper_grid(eta))
        .collect();
    let mut seq = 0u64;
    while seq < warmup_cycles {
        for bank in &mut banks {
            bank.observe_heartbeat(seq, arrival(seq));
        }
        seq += 1;
    }
    let started = Instant::now();
    for _ in 0..measured_cycles {
        for bank in &mut banks {
            std::hint::black_box(bank.observe_heartbeat(seq, arrival(seq)));
        }
        seq += 1;
    }
    let detector_bank_ms = started.elapsed().as_secs_f64() * 1e3 / measured_cycles as f64;

    // Path B: one SourceBank, one observe_all sweep per cycle.
    let mut source_bank = SourceBank::paper_grid(eta, sources);
    let mut batch: Vec<HeartbeatObs> = Vec::with_capacity(sources);
    let mut seq = 0u64;
    while seq < warmup_cycles {
        fill_batch(&mut batch, sources, seq, arrival(seq));
        source_bank.observe_all(&batch);
        seq += 1;
    }
    let started = Instant::now();
    for _ in 0..measured_cycles {
        fill_batch(&mut batch, sources, seq, arrival(seq));
        std::hint::black_box(source_bank.observe_all(&batch));
        seq += 1;
    }
    let source_bank_ms = started.elapsed().as_secs_f64() * 1e3 / measured_cycles as f64;

    CycleBench {
        sources,
        warmup_cycles,
        measured_cycles,
        detector_bank_ms,
        source_bank_ms,
        speedup: detector_bank_ms / source_bank_ms,
    }
}

/// The scalar-vs-blocked batch dispatch measurement at one bank size:
/// the per-heartbeat scalar loop against the cache-blocked two-phase
/// walk, on identically warmed banks. `observe_all` dispatches between
/// exactly these two paths on `OBS_SCALAR_CROSSOVER`, so this is the
/// measurement that justifies (or indicts) the constant.
#[derive(Debug, Clone)]
pub struct CrossoverBench {
    /// Sources per cycle.
    pub sources: usize,
    /// Measured cycles averaged over.
    pub measured_cycles: u64,
    /// Mean cycle time of the scalar per-heartbeat loop, milliseconds.
    pub scalar_ms: f64,
    /// Mean cycle time of the cache-blocked path, milliseconds.
    pub blocked_ms: f64,
    /// `scalar_ms / blocked_ms` — above 1.0 the blocked path wins.
    pub blocked_speedup: f64,
}

/// Measures both `observe_all` bodies — the scalar per-heartbeat loop
/// and the cache-blocked two-phase walk — at one bank size, with the
/// cycle-benchmark warmup and arrival pattern. The scalar side is the
/// public [`SourceBank::observe_heartbeat`] in a loop, which is the
/// dispatch's small-bank body modulo a free `transitions.clear()` per
/// call (the workload is churn-free, so the cleared vec is empty).
pub fn crossover_benchmark(
    sources: usize,
    warmup_cycles: u64,
    measured_cycles: u64,
) -> CrossoverBench {
    let eta = SimDuration::from_secs(1);
    let arrival = |seq: u64| SimTime::ZERO + eta * seq + SimDuration::from_millis(200);

    let mut scalar = SourceBank::paper_grid(eta, sources);
    let mut blocked = SourceBank::paper_grid(eta, sources);
    let mut batch: Vec<HeartbeatObs> = Vec::with_capacity(sources);
    let mut seq = 0u64;
    while seq < warmup_cycles {
        fill_batch(&mut batch, sources, seq, arrival(seq));
        blocked.observe_all_blocked(&batch);
        for obs in &batch {
            scalar.observe_heartbeat(obs.source, obs.seq, obs.arrival);
        }
        seq += 1;
    }

    let scalar_start = seq;
    let started = Instant::now();
    for seq in scalar_start..scalar_start + measured_cycles {
        fill_batch(&mut batch, sources, seq, arrival(seq));
        for obs in &batch {
            std::hint::black_box(scalar.observe_heartbeat(obs.source, obs.seq, obs.arrival));
        }
    }
    let scalar_ms = started.elapsed().as_secs_f64() * 1e3 / measured_cycles as f64;

    let started = Instant::now();
    for seq in scalar_start..scalar_start + measured_cycles {
        fill_batch(&mut batch, sources, seq, arrival(seq));
        std::hint::black_box(blocked.observe_all_blocked(&batch));
    }
    let blocked_ms = started.elapsed().as_secs_f64() * 1e3 / measured_cycles as f64;

    CrossoverBench {
        sources,
        measured_cycles,
        scalar_ms,
        blocked_ms,
        blocked_speedup: scalar_ms / blocked_ms,
    }
}

fn fill_batch(batch: &mut Vec<HeartbeatObs>, sources: usize, seq: u64, at: SimTime) {
    batch.clear();
    batch.extend((0..sources as u32).map(|source| HeartbeatObs {
        source,
        seq,
        arrival: at,
    }));
}

/// Renders one scaling row as a single-line JSON object (no trailing
/// comma/newline). The `scale` binary's child processes emit exactly
/// this line, so the parent can splice rows without re-parsing them.
pub fn render_row_json(r: &ScaleRow) -> String {
    format!(
        "{{\"sources\": {}, \"cycles\": {}, \"shards\": {}, \"threads\": {}, \
         \"heartbeats\": {}, \"lost\": {}, \"events\": {}, \"mistakes\": {}, \
         \"digest\": \"{:016x}\", \"wall_ms\": {:.3}, \"cycles_per_sec\": {:.3}, \
         \"us_per_source_cycle\": {:.3}, \"peak_rss_kb\": {}, \"rss_per_source_bytes\": {}}}",
        r.sources,
        r.cycles,
        r.shards,
        r.threads,
        r.heartbeats,
        r.lost,
        r.events,
        r.mistakes,
        r.digest,
        r.wall_ms,
        r.cycles_per_sec,
        r.us_per_source_cycle,
        r.peak_rss_kb
            .map_or_else(|| "null".to_owned(), |v| v.to_string()),
        r.rss_per_source_bytes
            .map_or_else(|| "null".to_owned(), |v| format!("{v:.1}")),
    )
}

/// Renders the benchmark as the `BENCH_scale.json` document (hand-rolled
/// JSON: the workspace deliberately carries no JSON dependency), from
/// pre-rendered row lines ([`render_row_json`]).
pub fn render_json_from_rows(
    row_jsons: &[String],
    bench: &CycleBench,
    sweep: &SweepBench,
    shards_requested: usize,
    seed: u64,
) -> String {
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"scale\",\n");
    out.push_str(&format!("  \"host_cores\": {host_cores},\n"));
    out.push_str(&format!("  \"shards_requested\": {shards_requested},\n"));
    out.push_str(&format!("  \"seed\": {seed},\n"));
    out.push_str("  \"grid_combos\": 30,\n");
    out.push_str("  \"rows\": [\n");
    for (i, row) in row_jsons.iter().enumerate() {
        out.push_str("    ");
        out.push_str(row);
        out.push_str(if i + 1 == row_jsons.len() {
            "\n"
        } else {
            ",\n"
        });
    }
    out.push_str("  ],\n");
    out.push_str("  \"cycle_benchmark\": {\n");
    out.push_str(&format!("    \"sources\": {},\n", bench.sources));
    out.push_str(&format!(
        "    \"warmup_cycles\": {},\n",
        bench.warmup_cycles
    ));
    out.push_str(&format!(
        "    \"measured_cycles\": {},\n",
        bench.measured_cycles
    ));
    out.push_str(&format!(
        "    \"detector_bank_loop_ms\": {:.3},\n",
        bench.detector_bank_ms
    ));
    out.push_str(&format!(
        "    \"source_bank_batch_ms\": {:.3},\n",
        bench.source_bank_ms
    ));
    out.push_str(&format!("    \"speedup\": {:.3},\n", bench.speedup));
    out.push_str(&format!(
        "    \"pr1_baseline_ms\": {PR1_CYCLE_BASELINE_MS:.1}\n"
    ));
    out.push_str("  },\n");
    out.push_str("  \"deadline_sweep\": {\n");
    out.push_str(&format!("    \"sources\": {},\n", sweep.sources));
    out.push_str(&format!("    \"sweeps\": {},\n", sweep.sweeps));
    out.push_str(&format!("    \"lane_ms\": {:.4},\n", sweep.lane_ms));
    out.push_str(&format!("    \"scalar_ms\": {:.4},\n", sweep.scalar_ms));
    out.push_str(&format!("    \"speedup\": {:.3}\n", sweep.speedup));
    out.push_str("  }\n}\n");
    out
}

/// [`render_json_from_rows`] over in-process rows.
pub fn render_json(
    rows: &[ScaleRow],
    bench: &CycleBench,
    sweep: &SweepBench,
    shards_requested: usize,
    seed: u64,
) -> String {
    let row_jsons: Vec<String> = rows.iter().map(render_row_json).collect();
    render_json_from_rows(&row_jsons, bench, sweep, shards_requested, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_row_accounts_for_every_heartbeat() {
        let row = run_scale_row(64, 4, 2, 9);
        assert_eq!(row.heartbeats + row.lost, 64 * 4);
        assert_eq!(row.threads, row.shards);
        assert!(row.wall_ms > 0.0);
        assert!(row.us_per_source_cycle > 0.0);
        assert!(row.cycles_per_sec > 0.0);
    }

    #[test]
    fn scale_rows_are_shard_invariant() {
        let one = run_scale_row(96, 4, 1, 7);
        let three = run_scale_row(96, 4, 3, 7);
        assert_eq!(one.digest, three.digest, "digest diverged across shards");
        assert_eq!(one.events, three.events);
        assert_eq!(one.mistakes, three.mistakes);
        assert!(one.events > 0, "workload emitted no edges");
    }

    #[test]
    fn crossover_benchmark_times_both_paths() {
        let bench = crossover_benchmark(48, 4, 2);
        assert_eq!(bench.sources, 48);
        assert!(bench.scalar_ms > 0.0);
        assert!(bench.blocked_ms > 0.0);
        assert!(bench.blocked_speedup.is_finite());
    }

    #[test]
    fn cycle_benchmark_paths_agree_on_state() {
        // Tiny benchmark: the point here is that both paths run and the
        // ratio is finite, not the absolute numbers.
        let bench = cycle_benchmark(32, 4, 2);
        assert!(bench.detector_bank_ms > 0.0);
        assert!(bench.source_bank_ms > 0.0);
        assert!(bench.speedup.is_finite());
    }

    #[test]
    fn json_document_is_well_formed_enough() {
        let rows = vec![run_scale_row(16, 2, 1, 1)];
        let bench = cycle_benchmark(8, 2, 1);
        let sweep = sweep_benchmark(64, 2);
        let doc = render_json(&rows, &bench, &sweep, 1, 1);
        assert!(doc.starts_with('{') && doc.trim_end().ends_with('}'));
        assert_eq!(doc.matches("\"sources\"").count(), 3);
        assert!(doc.contains("\"pr1_baseline_ms\": 15.0"));
        assert!(doc.contains("\"threads\""));
        assert!(doc.contains("\"rss_per_source_bytes\""));
        assert!(doc.contains("\"deadline_sweep\""));
        // Balanced braces (no serde_json to parse it for us).
        let open = doc.matches('{').count();
        let close = doc.matches('}').count();
        assert_eq!(open, close);
    }

    #[test]
    fn sweep_benchmark_measures_both_paths() {
        let sweep = sweep_benchmark(256, 4);
        assert!(sweep.lane_ms > 0.0);
        assert!(sweep.scalar_ms > 0.0);
        assert!(sweep.speedup.is_finite());
    }
}
