//! The chaos QoS experiment: the 30-detector grid under injected faults.
//!
//! The paper measures QoS on a well-behaved (if lossy) WAN path. This
//! experiment asks what the same detectors do when the *infrastructure*
//! misbehaves: the monitor process freezes or crashes, its clock steps,
//! heartbeats are duplicated or corrupted on the wire, the sender's rate
//! jitters. Each named [`ChaosSchedule`] turns exactly one fault family on,
//! so the QoS degradation relative to the quiet baseline is attributable.
//!
//! The monitor stack is `ChaosLayer(SupervisorLayer(MonitorLayer))`: the
//! chaos wrapper injects stalls and clock steps, the supervisor consumes the
//! plan's crash events and restarts the monitor warm (from a
//! [`fd_core::DetectorBank`] snapshot) or cold. The sender carries a
//! [`ChaosLink`] below its heartbeater for the wire-level faults.

use fd_core::all_combinations;
use fd_net::WanProfile;
use fd_runtime::chaos::{
    CHAOS_EVENT_CLOCK_STEP, CHAOS_EVENT_CORRUPT_DROPPED, CHAOS_EVENT_DECODE_FAILED,
    CHAOS_EVENT_DUPLICATE, CHAOS_EVENT_RATE_JITTER, CHAOS_EVENT_STALL,
};
use fd_runtime::supervisor::{
    SUPERVISOR_EVENT_CRASH, SUPERVISOR_EVENT_DROPPED, SUPERVISOR_EVENT_RECOVERED_COLD,
    SUPERVISOR_EVENT_RECOVERED_WARM, SUPERVISOR_EVENT_RESTART_FAILED,
};
use fd_runtime::{
    ChaosLayer, ChaosLink, FaultKind, FaultPlan, Process, ProcessId, RestartMode, SimEngine,
    SupervisorLayer,
};
use fd_sim::{SeedTree, SimDuration, SimTime};
use fd_stat::{accumulate_metrics, EventKind, EventLog, QosMetrics};

use crate::config::ExperimentParams;
use crate::layers::{HeartbeaterLayer, MonitorLayer, SimCrashLayer};

/// One named fault schedule of the chaos matrix.
#[derive(Debug, Clone)]
pub struct ChaosSchedule {
    /// Schedule name, e.g. `"corruption"`.
    pub name: &'static str,
    /// Faults applied to the monitor process: stalls, clock steps and
    /// crashes (the latter consumed by the supervisor).
    pub monitor_plan: FaultPlan,
    /// Faults applied to the heartbeat path on the sender: duplication,
    /// corruption, rate jitter.
    pub link_plan: FaultPlan,
    /// How a crashed monitor is brought back.
    pub restart_mode: RestartMode,
}

impl ChaosSchedule {
    /// A schedule with no faults anywhere (the comparison baseline).
    pub fn baseline() -> Self {
        ChaosSchedule {
            name: "baseline",
            monitor_plan: FaultPlan::new(),
            link_plan: FaultPlan::new(),
            restart_mode: RestartMode::Warm,
        }
    }
}

/// The fault-schedule matrix over a run of length `horizon`: a quiet
/// baseline plus one schedule per fault family. Fault instants are placed at
/// fixed fractions of the horizon so every run length exercises every fault.
pub fn schedule_matrix(horizon: SimDuration) -> Vec<ChaosSchedule> {
    let frac = |num: u64, den: u64| SimDuration::from_micros(horizon.as_micros() * num / den);

    let stalls = {
        let mut plan = FaultPlan::new();
        for k in 1..=3u64 {
            plan = plan.with(
                frac(k, 4),
                FaultKind::Stall {
                    duration: SimDuration::from_secs(5),
                },
            );
        }
        plan
    };

    let clock_steps = FaultPlan::new()
        .with(frac(1, 4), FaultKind::ClockStep { delta_us: 150_000 })
        .with(frac(2, 4), FaultKind::ClockStep { delta_us: -250_000 })
        .with(frac(3, 4), FaultKind::ClockStep { delta_us: 400_000 });

    let duplication = FaultPlan::new()
        .with(
            frac(1, 4),
            FaultKind::Duplicate {
                duration: frac(1, 8),
                copies: 2,
            },
        )
        .with(
            frac(5, 8),
            FaultKind::Duplicate {
                duration: frac(1, 8),
                copies: 1,
            },
        );

    let corruption = FaultPlan::new()
        .with(
            frac(1, 4),
            FaultKind::Corrupt {
                duration: frac(1, 8),
                probability: 0.3,
            },
        )
        .with(
            frac(5, 8),
            FaultKind::Corrupt {
                duration: frac(1, 8),
                probability: 0.3,
            },
        );

    let jitter = FaultPlan::new().with(
        frac(1, 3),
        FaultKind::RateJitter {
            duration: frac(1, 4),
            max_extra: SimDuration::from_millis(400),
        },
    );

    let crashes = FaultPlan::new()
        .with(
            frac(1, 3),
            FaultKind::Crash {
                down_for: SimDuration::from_secs(10),
            },
        )
        .with(
            frac(2, 3),
            FaultKind::Crash {
                down_for: SimDuration::from_secs(10),
            },
        );

    vec![
        ChaosSchedule::baseline(),
        ChaosSchedule {
            name: "monitor-stalls",
            monitor_plan: stalls,
            link_plan: FaultPlan::new(),
            restart_mode: RestartMode::Warm,
        },
        ChaosSchedule {
            name: "clock-steps",
            monitor_plan: clock_steps,
            link_plan: FaultPlan::new(),
            restart_mode: RestartMode::Warm,
        },
        ChaosSchedule {
            name: "duplication",
            monitor_plan: FaultPlan::new(),
            link_plan: duplication,
            restart_mode: RestartMode::Warm,
        },
        ChaosSchedule {
            name: "corruption",
            monitor_plan: FaultPlan::new(),
            link_plan: corruption,
            restart_mode: RestartMode::Warm,
        },
        ChaosSchedule {
            name: "rate-jitter",
            monitor_plan: FaultPlan::new(),
            link_plan: jitter,
            restart_mode: RestartMode::Warm,
        },
        ChaosSchedule {
            name: "monitor-crash-warm",
            monitor_plan: crashes.clone(),
            link_plan: FaultPlan::new(),
            restart_mode: RestartMode::Warm,
        },
        ChaosSchedule {
            name: "monitor-crash-cold",
            monitor_plan: crashes,
            link_plan: FaultPlan::new(),
            restart_mode: RestartMode::Cold,
        },
    ]
}

/// Fault-injection telemetry recovered from the event log after a run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChaosCounters {
    /// Monitor stalls that started.
    pub stalls: u64,
    /// Clock steps applied to the monitor.
    pub clock_steps: u64,
    /// Extra heartbeat copies delivered.
    pub duplicates: u64,
    /// Corrupted heartbeats that failed to decode (counted and dropped).
    pub decode_failures: u64,
    /// Corrupted heartbeats that decoded to different content (dropped).
    pub corrupt_dropped: u64,
    /// Outgoing heartbeats delayed by rate jitter.
    pub jitter_delays: u64,
    /// Monitor crashes injected by the supervisor.
    pub monitor_crashes: u64,
    /// Restart attempts that failed (backoff then retried).
    pub failed_restarts: u64,
    /// Messages and timers dropped while the monitor was down.
    pub dropped_while_down: u64,
    /// Per-recovery crash→recovery times (µs) for warm restarts.
    pub warm_recoveries_us: Vec<u64>,
    /// Per-recovery crash→recovery times (µs) for cold restarts.
    pub cold_recoveries_us: Vec<u64>,
}

impl ChaosCounters {
    /// Reads the chaos/supervisor telemetry out of a run's event log.
    pub fn from_log(log: &EventLog) -> ChaosCounters {
        let mut c = ChaosCounters::default();
        let mut last_dropped = 0u64;
        for e in log {
            let EventKind::App { code, value } = e.kind else {
                continue;
            };
            match code {
                CHAOS_EVENT_STALL => c.stalls += 1,
                CHAOS_EVENT_CLOCK_STEP => c.clock_steps += 1,
                CHAOS_EVENT_DUPLICATE => c.duplicates += 1,
                CHAOS_EVENT_DECODE_FAILED => c.decode_failures += 1,
                CHAOS_EVENT_CORRUPT_DROPPED => c.corrupt_dropped += 1,
                CHAOS_EVENT_RATE_JITTER => c.jitter_delays += 1,
                SUPERVISOR_EVENT_CRASH => c.monitor_crashes += 1,
                SUPERVISOR_EVENT_RESTART_FAILED => c.failed_restarts += 1,
                SUPERVISOR_EVENT_RECOVERED_WARM => c.warm_recoveries_us.push(value),
                SUPERVISOR_EVENT_RECOVERED_COLD => c.cold_recoveries_us.push(value),
                // Emitted cumulatively at each recovery; keep the last.
                SUPERVISOR_EVENT_DROPPED => last_dropped = value,
                _ => {}
            }
        }
        c.dropped_while_down = last_dropped;
        c
    }

    /// Folds another run's counters into this one.
    pub fn merge(&mut self, other: &ChaosCounters) {
        self.stalls += other.stalls;
        self.clock_steps += other.clock_steps;
        self.duplicates += other.duplicates;
        self.decode_failures += other.decode_failures;
        self.corrupt_dropped += other.corrupt_dropped;
        self.jitter_delays += other.jitter_delays;
        self.monitor_crashes += other.monitor_crashes;
        self.failed_restarts += other.failed_restarts;
        self.dropped_while_down += other.dropped_while_down;
        self.warm_recoveries_us
            .extend_from_slice(&other.warm_recoveries_us);
        self.cold_recoveries_us
            .extend_from_slice(&other.cold_recoveries_us);
    }

    /// Mean recovery time in ms over warm and cold recoveries combined.
    pub fn mean_recovery_ms(&self) -> Option<f64> {
        let all: Vec<u64> = self
            .warm_recoveries_us
            .iter()
            .chain(&self.cold_recoveries_us)
            .copied()
            .collect();
        if all.is_empty() {
            return None;
        }
        Some(all.iter().sum::<u64>() as f64 / all.len() as f64 / 1_000.0)
    }
}

/// Pooled result of one schedule: per-detector QoS plus fault telemetry.
#[derive(Debug, Clone)]
pub struct ChaosRunReport {
    /// Which schedule produced this.
    pub schedule_name: String,
    /// Detector labels, index-aligned with `metrics`.
    pub labels: Vec<String>,
    /// Per-detector QoS samples pooled over all runs.
    pub metrics: Vec<QosMetrics>,
    /// Fault telemetry summed over all runs.
    pub counters: ChaosCounters,
}

impl ChaosRunReport {
    /// Grid mean of the per-detector mean detection times (ms).
    pub fn grid_mean_td(&self) -> Option<f64> {
        grid_mean(self.metrics.iter().map(QosMetrics::mean_td))
    }

    /// Grid mean of the per-detector query accuracies.
    pub fn grid_mean_pa(&self) -> Option<f64> {
        grid_mean(self.metrics.iter().map(QosMetrics::query_accuracy))
    }
}

fn grid_mean(values: impl Iterator<Item = Option<f64>>) -> Option<f64> {
    let xs: Vec<f64> = values.flatten().collect();
    if xs.is_empty() {
        return None;
    }
    Some(xs.iter().sum::<f64>() / xs.len() as f64)
}

/// Runs one schedule: `params.runs` independent runs of the 30-detector grid
/// on the Italy–Japan WAN profile with the schedule's faults injected,
/// QoS pooled per detector and fault telemetry summed.
pub fn run_chaos_qos(params: &ExperimentParams, schedule: &ChaosSchedule) -> ChaosRunReport {
    let combos = all_combinations();
    let labels: Vec<String> = combos.iter().map(|c| c.label()).collect();
    let mut pooled = vec![QosMetrics::default(); labels.len()];
    let mut counters = ChaosCounters::default();
    let run_end = SimTime::ZERO + params.run_duration();

    for run_idx in 0..params.runs {
        // Seeds depend on the run index only, NOT the schedule name: every
        // schedule sees the same WAN weather and crash schedule, so the
        // degradation against the baseline is attributable to the injected
        // faults alone (and warm vs cold differ only in restart mode).
        let seeds = SeedTree::new(params.seed).subtree(&format!("chaos-run-{run_idx}"));

        let monitor = MonitorLayer::banked(&combos, params.eta);
        let supervised = SupervisorLayer::new(
            monitor,
            &schedule.monitor_plan,
            schedule.restart_mode,
            seeds.rng("supervisor"),
        );
        let chaotic = ChaosLayer::new(supervised, schedule.monitor_plan.clone());

        // The wire-fault injector is split across the two ends of the link:
        // corruption and duplication act on deliveries (the monitor's
        // receive path), rate jitter on sends (the heartbeater's transmit
        // path). Both ends get the same plan; each only reacts to the
        // windows its traffic direction can see.
        let mut engine = SimEngine::new();
        engine.add_process(
            Process::new(ProcessId(0))
                .with_layer(ChaosLink::new(
                    schedule.link_plan.clone(),
                    seeds.rng("link-chaos-rx"),
                ))
                .with_layer(chaotic),
        );
        engine.add_process(
            Process::new(ProcessId(1))
                .with_layer(SimCrashLayer::new(
                    params.mttc,
                    params.ttr,
                    seeds.rng("crash"),
                ))
                .with_layer(ChaosLink::new(
                    schedule.link_plan.clone(),
                    seeds.rng("link-chaos-tx"),
                ))
                .with_layer(
                    HeartbeaterLayer::new(ProcessId(0), params.eta)
                        .with_max_cycles(params.num_cycles),
                ),
        );
        engine.set_link(
            ProcessId(1),
            ProcessId(0),
            WanProfile::italy_japan().link(seeds.rng("wan")),
        );
        engine.run_until(run_end);

        let log = engine.into_event_log();
        counters.merge(&ChaosCounters::from_log(&log));
        // One streaming pass folds every detector's metrics at once,
        // bit-identical to per-detector extraction.
        for (pool, m) in pooled
            .iter_mut()
            .zip(accumulate_metrics(&log, labels.len(), run_end))
        {
            pool.merge(&m);
        }
    }

    ChaosRunReport {
        schedule_name: schedule.name.to_owned(),
        labels,
        metrics: pooled,
        counters,
    }
}

/// Renders the degradation table: one row per schedule, grid-mean `T_D` and
/// `P_A` with their deltas against the baseline row, injected-fault counts
/// and (for the crash schedules) mean monitor recovery time.
pub fn format_report(reports: &[ChaosRunReport]) -> String {
    use std::fmt::Write as _;

    let baseline_td = reports
        .iter()
        .find(|r| r.schedule_name == "baseline")
        .and_then(ChaosRunReport::grid_mean_td);
    let baseline_pa = reports
        .iter()
        .find(|r| r.schedule_name == "baseline")
        .and_then(ChaosRunReport::grid_mean_pa);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<20} {:>10} {:>9} {:>9} {:>10} {:>8} {:>12}",
        "schedule", "T_D (ms)", "ΔT_D", "P_A", "ΔP_A", "faults", "recovery(ms)"
    );
    for r in reports {
        let td = r.grid_mean_td();
        let pa = r.grid_mean_pa();
        let dtd = match (td, baseline_td) {
            (Some(t), Some(b)) => format!("{:+.1}", t - b),
            _ => "-".to_owned(),
        };
        let dpa = match (pa, baseline_pa) {
            (Some(p), Some(b)) => format!("{:+.4}", p - b),
            _ => "-".to_owned(),
        };
        let c = &r.counters;
        let faults = c.stalls
            + c.clock_steps
            + c.duplicates
            + c.decode_failures
            + c.corrupt_dropped
            + c.jitter_delays
            + c.monitor_crashes;
        let recovery = c
            .mean_recovery_ms()
            .map_or("-".to_owned(), |ms| format!("{ms:.0}"));
        let _ = writeln!(
            out,
            "{:<20} {:>10} {:>9} {:>9} {:>10} {:>8} {:>12}",
            r.schedule_name,
            td.map_or("-".to_owned(), |t| format!("{t:.1}")),
            dtd,
            pa.map_or("-".to_owned(), |p| format!("{p:.4}")),
            dpa,
            faults,
            recovery,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_params() -> ExperimentParams {
        ExperimentParams {
            num_cycles: 240,
            runs: 1,
            mttc: SimDuration::from_secs(60),
            ttr: SimDuration::from_secs(10),
            ..ExperimentParams::quick()
        }
    }

    #[test]
    fn matrix_covers_every_fault_family() {
        let matrix = schedule_matrix(SimDuration::from_secs(240));
        let names: Vec<&str> = matrix.iter().map(|s| s.name).collect();
        assert_eq!(
            names,
            [
                "baseline",
                "monitor-stalls",
                "clock-steps",
                "duplication",
                "corruption",
                "rate-jitter",
                "monitor-crash-warm",
                "monitor-crash-cold",
            ]
        );
        let baseline = &matrix[0];
        assert!(baseline.monitor_plan.is_empty() && baseline.link_plan.is_empty());
        for s in &matrix[1..] {
            assert!(
                !s.monitor_plan.is_empty() || !s.link_plan.is_empty(),
                "{} injects nothing",
                s.name
            );
        }
    }

    #[test]
    fn corruption_schedule_counts_and_drops_but_still_detects() {
        let params = smoke_params();
        let matrix = schedule_matrix(params.run_duration());
        let corruption = matrix.iter().find(|s| s.name == "corruption").unwrap();
        let report = run_chaos_qos(&params, corruption);
        assert_eq!(report.labels.len(), 30);
        let c = &report.counters;
        assert!(
            c.decode_failures + c.corrupt_dropped > 0,
            "corruption windows must corrupt something"
        );
        // Detection still works for every detector.
        for (label, m) in report.labels.iter().zip(&report.metrics) {
            assert!(m.total_crashes > 0, "{label}");
            assert!(!m.detection_times_ms.is_empty(), "{label}");
        }
    }

    #[test]
    fn crash_schedules_report_recovery_times() {
        let params = smoke_params();
        let matrix = schedule_matrix(params.run_duration());
        let warm = matrix
            .iter()
            .find(|s| s.name == "monitor-crash-warm")
            .unwrap();
        let cold = matrix
            .iter()
            .find(|s| s.name == "monitor-crash-cold")
            .unwrap();

        let warm_report = run_chaos_qos(&params, warm);
        let cold_report = run_chaos_qos(&params, cold);

        assert_eq!(warm_report.counters.monitor_crashes, 2);
        assert_eq!(warm_report.counters.warm_recoveries_us.len(), 2);
        assert!(warm_report.counters.cold_recoveries_us.is_empty());

        assert_eq!(cold_report.counters.monitor_crashes, 2);
        assert_eq!(cold_report.counters.cold_recoveries_us.len(), 2);
        assert!(cold_report.counters.warm_recoveries_us.is_empty());

        // 10 s outage, restart succeeds on the first attempt.
        for &us in warm_report
            .counters
            .warm_recoveries_us
            .iter()
            .chain(&cold_report.counters.cold_recoveries_us)
        {
            assert_eq!(us, 10_000_000);
        }
    }

    #[test]
    fn baseline_matches_the_plain_qos_pipeline() {
        // With no faults anywhere, the chaos harness must reproduce the
        // plain two-process experiment event-for-event — the wrappers are
        // transparent when quiet.
        let params = smoke_params();
        let report = run_chaos_qos(&params, &ChaosSchedule::baseline());
        let c = &report.counters;
        assert_eq!(*c, ChaosCounters::default());
        for m in &report.metrics {
            assert!(m.total_crashes > 0);
        }
    }

    #[test]
    fn report_table_lists_every_schedule() {
        let params = smoke_params();
        let matrix = schedule_matrix(params.run_duration());
        let reports: Vec<ChaosRunReport> = matrix[..2]
            .iter()
            .map(|s| run_chaos_qos(&params, s))
            .collect();
        let table = format_report(&reports);
        assert!(table.contains("baseline"));
        assert!(table.contains("monitor-stalls"));
        assert!(table.contains("T_D"));
    }
}
