//! Edge cases of the shared frame codec: the boundary shapes a hostile
//! or lossy transport actually produces — empty datagrams, lying count
//! fields, frames cut at every possible byte, and several frames packed
//! back to back in one buffer.

use fd_net::framing::{self, FrameError, HEADER_SIZE};
use fd_net::wire::{Heartbeat, HEARTBEAT_WIRE_SIZE};
use fd_sim::SimTime;

/// A zero-length datagram is the smallest hostile input there is: every
/// entry point must reject it as truncated, never index into it.
#[test]
fn zero_length_frame_is_truncated_not_a_panic() {
    assert_eq!(
        framing::take_header(&mut &[][..], 0x1234_5678, 1),
        Err(FrameError::Truncated {
            len: 0,
            need: HEADER_SIZE
        })
    );
    assert_eq!(
        Heartbeat::decode(&[]),
        Err(FrameError::Truncated {
            len: 0,
            need: HEARTBEAT_WIRE_SIZE
        })
    );
    // `need(_, 0)` on empty data holds: zero bytes are always present.
    assert_eq!(framing::need(&[], 0), Ok(()));
}

/// A counted body whose length field claims more elements than any
/// datagram can carry must fail the bounds check — including counts
/// where a naive `count * elem_size` multiplication would wrap and
/// sneak under the bound.
#[test]
fn counted_body_length_overflow_is_rejected() {
    let data = [0u8; 64];
    // Honest shortfall: 9 × 8 = 72 > 64.
    assert_eq!(
        framing::need_counted(&data, 9, 8),
        Err(FrameError::Truncated { len: 64, need: 72 })
    );
    // Exact fit and underfill pass.
    assert_eq!(framing::need_counted(&data, 8, 8), Ok(()));
    assert_eq!(framing::need_counted(&data, 0, 8), Ok(()));
    // Wrapping count: usize::MAX × 8 would truncate to a tiny need if
    // multiplied raw; the checked helper reports an unsatisfiable need.
    assert_eq!(
        framing::need_counted(&data, usize::MAX, 8),
        Err(FrameError::Truncated {
            len: 64,
            need: usize::MAX
        })
    );
    assert_eq!(
        framing::need_counted(&data, usize::MAX / 2 + 1, 2),
        Err(FrameError::Truncated {
            len: 64,
            need: usize::MAX
        })
    );
}

/// A frame cut at *every* possible buffer boundary decodes to
/// `Truncated` — not a panic and not a bogus value — and the reported
/// shortfall always points past the cut.
#[test]
fn partial_frame_at_every_buffer_boundary() {
    let frame = Heartbeat::new(7, 42, SimTime::from_micros(1_234_567)).encode();
    assert_eq!(frame.len(), HEARTBEAT_WIRE_SIZE);
    for cut in 0..frame.len() {
        match Heartbeat::decode(&frame[..cut]) {
            Err(FrameError::Truncated { len, need }) => {
                assert_eq!(len, cut);
                assert!(
                    need > cut,
                    "cut {cut}: reported need {need} already satisfied"
                );
            }
            other => panic!("cut {cut}: expected Truncated, got {other:?}"),
        }
    }
    assert!(Heartbeat::decode(&frame).is_ok());
}

/// Fixed-size frames packed back to back in one buffer parse out one by
/// one: decode reads exactly `HEARTBEAT_WIRE_SIZE` bytes' worth of
/// meaning, so stepping by that stride recovers every frame — and a
/// trailing partial frame is rejected, not absorbed.
#[test]
fn back_to_back_frames_in_one_datagram() {
    let beats: Vec<Heartbeat> = (0..3)
        .map(|i| {
            Heartbeat::new(
                i,
                u64::from(i) * 100,
                SimTime::from_millis(u64::from(i) + 1),
            )
        })
        .collect();
    let mut packed = Vec::new();
    for hb in &beats {
        packed.extend_from_slice(&hb.encode());
    }
    packed.extend_from_slice(&beats[0].encode()[..5]); // trailing fragment

    for (i, expect) in beats.iter().enumerate() {
        let at = i * HEARTBEAT_WIRE_SIZE;
        assert_eq!(Heartbeat::decode(&packed[at..]).as_ref(), Ok(expect));
    }
    assert!(matches!(
        Heartbeat::decode(&packed[beats.len() * HEARTBEAT_WIRE_SIZE..]),
        Err(FrameError::Truncated { len: 5, .. })
    ));
}
