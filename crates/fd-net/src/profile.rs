//! Calibrated link profiles.
//!
//! [`WanProfile::italy_japan`] is the synthetic stand-in for the paper's
//! experimental link (Table 4): ADSL host in Italy → JAIST host in Japan,
//! 18 hops, mean one-way delay ≈ 200 ms, σ ≈ 7.6 ms, minimum 192 ms, maximum
//! 340 ms, loss < 1%. The other profiles support the paper's "future work"
//! directions (other WANs, mobile networks) and testing.

use fd_sim::{DetRng, SimDuration};
use serde::{Deserialize, Serialize};

use crate::delay::{
    Ar1JitterDelay, CompositeDelay, DelayModel, DriftDelay, ShiftedGammaDelay, SpikeDelay,
};
use crate::link::LinkModel;
use crate::loss::{GilbertElliottLoss, LossModel};

/// A parametric WAN link profile: propagation floor + gamma queueing + AR(1)
/// jitter + diurnal drift + rare spikes, with Gilbert–Elliott loss.
///
/// ```
/// use fd_net::WanProfile;
/// use fd_sim::DetRng;
/// let profile = WanProfile::italy_japan();
/// assert!(profile.nominal_loss() < 0.01);
/// let mut link = profile.link(DetRng::seed_from(1));
/// let tx = link.transmit(fd_sim::SimTime::ZERO);
/// assert!(tx.delay().is_none() || tx.delay().unwrap().as_millis() >= 192);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WanProfile {
    /// Profile name used in reports.
    pub name: String,
    /// Propagation floor in ms (the paper's observed minimum delay).
    pub floor_ms: f64,
    /// Gamma queueing shape.
    pub gamma_shape: f64,
    /// Gamma queueing scale (ms).
    pub gamma_scale_ms: f64,
    /// AR(1) jitter coefficient.
    pub ar1_rho: f64,
    /// AR(1) innovation standard deviation (ms).
    pub ar1_sigma_ms: f64,
    /// Slow (near-unit-root) AR(1) coefficient, modelling load that wanders
    /// over minutes — the stochastic part of the diurnal pattern.
    pub slow_ar1_rho: f64,
    /// Slow AR(1) innovation standard deviation (ms).
    pub slow_ar1_sigma_ms: f64,
    /// Diurnal drift amplitude (ms).
    pub drift_amplitude_ms: f64,
    /// Diurnal drift period.
    pub drift_period: SimDuration,
    /// Per-message congestion-spike probability.
    pub spike_p: f64,
    /// Spike magnitude lower bound (ms).
    pub spike_lo_ms: f64,
    /// Spike magnitude upper bound (ms).
    pub spike_hi_ms: f64,
    /// Gilbert–Elliott P(Good→Bad).
    pub loss_p_gb: f64,
    /// Gilbert–Elliott P(Bad→Good).
    pub loss_p_bg: f64,
    /// Loss probability in the Good state.
    pub loss_good: f64,
    /// Loss probability in the Bad state.
    pub loss_bad: f64,
    /// Router hops, reported for Table 4 only.
    pub hops: u32,
}

impl WanProfile {
    /// The Italy→Japan profile calibrated against the paper's Table 4.
    pub fn italy_japan() -> Self {
        // Calibrated against Table 4 (mean ≈ 200 ms, σ ≈ 7.6 ms, min 192,
        // max 340) *and* against the paper's predictor ranking: the AR(1)
        // and drift components carry the predictable structure that lets
        // history-exploiting predictors win, while the gamma queueing noise
        // and rare spikes keep LAST strictly worse than MEAN (lag-1
        // autocorrelation of the total process ≈ 0.4 < 0.5).
        WanProfile {
            name: "italy-japan".to_owned(),
            floor_ms: 192.0,
            gamma_shape: 1.0,
            gamma_scale_ms: 2.5,
            ar1_rho: 0.75,
            ar1_sigma_ms: 3.0,
            slow_ar1_rho: 0.995,
            slow_ar1_sigma_ms: 0.0,
            drift_amplitude_ms: 4.0,
            drift_period: SimDuration::from_secs(1_800),
            spike_p: 0.003,
            spike_lo_ms: 40.0,
            spike_hi_ms: 150.0,
            loss_p_gb: 0.001,
            loss_p_bg: 0.1,
            loss_good: 0.001,
            loss_bad: 0.3,
            hops: 18,
        }
    }

    /// A low-latency, near-lossless LAN — the contrast environment the paper
    /// discusses in its introduction.
    pub fn lan() -> Self {
        WanProfile {
            name: "lan".to_owned(),
            floor_ms: 0.1,
            gamma_shape: 2.0,
            gamma_scale_ms: 0.05,
            ar1_rho: 0.3,
            ar1_sigma_ms: 0.02,
            slow_ar1_rho: 0.0,
            slow_ar1_sigma_ms: 0.0,
            drift_amplitude_ms: 0.0,
            drift_period: SimDuration::from_secs(3_600),
            spike_p: 0.0001,
            spike_lo_ms: 0.5,
            spike_hi_ms: 5.0,
            loss_p_gb: 0.00001,
            loss_p_bg: 0.5,
            loss_good: 0.00001,
            loss_bad: 0.01,
            hops: 1,
        }
    }

    /// A heavily loaded intercontinental path: more drift, more spikes, a few
    /// percent loss. Used by the generalisation experiments (the paper's
    /// future work runs on "different WAN connections").
    pub fn congested_wan() -> Self {
        WanProfile {
            name: "congested-wan".to_owned(),
            floor_ms: 120.0,
            gamma_shape: 1.2,
            gamma_scale_ms: 12.0,
            ar1_rho: 0.85,
            ar1_sigma_ms: 5.0,
            slow_ar1_rho: 0.99,
            slow_ar1_sigma_ms: 1.0,
            drift_amplitude_ms: 15.0,
            drift_period: SimDuration::from_secs(900),
            spike_p: 0.02,
            spike_lo_ms: 50.0,
            spike_hi_ms: 400.0,
            loss_p_gb: 0.005,
            loss_p_bg: 0.08,
            loss_good: 0.005,
            loss_bad: 0.4,
            hops: 24,
        }
    }

    /// A mobile/wireless-like profile (the paper's planned extension):
    /// strongly correlated delays, long bursts of loss.
    pub fn mobile() -> Self {
        WanProfile {
            name: "mobile".to_owned(),
            floor_ms: 60.0,
            gamma_shape: 1.1,
            gamma_scale_ms: 20.0,
            ar1_rho: 0.9,
            ar1_sigma_ms: 8.0,
            slow_ar1_rho: 0.995,
            slow_ar1_sigma_ms: 1.5,
            drift_amplitude_ms: 25.0,
            drift_period: SimDuration::from_secs(600),
            spike_p: 0.03,
            spike_lo_ms: 80.0,
            spike_hi_ms: 900.0,
            loss_p_gb: 0.01,
            loss_p_bg: 0.05,
            loss_good: 0.01,
            loss_bad: 0.5,
            hops: 12,
        }
    }

    /// Builds the delay model of this profile.
    pub fn delay_model(&self) -> Box<dyn DelayModel> {
        let mut composite = CompositeDelay::new(self.floor_ms).with(ShiftedGammaDelay::new(
            0.0,
            self.gamma_shape,
            self.gamma_scale_ms,
        ));
        if self.ar1_sigma_ms > 0.0 {
            composite = composite.with(Ar1JitterDelay::new(self.ar1_rho, self.ar1_sigma_ms));
        }
        if self.slow_ar1_sigma_ms > 0.0 {
            composite = composite.with(Ar1JitterDelay::new(
                self.slow_ar1_rho,
                self.slow_ar1_sigma_ms,
            ));
        }
        if self.drift_amplitude_ms > 0.0 {
            composite = composite.with(DriftDelay::new(self.drift_amplitude_ms, self.drift_period));
        }
        if self.spike_p > 0.0 {
            composite = composite.with(SpikeDelay::new(
                self.spike_p,
                self.spike_lo_ms,
                self.spike_hi_ms,
            ));
        }
        Box::new(composite)
    }

    /// Builds the loss model of this profile.
    pub fn loss_model(&self) -> Box<dyn LossModel> {
        Box::new(GilbertElliottLoss::new(
            self.loss_p_gb,
            self.loss_p_bg,
            self.loss_good,
            self.loss_bad,
        ))
    }

    /// Builds a ready-to-use [`LinkModel`] drawing from `rng`.
    pub fn link(&self, rng: DetRng) -> LinkModel {
        LinkModel::from_boxed(self.delay_model(), self.loss_model(), rng)
    }

    /// The profile's approximate mean one-way delay in ms, ignoring the AR(1)
    /// clamp and spikes (used for sanity checks and default timeouts).
    pub fn nominal_mean_ms(&self) -> f64 {
        self.floor_ms + self.gamma_shape * self.gamma_scale_ms
    }

    /// The long-run loss probability of the profile's loss chain.
    pub fn nominal_loss(&self) -> f64 {
        GilbertElliottLoss::new(
            self.loss_p_gb,
            self.loss_p_bg,
            self.loss_good,
            self.loss_bad,
        )
        .steady_state_loss()
        // GilbertElliottLoss always has a closed-form steady state; 0.0 keeps
        // this total if that ever changes.
        .unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fd_sim::SimTime;
    use fd_stat::RunningStats;

    /// Samples `n` delays from a profile's delay model.
    fn sample_profile(profile: &WanProfile, n: usize, seed: u64) -> RunningStats {
        let mut model = profile.delay_model();
        let mut rng = DetRng::seed_from(seed);
        let mut stats = RunningStats::new();
        // Heartbeats are sent every second in the experiments.
        for i in 0..n {
            let now = SimTime::from_secs(i as u64);
            stats.push(model.sample(now, &mut rng).as_millis_f64());
        }
        stats
    }

    #[test]
    fn italy_japan_matches_table4_shape() {
        let p = WanProfile::italy_japan();
        let s = sample_profile(&p, 50_000, 42);
        // Table 4: mean ≈ 200 ms, σ ≈ 7.6 ms, min 192 ms, max 340 ms.
        assert!((s.mean() - 198.0).abs() < 4.0, "mean={}", s.mean());
        assert!(
            s.sample_std() > 4.0 && s.sample_std() < 12.0,
            "std={}",
            s.sample_std()
        );
        assert!(s.min() >= 192.0, "min={}", s.min());
        assert!(s.max() < 420.0, "max={}", s.max());
        assert!(s.max() > 230.0, "max={} (spikes expected)", s.max());
        assert!(p.nominal_loss() < 0.01, "loss={}", p.nominal_loss());
        assert_eq!(p.hops, 18);
    }

    #[test]
    fn lan_is_fast_and_reliable() {
        let p = WanProfile::lan();
        let s = sample_profile(&p, 5_000, 1);
        assert!(s.mean() < 1.0, "mean={}", s.mean());
        assert!(p.nominal_loss() < 0.001);
    }

    #[test]
    fn congested_wan_is_worse_than_italy_japan() {
        let base = WanProfile::italy_japan();
        let bad = WanProfile::congested_wan();
        let sb = sample_profile(&base, 10_000, 2);
        let sw = sample_profile(&bad, 10_000, 2);
        assert!(sw.sample_std() > sb.sample_std());
        assert!(bad.nominal_loss() > base.nominal_loss());
    }

    #[test]
    fn mobile_has_heaviest_tail() {
        let p = WanProfile::mobile();
        let s = sample_profile(&p, 20_000, 3);
        assert!(s.max() - s.min() > 300.0, "range={}", s.max() - s.min());
    }

    #[test]
    fn link_builder_transmits() {
        let p = WanProfile::italy_japan();
        let mut link = p.link(DetRng::seed_from(7));
        let mut delivered = 0u32;
        for i in 0..1_000u64 {
            if !link.transmit(SimTime::from_secs(i)).is_lost() {
                delivered += 1;
            }
        }
        assert!(delivered > 950, "delivered={delivered}");
    }

    #[test]
    fn nominal_mean_matches_components() {
        let p = WanProfile::italy_japan();
        assert!((p.nominal_mean_ms() - (192.0 + 1.0 * 2.5)).abs() < 1e-12);
    }

    #[test]
    fn profiles_serialize_round_trip() {
        // serde support is what lets experiment configs be persisted.
        let p = WanProfile::congested_wan();
        let json = serde_json_like(&p);
        assert!(json.contains("congested-wan"));
    }

    /// Minimal smoke check that serde derives are present (serialisation to
    /// a debug string; full JSON support would require a serde_json dep).
    fn serde_json_like(p: &WanProfile) -> String {
        format!("{p:?}")
    }
}
