//! Message-loss models for fair-lossy links.
//!
//! The paper's system model is a *fair lossy* link — messages can be dropped
//! but never duplicated or forged (the UDP behaviour). WAN loss is bursty,
//! which the Gilbert–Elliott two-state chain captures.

use fd_sim::{DetRng, SimTime};

/// Decides, per message, whether the link drops it.
pub trait LossModel: Send {
    /// Returns `true` if the message entering the link at `now` is lost.
    fn is_lost(&mut self, now: SimTime, rng: &mut DetRng) -> bool;

    /// A short human-readable description.
    fn describe(&self) -> String;

    /// The long-run loss probability of this model, if known analytically.
    fn steady_state_loss(&self) -> Option<f64> {
        None
    }
}

impl<T: LossModel + ?Sized> LossModel for Box<T> {
    fn is_lost(&mut self, now: SimTime, rng: &mut DetRng) -> bool {
        (**self).is_lost(now, rng)
    }
    fn describe(&self) -> String {
        (**self).describe()
    }
    fn steady_state_loss(&self) -> Option<f64> {
        (**self).steady_state_loss()
    }
}

/// A lossless link.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoLoss;

impl LossModel for NoLoss {
    fn is_lost(&mut self, _now: SimTime, _rng: &mut DetRng) -> bool {
        false
    }
    fn describe(&self) -> String {
        "no-loss".to_owned()
    }
    fn steady_state_loss(&self) -> Option<f64> {
        Some(0.0)
    }
}

/// Independent (Bernoulli) loss with probability `p` per message.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BernoulliLoss {
    p: f64,
}

impl BernoulliLoss {
    /// Creates i.i.d. loss with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= p <= 1`.
    pub fn new(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "invalid probability {p}");
        Self { p }
    }
}

impl LossModel for BernoulliLoss {
    fn is_lost(&mut self, _now: SimTime, rng: &mut DetRng) -> bool {
        rng.chance(self.p)
    }
    fn describe(&self) -> String {
        format!("bernoulli(p={})", self.p)
    }
    fn steady_state_loss(&self) -> Option<f64> {
        Some(self.p)
    }
}

/// Gilbert–Elliott bursty loss: a two-state Markov chain (Good/Bad) with
/// per-state loss probabilities. Captures the loss bursts of congested WAN
/// paths, which i.i.d. loss cannot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GilbertElliottLoss {
    /// P(Good → Bad) per message.
    p_gb: f64,
    /// P(Bad → Good) per message.
    p_bg: f64,
    /// Loss probability while in Good.
    loss_good: f64,
    /// Loss probability while in Bad.
    loss_bad: f64,
    in_bad: bool,
}

impl GilbertElliottLoss {
    /// Creates a Gilbert–Elliott chain starting in the Good state.
    ///
    /// # Panics
    ///
    /// Panics if any probability lies outside `[0, 1]`.
    pub fn new(p_gb: f64, p_bg: f64, loss_good: f64, loss_bad: f64) -> Self {
        for (name, p) in [
            ("p_gb", p_gb),
            ("p_bg", p_bg),
            ("loss_good", loss_good),
            ("loss_bad", loss_bad),
        ] {
            assert!((0.0..=1.0).contains(&p), "invalid {name}: {p}");
        }
        Self {
            p_gb,
            p_bg,
            loss_good,
            loss_bad,
            in_bad: false,
        }
    }

    /// `true` if the chain is currently in the Bad (bursty) state.
    pub fn in_bad_state(&self) -> bool {
        self.in_bad
    }
}

impl LossModel for GilbertElliottLoss {
    fn is_lost(&mut self, _now: SimTime, rng: &mut DetRng) -> bool {
        // Transition first, then sample loss in the (possibly new) state.
        if self.in_bad {
            if rng.chance(self.p_bg) {
                self.in_bad = false;
            }
        } else if rng.chance(self.p_gb) {
            self.in_bad = true;
        }
        let p = if self.in_bad {
            self.loss_bad
        } else {
            self.loss_good
        };
        rng.chance(p)
    }

    fn describe(&self) -> String {
        format!(
            "gilbert-elliott(p_gb={}, p_bg={}, loss={}/{})",
            self.p_gb, self.p_bg, self.loss_good, self.loss_bad
        )
    }

    fn steady_state_loss(&self) -> Option<f64> {
        let denom = self.p_gb + self.p_bg;
        if denom == 0.0 {
            // The chain never leaves its initial (Good) state.
            return Some(self.loss_good);
        }
        let pi_bad = self.p_gb / denom;
        Some((1.0 - pi_bad) * self.loss_good + pi_bad * self.loss_bad)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loss_freq(model: &mut dyn LossModel, n: usize, seed: u64) -> f64 {
        let mut rng = DetRng::seed_from(seed);
        let lost = (0..n)
            .filter(|&i| model.is_lost(SimTime::from_millis(i as u64), &mut rng))
            .count();
        lost as f64 / n as f64
    }

    #[test]
    fn no_loss_never_drops() {
        assert_eq!(loss_freq(&mut NoLoss, 10_000, 1), 0.0);
        assert_eq!(NoLoss.steady_state_loss(), Some(0.0));
    }

    #[test]
    fn bernoulli_matches_p() {
        let mut m = BernoulliLoss::new(0.05);
        let f = loss_freq(&mut m, 100_000, 2);
        assert!((f - 0.05).abs() < 0.005, "freq={f}");
        assert_eq!(m.steady_state_loss(), Some(0.05));
    }

    #[test]
    fn gilbert_elliott_matches_steady_state() {
        let mut m = GilbertElliottLoss::new(0.01, 0.2, 0.001, 0.2);
        let expect = m.steady_state_loss().unwrap();
        let f = loss_freq(&mut m, 200_000, 3);
        assert!((f - expect).abs() < 0.01, "freq={f}, expect={expect}");
    }

    #[test]
    fn gilbert_elliott_produces_bursts() {
        // Compare the probability of consecutive losses against i.i.d. loss
        // of the same rate: GE must be burstier.
        let mut ge = GilbertElliottLoss::new(0.02, 0.3, 0.0, 0.5);
        let mut rng = DetRng::seed_from(4);
        let outcomes: Vec<bool> = (0..200_000u64)
            .map(|i| ge.is_lost(SimTime::from_millis(i), &mut rng))
            .collect();
        let rate = outcomes.iter().filter(|&&l| l).count() as f64 / outcomes.len() as f64;
        let consecutive = outcomes.windows(2).filter(|w| w[0] && w[1]).count() as f64
            / (outcomes.len() - 1) as f64;
        assert!(
            consecutive > 2.0 * rate * rate,
            "consecutive={consecutive}, iid-expected={}",
            rate * rate
        );
    }

    #[test]
    fn gilbert_elliott_degenerate_chain() {
        let m = GilbertElliottLoss::new(0.0, 0.0, 0.01, 0.9);
        assert_eq!(m.steady_state_loss(), Some(0.01));
        assert!(!m.in_bad_state());
    }

    #[test]
    #[should_panic(expected = "invalid probability")]
    fn bernoulli_rejects_bad_p() {
        let _ = BernoulliLoss::new(1.5);
    }

    #[test]
    fn determinism_under_same_seed() {
        let mut a = GilbertElliottLoss::new(0.05, 0.2, 0.01, 0.4);
        let mut b = a;
        let mut ra = DetRng::seed_from(9);
        let mut rb = DetRng::seed_from(9);
        for i in 0..5_000u64 {
            let now = SimTime::from_millis(i);
            assert_eq!(a.is_lost(now, &mut ra), b.is_lost(now, &mut rb));
        }
    }
}
