//! Recording, persisting, characterising and replaying delay traces.
//!
//! The paper's predictor-accuracy experiment (Table 3) collects the one-way
//! delays of 100 000 heartbeats and feeds them to each predictor; Table 4
//! characterises the link from the same kind of observations. [`DelayTrace`]
//! is that artefact: a sequence of per-heartbeat outcomes (delivered with a
//! delay, or lost), which can be summarised ([`LinkCharacteristics`]),
//! persisted as CSV, and replayed as a [`DelayModel`].

use std::fmt;
use std::fs;
use std::io::{self, Write as _};
use std::path::Path;

use fd_sim::{DetRng, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::delay::DelayModel;
use crate::profile::WanProfile;

/// Outcome of one heartbeat in a trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceEntry {
    /// Heartbeat sequence number (send order).
    pub seq: u64,
    /// One-way delay in ms, or `None` if the message was lost.
    pub delay_ms: Option<f64>,
}

/// A recorded sequence of heartbeat outcomes on a link.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DelayTrace {
    entries: Vec<TraceEntry>,
}

/// Error from [`DelayTrace::replay_link`]: the trace has no delivered
/// entries, so there is no delay stream to replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EmptyTraceError;

impl fmt::Display for EmptyTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace has no delivered entries to replay")
    }
}

impl std::error::Error for EmptyTraceError {}

/// Summary of a link as the paper's Table 4 reports it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkCharacteristics {
    /// Mean one-way delay (ms).
    pub mean_ms: f64,
    /// Sample standard deviation of the delay (ms).
    pub std_ms: f64,
    /// Minimum observed delay (ms).
    pub min_ms: f64,
    /// Maximum observed delay (ms).
    pub max_ms: f64,
    /// Fraction of heartbeats lost.
    pub loss_probability: f64,
    /// Number of delivered heartbeats the statistics are over.
    pub delivered: usize,
    /// Total heartbeats sent.
    pub sent: usize,
}

impl fmt::Display for LinkCharacteristics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Mean one-way delay      {:>10.1} ms", self.mean_ms)?;
        writeln!(f, "Standard deviation      {:>10.1} ms", self.std_ms)?;
        writeln!(f, "Maximum one-way delay   {:>10.1} ms", self.max_ms)?;
        writeln!(f, "Minimum one-way delay   {:>10.1} ms", self.min_ms)?;
        writeln!(
            f,
            "Loss probability        {:>10.3} %",
            self.loss_probability * 100.0
        )?;
        write!(
            f,
            "Heartbeats (delivered/sent)  {}/{}",
            self.delivered, self.sent
        )
    }
}

impl DelayTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a delivered heartbeat with its one-way delay.
    ///
    /// # Panics
    ///
    /// Panics if the delay is negative or not finite.
    pub fn push_delivered(&mut self, seq: u64, delay_ms: f64) {
        assert!(
            delay_ms.is_finite() && delay_ms >= 0.0,
            "invalid delay {delay_ms}"
        );
        self.entries.push(TraceEntry {
            seq,
            delay_ms: Some(delay_ms),
        });
    }

    /// Records a lost heartbeat.
    pub fn push_lost(&mut self, seq: u64) {
        self.entries.push(TraceEntry {
            seq,
            delay_ms: None,
        });
    }

    /// All entries in send order.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Number of entries (sent heartbeats).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The delays of delivered heartbeats, in send order.
    pub fn delays_ms(&self) -> Vec<f64> {
        self.entries.iter().filter_map(|e| e.delay_ms).collect()
    }

    /// Generates a trace of `n` heartbeats sent every `eta` over `profile`.
    ///
    /// This is the synthetic equivalent of the paper's 100 000-heartbeat
    /// collection run.
    pub fn record(profile: &WanProfile, n: usize, eta: SimDuration, seed: u64) -> DelayTrace {
        let mut delay = profile.delay_model();
        let mut loss = profile.loss_model();
        let mut delay_rng = DetRng::seed_from(seed);
        let mut loss_rng = DetRng::seed_from(seed.wrapping_add(0x9e37_79b9));
        let mut trace = DelayTrace::new();
        for i in 0..n {
            let now = SimTime::ZERO + eta * i as u64;
            let d = delay.sample(now, &mut delay_rng);
            if loss.is_lost(now, &mut loss_rng) {
                trace.push_lost(i as u64);
            } else {
                trace.push_delivered(i as u64, d.as_millis_f64());
            }
        }
        trace
    }

    /// Computes the Table 4 style characterisation.
    ///
    /// Returns `None` if no heartbeat was delivered.
    pub fn characteristics(&self) -> Option<LinkCharacteristics> {
        let delays = self.delays_ms();
        if delays.is_empty() {
            return None;
        }
        let n = delays.len() as f64;
        let mean = delays.iter().sum::<f64>() / n;
        let var = delays.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / (n - 1.0).max(1.0);
        let min = delays.iter().copied().fold(f64::INFINITY, f64::min);
        let max = delays.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Some(LinkCharacteristics {
            mean_ms: mean,
            std_ms: var.sqrt(),
            min_ms: min,
            max_ms: max,
            loss_probability: (self.entries.len() - delays.len()) as f64
                / self.entries.len() as f64,
            delivered: delays.len(),
            sent: self.entries.len(),
        })
    }

    /// Writes the trace as CSV (`seq,delay_ms` with empty delay for losses).
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating or writing the file.
    pub fn save_csv(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let mut out = io::BufWriter::new(fs::File::create(path)?);
        writeln!(out, "seq,delay_ms")?;
        for e in &self.entries {
            match e.delay_ms {
                Some(d) => writeln!(out, "{},{:.6}", e.seq, d)?,
                None => writeln!(out, "{},", e.seq)?,
            }
        }
        out.flush()
    }

    /// Reads a trace previously written by [`DelayTrace::save_csv`].
    ///
    /// # Errors
    ///
    /// Returns an I/O error for unreadable files, or `InvalidData` for rows
    /// that do not parse or carry a non-finite or negative delay.
    pub fn load_csv(path: impl AsRef<Path>) -> io::Result<DelayTrace> {
        let content = fs::read_to_string(path)?;
        let mut trace = DelayTrace::new();
        for (lineno, line) in content.lines().enumerate() {
            if lineno == 0 && line.starts_with("seq") {
                continue;
            }
            if line.trim().is_empty() {
                continue;
            }
            let (seq_s, delay_s) = line.split_once(',').ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("bad row {lineno}: {line}"),
                )
            })?;
            let seq: u64 = seq_s.trim().parse().map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("bad seq at {lineno}: {e}"),
                )
            })?;
            let delay_s = delay_s.trim();
            if delay_s.is_empty() {
                trace.push_lost(seq);
            } else {
                let d: f64 = delay_s.parse().map_err(|e| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("bad delay at {lineno}: {e}"),
                    )
                })?;
                if !d.is_finite() || d < 0.0 {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("bad delay at {lineno}: {d} is not a finite non-negative value"),
                    ));
                }
                trace.push_delivered(seq, d);
            }
        }
        Ok(trace)
    }
}

impl FromIterator<f64> for DelayTrace {
    /// Builds an all-delivered trace from raw delays.
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut trace = DelayTrace::new();
        for (i, d) in iter.into_iter().enumerate() {
            trace.push_delivered(i as u64, d);
        }
        trace
    }
}

/// Replays a recorded trace's delivered delays as a [`DelayModel`], cycling
/// when exhausted. Losses in the trace are skipped — pair it with a loss
/// model if loss replay is also wanted.
#[derive(Debug, Clone)]
pub struct TraceReplayDelay {
    delays_ms: Vec<f64>,
    idx: usize,
}

impl TraceReplayDelay {
    /// Creates a replay model from a trace.
    ///
    /// # Panics
    ///
    /// Panics if the trace contains no delivered heartbeats.
    pub fn new(trace: &DelayTrace) -> Self {
        let delays_ms = trace.delays_ms();
        assert!(!delays_ms.is_empty(), "cannot replay an empty trace");
        Self { delays_ms, idx: 0 }
    }
}

impl DelayModel for TraceReplayDelay {
    fn sample(&mut self, _now: SimTime, _rng: &mut DetRng) -> SimDuration {
        let d = self.delays_ms[self.idx];
        self.idx = (self.idx + 1) % self.delays_ms.len();
        SimDuration::from_millis_f64(d)
    }
    fn describe(&self) -> String {
        format!("trace-replay({} delays)", self.delays_ms.len())
    }
}

/// Replays a recorded trace's loss pattern as a [`LossModel`](crate::loss::LossModel): entry `k` of
/// the trace decides the fate of the `k`-th transmitted message, cycling
/// when exhausted. Pair with [`TraceReplayDelay`] for full trace-driven
/// experiments — but note the pairing caveat: [`TraceReplayDelay`] skips
/// lost entries, so drive the *loss* model from the same trace to keep the
/// two streams aligned with the original timeline.
#[derive(Debug, Clone)]
pub struct TraceReplayLoss {
    lost: Vec<bool>,
    idx: usize,
}

impl TraceReplayLoss {
    /// Creates a loss replay from a trace.
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty.
    pub fn new(trace: &DelayTrace) -> Self {
        assert!(!trace.is_empty(), "cannot replay an empty trace");
        Self {
            lost: trace
                .entries()
                .iter()
                .map(|e| e.delay_ms.is_none())
                .collect(),
            idx: 0,
        }
    }
}

impl crate::loss::LossModel for TraceReplayLoss {
    fn is_lost(&mut self, _now: SimTime, _rng: &mut DetRng) -> bool {
        let lost = self.lost[self.idx];
        self.idx = (self.idx + 1) % self.lost.len();
        lost
    }
    fn describe(&self) -> String {
        format!("trace-replay-loss({} entries)", self.lost.len())
    }
    fn steady_state_loss(&self) -> Option<f64> {
        Some(self.lost.iter().filter(|&&l| l).count() as f64 / self.lost.len() as f64)
    }
}

impl DelayTrace {
    /// Builds a replay [`LinkModel`](crate::link::LinkModel) that reproduces
    /// this trace's delays *and* loss pattern in their original order.
    ///
    /// The link samples a delay for every transmission, including dropped
    /// ones, so the delay stream here is full-length: lost entries carry a
    /// placeholder (the previous delivered delay), which the loss model
    /// discards in the same step.
    ///
    /// # Errors
    ///
    /// Returns [`EmptyTraceError`] if the trace has no delivered entries.
    pub fn replay_link(&self) -> Result<crate::link::LinkModel, EmptyTraceError> {
        let mut last = self
            .entries
            .iter()
            .find_map(|e| e.delay_ms)
            .ok_or(EmptyTraceError)?;
        let full: DelayTrace = self
            .entries
            .iter()
            .map(|e| {
                if let Some(d) = e.delay_ms {
                    last = d;
                }
                last
            })
            .collect();
        Ok(crate::link::LinkModel::new(
            TraceReplayDelay::new(&full),
            TraceReplayLoss::new(self),
            DetRng::seed_from(0), // replay is deterministic; rng unused
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_characterise() {
        let profile = WanProfile::italy_japan();
        let trace = DelayTrace::record(&profile, 5_000, SimDuration::from_secs(1), 99);
        assert_eq!(trace.len(), 5_000);
        let ch = trace.characteristics().unwrap();
        assert!(
            ch.mean_ms > 192.0 && ch.mean_ms < 210.0,
            "mean={}",
            ch.mean_ms
        );
        assert!(ch.min_ms >= 192.0);
        assert!(ch.loss_probability < 0.03, "loss={}", ch.loss_probability);
        assert_eq!(ch.sent, 5_000);
        assert_eq!(
            ch.delivered + (ch.loss_probability * 5_000.0).round() as usize,
            5_000
        );
    }

    #[test]
    fn empty_trace_has_no_characteristics() {
        assert!(DelayTrace::new().characteristics().is_none());
        assert!(DelayTrace::new().is_empty());
    }

    #[test]
    fn all_lost_trace_has_no_characteristics() {
        let mut t = DelayTrace::new();
        t.push_lost(0);
        t.push_lost(1);
        assert!(t.characteristics().is_none());
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_round_trip() {
        let mut t = DelayTrace::new();
        t.push_delivered(0, 200.5);
        t.push_lost(1);
        t.push_delivered(2, 195.25);
        let path = std::env::temp_dir().join("fdqos_trace_roundtrip.csv");
        t.save_csv(&path).unwrap();
        let loaded = DelayTrace::load_csv(&path).unwrap();
        assert_eq!(t, loaded);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn load_rejects_garbage() {
        let path = std::env::temp_dir().join("fdqos_trace_garbage.csv");
        std::fs::write(&path, "seq,delay_ms\nnot-a-number,1.0\n").unwrap();
        let err = DelayTrace::load_csv(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn replay_cycles_in_order() {
        let t: DelayTrace = [10.0, 20.0, 30.0].into_iter().collect();
        let mut replay = TraceReplayDelay::new(&t);
        let mut rng = DetRng::seed_from(1);
        let take: Vec<f64> = (0..7)
            .map(|i| {
                replay
                    .sample(SimTime::from_secs(i), &mut rng)
                    .as_millis_f64()
            })
            .collect();
        assert_eq!(take, vec![10.0, 20.0, 30.0, 10.0, 20.0, 30.0, 10.0]);
    }

    #[test]
    fn replay_skips_losses() {
        let mut t = DelayTrace::new();
        t.push_delivered(0, 5.0);
        t.push_lost(1);
        t.push_delivered(2, 7.0);
        let mut replay = TraceReplayDelay::new(&t);
        let mut rng = DetRng::seed_from(1);
        let a = replay.sample(SimTime::ZERO, &mut rng).as_millis_f64();
        let b = replay.sample(SimTime::ZERO, &mut rng).as_millis_f64();
        assert_eq!((a, b), (5.0, 7.0));
    }

    #[test]
    fn trace_replay_loss_reproduces_the_pattern() {
        let mut t = DelayTrace::new();
        t.push_delivered(0, 5.0);
        t.push_lost(1);
        t.push_delivered(2, 7.0);
        let mut loss = TraceReplayLoss::new(&t);
        let mut rng = DetRng::seed_from(1);
        use crate::loss::LossModel as _;
        let pattern: Vec<bool> = (0..6)
            .map(|i| loss.is_lost(SimTime::from_secs(i), &mut rng))
            .collect();
        assert_eq!(pattern, vec![false, true, false, false, true, false]);
        assert!((loss.steady_state_loss().unwrap() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn replay_link_reproduces_delays_and_losses_in_order() {
        let profile = WanProfile::italy_japan();
        let original = DelayTrace::record(&profile, 2_000, SimDuration::from_secs(1), 9);
        let mut link = original.replay_link().unwrap();
        let mut replayed = DelayTrace::new();
        for (i, _) in original.entries().iter().enumerate() {
            match link.transmit(SimTime::from_secs(i as u64)).delay() {
                Some(d) => replayed.push_delivered(i as u64, d.as_millis_f64()),
                None => replayed.push_lost(i as u64),
            }
        }
        // Same loss positions and (to quantisation) same delivered delays.
        for (a, b) in original.entries().iter().zip(replayed.entries()) {
            match (a.delay_ms, b.delay_ms) {
                (Some(x), Some(y)) => assert!((x - y).abs() < 1e-3, "{x} vs {y}"),
                (None, None) => {}
                other => panic!("loss pattern diverged: {other:?}"),
            }
        }
    }

    #[test]
    fn characteristics_display_is_table4_like() {
        let t: DelayTrace = [200.0, 210.0, 195.0].into_iter().collect();
        let ch = t.characteristics().unwrap();
        let s = ch.to_string();
        assert!(s.contains("Mean one-way delay"));
        assert!(s.contains("Loss probability"));
    }

    #[test]
    fn load_rejects_negative_and_nonfinite_delays() {
        let path = std::env::temp_dir().join("fdqos_trace_bad_delays.csv");
        for bad in ["0,-1.0\n", "0,NaN\n", "0,inf\n", "0,-inf\n"] {
            std::fs::write(&path, format!("seq,delay_ms\n{bad}")).unwrap();
            let err = DelayTrace::load_csv(&path).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "input {bad:?}");
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn replay_of_undelivered_trace_is_a_typed_error() {
        let mut t = DelayTrace::new();
        t.push_lost(0);
        t.push_lost(1);
        assert_eq!(t.replay_link().unwrap_err(), EmptyTraceError);
        assert_eq!(
            DelayTrace::new().replay_link().unwrap_err(),
            EmptyTraceError
        );
    }
}
