//! Shared frame codec helpers: the one place that knows how a datagram
//! header is validated.
//!
//! Three wire protocols live in this workspace — the heartbeat format
//! ([`crate::wire`]), the consensus payloads (`fd-consensus`), and the
//! suspect-query plane (`fd-serve`). All of them face the same hostile
//! input: truncated datagrams, foreign traffic with the wrong magic tag,
//! frames from a future protocol version, and unknown message tags. This
//! module centralises those checks so corrupt-frame handling is uniform:
//! every codec rejects with the same [`FrameError`] taxonomy, and every
//! engine counts rejects the same way `Heartbeat::decode` corruption is
//! counted and dropped.

use bytes::{Buf, BufMut};

/// Why a frame was rejected. One taxonomy for every codec in the
/// workspace, so transports can count corruption uniformly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// The frame is shorter than the bytes the decoder needs next.
    Truncated {
        /// Bytes actually present.
        len: usize,
        /// Bytes the decoder needed.
        need: usize,
    },
    /// The magic tag does not match the protocol's.
    BadMagic {
        /// The tag found.
        found: u32,
    },
    /// The version is not supported.
    BadVersion {
        /// The version found.
        found: u8,
    },
    /// The message tag is not one the protocol defines.
    BadTag {
        /// The tag found.
        found: u8,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Truncated { len, need } => {
                write!(f, "frame truncated: {len} bytes, need {need}")
            }
            FrameError::BadMagic { found } => write!(f, "bad magic tag {found:#010x}"),
            FrameError::BadVersion { found } => write!(f, "unsupported wire version {found}"),
            FrameError::BadTag { found } => write!(f, "unknown message tag {found}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Size of the common `magic(4) + version(1)` header prefix.
pub const HEADER_SIZE: usize = 5;

/// Checks that `data` still holds at least `need` bytes.
///
/// # Errors
///
/// Returns [`FrameError::Truncated`] when it does not.
pub fn need(data: &[u8], need: usize) -> Result<(), FrameError> {
    if data.remaining() < need {
        Err(FrameError::Truncated {
            len: data.remaining(),
            need,
        })
    } else {
        Ok(())
    }
}

/// Checks that `data` still holds `count` elements of `elem` bytes
/// each — the counted-body variant of [`need`], with the size
/// multiplication overflow-checked so a lying count field can never
/// wrap the bound it is about to be compared against.
///
/// # Errors
///
/// Returns [`FrameError::Truncated`] when the body is short; an
/// overflowing `count * elem` reports `need: usize::MAX` (no real
/// datagram can satisfy it).
pub fn need_counted(data: &[u8], count: usize, elem: usize) -> Result<(), FrameError> {
    match count.checked_mul(elem) {
        Some(total) => need(data, total),
        None => Err(FrameError::Truncated {
            len: data.remaining(),
            need: usize::MAX,
        }),
    }
}

/// Writes the common `magic + version` header prefix.
pub fn put_header(buf: &mut impl BufMut, magic: u32, version: u8) {
    buf.put_u32(magic);
    buf.put_u8(version);
}

/// Consumes and validates the `magic + version` header prefix.
///
/// # Errors
///
/// Returns [`FrameError::Truncated`], [`FrameError::BadMagic`] or
/// [`FrameError::BadVersion`] — checked in that order, so a corrupt
/// header is always attributed to the first field that disagrees.
pub fn take_header(data: &mut &[u8], magic: u32, version: u8) -> Result<(), FrameError> {
    need(data, HEADER_SIZE)?;
    let found = data.get_u32();
    if found != magic {
        return Err(FrameError::BadMagic { found });
    }
    let found = data.get_u8();
    if found != version {
        return Err(FrameError::BadVersion { found });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const MAGIC: u32 = 0xABCD_0123;

    fn header() -> Vec<u8> {
        let mut buf = Vec::new();
        put_header(&mut buf, MAGIC, 2);
        buf
    }

    #[test]
    fn header_round_trips() {
        let buf = header();
        assert_eq!(buf.len(), HEADER_SIZE);
        let mut data = &buf[..];
        take_header(&mut data, MAGIC, 2).unwrap();
        assert!(data.is_empty());
    }

    #[test]
    fn truncated_header_rejected() {
        let buf = header();
        let mut data = &buf[..3];
        assert_eq!(
            take_header(&mut data, MAGIC, 2),
            Err(FrameError::Truncated {
                len: 3,
                need: HEADER_SIZE
            })
        );
    }

    #[test]
    fn wrong_magic_rejected() {
        let mut buf = header();
        buf[0] ^= 0xff;
        let mut data = &buf[..];
        assert!(matches!(
            take_header(&mut data, MAGIC, 2),
            Err(FrameError::BadMagic { .. })
        ));
    }

    #[test]
    fn wrong_version_rejected() {
        let buf = header();
        let mut data = &buf[..];
        assert_eq!(
            take_header(&mut data, MAGIC, 9),
            Err(FrameError::BadVersion { found: 2 })
        );
    }

    #[test]
    fn need_checks_remaining() {
        assert!(need(&[1, 2, 3], 3).is_ok());
        assert_eq!(
            need(&[1, 2, 3], 4),
            Err(FrameError::Truncated { len: 3, need: 4 })
        );
        assert!(need(&[], 0).is_ok());
    }

    #[test]
    fn errors_display() {
        let e = FrameError::Truncated { len: 1, need: 8 };
        assert!(e.to_string().contains("truncated"));
        assert!(FrameError::BadMagic { found: 7 }
            .to_string()
            .contains("magic"));
        assert!(FrameError::BadVersion { found: 7 }
            .to_string()
            .contains("version"));
        assert!(FrameError::BadTag { found: 7 }.to_string().contains("tag"));
    }
}
