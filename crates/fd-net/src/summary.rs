//! The suspect-summary wire format: how a regional monitor's compact
//! suspicion digest crosses the WAN to its gossip peers and the global
//! tier.
//!
//! A summary frame is to the fabric what a heartbeat is to a detector: its
//! *arrival* is the liveness signal the monitor-of-monitors tier feeds to a
//! detector bank, and its *payload* is the region's whole suspicion state —
//! the per-source bitmap under the region's reference detector, a monotone
//! publication sequence number, and the virtual instant the bits were
//! current. The payload is deliberately state-based (the full bitmap, not a
//! delta): merged as a join-semilattice keyed on `(seq, virtual_us)`,
//! redelivery and reordering under gossip fan-in cannot change the merged
//! view, and a single lost frame costs one cadence of freshness, never
//! consistency.
//!
//! Layout (big-endian), on the shared [`crate::framing`] header:
//!
//! ```text
//! magic "FDSM"(4) version(1) region(2) origin(2) seq(8) virtual_us(8)
//! start(4) len(4) suspects(4) word_count(2) words(8 × word_count)
//! ```
//!
//! `origin` is the region that *relayed* the frame (== `region` on the
//! first hop); gossip keeps it so a receiver can account redundancy
//! without affecting the merge.

use bytes::{Buf, BufMut};

use crate::framing::{self, FrameError};

/// Magic tag identifying suspect-summary frames (`"FDSM"`).
pub const SUMMARY_MAGIC: u32 = 0x4644_534D;
/// Current summary wire version.
pub const SUMMARY_VERSION: u8 = 1;
/// Fixed body size after the header: region(2) + origin(2) + seq(8) +
/// virtual_us(8) + start(4) + len(4) + suspects(4) + word_count(2).
pub const SUMMARY_FIXED_BODY: usize = 34;

/// A decoded suspect-summary frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SummaryFrame {
    /// Region whose suspicion state this is.
    pub region: u16,
    /// Region that sent this copy (differs from `region` under gossip).
    pub origin: u16,
    /// Monotone publication sequence of the producing monitor.
    pub seq: u64,
    /// Virtual instant the bitmap was current at the producer.
    pub virtual_us: u64,
    /// First global source id of the region's block.
    pub start: u32,
    /// Sources in the block (bitmap is `len.div_ceil(64)` words).
    pub len: u32,
    /// Popcount of the bitmap — carried so a receiver can account
    /// suspicion load without touching the words.
    pub suspects: u32,
    /// The suspicion bitmap under the region's reference detector.
    pub words: Vec<u64>,
}

impl SummaryFrame {
    /// Encodes into a fresh buffer.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf =
            Vec::with_capacity(framing::HEADER_SIZE + SUMMARY_FIXED_BODY + 8 * self.words.len());
        framing::put_header(&mut buf, SUMMARY_MAGIC, SUMMARY_VERSION);
        buf.put_u16(self.region);
        buf.put_u16(self.origin);
        buf.put_u64(self.seq);
        buf.put_u64(self.virtual_us);
        buf.put_u32(self.start);
        buf.put_u32(self.len);
        buf.put_u32(self.suspects);
        buf.put_u16(self.words.len() as u16);
        for &w in &self.words {
            buf.put_u64(w);
        }
        buf
    }

    /// Decodes a received datagram.
    ///
    /// # Errors
    ///
    /// Returns the shared [`FrameError`] taxonomy: truncation (including a
    /// lying word count), foreign magic, or an unsupported version. Total
    /// over arbitrary bytes — never panics, never over-reads.
    pub fn decode(mut data: &[u8]) -> Result<SummaryFrame, FrameError> {
        framing::take_header(&mut data, SUMMARY_MAGIC, SUMMARY_VERSION)?;
        framing::need(data, SUMMARY_FIXED_BODY)?;
        let region = data.get_u16();
        let origin = data.get_u16();
        let seq = data.get_u64();
        let virtual_us = data.get_u64();
        let start = data.get_u32();
        let len = data.get_u32();
        let suspects = data.get_u32();
        let n = data.get_u16() as usize;
        framing::need_counted(data, n, 8)?;
        let words = (0..n).map(|_| data.get_u64()).collect();
        Ok(SummaryFrame {
            region,
            origin,
            seq,
            virtual_us,
            start,
            len,
            suspects,
            words,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame() -> SummaryFrame {
        SummaryFrame {
            region: 2,
            origin: 5,
            seq: 91,
            virtual_us: 31_000_000,
            start: 256,
            len: 130,
            suspects: 3,
            words: vec![0b101, 0, 0b1],
        }
    }

    #[test]
    fn roundtrips() {
        let f = frame();
        assert_eq!(SummaryFrame::decode(&f.encode()), Ok(f));
    }

    #[test]
    fn empty_bitmap_roundtrips() {
        let f = SummaryFrame {
            words: Vec::new(),
            suspects: 0,
            ..frame()
        };
        assert_eq!(SummaryFrame::decode(&f.encode()), Ok(f));
    }

    #[test]
    fn rejects_foreign_magic_and_future_version() {
        let mut bytes = frame().encode();
        bytes[..4].copy_from_slice(b"FDQS");
        assert_eq!(
            SummaryFrame::decode(&bytes),
            Err(FrameError::BadMagic {
                found: u32::from_be_bytes(*b"FDQS")
            })
        );
        let mut bytes = frame().encode();
        bytes[4] = SUMMARY_VERSION + 1;
        assert_eq!(
            SummaryFrame::decode(&bytes),
            Err(FrameError::BadVersion {
                found: SUMMARY_VERSION + 1
            })
        );
    }

    #[test]
    fn rejects_every_truncation_point() {
        let bytes = frame().encode();
        for cut in 0..bytes.len() {
            assert!(
                SummaryFrame::decode(&bytes[..cut]).is_err(),
                "truncation at {cut} must be rejected"
            );
        }
    }

    #[test]
    fn lying_word_count_is_truncation_not_a_panic() {
        let mut bytes = frame().encode();
        let off = framing::HEADER_SIZE + SUMMARY_FIXED_BODY - 2;
        bytes[off..off + 2].copy_from_slice(&u16::MAX.to_be_bytes());
        assert!(matches!(
            SummaryFrame::decode(&bytes),
            Err(FrameError::Truncated { .. })
        ));
    }
}
