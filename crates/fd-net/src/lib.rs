//! Network substrate: WAN delay/loss models, link profiles, delay traces and
//! the heartbeat wire format.
//!
//! The DSN'05 experiments ran over a real Italy→Japan Internet path whose
//! characteristics are given in the paper's Table 4 (mean one-way delay
//! ≈ 200 ms, σ ≈ 7.6 ms, min 192 ms, max 340 ms, 18 hops, loss < 1%). That
//! physical link is not reproducible, so this crate provides:
//!
//! * composable **delay models** ([`delay`]) — constant, uniform, truncated
//!   normal, shifted gamma, AR(1)-correlated jitter, slow sinusoidal drift
//!   (diurnal load), and rare congestion spikes;
//! * **loss models** ([`loss`]) — Bernoulli and Gilbert–Elliott bursty loss;
//! * a **link** abstraction combining them ([`link`]);
//! * calibrated **profiles** ([`profile`]), in particular
//!   [`profile::WanProfile::italy_japan`] matching Table 4;
//! * **delay traces** ([`trace`]) — record, persist, replay and characterise
//!   observed one-way delays (regenerates Table 4);
//! * the **heartbeat wire format** ([`wire`]) used by the real-UDP engine,
//!   built on the shared **frame codec helpers** ([`framing`]) that every
//!   wire protocol in the workspace (heartbeats, consensus payloads, the
//!   fd-serve query plane) validates and rejects frames with.

pub mod calibrate;
pub mod delay;
pub mod framing;
pub mod link;
pub mod loss;
pub mod profile;
pub mod summary;
pub mod trace;
pub mod wire;

pub use calibrate::{calibrate_profile, CalibrationDiagnostics};
pub use delay::{
    Ar1JitterDelay, CompositeDelay, CongestionEpochDelay, ConstantDelay, DelayComponent,
    DelayModel, DriftDelay, ShiftedGammaDelay, SpikeDelay, TruncatedNormalDelay, UniformDelay,
};
pub use framing::FrameError;
pub use link::{LinkModel, LinkStats, Transmission};
pub use loss::{BernoulliLoss, GilbertElliottLoss, LossModel, NoLoss};
pub use profile::WanProfile;
pub use summary::{SummaryFrame, SUMMARY_MAGIC, SUMMARY_VERSION};
pub use trace::{
    DelayTrace, EmptyTraceError, LinkCharacteristics, TraceReplayDelay, TraceReplayLoss,
};
pub use wire::{Heartbeat, WireError};
