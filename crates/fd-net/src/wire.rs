//! The heartbeat wire format used by the real-UDP engine.
//!
//! A heartbeat datagram carries a magic tag, a format version, the sender's
//! process id, the heartbeat sequence number `i` and the send timestamp
//! `σ_i` in microseconds of the (NTP-synchronised) global clock. All fields
//! are big-endian.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use fd_sim::SimTime;
use serde::{Deserialize, Serialize};

use crate::framing::{self, FrameError};

/// Magic tag identifying fdqos heartbeats (`"FDQS"`).
pub const MAGIC: u32 = 0x4644_5153;
/// Current wire version.
pub const VERSION: u8 = 1;
/// Encoded size in bytes: magic(4) + version(1) + sender(2) + seq(8) + ts(8).
pub const HEARTBEAT_WIRE_SIZE: usize = 23;

/// A decoded heartbeat message `m_i`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Heartbeat {
    /// Sender process id.
    pub sender: u16,
    /// Sequence number `i` (the sender's cycle count).
    pub seq: u64,
    /// Send time `σ_i` on the global clock.
    pub sent_at: SimTime,
}

/// Errors decoding a heartbeat datagram — the shared [`FrameError`]
/// taxonomy of [`crate::framing`], which every codec in the workspace
/// rejects with.
pub type WireError = FrameError;

impl Heartbeat {
    /// Creates a heartbeat.
    pub fn new(sender: u16, seq: u64, sent_at: SimTime) -> Self {
        Self {
            sender,
            seq,
            sent_at,
        }
    }

    /// Encodes into a fresh buffer.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(HEARTBEAT_WIRE_SIZE);
        framing::put_header(&mut buf, MAGIC, VERSION);
        buf.put_u16(self.sender);
        buf.put_u64(self.seq);
        buf.put_u64(self.sent_at.as_micros());
        buf.freeze()
    }

    /// Decodes from a received datagram.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] if the datagram is truncated, carries the
    /// wrong magic tag, or an unsupported version.
    pub fn decode(mut data: &[u8]) -> Result<Heartbeat, WireError> {
        framing::need(data, HEARTBEAT_WIRE_SIZE)?;
        framing::take_header(&mut data, MAGIC, VERSION)?;
        let sender = data.get_u16();
        let seq = data.get_u64();
        let sent_at = SimTime::from_micros(data.get_u64());
        Ok(Heartbeat {
            sender,
            seq,
            sent_at,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip() {
        let hb = Heartbeat::new(7, 123_456, SimTime::from_micros(987_654_321));
        let bytes = hb.encode();
        assert_eq!(bytes.len(), HEARTBEAT_WIRE_SIZE);
        assert_eq!(Heartbeat::decode(&bytes).unwrap(), hb);
    }

    #[test]
    fn truncated_is_rejected() {
        let hb = Heartbeat::new(1, 2, SimTime::from_secs(3));
        let bytes = hb.encode();
        let err = Heartbeat::decode(&bytes[..10]).unwrap_err();
        assert_eq!(
            err,
            WireError::Truncated {
                len: 10,
                need: HEARTBEAT_WIRE_SIZE
            }
        );
        assert!(err.to_string().contains("truncated"));
    }

    #[test]
    fn bad_magic_is_rejected() {
        let hb = Heartbeat::new(1, 2, SimTime::from_secs(3));
        let mut bytes = hb.encode().to_vec();
        bytes[0] ^= 0xff;
        assert!(matches!(
            Heartbeat::decode(&bytes),
            Err(WireError::BadMagic { .. })
        ));
    }

    #[test]
    fn bad_version_is_rejected() {
        let hb = Heartbeat::new(1, 2, SimTime::from_secs(3));
        let mut bytes = hb.encode().to_vec();
        bytes[4] = 99;
        assert_eq!(
            Heartbeat::decode(&bytes),
            Err(WireError::BadVersion { found: 99 })
        );
    }

    #[test]
    fn max_values_round_trip() {
        let hb = Heartbeat::new(u16::MAX, u64::MAX, SimTime::MAX);
        assert_eq!(Heartbeat::decode(&hb.encode()).unwrap(), hb);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn any_heartbeat_round_trips(sender: u16, seq: u64, micros: u64) {
            let hb = Heartbeat::new(sender, seq, SimTime::from_micros(micros));
            prop_assert_eq!(Heartbeat::decode(&hb.encode()).unwrap(), hb);
        }

        #[test]
        fn random_bytes_never_panic(data in proptest::collection::vec(any::<u8>(), 0..64)) {
            let _ = Heartbeat::decode(&data);
        }
    }
}
