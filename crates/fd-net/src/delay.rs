//! One-way transmission-delay models.
//!
//! A [`DelayModel`] produces the one-way delay of each message handed to the
//! link. Models receive the current virtual time so that non-stationary
//! behaviour (diurnal drift, congestion epochs) can be expressed, and draw
//! randomness from an externally-owned deterministic stream.

use fd_sim::{DetRng, SimDuration, SimTime};

/// A source of one-way message delays.
///
/// Implementations must be deterministic given the RNG stream: the simulation
/// replays bit-for-bit under the same seed.
pub trait DelayModel: Send {
    /// Samples the delay of a message entering the link at `now`.
    fn sample(&mut self, now: SimTime, rng: &mut DetRng) -> SimDuration;

    /// A short human-readable description, e.g. `"shifted-gamma(192+8ms)"`.
    fn describe(&self) -> String;
}

impl<T: DelayModel + ?Sized> DelayModel for Box<T> {
    fn sample(&mut self, now: SimTime, rng: &mut DetRng) -> SimDuration {
        (**self).sample(now, rng)
    }
    fn describe(&self) -> String {
        (**self).describe()
    }
}

/// A *signed* delay component summed inside a [`CompositeDelay`].
///
/// Unlike [`DelayModel`], a component may be negative (jitter below the
/// queueing mean, the trough of a diurnal oscillation); only the composite
/// total is clamped to the propagation floor.
pub trait DelayComponent: Send {
    /// Samples the component's contribution in milliseconds.
    fn sample_ms(&mut self, now: SimTime, rng: &mut DetRng) -> f64;

    /// A short human-readable description.
    fn describe_component(&self) -> String;
}

/// A fixed delay — useful for tests and for idealised links.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConstantDelay {
    delay: SimDuration,
}

impl ConstantDelay {
    /// Creates a model that always returns `delay`.
    pub fn new(delay: SimDuration) -> Self {
        Self { delay }
    }
}

impl DelayModel for ConstantDelay {
    fn sample(&mut self, _now: SimTime, _rng: &mut DetRng) -> SimDuration {
        self.delay
    }
    fn describe(&self) -> String {
        format!("constant({})", self.delay)
    }
}

/// Uniformly distributed delay over `[lo, hi]` milliseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UniformDelay {
    lo_ms: f64,
    hi_ms: f64,
}

impl UniformDelay {
    /// Creates a uniform delay on `[lo_ms, hi_ms]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo_ms > hi_ms` or either bound is negative.
    pub fn new(lo_ms: f64, hi_ms: f64) -> Self {
        assert!(
            0.0 <= lo_ms && lo_ms <= hi_ms,
            "invalid bounds [{lo_ms}, {hi_ms}]"
        );
        Self { lo_ms, hi_ms }
    }
}

impl DelayModel for UniformDelay {
    fn sample(&mut self, _now: SimTime, rng: &mut DetRng) -> SimDuration {
        SimDuration::from_millis_f64(rng.uniform(self.lo_ms, self.hi_ms))
    }
    fn describe(&self) -> String {
        format!("uniform({}..{}ms)", self.lo_ms, self.hi_ms)
    }
}

/// Normal delay truncated below at `floor_ms` (resampled symmetric clamp).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TruncatedNormalDelay {
    mean_ms: f64,
    std_ms: f64,
    floor_ms: f64,
}

impl TruncatedNormalDelay {
    /// Creates a truncated normal delay model.
    ///
    /// # Panics
    ///
    /// Panics if `std_ms` is negative or `floor_ms` is negative.
    pub fn new(mean_ms: f64, std_ms: f64, floor_ms: f64) -> Self {
        assert!(std_ms >= 0.0 && floor_ms >= 0.0, "invalid parameters");
        Self {
            mean_ms,
            std_ms,
            floor_ms,
        }
    }
}

impl DelayModel for TruncatedNormalDelay {
    fn sample(&mut self, _now: SimTime, rng: &mut DetRng) -> SimDuration {
        let d = rng.normal(self.mean_ms, self.std_ms).max(self.floor_ms);
        SimDuration::from_millis_f64(d)
    }
    fn describe(&self) -> String {
        format!(
            "trunc-normal(μ={}ms, σ={}ms, ≥{}ms)",
            self.mean_ms, self.std_ms, self.floor_ms
        )
    }
}

/// A propagation floor plus Gamma-distributed queueing delay — the classical
/// shape of Internet one-way delays (hard minimum, right-skewed tail).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShiftedGammaDelay {
    floor_ms: f64,
    shape: f64,
    scale_ms: f64,
}

impl ShiftedGammaDelay {
    /// Creates `floor + Gamma(shape, scale)` (milliseconds).
    ///
    /// # Panics
    ///
    /// Panics if any parameter is non-positive except `floor_ms`, which may
    /// be zero.
    pub fn new(floor_ms: f64, shape: f64, scale_ms: f64) -> Self {
        assert!(
            floor_ms >= 0.0 && shape > 0.0 && scale_ms > 0.0,
            "invalid parameters"
        );
        Self {
            floor_ms,
            shape,
            scale_ms,
        }
    }

    /// The mean delay of this model in milliseconds.
    pub fn mean_ms(&self) -> f64 {
        self.floor_ms + self.shape * self.scale_ms
    }
}

impl DelayModel for ShiftedGammaDelay {
    fn sample(&mut self, _now: SimTime, rng: &mut DetRng) -> SimDuration {
        SimDuration::from_millis_f64(self.floor_ms + rng.gamma(self.shape, self.scale_ms))
    }
    fn describe(&self) -> String {
        format!(
            "shifted-gamma({}ms + Γ({}, {}ms))",
            self.floor_ms, self.shape, self.scale_ms
        )
    }
}

/// AR(1)-correlated jitter around zero: `x_t = ρ·x_{t−1} + ε_t`,
/// `ε ~ N(0, σ)`. Real WAN delays are autocorrelated; this is the component
/// that separates history-exploiting predictors (ARIMA) from memoryless ones.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ar1JitterDelay {
    rho: f64,
    sigma_ms: f64,
    state_ms: f64,
}

impl Ar1JitterDelay {
    /// Creates AR(1) jitter with coefficient `rho` and innovation σ `sigma_ms`.
    ///
    /// # Panics
    ///
    /// Panics unless `|rho| < 1` and `sigma_ms >= 0`.
    pub fn new(rho: f64, sigma_ms: f64) -> Self {
        assert!(rho.abs() < 1.0, "AR(1) requires |rho| < 1, got {rho}");
        assert!(sigma_ms >= 0.0, "negative sigma");
        Self {
            rho,
            sigma_ms,
            state_ms: 0.0,
        }
    }

    /// The stationary standard deviation `σ/√(1−ρ²)`.
    pub fn stationary_std_ms(&self) -> f64 {
        self.sigma_ms / (1.0 - self.rho * self.rho).sqrt()
    }
}

impl Ar1JitterDelay {
    /// Advances the chain and returns the (possibly negative) jitter value.
    fn step(&mut self, rng: &mut DetRng) -> f64 {
        self.state_ms = self.rho * self.state_ms + rng.normal(0.0, self.sigma_ms);
        self.state_ms
    }
}

impl DelayModel for Ar1JitterDelay {
    fn sample(&mut self, _now: SimTime, rng: &mut DetRng) -> SimDuration {
        // Used alone the jitter must still be a valid (non-negative) delay;
        // inside a CompositeDelay the signed component path is used instead.
        let v = self.step(rng);
        SimDuration::from_millis_f64(v.max(0.0))
    }
    fn describe(&self) -> String {
        format!("ar1(ρ={}, σ={}ms)", self.rho, self.sigma_ms)
    }
}

impl DelayComponent for Ar1JitterDelay {
    fn sample_ms(&mut self, _now: SimTime, rng: &mut DetRng) -> f64 {
        self.step(rng)
    }
    fn describe_component(&self) -> String {
        DelayModel::describe(self)
    }
}

/// Slow sinusoidal drift of the mean delay — the diurnal load pattern the
/// paper mentions ("the network can be congested in peak hours").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftDelay {
    amplitude_ms: f64,
    period: SimDuration,
    phase: f64,
}

impl DriftDelay {
    /// Creates a sinusoidal drift of ±`amplitude_ms` with the given period.
    ///
    /// # Panics
    ///
    /// Panics if the amplitude is negative or the period is zero.
    pub fn new(amplitude_ms: f64, period: SimDuration) -> Self {
        assert!(amplitude_ms >= 0.0, "negative amplitude");
        assert!(!period.is_zero(), "zero period");
        Self {
            amplitude_ms,
            period,
            phase: 0.0,
        }
    }

    /// Sets the phase offset in radians.
    pub fn with_phase(mut self, phase: f64) -> Self {
        self.phase = phase;
        self
    }

    /// The drift value at `now` in milliseconds (can be negative; composite
    /// models add it to a floor).
    pub fn value_at(&self, now: SimTime) -> f64 {
        let frac = now.as_secs_f64() / self.period.as_secs_f64();
        self.amplitude_ms * (std::f64::consts::TAU * frac + self.phase).sin()
    }
}

impl DelayModel for DriftDelay {
    fn sample(&mut self, now: SimTime, _rng: &mut DetRng) -> SimDuration {
        SimDuration::from_millis_f64((self.value_at(now)).max(0.0))
    }
    fn describe(&self) -> String {
        format!("drift(±{}ms / {})", self.amplitude_ms, self.period)
    }
}

impl DelayComponent for DriftDelay {
    fn sample_ms(&mut self, now: SimTime, _rng: &mut DetRng) -> f64 {
        self.value_at(now)
    }
    fn describe_component(&self) -> String {
        DelayModel::describe(self)
    }
}

/// Rare additive congestion spikes: with probability `p` per message, add
/// `Uniform(lo_ms, hi_ms)`. Produces the long right tail (paper's 340 ms max
/// against a 200 ms mean).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpikeDelay {
    p: f64,
    lo_ms: f64,
    hi_ms: f64,
}

impl SpikeDelay {
    /// Creates a spike overlay.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= p <= 1` and `0 <= lo_ms <= hi_ms`.
    pub fn new(p: f64, lo_ms: f64, hi_ms: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "invalid probability {p}");
        assert!(0.0 <= lo_ms && lo_ms <= hi_ms, "invalid spike range");
        Self { p, lo_ms, hi_ms }
    }
}

impl DelayModel for SpikeDelay {
    fn sample(&mut self, _now: SimTime, rng: &mut DetRng) -> SimDuration {
        if rng.chance(self.p) {
            SimDuration::from_millis_f64(rng.uniform(self.lo_ms, self.hi_ms))
        } else {
            SimDuration::ZERO
        }
    }
    fn describe(&self) -> String {
        format!("spikes(p={}, {}..{}ms)", self.p, self.lo_ms, self.hi_ms)
    }
}

/// Sum of signed components over a hard floor: the delay is
/// `max(floor, floor + Σ components)`.
///
/// This is how the Italy–Japan profile is assembled: propagation floor +
/// gamma queueing + fast and slow AR(1) jitter + diurnal drift + rare
/// spikes.
pub struct CompositeDelay {
    floor_ms: f64,
    components: Vec<Box<dyn DelayComponent>>,
}

impl std::fmt::Debug for CompositeDelay {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompositeDelay")
            .field("floor_ms", &self.floor_ms)
            .field("components", &self.describe())
            .finish()
    }
}

impl CompositeDelay {
    /// Creates a composite with the given propagation floor.
    ///
    /// # Panics
    ///
    /// Panics if the floor is negative.
    pub fn new(floor_ms: f64) -> Self {
        assert!(floor_ms >= 0.0, "negative floor");
        Self {
            floor_ms,
            components: Vec::new(),
        }
    }

    /// Adds a component whose sampled value is added on top of the floor.
    pub fn with(mut self, component: impl DelayComponent + 'static) -> Self {
        self.components.push(Box::new(component));
        self
    }

    /// Number of components.
    pub fn component_count(&self) -> usize {
        self.components.len()
    }
}

impl DelayModel for CompositeDelay {
    fn sample(&mut self, now: SimTime, rng: &mut DetRng) -> SimDuration {
        let mut total = self.floor_ms;
        for c in &mut self.components {
            total += c.sample_ms(now, rng);
        }
        SimDuration::from_millis_f64(total.max(self.floor_ms))
    }
    fn describe(&self) -> String {
        let parts: Vec<String> = self
            .components
            .iter()
            .map(|c| c.describe_component())
            .collect();
        format!("composite({}ms + {})", self.floor_ms, parts.join(" + "))
    }
}

/// Markov-modulated congestion epochs: a two-state chain (Normal/Congested)
/// adds an elevated, noisy delay component while congested. Unlike
/// [`SpikeDelay`]'s single-message spikes, epochs persist for many messages
/// — the "network can be congested in peak hours" behaviour of real WANs at
/// a shorter time scale.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CongestionEpochDelay {
    /// P(Normal → Congested) per message.
    p_enter: f64,
    /// P(Congested → Normal) per message.
    p_exit: f64,
    /// Mean extra delay while congested (ms).
    extra_mean_ms: f64,
    /// Std of the extra delay while congested (ms).
    extra_std_ms: f64,
    congested: bool,
}

impl CongestionEpochDelay {
    /// Creates the epoch model, starting in the Normal state.
    ///
    /// # Panics
    ///
    /// Panics if the probabilities are outside `[0, 1]` or the extra-delay
    /// parameters are negative.
    pub fn new(p_enter: f64, p_exit: f64, extra_mean_ms: f64, extra_std_ms: f64) -> Self {
        assert!((0.0..=1.0).contains(&p_enter), "invalid p_enter {p_enter}");
        assert!((0.0..=1.0).contains(&p_exit), "invalid p_exit {p_exit}");
        assert!(
            extra_mean_ms >= 0.0 && extra_std_ms >= 0.0,
            "negative congestion parameters"
        );
        Self {
            p_enter,
            p_exit,
            extra_mean_ms,
            extra_std_ms,
            congested: false,
        }
    }

    /// `true` while an epoch is in force.
    pub fn is_congested(&self) -> bool {
        self.congested
    }

    /// The long-run fraction of time spent congested.
    pub fn steady_state_fraction(&self) -> f64 {
        let denom = self.p_enter + self.p_exit;
        if denom == 0.0 {
            0.0
        } else {
            self.p_enter / denom
        }
    }

    fn step(&mut self, rng: &mut DetRng) -> f64 {
        if self.congested {
            if rng.chance(self.p_exit) {
                self.congested = false;
            }
        } else if rng.chance(self.p_enter) {
            self.congested = true;
        }
        if self.congested {
            rng.normal(self.extra_mean_ms, self.extra_std_ms).max(0.0)
        } else {
            0.0
        }
    }
}

impl DelayModel for CongestionEpochDelay {
    fn sample(&mut self, _now: SimTime, rng: &mut DetRng) -> SimDuration {
        SimDuration::from_millis_f64(self.step(rng))
    }
    fn describe(&self) -> String {
        format!(
            "congestion-epochs(p={}/{}, +{}±{}ms)",
            self.p_enter, self.p_exit, self.extra_mean_ms, self.extra_std_ms
        )
    }
}

impl DelayComponent for CongestionEpochDelay {
    fn sample_ms(&mut self, _now: SimTime, rng: &mut DetRng) -> f64 {
        self.step(rng)
    }
    fn describe_component(&self) -> String {
        DelayModel::describe(self)
    }
}

/// Non-negative delay models are trivially also signed components.
macro_rules! nonnegative_component {
    ($($ty:ty),* $(,)?) => {$(
        impl DelayComponent for $ty {
            fn sample_ms(&mut self, now: SimTime, rng: &mut DetRng) -> f64 {
                DelayModel::sample(self, now, rng).as_millis_f64()
            }
            fn describe_component(&self) -> String {
                DelayModel::describe(self)
            }
        }
    )*};
}
nonnegative_component!(
    ConstantDelay,
    UniformDelay,
    TruncatedNormalDelay,
    ShiftedGammaDelay,
    SpikeDelay,
);

#[cfg(test)]
mod tests {
    use super::*;
    use fd_stat::RunningStats;

    fn sample_many(model: &mut dyn DelayModel, n: usize, seed: u64) -> RunningStats {
        let mut rng = DetRng::seed_from(seed);
        let mut stats = RunningStats::new();
        for i in 0..n {
            let now = SimTime::from_millis(i as u64 * 10);
            stats.push(model.sample(now, &mut rng).as_millis_f64());
        }
        stats
    }

    #[test]
    fn constant_is_constant() {
        let mut m = ConstantDelay::new(SimDuration::from_millis(100));
        let s = sample_many(&mut m, 100, 1);
        assert_eq!(s.min(), 100.0);
        assert_eq!(s.max(), 100.0);
    }

    #[test]
    fn uniform_stays_in_bounds() {
        let mut m = UniformDelay::new(10.0, 20.0);
        let s = sample_many(&mut m, 5_000, 2);
        assert!(s.min() >= 10.0 && s.max() <= 20.0);
        assert!((s.mean() - 15.0).abs() < 0.2, "mean={}", s.mean());
    }

    #[test]
    fn truncated_normal_respects_floor() {
        let mut m = TruncatedNormalDelay::new(5.0, 10.0, 3.0);
        let s = sample_many(&mut m, 5_000, 3);
        assert!(s.min() >= 3.0);
    }

    #[test]
    fn shifted_gamma_moments() {
        let mut m = ShiftedGammaDelay::new(192.0, 1.3, 6.7);
        assert!((m.mean_ms() - (192.0 + 1.3 * 6.7)).abs() < 1e-12);
        let s = sample_many(&mut m, 20_000, 4);
        assert!((s.mean() - m.mean_ms()).abs() < 0.3, "mean={}", s.mean());
        assert!(s.min() >= 192.0);
    }

    #[test]
    fn ar1_is_autocorrelated() {
        let mut m = Ar1JitterDelay::new(0.8, 2.0);
        let mut rng = DetRng::seed_from(5);
        let xs: Vec<f64> = (0..20_000)
            .map(|i| m.sample(SimTime::from_millis(i), &mut rng).as_millis_f64())
            .collect();
        // Lag-1 autocorrelation of the positive-clamped series is still
        // strongly positive for rho = 0.8.
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        let cov = xs
            .windows(2)
            .map(|w| (w[0] - mean) * (w[1] - mean))
            .sum::<f64>()
            / (xs.len() - 1) as f64;
        assert!(cov / var > 0.5, "lag-1 autocorr = {}", cov / var);
    }

    #[test]
    fn ar1_stationary_std() {
        let m = Ar1JitterDelay::new(0.6, 4.0);
        assert!((m.stationary_std_ms() - 4.0 / (1.0 - 0.36f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn drift_is_periodic_and_bounded() {
        let d = DriftDelay::new(5.0, SimDuration::from_secs(100));
        let quarter = SimTime::from_secs(25);
        assert!((d.value_at(quarter) - 5.0).abs() < 1e-9);
        assert!((d.value_at(SimTime::from_secs(100)) - d.value_at(SimTime::ZERO)).abs() < 1e-9);
        for s in 0..200 {
            assert!(d.value_at(SimTime::from_secs(s)).abs() <= 5.0 + 1e-9);
        }
    }

    #[test]
    fn spikes_are_rare_and_in_range() {
        let mut m = SpikeDelay::new(0.01, 50.0, 150.0);
        let mut rng = DetRng::seed_from(6);
        let mut spike_count = 0;
        for i in 0..50_000u64 {
            let d = m.sample(SimTime::from_millis(i), &mut rng).as_millis_f64();
            if d > 0.0 {
                spike_count += 1;
                assert!((50.0..=150.0).contains(&d));
            }
        }
        let freq = spike_count as f64 / 50_000.0;
        assert!((freq - 0.01).abs() < 0.003, "spike freq = {freq}");
    }

    #[test]
    fn congestion_epochs_persist() {
        let mut m = CongestionEpochDelay::new(0.01, 0.1, 40.0, 5.0);
        let mut rng = DetRng::seed_from(17);
        let samples: Vec<f64> = (0..50_000u64)
            .map(|i| m.sample(SimTime::from_millis(i), &mut rng).as_millis_f64())
            .collect();
        // Fraction of congested messages matches the chain's steady state.
        let frac = samples.iter().filter(|&&s| s > 0.0).count() as f64 / samples.len() as f64;
        let expect = m.steady_state_fraction();
        assert!((frac - expect).abs() < 0.03, "frac={frac}, expect={expect}");
        // Epochs are bursts: a congested message is usually followed by
        // another congested one (P(exit) = 0.1 → ~90% continuation).
        let continuations = samples
            .windows(2)
            .filter(|w| w[0] > 0.0 && w[1] > 0.0)
            .count() as f64;
        let congested = samples.iter().filter(|&&s| s > 0.0).count() as f64;
        assert!(
            continuations / congested > 0.75,
            "{}",
            continuations / congested
        );
    }

    #[test]
    fn congestion_epoch_magnitude() {
        let mut m = CongestionEpochDelay::new(0.5, 0.5, 100.0, 1.0);
        let mut rng = DetRng::seed_from(18);
        for i in 0..5_000u64 {
            let s = m.sample(SimTime::from_millis(i), &mut rng).as_millis_f64();
            assert!(s == 0.0 || s > 80.0, "ambiguous sample {s}");
        }
        assert!((m.steady_state_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn composite_never_goes_below_floor() {
        let mut m = CompositeDelay::new(192.0)
            .with(Ar1JitterDelay::new(0.7, 3.0))
            .with(ShiftedGammaDelay::new(0.0, 1.5, 4.0))
            .with(SpikeDelay::new(0.005, 30.0, 140.0));
        assert_eq!(m.component_count(), 3);
        let s = sample_many(&mut m, 20_000, 7);
        assert!(s.min() >= 192.0);
        assert!(s.mean() > 192.0);
    }

    #[test]
    fn describe_mentions_components() {
        let m = CompositeDelay::new(10.0).with(ConstantDelay::new(SimDuration::from_millis(5)));
        assert!(m.describe().contains("composite"));
        assert!(m.describe().contains("constant"));
    }

    #[test]
    fn same_seed_same_series() {
        let mk = || {
            CompositeDelay::new(100.0)
                .with(Ar1JitterDelay::new(0.7, 3.0))
                .with(SpikeDelay::new(0.01, 10.0, 20.0))
        };
        let mut a = mk();
        let mut b = mk();
        let mut ra = DetRng::seed_from(9);
        let mut rb = DetRng::seed_from(9);
        for i in 0..1_000 {
            let now = SimTime::from_millis(i);
            assert_eq!(a.sample(now, &mut ra), b.sample(now, &mut rb));
        }
    }
}
