//! Fitting a [`WanProfile`] to a measured trace.
//!
//! The Italy–Japan profile in this repository was calibrated by hand against
//! the paper's Table 4. [`calibrate_profile`] automates the first-order part
//! of that procedure for arbitrary traces, so the synthetic-link experiments
//! can be pointed at *any* measured network: it matches the floor, the
//! spike regime, the fast-correlation structure and the residual
//! mean/variance by the method of moments.
//!
//! This is deliberately a coarse fit — a four-component generative model
//! cannot capture everything a real path does (use
//! [`DelayTrace::replay_link`](crate::trace::DelayTrace::replay_link) for
//! exact replay); its value is *extrapolation*: longer runs, different crash
//! schedules and loss rates than the recorded window contains.

use crate::profile::WanProfile;
use crate::trace::DelayTrace;

/// Statistics used by the moment fit, exposed for reporting.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationDiagnostics {
    /// Observed floor (minimum delay), ms.
    pub floor_ms: f64,
    /// Threshold above which samples were treated as congestion spikes, ms.
    pub spike_threshold_ms: f64,
    /// Fraction of samples classified as spikes.
    pub spike_fraction: f64,
    /// Lag-1 autocorrelation of the non-spike samples.
    pub lag1: f64,
    /// Mean of the non-spike samples above the floor, ms.
    pub body_mean_ms: f64,
    /// Variance of the non-spike samples, ms².
    pub body_var_ms2: f64,
}

/// Fits a [`WanProfile`] to a recorded trace by the method of moments.
///
/// The decomposition:
///
/// 1. **floor** — the observed minimum;
/// 2. **spikes** — samples more than 8 robust σ (IQR/1.35) above the median
///    become the spike component (probability = their frequency, magnitude
///    range = their observed range above the floor);
/// 3. **AR(1) jitter** — the lag-1 autocorrelation ρ₁ of the remaining body
///    assigns `var·ρ₁` … the correlated share of the body variance … to an
///    AR(1) with ρ = min(0.9, max(0.3, ρ₁ + 0.25)) (the sampled-process
///    autocorrelation understates the latent one because the i.i.d. share
///    dilutes it);
/// 4. **gamma queueing** — the rest of the body variance and the body mean
///    above the floor.
///
/// Loss is fitted as a Gilbert–Elliott chain with the trace's overall loss
/// rate and a fixed burst factor.
///
/// Returns `None` if the trace has fewer than 100 delivered samples (too few
/// for stable moments).
pub fn calibrate_profile(
    trace: &DelayTrace,
    name: &str,
) -> Option<(WanProfile, CalibrationDiagnostics)> {
    let delays = trace.delays_ms();
    if delays.len() < 100 {
        return None;
    }

    // Robust centre and scale.
    let mut sorted = delays.clone();
    sorted.sort_by(f64::total_cmp);
    let median = sorted[sorted.len() / 2];
    let q1 = sorted[sorted.len() / 4];
    let q3 = sorted[3 * sorted.len() / 4];
    let robust_sigma = ((q3 - q1) / 1.35).max(1e-6);
    let floor = sorted[0];

    // Spike split.
    let threshold = median + 8.0 * robust_sigma;
    let (spikes, body): (Vec<f64>, Vec<f64>) = delays.iter().partition(|&&d| d > threshold);
    let spike_fraction = spikes.len() as f64 / delays.len() as f64;
    let (spike_lo, spike_hi) = if spikes.is_empty() {
        (0.0, 0.0)
    } else {
        let lo = spikes.iter().copied().fold(f64::INFINITY, f64::min) - floor;
        let hi = spikes.iter().copied().fold(f64::NEG_INFINITY, f64::max) - floor;
        (lo.max(0.0), hi.max(1.0))
    };

    // Body moments and correlation.
    let n = body.len() as f64;
    let body_mean = body.iter().sum::<f64>() / n;
    let body_var = body.iter().map(|d| (d - body_mean).powi(2)).sum::<f64>() / n;
    let lag1 = {
        let cov: f64 = body
            .windows(2)
            .map(|w| (w[0] - body_mean) * (w[1] - body_mean))
            .sum::<f64>()
            / (n - 1.0);
        if body_var > 0.0 {
            cov / body_var
        } else {
            0.0
        }
    };

    // Split the body variance into correlated (AR) and i.i.d. (gamma) parts.
    let lag1 = lag1.clamp(0.0, 0.95);
    let rho = (lag1 + 0.25).clamp(0.3, 0.9);
    let ar_var = body_var * (lag1 / rho).min(0.9);
    let gamma_var = (body_var - ar_var).max(0.05 * body_var);
    let ar1_sigma = (ar_var * (1.0 - rho * rho)).sqrt();

    // Gamma mean is the body's excess over the floor; shape/scale by moments.
    let gamma_mean = (body_mean - floor).max(0.1);
    let gamma_scale = gamma_var / gamma_mean;
    let gamma_shape = (gamma_mean / gamma_scale).max(0.05);

    // Loss: overall rate into a bursty chain (mean burst length 1/p_bg = 10).
    let loss = trace
        .characteristics()
        .map(|c| c.loss_probability)
        .unwrap_or(0.0);
    let p_bg = 0.1;
    let loss_bad = 0.3;
    let loss_good = (loss * 0.25).min(0.05);
    // Steady state: π_bad·loss_bad + (1−π_bad)·loss_good = loss, with
    // π_bad = p_gb/(p_gb + p_bg). Solve for p_gb.
    let pi_bad = ((loss - loss_good) / (loss_bad - loss_good)).clamp(0.0, 0.5);
    let p_gb = if pi_bad > 0.0 {
        (pi_bad * p_bg / (1.0 - pi_bad)).min(0.5)
    } else {
        0.0
    };

    let profile = WanProfile {
        name: name.to_owned(),
        floor_ms: floor,
        gamma_shape,
        gamma_scale_ms: gamma_scale,
        ar1_rho: rho,
        ar1_sigma_ms: ar1_sigma,
        slow_ar1_rho: 0.0,
        slow_ar1_sigma_ms: 0.0,
        drift_amplitude_ms: 0.0,
        drift_period: fd_sim::SimDuration::from_secs(1_800),
        spike_p: spike_fraction,
        spike_lo_ms: spike_lo,
        spike_hi_ms: spike_hi.max(spike_lo),
        loss_p_gb: p_gb,
        loss_p_bg: p_bg,
        loss_good,
        loss_bad,
        hops: 0,
    };
    let diagnostics = CalibrationDiagnostics {
        floor_ms: floor,
        spike_threshold_ms: threshold,
        spike_fraction,
        lag1,
        body_mean_ms: body_mean,
        body_var_ms2: body_var,
    };
    Some((profile, diagnostics))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fd_sim::SimDuration;
    use fd_stat::RunningStats;

    fn roundtrip_stats(profile: &WanProfile, n: usize, seed: u64) -> RunningStats {
        DelayTrace::record(profile, n, SimDuration::from_secs(1), seed)
            .delays_ms()
            .into_iter()
            .collect()
    }

    #[test]
    fn calibration_recovers_first_moments() {
        // Record from the hand-calibrated profile, re-fit, and compare the
        // refit's generated moments against the original's.
        let original = WanProfile::italy_japan();
        let trace = DelayTrace::record(&original, 30_000, SimDuration::from_secs(1), 0xCA1);
        let (fitted, diag) = calibrate_profile(&trace, "refit").unwrap();

        let a = roundtrip_stats(&original, 20_000, 1);
        let b = roundtrip_stats(&fitted, 20_000, 1);
        assert!(
            (a.mean() - b.mean()).abs() < 2.0,
            "mean {} vs {}",
            a.mean(),
            b.mean()
        );
        assert!(
            (a.sample_std() - b.sample_std()).abs() < 2.5,
            "std {} vs {}",
            a.sample_std(),
            b.sample_std()
        );
        assert!(
            (fitted.floor_ms - 192.0).abs() < 2.0,
            "floor {}",
            fitted.floor_ms
        );
        assert!(diag.spike_fraction > 0.0005 && diag.spike_fraction < 0.02);
        assert!(diag.lag1 > 0.1, "lag1 {}", diag.lag1);
    }

    #[test]
    fn calibrated_loss_matches() {
        let original = WanProfile::italy_japan();
        let trace = DelayTrace::record(&original, 50_000, SimDuration::from_secs(1), 0xCA2);
        let (fitted, _) = calibrate_profile(&trace, "refit").unwrap();
        let observed = trace.characteristics().unwrap().loss_probability;
        assert!(
            (fitted.nominal_loss() - observed).abs() < 0.005,
            "fit {} vs observed {}",
            fitted.nominal_loss(),
            observed
        );
    }

    #[test]
    fn too_short_trace_is_rejected() {
        let t: DelayTrace = (0..50).map(|i| 100.0 + i as f64).collect();
        assert!(calibrate_profile(&t, "x").is_none());
    }

    #[test]
    fn spikeless_trace_fits_without_spikes() {
        // A clean low-jitter series: the spike component must vanish.
        let t: DelayTrace = (0..2_000).map(|i| 100.0 + ((i % 7) as f64) * 0.1).collect();
        let (p, d) = calibrate_profile(&t, "clean").unwrap();
        assert_eq!(d.spike_fraction, 0.0);
        assert_eq!(p.spike_p, 0.0);
        assert!(p.nominal_loss() < 1e-9);
    }

    #[test]
    fn fitted_profile_generates_valid_delays() {
        let original = WanProfile::congested_wan();
        let trace = DelayTrace::record(&original, 10_000, SimDuration::from_secs(1), 0xCA3);
        let (fitted, _) = calibrate_profile(&trace, "refit").unwrap();
        let s = roundtrip_stats(&fitted, 5_000, 2);
        assert!(s.min() >= fitted.floor_ms - 1e-9);
        assert!(s.mean().is_finite() && s.mean() > 0.0);
    }
}
