//! A unidirectional fair-lossy link: delay model + loss model + statistics.

use fd_sim::{DetRng, SimDuration, SimTime};

use crate::delay::DelayModel;
use crate::loss::LossModel;

/// The outcome of handing one message to the link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transmission {
    /// The message will be delivered after the given one-way delay.
    Delivered(SimDuration),
    /// The message was dropped by the link.
    Lost,
}

impl Transmission {
    /// The delivery delay, or `None` if lost.
    pub fn delay(self) -> Option<SimDuration> {
        match self {
            Transmission::Delivered(d) => Some(d),
            Transmission::Lost => None,
        }
    }

    /// `true` if the message was dropped.
    pub fn is_lost(self) -> bool {
        matches!(self, Transmission::Lost)
    }
}

/// Counters maintained by a [`LinkModel`] across a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Messages handed to the link.
    pub sent: u64,
    /// Messages the link will deliver.
    pub delivered: u64,
    /// Messages dropped.
    pub lost: u64,
}

impl LinkStats {
    /// Observed loss fraction (0 if nothing was sent).
    pub fn loss_fraction(&self) -> f64 {
        if self.sent == 0 {
            0.0
        } else {
            self.lost as f64 / self.sent as f64
        }
    }
}

/// A unidirectional link combining a delay model and a loss model, with its
/// own deterministic random stream.
///
/// ```
/// use fd_net::{ConstantDelay, LinkModel, NoLoss};
/// use fd_sim::{DetRng, SimDuration, SimTime};
///
/// let mut link = LinkModel::new(
///     ConstantDelay::new(SimDuration::from_millis(100)),
///     NoLoss,
///     DetRng::seed_from(1),
/// );
/// let tx = link.transmit(SimTime::ZERO);
/// assert_eq!(tx.delay(), Some(SimDuration::from_millis(100)));
/// ```
pub struct LinkModel {
    delay: Box<dyn DelayModel>,
    loss: Box<dyn LossModel>,
    rng: DetRng,
    stats: LinkStats,
}

impl std::fmt::Debug for LinkModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LinkModel")
            .field("delay", &self.delay.describe())
            .field("loss", &self.loss.describe())
            .field("stats", &self.stats)
            .finish()
    }
}

impl LinkModel {
    /// Creates a link from its delay model, loss model and random stream.
    pub fn new(
        delay: impl DelayModel + 'static,
        loss: impl LossModel + 'static,
        rng: DetRng,
    ) -> Self {
        Self {
            delay: Box::new(delay),
            loss: Box::new(loss),
            rng,
            stats: LinkStats::default(),
        }
    }

    /// Creates a link from boxed models (useful when models are built
    /// dynamically from a profile).
    pub fn from_boxed(delay: Box<dyn DelayModel>, loss: Box<dyn LossModel>, rng: DetRng) -> Self {
        Self {
            delay,
            loss,
            rng,
            stats: LinkStats::default(),
        }
    }

    /// Hands one message to the link at time `now`.
    pub fn transmit(&mut self, now: SimTime) -> Transmission {
        self.stats.sent += 1;
        // Always sample the delay, even for lost messages, so that loss does
        // not perturb the delay stream (keeps runs comparable across loss
        // configurations under the same seed).
        let delay = self.delay.sample(now, &mut self.rng);
        if self.loss.is_lost(now, &mut self.rng) {
            self.stats.lost += 1;
            Transmission::Lost
        } else {
            self.stats.delivered += 1;
            Transmission::Delivered(delay)
        }
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> LinkStats {
        self.stats
    }

    /// Human-readable description of the configured models.
    pub fn describe(&self) -> String {
        format!("{} | {}", self.delay.describe(), self.loss.describe())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delay::UniformDelay;
    use crate::loss::BernoulliLoss;

    #[test]
    fn transmit_counts_and_delivers() {
        let mut link = LinkModel::new(
            UniformDelay::new(5.0, 10.0),
            BernoulliLoss::new(0.2),
            DetRng::seed_from(11),
        );
        let mut delivered = 0;
        for i in 0..10_000u64 {
            match link.transmit(SimTime::from_millis(i)) {
                Transmission::Delivered(d) => {
                    delivered += 1;
                    let ms = d.as_millis_f64();
                    assert!((5.0..=10.0).contains(&ms));
                }
                Transmission::Lost => {}
            }
        }
        let s = link.stats();
        assert_eq!(s.sent, 10_000);
        assert_eq!(s.delivered, delivered);
        assert_eq!(s.delivered + s.lost, s.sent);
        assert!((s.loss_fraction() - 0.2).abs() < 0.02);
    }

    #[test]
    fn loss_fraction_of_idle_link_is_zero() {
        let link = LinkModel::new(
            UniformDelay::new(1.0, 2.0),
            BernoulliLoss::new(0.5),
            DetRng::seed_from(1),
        );
        assert_eq!(link.stats().loss_fraction(), 0.0);
    }

    #[test]
    fn transmission_accessors() {
        assert!(Transmission::Lost.is_lost());
        assert_eq!(Transmission::Lost.delay(), None);
        let d = SimDuration::from_millis(3);
        assert!(!Transmission::Delivered(d).is_lost());
        assert_eq!(Transmission::Delivered(d).delay(), Some(d));
    }

    #[test]
    fn describe_includes_both_models() {
        let link = LinkModel::new(
            UniformDelay::new(1.0, 2.0),
            BernoulliLoss::new(0.1),
            DetRng::seed_from(1),
        );
        let d = link.describe();
        assert!(d.contains("uniform") && d.contains("bernoulli"), "{d}");
    }
}
