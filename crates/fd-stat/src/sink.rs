//! Streaming QoS accumulation: fold suspicion/crash transitions into metric
//! state online instead of retaining the whole event log.
//!
//! The retained-log pipeline ([`extract_metrics`](crate::extract_metrics))
//! classifies each suspicion episode *after the fact* with interval
//! arithmetic over the full run. [`QosAccumulator`] reproduces that
//! classification one event at a time by exploiting two facts:
//!
//! 1. Within one instant, the retained pipeline's interval tests are
//!    equivalent to processing `Crash` first, then `StartSuspect` /
//!    `EndSuspect` in arrival order, then `Restore`. The accumulator buffers
//!    the current instant and flushes it in those three phases, so callers
//!    may feed same-instant events in any arrival order.
//! 2. Every classification becomes final at a known event: a crash's
//!    detection status resolves at its `Restore` (or run end), and a
//!    suspicion episode's mistake status resolves at its `EndSuspect` (or
//!    run end). `T_M` and `T_MR` samples are therefore emitted at episode
//!    end, `T_D` samples at restore.
//!
//! The result is bit-identical to the retained path (see the exhaustive
//! differential tests below and in `tests/stream_differential.rs`), with one
//! documented exception: a source that crashes *and* restores in the same
//! microsecond (zero-length crash interval). The retained pipeline's own
//! handling of that case depends on event order inside the instant; the
//! simulators never produce it because time-to-repair is positive.
//!
//! Two sinks implement [`EventSink`]:
//!
//! * [`AccumulateSink`] (= [`QosAccumulator`]) — the default: O(sources ×
//!   combos) state, no event retention.
//! * [`RetainSink`] — keeps every transition and replays it through
//!   [`FdStatHandler`]; opt-in for debugging and for differential tests.

use std::collections::HashMap;

use fd_sim::SimTime;
use serde::{Deserialize, Serialize};

use crate::event::{Event, EventKind, EventLog, ProcessId};
use crate::metrics::{FdStatHandler, QosMetrics};
use crate::summary::LogHistogram;

/// Receiver for monitor-state transitions, called by the simulation layer as
/// they happen. `source` is a caller-chosen index (global across shards in
/// the sharded engine); `combo` is the detector combination index.
///
/// Implementations may assume `at` is non-decreasing across calls, but must
/// accept any order *within* one instant.
pub trait EventSink {
    /// Detector `combo` started suspecting `source` at `at`.
    fn start_suspect(&mut self, at: SimTime, source: u32, combo: u32);
    /// Detector `combo` stopped suspecting `source` at `at`.
    fn end_suspect(&mut self, at: SimTime, source: u32, combo: u32);
    /// `source` crashed at `at`. Ignored if already down.
    fn crash(&mut self, at: SimTime, source: u32);
    /// `source` came back up at `at`. Ignored if not down.
    fn restore(&mut self, at: SimTime, source: u32);
}

/// Sentinel for "no value" in the µs-resolution per-pair state arrays.
const NONE32: u32 = u32::MAX;

fn t32(at: SimTime) -> u32 {
    let us = at.as_micros();
    assert!(
        us < NONE32 as u64,
        "QosAccumulator tracks instants as 32-bit microseconds; \
         {us} µs exceeds the ~71.6 virtual-minute horizon"
    );
    us as u32
}

/// Exact streaming roll-up of one detector combination's QoS, mergeable
/// across shards.
///
/// Everything is integer arithmetic on whole microseconds (counts, sums,
/// min/max, geometric histogram bins), so [`QosSummary::merge`] is exactly
/// commutative and associative: accumulating a run on 1, 2, or 8 shards
/// yields bit-identical summaries.
///
/// The derived accessors mirror [`QosMetrics`]' semantics: means are `None`
/// without samples, and [`query_accuracy`](Self::query_accuracy) is 1 for a
/// detector that completed no mistakes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QosSummary {
    /// Crashes injected (one per crash, regardless of detection).
    pub crashes: u64,
    /// Crashes with a suspicion in force at restore time.
    pub detections: u64,
    /// Crashes with no suspicion in force at restore time.
    pub undetected: u64,
    /// Completed mistakes (wrongful suspicion episodes with an end).
    pub mistakes: u64,
    /// Mistakes left open at run end: they contribute no duration sample
    /// but do close a recurrence window, exactly like the retained path.
    pub open_mistakes: u64,
    /// T_MR samples (eligible pairs of successive mistakes).
    pub recurrences: u64,
    /// Sum of detection times, whole µs.
    pub td_sum_us: u64,
    /// Smallest detection time, µs (`u64::MAX` when `detections == 0`).
    pub td_min_us: u64,
    /// Largest detection time, µs.
    pub td_max_us: u64,
    /// Sum of mistake durations, whole µs.
    pub tm_sum_us: u64,
    /// Smallest mistake duration, µs (`u64::MAX` when `mistakes == 0`).
    pub tm_min_us: u64,
    /// Largest mistake duration, µs.
    pub tm_max_us: u64,
    /// Sum of mistake recurrence times, whole µs.
    pub tmr_sum_us: u64,
    /// Smallest recurrence time, µs (`u64::MAX` when `recurrences == 0`).
    pub tmr_min_us: u64,
    /// Largest recurrence time, µs.
    pub tmr_max_us: u64,
    /// T_D distribution over [1 µs, 10 s), geometric bins.
    pub td_hist: LogHistogram,
    /// T_M distribution over [1 µs, 10 s), geometric bins.
    pub tm_hist: LogHistogram,
    /// T_MR distribution over [1 µs, 10 s), geometric bins.
    pub tmr_hist: LogHistogram,
}

impl Default for QosSummary {
    fn default() -> Self {
        Self::new()
    }
}

impl QosSummary {
    /// An empty summary (fixed [`LogHistogram::latency_micros`] layout so
    /// independently created summaries always merge).
    pub fn new() -> Self {
        QosSummary {
            crashes: 0,
            detections: 0,
            undetected: 0,
            mistakes: 0,
            open_mistakes: 0,
            recurrences: 0,
            td_sum_us: 0,
            td_min_us: u64::MAX,
            td_max_us: 0,
            tm_sum_us: 0,
            tm_min_us: u64::MAX,
            tm_max_us: 0,
            tmr_sum_us: 0,
            tmr_min_us: u64::MAX,
            tmr_max_us: 0,
            td_hist: LogHistogram::latency_micros(),
            tm_hist: LogHistogram::latency_micros(),
            tmr_hist: LogHistogram::latency_micros(),
        }
    }

    fn record_td(&mut self, us: u64) {
        self.detections += 1;
        self.td_sum_us += us;
        self.td_min_us = self.td_min_us.min(us);
        self.td_max_us = self.td_max_us.max(us);
        self.td_hist.push(us as f64);
    }

    fn record_tm(&mut self, us: u64) {
        self.mistakes += 1;
        self.tm_sum_us += us;
        self.tm_min_us = self.tm_min_us.min(us);
        self.tm_max_us = self.tm_max_us.max(us);
        self.tm_hist.push(us as f64);
    }

    fn record_tmr(&mut self, us: u64) {
        self.recurrences += 1;
        self.tmr_sum_us += us;
        self.tmr_min_us = self.tmr_min_us.min(us);
        self.tmr_max_us = self.tmr_max_us.max(us);
        self.tmr_hist.push(us as f64);
    }

    /// Mean detection time in ms, if any crash was detected.
    pub fn mean_td_ms(&self) -> Option<f64> {
        (self.detections > 0).then(|| self.td_sum_us as f64 / 1_000.0 / self.detections as f64)
    }

    /// Largest detection time in ms, if any crash was detected.
    pub fn td_upper_ms(&self) -> Option<f64> {
        (self.detections > 0).then(|| self.td_max_us as f64 / 1_000.0)
    }

    /// Mean mistake duration in ms, if any mistake completed.
    pub fn mean_tm_ms(&self) -> Option<f64> {
        (self.mistakes > 0).then(|| self.tm_sum_us as f64 / 1_000.0 / self.mistakes as f64)
    }

    /// Mean mistake recurrence in ms, if any recurrence was sampled.
    pub fn mean_tmr_ms(&self) -> Option<f64> {
        (self.recurrences > 0).then(|| self.tmr_sum_us as f64 / 1_000.0 / self.recurrences as f64)
    }

    /// Query accuracy `P_A = (T̄_MR − T̄_M)/T̄_MR`, with the same edge rules
    /// as [`QosMetrics::query_accuracy`]: 1 without completed mistakes,
    /// undefined (`None`) when mistakes exist but no recurrence was sampled.
    pub fn query_accuracy(&self) -> Option<f64> {
        if self.mistakes == 0 {
            return Some(1.0);
        }
        let tm = self.mean_tm_ms()?;
        let tmr = self.mean_tmr_ms()?;
        Some(((tmr - tm) / tmr).clamp(0.0, 1.0))
    }

    /// Folds another summary into this one. Pure integer arithmetic:
    /// exactly commutative and associative.
    pub fn merge(&mut self, other: &QosSummary) {
        self.crashes += other.crashes;
        self.detections += other.detections;
        self.undetected += other.undetected;
        self.mistakes += other.mistakes;
        self.open_mistakes += other.open_mistakes;
        self.recurrences += other.recurrences;
        self.td_sum_us += other.td_sum_us;
        self.td_min_us = self.td_min_us.min(other.td_min_us);
        self.td_max_us = self.td_max_us.max(other.td_max_us);
        self.tm_sum_us += other.tm_sum_us;
        self.tm_min_us = self.tm_min_us.min(other.tm_min_us);
        self.tm_max_us = self.tm_max_us.max(other.tm_max_us);
        self.tmr_sum_us += other.tmr_sum_us;
        self.tmr_min_us = self.tmr_min_us.min(other.tmr_min_us);
        self.tmr_max_us = self.tmr_max_us.max(other.tmr_max_us);
        self.td_hist.merge(&other.td_hist);
        self.tm_hist.merge(&other.tm_hist);
        self.tmr_hist.merge(&other.tmr_hist);
    }
}

/// What the accumulator keeps per combination.
#[derive(Debug, Clone)]
enum Mode {
    /// Full per-sample vectors, bit-compatible with [`extract_metrics`].
    Full(Vec<QosMetrics>),
    /// Constant-size integer summaries (the scale path).
    Summary(Vec<QosSummary>),
}

/// Per-source crash bookkeeping, allocated lazily on the first crash so the
/// crash-free scale path touches no hash map at all.
#[derive(Debug, Clone, Default)]
struct CrashState {
    down: bool,
    /// Time of the most recent crash, µs.
    last_crash: u32,
    /// All effective crash times, ascending, for the recurrence-window
    /// barrier (`no crash in [a, b)`).
    crash_times: Vec<u32>,
    /// Zero-length episodes closed while down: if a restore lands in the
    /// same instant the retained path classifies them as mistakes, not
    /// down-started suspicions. Drained at every restore.
    pending_zero: Vec<(u32, u32)>,
}

/// One buffered same-instant transition.
#[derive(Debug, Clone, Copy)]
enum Buffered {
    Crash { source: u32 },
    Restore { source: u32 },
    Start { source: u32, combo: u32 },
    End { source: u32, combo: u32 },
}

/// Streaming QoS accumulator over `n_sources × n_combos` monitored pairs.
///
/// Feed it transitions through the [`EventSink`] methods (times
/// non-decreasing), then call [`finish_full`](Self::finish_full) or
/// [`finish_summaries`](Self::finish_summaries) with the run-end instant.
///
/// State is O(sources × combos): two `u32` words per pair, plus two pair
/// bitmaps and per-source crash bookkeeping that are allocated only once a
/// crash is actually injected — a crash-free run carries exactly 8 bytes of
/// accumulator state per pair.
#[derive(Debug, Clone)]
pub struct QosAccumulator {
    n_sources: usize,
    n_combos: usize,
    /// Start of the open suspicion episode per pair (`NONE32` = none),
    /// combo-major: `pair = combo * n_sources + source`.
    open_start: Vec<u32>,
    /// Start of the previous *confirmed* mistake per pair (`NONE32` = none).
    prev_mistake: Vec<u32>,
    /// Pair bitmap: the open episode is the permanent detection of a crash.
    /// Empty (all bits implicitly clear) until the first set — bits are only
    /// ever set on crash paths, so crash-free runs allocate neither bitmap.
    detection: Vec<u64>,
    /// Pair bitmap: the open episode started while the source was down.
    /// Lazily allocated like `detection`.
    started_down: Vec<u64>,
    /// `false` until the first crash: lets the hot suspicion path skip all
    /// crash bookkeeping (the sharded scale runs inject no crashes).
    any_crashes: bool,
    crash: HashMap<u32, CrashState>,
    /// Instant currently being buffered, µs.
    cur_at: u32,
    buf: Vec<Buffered>,
    mode: Mode,
}

impl QosAccumulator {
    /// Accumulator producing full per-sample [`QosMetrics`] vectors.
    pub fn full(n_sources: usize, n_combos: usize) -> Self {
        Self::with_mode(
            n_sources,
            n_combos,
            Mode::Full(vec![QosMetrics::default(); n_combos]),
        )
    }

    /// Accumulator producing constant-size [`QosSummary`] roll-ups.
    pub fn summary(n_sources: usize, n_combos: usize) -> Self {
        Self::with_mode(
            n_sources,
            n_combos,
            Mode::Summary(vec![QosSummary::new(); n_combos]),
        )
    }

    fn with_mode(n_sources: usize, n_combos: usize, mode: Mode) -> Self {
        let pairs = n_sources
            .checked_mul(n_combos)
            .expect("sources × combos overflows usize");
        QosAccumulator {
            n_sources,
            n_combos,
            open_start: vec![NONE32; pairs],
            prev_mistake: vec![NONE32; pairs],
            detection: Vec::new(),
            started_down: Vec::new(),
            any_crashes: false,
            crash: HashMap::new(),
            cur_at: 0,
            buf: Vec::new(),
            mode,
        }
    }

    /// Number of monitored sources.
    pub fn n_sources(&self) -> usize {
        self.n_sources
    }

    /// Number of detector combinations.
    pub fn n_combos(&self) -> usize {
        self.n_combos
    }

    #[inline]
    fn pair(&self, source: u32, combo: u32) -> usize {
        debug_assert!(
            (source as usize) < self.n_sources,
            "source {source} out of range"
        );
        assert!(
            (combo as usize) < self.n_combos,
            "combo {combo} out of range (n_combos = {})",
            self.n_combos
        );
        combo as usize * self.n_sources + source as usize
    }

    #[inline]
    fn bit(words: &[u64], p: usize) -> bool {
        words
            .get(p >> 6)
            .is_some_and(|w| w & (1u64 << (p & 63)) != 0)
    }

    #[inline]
    fn set_bit(words: &mut Vec<u64>, pairs: usize, p: usize) {
        if words.is_empty() {
            words.resize(pairs.div_ceil(64), 0);
        }
        words[p >> 6] |= 1u64 << (p & 63);
    }

    #[inline]
    fn clear_bit(words: &mut [u64], p: usize) {
        if let Some(w) = words.get_mut(p >> 6) {
            *w &= !(1u64 << (p & 63));
        }
    }

    fn emit_td(&mut self, combo: usize, us: u32) {
        match &mut self.mode {
            Mode::Full(v) => v[combo].detection_times_ms.push(us as f64 / 1_000.0),
            Mode::Summary(v) => v[combo].record_td(us as u64),
        }
    }

    fn emit_undetected(&mut self, combo: usize) {
        match &mut self.mode {
            Mode::Full(v) => v[combo].undetected_crashes += 1,
            Mode::Summary(v) => v[combo].undetected += 1,
        }
    }

    fn emit_crash_all(&mut self) {
        match &mut self.mode {
            Mode::Full(v) => v.iter_mut().for_each(|m| m.total_crashes += 1),
            Mode::Summary(v) => v.iter_mut().for_each(|s| s.crashes += 1),
        }
    }

    /// Confirms a mistake episode starting at `start`. `end == None` means
    /// the episode was still open at run end: it yields no duration sample
    /// and does not become the previous mistake (nothing can follow it).
    fn confirm_mistake(&mut self, source: u32, combo: u32, start: u32, end: Option<u32>) {
        let p = self.pair(source, combo);
        match (&mut self.mode, end) {
            (Mode::Full(v), Some(e)) => v[combo as usize]
                .mistake_durations_ms
                .push((e - start) as f64 / 1_000.0),
            (Mode::Summary(v), Some(e)) => v[combo as usize].record_tm((e - start) as u64),
            (Mode::Summary(v), None) => v[combo as usize].open_mistakes += 1,
            (Mode::Full(_), None) => {}
        }
        let prev = self.prev_mistake[p];
        if prev != NONE32 && !self.crash_in(source, prev, start) {
            match &mut self.mode {
                Mode::Full(v) => v[combo as usize]
                    .mistake_recurrences_ms
                    .push((start - prev) as f64 / 1_000.0),
                Mode::Summary(v) => v[combo as usize].record_tmr((start - prev) as u64),
            }
        }
        if end.is_some() {
            self.prev_mistake[p] = start;
        }
    }

    /// `true` if `source` has an effective crash in `[a, b)`.
    fn crash_in(&self, source: u32, a: u32, b: u32) -> bool {
        if !self.any_crashes {
            return false;
        }
        let Some(st) = self.crash.get(&source) else {
            return false;
        };
        let i = st.crash_times.partition_point(|&t| t < a);
        st.crash_times.get(i).is_some_and(|&t| t < b)
    }

    fn push(&mut self, at: SimTime, e: Buffered) {
        let us = t32(at);
        if us != self.cur_at {
            assert!(
                us > self.cur_at || self.buf.is_empty(),
                "QosAccumulator events must be fed in non-decreasing time order \
                 ({us} µs after {} µs)",
                self.cur_at
            );
            self.flush();
            self.cur_at = us;
        }
        self.buf.push(e);
    }

    /// Processes the buffered instant in the canonical phase order that
    /// reproduces the retained pipeline's interval arithmetic: crashes
    /// first (`crash <= start` counts as down-started), suspicion changes
    /// in arrival order, restores last (`start == restore` does not, and an
    /// episode ending at the restore instant is no longer in force).
    fn flush(&mut self) {
        if self.buf.is_empty() {
            return;
        }
        let at = self.cur_at;
        let buf = std::mem::take(&mut self.buf);
        for e in &buf {
            if let Buffered::Crash { source } = *e {
                self.do_crash(at, source);
            }
        }
        for e in &buf {
            match *e {
                Buffered::Start { source, combo } => self.do_start(at, source, combo),
                Buffered::End { source, combo } => self.do_end(at, source, combo),
                _ => {}
            }
        }
        for e in &buf {
            if let Buffered::Restore { source } = *e {
                self.do_restore(at, source);
            }
        }
        self.buf = buf;
        self.buf.clear();
    }

    fn do_crash(&mut self, at: u32, source: u32) {
        let st = self.crash.entry(source).or_default();
        if st.down {
            return;
        }
        st.down = true;
        st.last_crash = at;
        st.crash_times.push(at);
        self.any_crashes = true;
        self.emit_crash_all();
    }

    fn do_start(&mut self, at: u32, source: u32, combo: u32) {
        let p = self.pair(source, combo);
        if self.open_start[p] != NONE32 {
            // Duplicate starts are idempotent: keep the earliest.
            return;
        }
        self.open_start[p] = at;
        if self.any_crashes && self.crash.get(&source).is_some_and(|st| st.down) {
            let pairs = self.open_start.len();
            Self::set_bit(&mut self.started_down, pairs, p);
        }
    }

    fn do_end(&mut self, at: u32, source: u32, combo: u32) {
        let p = self.pair(source, combo);
        let start = self.open_start[p];
        if start == NONE32 {
            return;
        }
        self.open_start[p] = NONE32;
        let det = Self::bit(&self.detection, p);
        let sdown = Self::bit(&self.started_down, p);
        Self::clear_bit(&mut self.detection, p);
        Self::clear_bit(&mut self.started_down, p);
        if det {
            return;
        }
        if sdown {
            if at == start {
                // A zero-length episode while down is a mistake iff the
                // source restores in this very instant; stash it for
                // do_restore to reclassify.
                if let Some(st) = self.crash.get_mut(&source) {
                    st.pending_zero.push((combo, at));
                }
            }
            return;
        }
        self.confirm_mistake(source, combo, start, Some(at));
    }

    fn do_restore(&mut self, at: u32, source: u32) {
        let Some(st) = self.crash.get_mut(&source) else {
            return;
        };
        if !st.down {
            return;
        }
        st.down = false;
        let crash = st.last_crash;
        let pending = std::mem::take(&mut st.pending_zero);
        for &(combo, t) in &pending {
            if t == at {
                self.confirm_mistake(source, combo, t, Some(t));
            }
        }
        for combo in 0..self.n_combos as u32 {
            let p = self.pair(source, combo);
            let start = self.open_start[p];
            if start != NONE32 {
                let pairs = self.open_start.len();
                Self::set_bit(&mut self.detection, pairs, p);
                self.emit_td(combo as usize, start.saturating_sub(crash));
            } else {
                self.emit_undetected(combo as usize);
            }
        }
    }

    /// Flushes, then resolves everything still in flight at `run_end`:
    /// down sources get their last crash classified (an open episode is the
    /// detection; none means undetected), and surviving open mistakes close
    /// their recurrence window without a duration sample.
    fn finish_into(&mut self, run_end: SimTime) {
        let end_us = t32(run_end);
        assert!(
            end_us >= self.cur_at,
            "run_end ({end_us} µs) precedes the last event ({} µs)",
            self.cur_at
        );
        self.flush();

        let mut down: Vec<u32> = self
            .crash
            .iter()
            .filter(|(_, st)| st.down)
            .map(|(&s, _)| s)
            .collect();
        down.sort_unstable();
        for source in down {
            let st = self.crash.get_mut(&source).expect("down source tracked");
            let crash = st.last_crash;
            let pending = std::mem::take(&mut st.pending_zero);
            for &(combo, t) in &pending {
                // `started while down` tests `start < run_end`; an episode
                // at exactly run_end fails it and is a (zero-length)
                // mistake, same as the retained path.
                if t == end_us {
                    self.confirm_mistake(source, combo, t, Some(t));
                }
            }
            for combo in 0..self.n_combos as u32 {
                let p = self.pair(source, combo);
                let start = self.open_start[p];
                if start != NONE32 {
                    let pairs = self.open_start.len();
                    Self::set_bit(&mut self.detection, pairs, p);
                    self.emit_td(combo as usize, start.saturating_sub(crash));
                } else {
                    self.emit_undetected(combo as usize);
                }
            }
        }

        for combo in 0..self.n_combos as u32 {
            for source in 0..self.n_sources as u32 {
                let p = self.pair(source, combo);
                let start = self.open_start[p];
                if start == NONE32
                    || Self::bit(&self.detection, p)
                    || Self::bit(&self.started_down, p)
                {
                    continue;
                }
                self.confirm_mistake(source, combo, start, None);
            }
        }
    }

    /// Closes the run and returns per-combo [`QosMetrics`], bit-identical
    /// to replaying a retained log through [`extract_metrics`].
    ///
    /// # Panics
    ///
    /// Panics if the accumulator was built with [`QosAccumulator::summary`].
    pub fn finish_full(mut self, run_end: SimTime) -> Vec<QosMetrics> {
        self.finish_into(run_end);
        match self.mode {
            Mode::Full(v) => v,
            Mode::Summary(_) => panic!("finish_full on a summary-mode accumulator"),
        }
    }

    /// Closes the run and returns per-combo [`QosSummary`] roll-ups.
    ///
    /// # Panics
    ///
    /// Panics if the accumulator was built with [`QosAccumulator::full`].
    pub fn finish_summaries(mut self, run_end: SimTime) -> Vec<QosSummary> {
        self.finish_into(run_end);
        match self.mode {
            Mode::Summary(v) => v,
            Mode::Full(_) => panic!("finish_summaries on a full-mode accumulator"),
        }
    }
}

impl EventSink for QosAccumulator {
    fn start_suspect(&mut self, at: SimTime, source: u32, combo: u32) {
        self.push(at, Buffered::Start { source, combo });
    }

    fn end_suspect(&mut self, at: SimTime, source: u32, combo: u32) {
        self.push(at, Buffered::End { source, combo });
    }

    fn crash(&mut self, at: SimTime, source: u32) {
        self.push(at, Buffered::Crash { source });
    }

    fn restore(&mut self, at: SimTime, source: u32) {
        self.push(at, Buffered::Restore { source });
    }
}

/// The default sink: streaming accumulation, no event retention.
pub type AccumulateSink = QosAccumulator;

/// One transition kept by [`RetainSink`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetainedEvent {
    /// When it happened.
    pub at: SimTime,
    /// Which source it concerns.
    pub source: u32,
    /// What happened.
    pub kind: RetainedKind,
}

/// Transition kind for [`RetainedEvent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetainedKind {
    /// Suspicion started (payload: combo index).
    StartSuspect(u32),
    /// Suspicion ended (payload: combo index).
    EndSuspect(u32),
    /// Source crashed.
    Crash,
    /// Source restored.
    Restore,
}

/// Debug sink: retains every transition so the run can be replayed through
/// the classical [`FdStatHandler`] pipeline. Memory grows with the event
/// count — opt in only when the events themselves are needed.
#[derive(Debug, Clone, Default)]
pub struct RetainSink {
    events: Vec<RetainedEvent>,
}

impl RetainSink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// The retained transitions, in arrival order.
    pub fn events(&self) -> &[RetainedEvent] {
        &self.events
    }

    /// Number of retained transitions.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` if nothing was retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Replays the retained run through one [`FdStatHandler`] per touched
    /// (source, combo) pair and merges per combo, sources in ascending
    /// order. This is the reference result the streaming accumulator must
    /// reproduce.
    pub fn extract_grid(&self, n_combos: usize, run_end: SimTime) -> Vec<QosMetrics> {
        let mut handlers: HashMap<u32, Vec<FdStatHandler>> = HashMap::new();
        let fresh = |_: &u32| (0..n_combos as u32).map(FdStatHandler::new).collect();
        for e in &self.events {
            let hs = handlers.entry(e.source).or_insert_with_key(fresh);
            match e.kind {
                RetainedKind::StartSuspect(c) => hs[c as usize].on_event(&Event::new(
                    e.at,
                    ProcessId(0),
                    EventKind::StartSuspect { detector: c },
                )),
                RetainedKind::EndSuspect(c) => hs[c as usize].on_event(&Event::new(
                    e.at,
                    ProcessId(0),
                    EventKind::EndSuspect { detector: c },
                )),
                RetainedKind::Crash => {
                    let ev = Event::new(e.at, ProcessId(0), EventKind::Crash);
                    hs.iter_mut().for_each(|h| h.on_event(&ev));
                }
                RetainedKind::Restore => {
                    let ev = Event::new(e.at, ProcessId(0), EventKind::Restore);
                    hs.iter_mut().for_each(|h| h.on_event(&ev));
                }
            }
        }
        let mut out = vec![QosMetrics::default(); n_combos];
        let mut sources: Vec<u32> = handlers.keys().copied().collect();
        sources.sort_unstable();
        for s in sources {
            let hs = handlers.remove(&s).expect("handler present");
            for (c, h) in hs.into_iter().enumerate() {
                out[c].merge(&h.finish(run_end));
            }
        }
        out
    }
}

impl EventSink for RetainSink {
    fn start_suspect(&mut self, at: SimTime, source: u32, combo: u32) {
        self.events.push(RetainedEvent {
            at,
            source,
            kind: RetainedKind::StartSuspect(combo),
        });
    }

    fn end_suspect(&mut self, at: SimTime, source: u32, combo: u32) {
        self.events.push(RetainedEvent {
            at,
            source,
            kind: RetainedKind::EndSuspect(combo),
        });
    }

    fn crash(&mut self, at: SimTime, source: u32) {
        self.events.push(RetainedEvent {
            at,
            source,
            kind: RetainedKind::Crash,
        });
    }

    fn restore(&mut self, at: SimTime, source: u32) {
        self.events.push(RetainedEvent {
            at,
            source,
            kind: RetainedKind::Restore,
        });
    }
}

/// Extracts *all* detectors' metrics from a single-source [`EventLog`] in
/// one pass, bit-identical to calling
/// [`extract_metrics`](crate::extract_metrics) once per detector but
/// O(events) instead of O(detectors × events).
///
/// `Sent` / `Received` / `App` events are ignored, exactly as
/// [`FdStatHandler`] ignores them.
pub fn accumulate_metrics(log: &EventLog, n_detectors: usize, run_end: SimTime) -> Vec<QosMetrics> {
    let mut acc = QosAccumulator::full(1, n_detectors);
    for e in log {
        match e.kind {
            EventKind::StartSuspect { detector } => acc.start_suspect(e.at, 0, detector),
            EventKind::EndSuspect { detector } => acc.end_suspect(e.at, 0, detector),
            EventKind::Crash => acc.crash(e.at, 0),
            EventKind::Restore => acc.restore(e.at, 0),
            EventKind::Sent { .. } | EventKind::Received { .. } | EventKind::App { .. } => {}
        }
    }
    acc.finish_full(run_end)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::extract_metrics;

    fn secs(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    /// Feeds the same single-source schedule to the streaming accumulator
    /// and the retained pipeline and asserts bit-identical metrics.
    fn differential(events: &[(u64, RetainedKind)], end_s: u64) -> QosMetrics {
        let mut log = EventLog::new();
        let mut acc = QosAccumulator::full(1, 1);
        for &(s, kind) in events {
            let at = secs(s);
            match kind {
                RetainedKind::StartSuspect(c) => {
                    log.record(at, ProcessId(0), EventKind::StartSuspect { detector: c });
                    acc.start_suspect(at, 0, c);
                }
                RetainedKind::EndSuspect(c) => {
                    log.record(at, ProcessId(0), EventKind::EndSuspect { detector: c });
                    acc.end_suspect(at, 0, c);
                }
                RetainedKind::Crash => {
                    log.record(at, ProcessId(0), EventKind::Crash);
                    acc.crash(at, 0);
                }
                RetainedKind::Restore => {
                    log.record(at, ProcessId(0), EventKind::Restore);
                    acc.restore(at, 0);
                }
            }
        }
        let want = extract_metrics(&log, 0, secs(end_s));
        let got = acc.finish_full(secs(end_s)).remove(0);
        assert_eq!(got, want, "streaming result diverged from retained path");
        got
    }

    use RetainedKind::{Crash, EndSuspect, Restore, StartSuspect};

    #[test]
    fn simple_detection() {
        let m = differential(
            &[
                (100, Crash),
                (102, StartSuspect(0)),
                (130, Restore),
                (131, EndSuspect(0)),
            ],
            300,
        );
        assert_eq!(m.detection_times_ms, vec![2_000.0]);
        assert_eq!(m.total_crashes, 1);
        assert_eq!(m.undetected_crashes, 0);
        assert!(m.mistake_durations_ms.is_empty());
    }

    #[test]
    fn mistakes_and_recurrence() {
        let m = differential(
            &[
                (10, StartSuspect(0)),
                (12, EndSuspect(0)),
                (50, StartSuspect(0)),
                (53, EndSuspect(0)),
            ],
            100,
        );
        assert_eq!(m.mistake_durations_ms, vec![2_000.0, 3_000.0]);
        assert_eq!(m.mistake_recurrences_ms, vec![40_000.0]);
    }

    #[test]
    fn undetected_crash_is_counted() {
        let m = differential(&[(100, Crash), (130, Restore)], 300);
        assert_eq!(m.undetected_crashes, 1);
        assert_eq!(m.total_crashes, 1);
    }

    #[test]
    fn suspicion_already_active_at_crash_gives_zero_td() {
        let m = differential(
            &[
                (90, StartSuspect(0)),
                (100, Crash),
                (130, Restore),
                (131, EndSuspect(0)),
            ],
            300,
        );
        assert_eq!(m.detection_times_ms, vec![0.0]);
        assert!(m.mistake_durations_ms.is_empty());
    }

    #[test]
    fn in_flight_heartbeat_interrupts_then_permanent_detection() {
        let m = differential(
            &[
                (100, Crash),
                (101, StartSuspect(0)),
                (102, EndSuspect(0)),
                (104, StartSuspect(0)),
                (130, Restore),
                (131, EndSuspect(0)),
            ],
            300,
        );
        assert_eq!(m.detection_times_ms, vec![4_000.0]);
        assert!(m.mistake_durations_ms.is_empty());
    }

    #[test]
    fn recurrence_pairs_spanning_a_crash_are_skipped() {
        let m = differential(
            &[
                (10, StartSuspect(0)),
                (11, EndSuspect(0)),
                (50, Crash),
                (51, StartSuspect(0)),
                (80, Restore),
                (81, EndSuspect(0)),
                (120, StartSuspect(0)),
                (121, EndSuspect(0)),
            ],
            300,
        );
        assert_eq!(m.mistake_durations_ms.len(), 2);
        assert!(m.mistake_recurrences_ms.is_empty());
    }

    #[test]
    fn open_episode_at_run_end_detects_unrestored_crash() {
        let m = differential(&[(100, Crash), (103, StartSuspect(0))], 200);
        assert_eq!(m.detection_times_ms, vec![3_000.0]);
        assert_eq!(m.undetected_crashes, 0);
    }

    #[test]
    fn open_mistake_at_run_end_is_truncated() {
        let m = differential(&[(150, StartSuspect(0))], 200);
        assert!(m.mistake_durations_ms.is_empty());
        assert!(m.detection_times_ms.is_empty());
    }

    #[test]
    fn open_mistake_still_closes_the_recurrence_window() {
        let m = differential(
            &[
                (10, StartSuspect(0)),
                (12, EndSuspect(0)),
                (150, StartSuspect(0)),
            ],
            200,
        );
        assert_eq!(m.mistake_durations_ms, vec![2_000.0]);
        assert_eq!(m.mistake_recurrences_ms, vec![140_000.0]);
    }

    #[test]
    fn multiple_crashes_multiple_detections() {
        let m = differential(
            &[
                (100, Crash),
                (101, StartSuspect(0)),
                (130, Restore),
                (131, EndSuspect(0)),
                (400, Crash),
                (403, StartSuspect(0)),
                (430, Restore),
                (431, EndSuspect(0)),
            ],
            600,
        );
        assert_eq!(m.detection_times_ms, vec![1_000.0, 3_000.0]);
    }

    #[test]
    fn duplicate_start_suspect_is_idempotent() {
        let m = differential(
            &[
                (10, StartSuspect(0)),
                (12, StartSuspect(0)),
                (15, EndSuspect(0)),
            ],
            100,
        );
        assert_eq!(m.mistake_durations_ms, vec![5_000.0]);
    }

    #[test]
    fn one_episode_detects_two_crashes() {
        let m = differential(
            &[
                (100, Crash),
                (102, StartSuspect(0)),
                (130, Restore),
                (140, Crash),
                (170, Restore),
                (171, EndSuspect(0)),
            ],
            300,
        );
        // Same episode active at both restores: td 2 s, then clamped 0.
        assert_eq!(m.detection_times_ms, vec![2_000.0, 0.0]);
        assert!(m.mistake_durations_ms.is_empty());
    }

    #[test]
    fn same_instant_start_and_restore_is_a_detection() {
        // Start at the restore instant: active_at(restore) includes
        // `start == restore`, but `started while down` excludes it.
        let m = differential(
            &[
                (100, Crash),
                (130, StartSuspect(0)),
                (130, Restore),
                (150, EndSuspect(0)),
            ],
            300,
        );
        assert_eq!(m.detection_times_ms, vec![30_000.0]);
        assert!(m.mistake_durations_ms.is_empty());
    }

    #[test]
    fn same_instant_end_and_restore_is_undetected() {
        // The episode ends in the restore instant: no longer in force.
        let m = differential(
            &[
                (100, Crash),
                (105, StartSuspect(0)),
                (130, EndSuspect(0)),
                (130, Restore),
            ],
            300,
        );
        assert!(m.detection_times_ms.is_empty());
        assert_eq!(m.undetected_crashes, 1);
    }

    #[test]
    fn same_instant_crash_and_start_is_down_started() {
        let m = differential(
            &[
                (100, StartSuspect(0)),
                (101, EndSuspect(0)),
                (200, Crash),
                (200, StartSuspect(0)),
                (201, EndSuspect(0)),
                (230, Restore),
            ],
            300,
        );
        // The suspicion at the crash instant is correct, not a mistake.
        assert_eq!(m.mistake_durations_ms, vec![1_000.0]);
        assert!(m.mistake_recurrences_ms.is_empty());
        assert_eq!(m.undetected_crashes, 1);
    }

    #[test]
    fn zero_length_episode_at_restore_instant_is_a_mistake() {
        // Pathological: suspicion starts *and* ends at the restore
        // instant. The retained path calls it a zero-length mistake
        // (start is outside [crash, restore)); the pending-zero stash
        // reproduces that.
        let m = differential(
            &[
                (100, Crash),
                (130, StartSuspect(0)),
                (130, EndSuspect(0)),
                (130, Restore),
            ],
            300,
        );
        assert_eq!(m.mistake_durations_ms, vec![0.0]);
        assert_eq!(m.undetected_crashes, 1);
    }

    #[test]
    fn zero_length_episode_while_down_is_not_a_mistake() {
        let m = differential(
            &[
                (100, Crash),
                (110, StartSuspect(0)),
                (110, EndSuspect(0)),
                (130, Restore),
            ],
            300,
        );
        assert!(m.mistake_durations_ms.is_empty());
        assert_eq!(m.undetected_crashes, 1);
    }

    #[test]
    fn down_at_run_end_without_suspicion_is_undetected() {
        let m = differential(&[(100, Crash)], 200);
        assert_eq!(m.undetected_crashes, 1);
        assert_eq!(m.total_crashes, 1);
    }

    #[test]
    fn restore_without_crash_is_ignored() {
        let m = differential(
            &[(50, Restore), (60, StartSuspect(0)), (70, EndSuspect(0))],
            100,
        );
        assert_eq!(m.mistake_durations_ms, vec![10_000.0]);
        assert_eq!(m.total_crashes, 0);
    }

    #[test]
    fn end_without_start_is_ignored() {
        let m = differential(&[(50, EndSuspect(0))], 100);
        assert!(m.mistake_durations_ms.is_empty());
    }

    #[test]
    fn crash_between_open_mistake_and_previous_blocks_recurrence() {
        let m = differential(
            &[
                (10, StartSuspect(0)),
                (12, EndSuspect(0)),
                (50, Crash),
                (80, Restore),
                (150, StartSuspect(0)),
            ],
            200,
        );
        assert_eq!(m.mistake_durations_ms, vec![2_000.0]);
        assert!(m.mistake_recurrences_ms.is_empty());
    }

    #[test]
    fn summary_counts_match_full_metrics() {
        let events: &[(u64, RetainedKind)] = &[
            (10, StartSuspect(0)),
            (12, EndSuspect(0)),
            (50, StartSuspect(0)),
            (53, EndSuspect(0)),
            (100, Crash),
            (102, StartSuspect(0)),
            (130, Restore),
            (131, EndSuspect(0)),
            (200, Crash),
            (230, Restore),
        ];
        let mut full = QosAccumulator::full(1, 1);
        let mut sum = QosAccumulator::summary(1, 1);
        for &(s, kind) in events {
            let at = secs(s);
            match kind {
                RetainedKind::StartSuspect(c) => {
                    full.start_suspect(at, 0, c);
                    sum.start_suspect(at, 0, c);
                }
                RetainedKind::EndSuspect(c) => {
                    full.end_suspect(at, 0, c);
                    sum.end_suspect(at, 0, c);
                }
                RetainedKind::Crash => {
                    full.crash(at, 0);
                    sum.crash(at, 0);
                }
                RetainedKind::Restore => {
                    full.restore(at, 0);
                    sum.restore(at, 0);
                }
            }
        }
        let m = full.finish_full(secs(300)).remove(0);
        let s = sum.finish_summaries(secs(300)).remove(0);
        assert_eq!(s.crashes as usize, m.total_crashes);
        assert_eq!(s.undetected as usize, m.undetected_crashes);
        assert_eq!(s.detections as usize, m.detection_times_ms.len());
        assert_eq!(s.mistakes as usize, m.mistake_durations_ms.len());
        assert_eq!(s.recurrences as usize, m.mistake_recurrences_ms.len());
        let td_us: u64 = m
            .detection_times_ms
            .iter()
            .map(|ms| (ms * 1_000.0).round() as u64)
            .sum();
        assert_eq!(s.td_sum_us, td_us);
        let tm_us: u64 = m
            .mistake_durations_ms
            .iter()
            .map(|ms| (ms * 1_000.0).round() as u64)
            .sum();
        assert_eq!(s.tm_sum_us, tm_us);
        assert_eq!(s.mean_td_ms(), m.mean_td());
        assert_eq!(s.mean_tm_ms(), m.mean_tm());
        assert_eq!(s.mean_tmr_ms(), m.mean_tmr());
        assert_eq!(s.query_accuracy(), m.query_accuracy());
    }

    #[test]
    fn summary_accuracy_edge_rules_match_metrics() {
        let s = QosSummary::new();
        assert_eq!(s.query_accuracy(), Some(1.0));
        let mut one_mistake = QosSummary::new();
        one_mistake.record_tm(5_000_000);
        assert_eq!(one_mistake.query_accuracy(), None);
        assert_eq!(one_mistake.mean_td_ms(), None);
    }

    #[test]
    fn summary_merge_is_exact_and_commutative() {
        let mut a = QosSummary::new();
        a.record_td(1_500);
        a.record_tm(2_500);
        a.crashes = 2;
        let mut b = QosSummary::new();
        b.record_td(800);
        b.record_tmr(40_000_000);
        b.undetected = 1;
        b.crashes = 1;

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.crashes, 3);
        assert_eq!(ab.detections, 2);
        assert_eq!(ab.td_sum_us, 2_300);
        assert_eq!(ab.td_min_us, 800);
        assert_eq!(ab.td_max_us, 1_500);
        assert_eq!(ab.td_hist.total(), 2);
    }

    #[test]
    fn multi_source_pairs_are_independent() {
        let mut acc = QosAccumulator::full(3, 2);
        // Source 0 makes a mistake on combo 0; source 2 crashes and is
        // detected by combo 1; source 1 stays silent.
        acc.start_suspect(secs(10), 0, 0);
        acc.end_suspect(secs(12), 0, 0);
        acc.crash(secs(100), 2);
        acc.start_suspect(secs(102), 2, 1);
        acc.restore(secs(130), 2);
        acc.end_suspect(secs(131), 2, 1);
        let ms = acc.finish_full(secs(300));
        assert_eq!(ms[0].mistake_durations_ms, vec![2_000.0]);
        assert_eq!(ms[0].detection_times_ms.len(), 0);
        assert_eq!(ms[0].total_crashes, 1);
        assert_eq!(ms[0].undetected_crashes, 1);
        assert_eq!(ms[1].detection_times_ms, vec![2_000.0]);
        assert_eq!(ms[1].total_crashes, 1);
        assert_eq!(ms[1].undetected_crashes, 0);
        assert!(ms[1].mistake_durations_ms.is_empty());
    }

    #[test]
    fn retain_sink_replay_matches_streaming_grid() {
        let mut acc = QosAccumulator::full(2, 2);
        let mut retain = RetainSink::new();
        let feed: &[(u64, u32, RetainedKind)] = &[
            (10, 0, StartSuspect(0)),
            (12, 0, EndSuspect(0)),
            (40, 1, StartSuspect(1)),
            (45, 1, EndSuspect(1)),
            (100, 0, Crash),
            (103, 0, StartSuspect(0)),
            (103, 0, StartSuspect(1)),
            (130, 0, Restore),
            (131, 0, EndSuspect(0)),
            (131, 0, EndSuspect(1)),
        ];
        for &(s, src, kind) in feed {
            let at = secs(s);
            match kind {
                RetainedKind::StartSuspect(c) => {
                    acc.start_suspect(at, src, c);
                    retain.start_suspect(at, src, c);
                }
                RetainedKind::EndSuspect(c) => {
                    acc.end_suspect(at, src, c);
                    retain.end_suspect(at, src, c);
                }
                RetainedKind::Crash => {
                    acc.crash(at, src);
                    retain.crash(at, src);
                }
                RetainedKind::Restore => {
                    acc.restore(at, src);
                    retain.restore(at, src);
                }
            }
        }
        assert_eq!(retain.len(), feed.len());
        let got = acc.finish_full(secs(300));
        let want = retain.extract_grid(2, secs(300));
        assert_eq!(got, want);
    }

    #[test]
    fn accumulate_metrics_matches_per_detector_extraction() {
        let mut log = EventLog::new();
        let rec = |log: &mut EventLog, s: u64, k: EventKind| {
            log.record(secs(s), ProcessId(0), k);
        };
        rec(&mut log, 5, EventKind::StartSuspect { detector: 1 });
        rec(&mut log, 7, EventKind::EndSuspect { detector: 1 });
        rec(&mut log, 10, EventKind::Sent { seq: 1 });
        rec(&mut log, 40, EventKind::Crash);
        rec(&mut log, 42, EventKind::StartSuspect { detector: 0 });
        rec(&mut log, 43, EventKind::StartSuspect { detector: 1 });
        rec(&mut log, 60, EventKind::Restore);
        rec(&mut log, 61, EventKind::EndSuspect { detector: 0 });
        rec(&mut log, 62, EventKind::EndSuspect { detector: 1 });
        rec(&mut log, 90, EventKind::StartSuspect { detector: 2 });
        let end = secs(120);
        let got = accumulate_metrics(&log, 3, end);
        for d in 0..3 {
            assert_eq!(got[d], extract_metrics(&log, d as u32, end), "detector {d}");
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::metrics::extract_metrics;
    use proptest::prelude::*;

    /// Random but causally plausible single-source schedules, including
    /// same-instant pile-ups (gap 0), fed to both pipelines.
    fn schedule_strategy() -> impl Strategy<Value = Vec<(u64, u8, u32)>> {
        // (gap µs, action, combo): action 0/1 = start/end suspicion,
        // 2 = crash, 3 = restore. Gaps of zero exercise the instant buffer.
        proptest::collection::vec((0u64..2_000_000, 0u8..4, 0u32..3), 1..80)
    }

    proptest! {
        #[test]
        fn streaming_matches_retained_on_random_schedules(
            steps in schedule_strategy(),
        ) {
            let n_combos = 3;
            let mut log = EventLog::new();
            let mut acc = QosAccumulator::full(1, n_combos);
            let mut t = 0u64;
            let mut down = false;
            for (gap, action, combo) in steps {
                t += gap;
                let at = SimTime::from_micros(t);
                match action {
                    0 => {
                        log.record(at, ProcessId(0), EventKind::StartSuspect { detector: combo });
                        acc.start_suspect(at, 0, combo);
                    }
                    1 => {
                        log.record(at, ProcessId(0), EventKind::EndSuspect { detector: combo });
                        acc.end_suspect(at, 0, combo);
                    }
                    2 if !down => {
                        log.record(at, ProcessId(0), EventKind::Crash);
                        acc.crash(at, 0);
                        down = true;
                    }
                    3 if down => {
                        log.record(at, ProcessId(0), EventKind::Restore);
                        acc.restore(at, 0);
                        down = false;
                    }
                    _ => {}
                }
            }
            let end = SimTime::from_micros(t + 1_000_000);
            let got = acc.finish_full(end);
            for d in 0..n_combos {
                let want = extract_metrics(&log, d as u32, end);
                prop_assert_eq!(&got[d], &want, "detector {} diverged", d);
            }
        }

        #[test]
        fn metrics_merge_is_commutative_and_associative(
            xs in proptest::collection::vec(0u32..10_000_000u32, 0..8),
            ys in proptest::collection::vec(0u32..10_000_000u32, 0..8),
            zs in proptest::collection::vec(0u32..10_000_000u32, 0..8),
        ) {
            let mk = |v: &[u32]| QosMetrics {
                detection_times_ms: v.iter().map(|&u| u as f64 / 1_000.0).collect(),
                mistake_durations_ms: v.iter().rev().map(|&u| u as f64 / 500.0).collect(),
                mistake_recurrences_ms: v.iter().map(|&u| u as f64).collect(),
                undetected_crashes: v.len(),
                total_crashes: v.len() * 2,
            };
            // Samples live in vectors, so merge concatenates: order-
            // sensitive in layout but order-free as a multiset. Compare
            // by total order after sorting.
            let canon = |m: &QosMetrics| {
                let mut sorted = m.clone();
                sorted.detection_times_ms.sort_by(f64::total_cmp);
                sorted.mistake_durations_ms.sort_by(f64::total_cmp);
                sorted.mistake_recurrences_ms.sort_by(f64::total_cmp);
                sorted
            };
            let (a, b, c) = (mk(&xs), mk(&ys), mk(&zs));
            let mut ab = a.clone();
            ab.merge(&b);
            let mut ba = b.clone();
            ba.merge(&a);
            prop_assert_eq!(canon(&ab), canon(&ba));
            let mut ab_c = ab.clone();
            ab_c.merge(&c);
            let mut bc = b.clone();
            bc.merge(&c);
            let mut a_bc = a.clone();
            a_bc.merge(&bc);
            prop_assert_eq!(canon(&ab_c), canon(&a_bc));
        }

        #[test]
        fn summary_merge_is_exactly_commutative_and_associative(
            xs in proptest::collection::vec((0u32..20_000_000u32, 0u8..3), 0..12),
            ys in proptest::collection::vec((0u32..20_000_000u32, 0u8..3), 0..12),
            zs in proptest::collection::vec((0u32..20_000_000u32, 0u8..3), 0..12),
        ) {
            let mk = |v: &[(u32, u8)]| {
                let mut s = QosSummary::new();
                for &(us, kind) in v {
                    match kind {
                        0 => s.record_td(us as u64),
                        1 => s.record_tm(us as u64),
                        _ => s.record_tmr(us as u64),
                    }
                }
                s.crashes = v.len() as u64;
                s
            };
            let (a, b, c) = (mk(&xs), mk(&ys), mk(&zs));
            // Integer state: merge results are bit-identical, no
            // canonicalisation needed.
            let mut ab = a.clone();
            ab.merge(&b);
            let mut ba = b.clone();
            ba.merge(&a);
            prop_assert_eq!(&ab, &ba);
            let mut ab_c = ab.clone();
            ab_c.merge(&c);
            let mut bc = b.clone();
            bc.merge(&c);
            let mut a_bc = a.clone();
            a_bc.merge(&bc);
            prop_assert_eq!(&ab_c, &a_bc);
        }
    }
}
