//! Extraction of the QoS metrics from event streams.
//!
//! Mirrors the paper's `FD StatHandler`: it receives `Crash`, `Restore`,
//! `StartSuspect`, `EndSuspect` events for one detector and produces samples
//! of the base metrics:
//!
//! * **T_D**: for each crash at `c` (restored at `r`), the *permanent*
//!   suspicion is the suspicion episode still active at `r`; `T_D = max(0,
//!   start − c)`. A crash with no episode active at restore time is counted
//!   as undetected (it contributes no sample — completeness violation).
//! * **T_M**: duration of each *mistake*, i.e. a suspicion episode that began
//!   while the monitored process was up and is not the permanent detection of
//!   a crash.
//! * **T_MR**: spacing between the starts of two successive mistakes,
//!   counted only when no crash interval lies between them (the classical
//!   accuracy metrics are defined over failure-free stretches).
//!
//! Derived metrics: `T_D^U = max T_D` and `P_A = (T̄_MR − T̄_M)/T̄_MR`.

use fd_sim::SimTime;
use serde::{Deserialize, Serialize};

use crate::event::{Event, EventKind, EventLog};
use crate::summary::Summary;

/// One suspicion interval of a detector. `end == None` means the suspicion
/// was still in force when the run terminated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SuspicionEpisode {
    /// When the detector started suspecting.
    pub start: SimTime,
    /// When it stopped, if it did before the end of the run.
    pub end: Option<SimTime>,
}

impl SuspicionEpisode {
    /// `true` if the episode is in force at instant `t`. An open episode
    /// (no `end`) stays in force through the end of the run.
    fn active_at(&self, t: SimTime) -> bool {
        self.start <= t && self.end.is_none_or(|e| t < e)
    }
}

/// A crash interval `[crash, restore)`; `restore == None` if the run ended
/// while still down.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct CrashInterval {
    crash: SimTime,
    restore: Option<SimTime>,
}

/// The QoS metric samples extracted for one detector over one (or several,
/// after [`QosMetrics::merge`]) experiment runs. All samples in milliseconds.
///
/// ```
/// use fd_stat::QosMetrics;
/// let m = QosMetrics {
///     detection_times_ms: vec![800.0, 1_200.0],
///     mistake_durations_ms: vec![50.0],
///     mistake_recurrences_ms: vec![10_000.0],
///     undetected_crashes: 0,
///     total_crashes: 2,
/// };
/// assert_eq!(m.mean_td(), Some(1_000.0));
/// assert_eq!(m.td_upper(), Some(1_200.0));
/// assert_eq!(m.query_accuracy(), Some(0.995));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct QosMetrics {
    /// T_D samples: one per detected crash.
    pub detection_times_ms: Vec<f64>,
    /// T_M samples: one per completed mistake.
    pub mistake_durations_ms: Vec<f64>,
    /// T_MR samples: one per eligible pair of successive mistakes.
    pub mistake_recurrences_ms: Vec<f64>,
    /// Crashes with no suspicion in force at restore time.
    pub undetected_crashes: usize,
    /// Total crashes injected.
    pub total_crashes: usize,
}

impl QosMetrics {
    /// Mean detection time `T_D`, if any crash was detected.
    pub fn mean_td(&self) -> Option<f64> {
        mean(&self.detection_times_ms)
    }

    /// Maximum observed detection time `T_D^U`, if any crash was detected.
    pub fn td_upper(&self) -> Option<f64> {
        self.detection_times_ms
            .iter()
            .copied()
            .fold(None, |acc, x| Some(acc.map_or(x, |m: f64| m.max(x))))
    }

    /// Mean mistake duration `T_M`, if any mistake occurred.
    pub fn mean_tm(&self) -> Option<f64> {
        mean(&self.mistake_durations_ms)
    }

    /// Mean mistake recurrence time `T_MR`, if at least two mistakes occurred
    /// within an up period.
    pub fn mean_tmr(&self) -> Option<f64> {
        mean(&self.mistake_recurrences_ms)
    }

    /// Query accuracy probability `P_A = (T̄_MR − T̄_M)/T̄_MR`.
    ///
    /// A detector that made no mistakes has `P_A = 1`. Returns `None` when
    /// mistakes occurred but no recurrence sample exists (a single mistake in
    /// the whole run), since the ratio is then undefined.
    pub fn query_accuracy(&self) -> Option<f64> {
        if self.mistake_durations_ms.is_empty() {
            return Some(1.0);
        }
        let tm = self.mean_tm()?;
        let tmr = self.mean_tmr()?;
        Some(((tmr - tm) / tmr).clamp(0.0, 1.0))
    }

    /// Summary of the T_D samples.
    pub fn td_summary(&self) -> Option<Summary> {
        Summary::of(&self.detection_times_ms)
    }

    /// Summary of the T_M samples.
    pub fn tm_summary(&self) -> Option<Summary> {
        Summary::of(&self.mistake_durations_ms)
    }

    /// Summary of the T_MR samples.
    pub fn tmr_summary(&self) -> Option<Summary> {
        Summary::of(&self.mistake_recurrences_ms)
    }

    /// Folds another run's samples into this one (the paper aggregates 13
    /// independent runs per configuration).
    pub fn merge(&mut self, other: &QosMetrics) {
        self.detection_times_ms
            .extend_from_slice(&other.detection_times_ms);
        self.mistake_durations_ms
            .extend_from_slice(&other.mistake_durations_ms);
        self.mistake_recurrences_ms
            .extend_from_slice(&other.mistake_recurrences_ms);
        self.undetected_crashes += other.undetected_crashes;
        self.total_crashes += other.total_crashes;
    }
}

fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        None
    } else {
        Some(xs.iter().sum::<f64>() / xs.len() as f64)
    }
}

/// Human-readable roll-up of one detector's QoS over an experiment, used by
/// the figure-regeneration binaries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QosReport {
    /// Detector label, e.g. `"ARIMA(2,1,1)+SM_CI(1.0)"`.
    pub detector: String,
    /// Mean detection time in ms (Figure 4), if measurable.
    pub td_ms: Option<f64>,
    /// Max detection time in ms (Figure 5), if measurable.
    pub td_upper_ms: Option<f64>,
    /// Mean mistake duration in ms (Figure 6), if measurable.
    pub tm_ms: Option<f64>,
    /// Mean mistake recurrence in ms (Figure 7), if measurable.
    pub tmr_ms: Option<f64>,
    /// Query accuracy probability (Figure 8), if measurable.
    pub pa: Option<f64>,
    /// Detected / total crashes.
    pub detected_crashes: usize,
    /// Total crashes injected.
    pub total_crashes: usize,
    /// Number of mistakes observed.
    pub mistakes: usize,
}

impl QosReport {
    /// Builds a report from extracted metrics.
    pub fn from_metrics(detector: impl Into<String>, m: &QosMetrics) -> Self {
        QosReport {
            detector: detector.into(),
            td_ms: m.mean_td(),
            td_upper_ms: m.td_upper(),
            tm_ms: m.mean_tm(),
            tmr_ms: m.mean_tmr(),
            pa: m.query_accuracy(),
            detected_crashes: m.total_crashes - m.undetected_crashes,
            total_crashes: m.total_crashes,
            mistakes: m.mistake_durations_ms.len(),
        }
    }
}

/// Streaming accumulator turning one detector's events into [`QosMetrics`].
///
/// Feed it every event of the run (it filters by detector id) and call
/// [`FdStatHandler::finish`] with the run-end time.
///
/// ```
/// use fd_sim::SimTime;
/// use fd_stat::{Event, EventKind, FdStatHandler, ProcessId};
///
/// let mut h = FdStatHandler::new(0);
/// let p = ProcessId(0);
/// let ev = |s, k| Event::new(SimTime::from_secs(s), p, k);
/// h.on_event(&ev(10, EventKind::Crash));
/// h.on_event(&ev(11, EventKind::StartSuspect { detector: 0 }));
/// h.on_event(&ev(40, EventKind::Restore));
/// h.on_event(&ev(41, EventKind::EndSuspect { detector: 0 }));
/// let m = h.finish(SimTime::from_secs(100));
/// assert_eq!(m.detection_times_ms, vec![1_000.0]);
/// ```
#[derive(Debug, Clone)]
pub struct FdStatHandler {
    detector: u32,
    episodes: Vec<SuspicionEpisode>,
    open_episode: Option<SimTime>,
    crashes: Vec<CrashInterval>,
    down: bool,
}

impl FdStatHandler {
    /// Creates a handler for the detector with the given id.
    pub fn new(detector: u32) -> Self {
        Self {
            detector,
            episodes: Vec::new(),
            open_episode: None,
            crashes: Vec::new(),
            down: false,
        }
    }

    /// The detector id this handler is following.
    pub fn detector(&self) -> u32 {
        self.detector
    }

    /// Consumes one event (events for other detectors are ignored).
    pub fn on_event(&mut self, event: &Event) {
        match event.kind {
            EventKind::StartSuspect { detector }
                if detector == self.detector
                // Duplicate starts are idempotent: keep the earliest.
                && self.open_episode.is_none() =>
            {
                self.open_episode = Some(event.at);
            }
            EventKind::EndSuspect { detector } if detector == self.detector => {
                if let Some(start) = self.open_episode.take() {
                    self.episodes.push(SuspicionEpisode {
                        start,
                        end: Some(event.at),
                    });
                }
            }
            EventKind::Crash if !self.down => {
                self.down = true;
                self.crashes.push(CrashInterval {
                    crash: event.at,
                    restore: None,
                });
            }
            EventKind::Restore if self.down => {
                self.down = false;
                if let Some(last) = self.crashes.last_mut() {
                    last.restore = Some(event.at);
                }
            }
            _ => {}
        }
    }

    /// Closes the run at `run_end` and computes the metric samples.
    pub fn finish(mut self, run_end: SimTime) -> QosMetrics {
        if let Some(start) = self.open_episode.take() {
            self.episodes.push(SuspicionEpisode { start, end: None });
        }
        compute_metrics(&self.crashes, &self.episodes, run_end)
    }
}

/// Extracts one detector's metrics from a complete [`EventLog`].
pub fn extract_metrics(log: &EventLog, detector: u32, run_end: SimTime) -> QosMetrics {
    let mut handler = FdStatHandler::new(detector);
    for e in log {
        handler.on_event(e);
    }
    handler.finish(run_end)
}

fn compute_metrics(
    crashes: &[CrashInterval],
    episodes: &[SuspicionEpisode],
    run_end: SimTime,
) -> QosMetrics {
    let mut metrics = QosMetrics {
        total_crashes: crashes.len(),
        ..QosMetrics::default()
    };

    // --- Detection times: the episode active at restore time is the
    // permanent suspicion for that crash.
    let mut detection_episode_idx = Vec::new();
    for ci in crashes {
        let restore = ci.restore.unwrap_or(run_end);
        let found = episodes
            .iter()
            .enumerate()
            .find(|(_, ep)| ep.active_at(restore));
        match found {
            Some((idx, ep)) => {
                detection_episode_idx.push(idx);
                let td = ep
                    .start
                    .checked_duration_since(ci.crash)
                    .map_or(0.0, |d| d.as_millis_f64());
                metrics.detection_times_ms.push(td);
            }
            None => metrics.undetected_crashes += 1,
        }
    }

    // --- Mistakes: episodes that start while the process is up and are not
    // the permanent detection of any crash. Episodes that *start* during a
    // crash interval are correct suspicions, not mistakes.
    let started_while_down = |t: SimTime| {
        crashes
            .iter()
            .any(|ci| t >= ci.crash && t < ci.restore.unwrap_or(run_end))
    };
    let mut mistake_starts = Vec::new();
    for (idx, ep) in episodes.iter().enumerate() {
        if detection_episode_idx.contains(&idx) || started_while_down(ep.start) {
            continue;
        }
        // An open mistake at run end is truncated: no duration sample.
        if let Some(end) = ep.end {
            metrics
                .mistake_durations_ms
                .push(end.duration_since(ep.start).as_millis_f64());
        }
        mistake_starts.push(ep.start);
    }

    // --- Recurrences: successive mistake starts with no crash in between.
    for pair in mistake_starts.windows(2) {
        let (a, b) = (pair[0], pair[1]);
        let crash_between = crashes.iter().any(|ci| ci.crash >= a && ci.crash < b);
        if !crash_between {
            metrics
                .mistake_recurrences_ms
                .push(b.duration_since(a).as_millis_f64());
        }
    }

    metrics
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::ProcessId;

    fn secs(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn ev(s: u64, kind: EventKind) -> Event {
        Event::new(secs(s), ProcessId(0), kind)
    }

    fn run(events: &[Event], end: u64) -> QosMetrics {
        let mut h = FdStatHandler::new(0);
        for e in events {
            h.on_event(e);
        }
        h.finish(secs(end))
    }

    #[test]
    fn simple_detection() {
        let m = run(
            &[
                ev(100, EventKind::Crash),
                ev(102, EventKind::StartSuspect { detector: 0 }),
                ev(130, EventKind::Restore),
                ev(131, EventKind::EndSuspect { detector: 0 }),
            ],
            300,
        );
        assert_eq!(m.detection_times_ms, vec![2_000.0]);
        assert_eq!(m.total_crashes, 1);
        assert_eq!(m.undetected_crashes, 0);
        assert!(m.mistake_durations_ms.is_empty());
        assert_eq!(m.query_accuracy(), Some(1.0));
    }

    #[test]
    fn mistakes_and_recurrence() {
        let m = run(
            &[
                ev(10, EventKind::StartSuspect { detector: 0 }),
                ev(12, EventKind::EndSuspect { detector: 0 }),
                ev(50, EventKind::StartSuspect { detector: 0 }),
                ev(53, EventKind::EndSuspect { detector: 0 }),
            ],
            100,
        );
        assert_eq!(m.mistake_durations_ms, vec![2_000.0, 3_000.0]);
        assert_eq!(m.mistake_recurrences_ms, vec![40_000.0]);
        assert_eq!(m.mean_tm(), Some(2_500.0));
        assert_eq!(m.mean_tmr(), Some(40_000.0));
        let pa = m.query_accuracy().unwrap();
        assert!((pa - (40_000.0 - 2_500.0) / 40_000.0).abs() < 1e-12);
    }

    #[test]
    fn undetected_crash_is_counted() {
        let m = run(
            &[ev(100, EventKind::Crash), ev(130, EventKind::Restore)],
            300,
        );
        assert_eq!(m.undetected_crashes, 1);
        assert_eq!(m.total_crashes, 1);
        assert!(m.detection_times_ms.is_empty());
        assert_eq!(m.mean_td(), None);
    }

    #[test]
    fn suspicion_already_active_at_crash_gives_zero_td() {
        // A false positive in progress when the crash hits, persisting
        // through restore: detection time is clamped to 0.
        let m = run(
            &[
                ev(90, EventKind::StartSuspect { detector: 0 }),
                ev(100, EventKind::Crash),
                ev(130, EventKind::Restore),
                ev(131, EventKind::EndSuspect { detector: 0 }),
            ],
            300,
        );
        assert_eq!(m.detection_times_ms, vec![0.0]);
        // The episode is the detection, so it is not also a mistake.
        assert!(m.mistake_durations_ms.is_empty());
    }

    #[test]
    fn in_flight_heartbeat_interrupts_then_permanent_detection() {
        // Crash at 100; a heartbeat already in flight ends the first
        // suspicion; the second one is the permanent detection.
        let m = run(
            &[
                ev(100, EventKind::Crash),
                ev(101, EventKind::StartSuspect { detector: 0 }),
                ev(102, EventKind::EndSuspect { detector: 0 }), // in-flight hb
                ev(104, EventKind::StartSuspect { detector: 0 }),
                ev(130, EventKind::Restore),
                ev(131, EventKind::EndSuspect { detector: 0 }),
            ],
            300,
        );
        assert_eq!(m.detection_times_ms, vec![4_000.0]);
        // The short in-crash episode is a correct suspicion, not a mistake.
        assert!(m.mistake_durations_ms.is_empty());
    }

    #[test]
    fn recurrence_pairs_spanning_a_crash_are_skipped() {
        let m = run(
            &[
                ev(10, EventKind::StartSuspect { detector: 0 }),
                ev(11, EventKind::EndSuspect { detector: 0 }),
                ev(50, EventKind::Crash),
                ev(51, EventKind::StartSuspect { detector: 0 }),
                ev(80, EventKind::Restore),
                ev(81, EventKind::EndSuspect { detector: 0 }),
                ev(120, EventKind::StartSuspect { detector: 0 }),
                ev(121, EventKind::EndSuspect { detector: 0 }),
            ],
            300,
        );
        assert_eq!(m.mistake_durations_ms.len(), 2);
        assert!(m.mistake_recurrences_ms.is_empty());
    }

    #[test]
    fn open_episode_at_run_end_detects_unrestored_crash() {
        let m = run(
            &[
                ev(100, EventKind::Crash),
                ev(103, EventKind::StartSuspect { detector: 0 }),
            ],
            200,
        );
        assert_eq!(m.detection_times_ms, vec![3_000.0]);
        assert_eq!(m.undetected_crashes, 0);
    }

    #[test]
    fn open_mistake_at_run_end_is_truncated() {
        let m = run(&[ev(150, EventKind::StartSuspect { detector: 0 })], 200);
        assert!(m.mistake_durations_ms.is_empty());
        assert!(m.detection_times_ms.is_empty());
    }

    #[test]
    fn other_detectors_events_are_ignored() {
        let m = run(
            &[
                ev(10, EventKind::StartSuspect { detector: 7 }),
                ev(11, EventKind::EndSuspect { detector: 7 }),
            ],
            100,
        );
        assert!(m.mistake_durations_ms.is_empty());
        assert_eq!(m.query_accuracy(), Some(1.0));
    }

    #[test]
    fn multiple_crashes_multiple_detections() {
        let m = run(
            &[
                ev(100, EventKind::Crash),
                ev(101, EventKind::StartSuspect { detector: 0 }),
                ev(130, EventKind::Restore),
                ev(131, EventKind::EndSuspect { detector: 0 }),
                ev(400, EventKind::Crash),
                ev(403, EventKind::StartSuspect { detector: 0 }),
                ev(430, EventKind::Restore),
                ev(431, EventKind::EndSuspect { detector: 0 }),
            ],
            600,
        );
        assert_eq!(m.detection_times_ms, vec![1_000.0, 3_000.0]);
        assert_eq!(m.td_upper(), Some(3_000.0));
        assert_eq!(m.mean_td(), Some(2_000.0));
    }

    #[test]
    fn merge_concatenates_samples() {
        let mut a = run(
            &[
                ev(10, EventKind::StartSuspect { detector: 0 }),
                ev(12, EventKind::EndSuspect { detector: 0 }),
            ],
            100,
        );
        let b = run(
            &[
                ev(100, EventKind::Crash),
                ev(101, EventKind::StartSuspect { detector: 0 }),
                ev(130, EventKind::Restore),
                ev(131, EventKind::EndSuspect { detector: 0 }),
            ],
            300,
        );
        a.merge(&b);
        assert_eq!(a.detection_times_ms.len(), 1);
        assert_eq!(a.mistake_durations_ms.len(), 1);
        assert_eq!(a.total_crashes, 1);
    }

    #[test]
    fn extract_from_event_log() {
        let mut log = EventLog::new();
        log.record(
            secs(5),
            ProcessId(0),
            EventKind::StartSuspect { detector: 2 },
        );
        log.record(secs(6), ProcessId(0), EventKind::EndSuspect { detector: 2 });
        let m = extract_metrics(&log, 2, secs(100));
        assert_eq!(m.mistake_durations_ms, vec![1_000.0]);
    }

    #[test]
    fn report_fields_line_up() {
        let m = run(
            &[
                ev(10, EventKind::StartSuspect { detector: 0 }),
                ev(11, EventKind::EndSuspect { detector: 0 }),
                ev(100, EventKind::Crash),
                ev(102, EventKind::StartSuspect { detector: 0 }),
                ev(130, EventKind::Restore),
                ev(131, EventKind::EndSuspect { detector: 0 }),
            ],
            300,
        );
        let r = QosReport::from_metrics("LAST+SM_JAC(1)", &m);
        assert_eq!(r.detector, "LAST+SM_JAC(1)");
        assert_eq!(r.td_ms, Some(2_000.0));
        assert_eq!(r.detected_crashes, 1);
        assert_eq!(r.total_crashes, 1);
        assert_eq!(r.mistakes, 1);
        assert_eq!(r.tm_ms, Some(1_000.0));
        assert_eq!(r.tmr_ms, None); // single mistake, no recurrence sample
        assert_eq!(r.pa, None);
    }

    #[test]
    fn duplicate_start_suspect_is_idempotent() {
        let m = run(
            &[
                ev(10, EventKind::StartSuspect { detector: 0 }),
                ev(12, EventKind::StartSuspect { detector: 0 }),
                ev(15, EventKind::EndSuspect { detector: 0 }),
            ],
            100,
        );
        assert_eq!(m.mistake_durations_ms, vec![5_000.0]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::event::ProcessId;
    use proptest::prelude::*;

    // Generates a random but well-formed alternating event schedule and
    // checks the structural invariants of the extracted metrics.
    proptest! {
        #[test]
        fn metric_invariants(
            gaps in proptest::collection::vec(1u64..50, 1..60),
            crash_every in 5usize..15,
        ) {
            let mut t = 0u64;
            let mut events = Vec::new();
            let mut suspecting = false;
            let mut down = false;
            for (i, g) in gaps.iter().enumerate() {
                t += g;
                let at = SimTime::from_secs(t);
                if i % crash_every == crash_every - 1 && !down {
                    events.push(Event::new(at, ProcessId(0), EventKind::Crash));
                    down = true;
                } else if down {
                    events.push(Event::new(at, ProcessId(0), EventKind::Restore));
                    down = false;
                } else if suspecting {
                    events.push(Event::new(at, ProcessId(0), EventKind::EndSuspect { detector: 0 }));
                    suspecting = false;
                } else {
                    events.push(Event::new(at, ProcessId(0), EventKind::StartSuspect { detector: 0 }));
                    suspecting = true;
                }
            }
            let run_end = SimTime::from_secs(t + 100);
            let mut h = FdStatHandler::new(0);
            for e in &events {
                h.on_event(e);
            }
            let m = h.finish(run_end);

            for &td in &m.detection_times_ms {
                prop_assert!(td >= 0.0);
            }
            for &tm in &m.mistake_durations_ms {
                prop_assert!(tm > 0.0);
            }
            for &tmr in &m.mistake_recurrences_ms {
                prop_assert!(tmr > 0.0);
            }
            prop_assert!(m.undetected_crashes <= m.total_crashes);
            prop_assert_eq!(
                m.detection_times_ms.len() + m.undetected_crashes,
                m.total_crashes
            );
            // At most one recurrence per pair of consecutive mistakes.
            prop_assert!(
                m.mistake_recurrences_ms.len()
                    < m.mistake_durations_ms.len().max(1) + 1
            );
            if let Some(pa) = m.query_accuracy() {
                prop_assert!((0.0..=1.0).contains(&pa));
            }
            if let (Some(mean), Some(upper)) = (m.mean_td(), m.td_upper()) {
                prop_assert!(mean <= upper + 1e-9);
            }
        }
    }
}
