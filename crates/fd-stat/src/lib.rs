//! NekoStat analog: event collection and QoS metric extraction.
//!
//! The DSN'05 experiments instrument the distributed execution with typed
//! events (`Sent`, `Received`, `StartSuspect`, `EndSuspect`, `Crash`,
//! `Restore`) and derive from them the three base QoS metrics of
//! Chen–Toueg–Aguilera:
//!
//! * **T_D** — detection time: crash → start of *permanent* suspicion;
//! * **T_M** — mistake duration: erroneous suspicion → its correction;
//! * **T_MR** — mistake recurrence time: between two successive mistakes;
//!
//! plus the derived **T_D^U** (maximum observed detection time) and
//! **P_A = (T_MR − T_M)/T_MR** (query accuracy probability).
//!
//! This crate provides the event vocabulary ([`event`]), descriptive
//! statistics ([`summary`]), and the extraction of QoS metrics from event
//! streams ([`metrics`]) — the role NekoStat's `StatHandler` classes play in
//! the paper's architecture.

pub mod event;
pub mod metrics;
pub mod sink;
pub mod summary;

pub use event::{Event, EventKind, EventLog, ProcessId};
pub use metrics::{extract_metrics, FdStatHandler, QosMetrics, QosReport, SuspicionEpisode};
pub use sink::{
    accumulate_metrics, AccumulateSink, EventSink, QosAccumulator, QosSummary, RetainSink,
    RetainedEvent, RetainedKind,
};
pub use summary::{
    autocorrelation, mean_squared_error, ConfidenceInterval, Histogram, LogHistogram, RunningStats,
    Summary,
};
