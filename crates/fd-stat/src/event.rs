//! The distributed-event vocabulary of the experiments.
//!
//! These are exactly the events the paper's `FD StatHandler` receives:
//! `Sent(m_i)`, `Received(m_i)`, `StartSuspect`, `EndSuspect`, `Crash` — plus
//! `Restore`, which SimCrash implicitly produces when the monitored process
//! comes back after `TTR`.

use std::fmt;

use fd_sim::SimTime;
use serde::{Deserialize, Serialize};

/// Identifies one process of the distributed system (e.g. Monitor = 0,
/// Monitored = 1).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ProcessId(pub u16);

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// What happened. `detector` fields identify which of the multiplexed failure
/// detectors produced the suspicion event (the paper runs 30 side by side).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventKind {
    /// Heartbeat `m_seq` handed to the network by the monitored process.
    Sent { seq: u64 },
    /// Heartbeat `m_seq` delivered to the monitor.
    Received { seq: u64 },
    /// Detector `detector` began suspecting the monitored process.
    StartSuspect { detector: u32 },
    /// Detector `detector` stopped suspecting (a fresh heartbeat arrived).
    EndSuspect { detector: u32 },
    /// SimCrash crashed the monitored process.
    Crash,
    /// SimCrash restored the monitored process after `TTR`.
    Restore,
    /// A user-defined application event (NekoStat's "quantities of interest
    /// specified by the user"): `code` identifies the quantity, `value`
    /// carries its sample. Used e.g. by the consensus study to record
    /// decisions and round numbers.
    App {
        /// Application-defined quantity code.
        code: u32,
        /// Application-defined sample value.
        value: u64,
    },
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EventKind::Sent { seq } => write!(f, "Sent(m{seq})"),
            EventKind::Received { seq } => write!(f, "Received(m{seq})"),
            EventKind::StartSuspect { detector } => write!(f, "StartSuspect[{detector}]"),
            EventKind::EndSuspect { detector } => write!(f, "EndSuspect[{detector}]"),
            EventKind::Crash => write!(f, "Crash"),
            EventKind::Restore => write!(f, "Restore"),
            EventKind::App { code, value } => write!(f, "App[{code}]({value})"),
        }
    }
}

/// A timestamped event observed on some process.
///
/// Timestamps refer to the synchronized global clock — the paper enforces
/// this with NTP on both hosts; the simulation engine provides it natively.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Event {
    /// Global time at which the event occurred.
    pub at: SimTime,
    /// Process on which the event was observed.
    pub process: ProcessId,
    /// What happened.
    pub kind: EventKind,
}

impl Event {
    /// Convenience constructor.
    pub fn new(at: SimTime, process: ProcessId, kind: EventKind) -> Self {
        Self { at, process, kind }
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} @ {} on {}", self.kind, self.at, self.process)
    }
}

/// An append-only, time-ordered log of events.
///
/// Events must be appended in non-decreasing time order (the simulation engine
/// guarantees this; the real engine timestamps on arrival).
///
/// ```
/// use fd_sim::SimTime;
/// use fd_stat::{EventKind, EventLog, ProcessId};
///
/// let mut log = EventLog::new();
/// log.record(SimTime::from_secs(1), ProcessId(1), EventKind::Sent { seq: 0 });
/// log.record(SimTime::from_secs(2), ProcessId(0), EventKind::Received { seq: 0 });
/// assert_eq!(log.len(), 2);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct EventLog {
    events: Vec<Event>,
}

impl EventLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty log with room for `capacity` events, so engines
    /// that know their workload (e.g. heartbeats × cycles) record without
    /// reallocating through the run.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            events: Vec::with_capacity(capacity),
        }
    }

    /// Appends an event.
    ///
    /// # Panics
    ///
    /// Panics if `at` precedes the last recorded event (out-of-order append).
    pub fn record(&mut self, at: SimTime, process: ProcessId, kind: EventKind) {
        if let Some(last) = self.events.last() {
            assert!(
                at >= last.at,
                "out-of-order event: {at} after {} already recorded",
                last.at
            );
        }
        self.events.push(Event::new(at, process, kind));
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// All events, in time order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Iterates over events in time order.
    pub fn iter(&self) -> std::slice::Iter<'_, Event> {
        self.events.iter()
    }

    /// The events produced by a specific detector (its suspicion edges).
    pub fn detector_events(&self, detector: u32) -> impl Iterator<Item = &Event> {
        self.events.iter().filter(move |e| {
            matches!(
                e.kind,
                EventKind::StartSuspect { detector: d } | EventKind::EndSuspect { detector: d }
                if d == detector
            )
        })
    }

    /// The crash/restore events (the ground truth for T_D extraction).
    pub fn crash_events(&self) -> impl Iterator<Item = &Event> {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Crash | EventKind::Restore))
    }
}

impl EventLog {
    /// Writes the log as CSV (`time_us,process,kind,arg`), the NekoStat-style
    /// artefact an experiment campaign archives for offline analysis.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating or writing the file.
    pub fn save_csv(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        use std::io::Write as _;
        let mut out = std::io::BufWriter::new(std::fs::File::create(path)?);
        writeln!(out, "time_us,process,kind,arg")?;
        for e in &self.events {
            // Static labels — no per-row String allocation; the app code
            // is streamed straight into the writer.
            let (kind, arg): (&str, u64) = match e.kind {
                EventKind::Sent { seq } => ("sent", seq),
                EventKind::Received { seq } => ("received", seq),
                EventKind::StartSuspect { detector } => ("start_suspect", u64::from(detector)),
                EventKind::EndSuspect { detector } => ("end_suspect", u64::from(detector)),
                EventKind::Crash => ("crash", 0),
                EventKind::Restore => ("restore", 0),
                EventKind::App { code, value } => {
                    writeln!(
                        out,
                        "{},{},app{code},{value}",
                        e.at.as_micros(),
                        e.process.0
                    )?;
                    continue;
                }
            };
            writeln!(out, "{},{},{kind},{arg}", e.at.as_micros(), e.process.0)?;
        }
        out.flush()
    }

    /// Reads a log previously written by [`EventLog::save_csv`].
    ///
    /// # Errors
    ///
    /// Returns an I/O error for unreadable files, or `InvalidData` for rows
    /// that do not parse.
    pub fn load_csv(path: impl AsRef<std::path::Path>) -> std::io::Result<EventLog> {
        let content = std::fs::read_to_string(path)?;
        let bad = |line: usize, what: &str| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("bad event row {line}: {what}"),
            )
        };
        let mut log = EventLog::new();
        for (lineno, line) in content.lines().enumerate() {
            if lineno == 0 && line.starts_with("time_us") {
                continue;
            }
            if line.trim().is_empty() {
                continue;
            }
            let mut parts = line.split(',');
            let at = parts
                .next()
                .and_then(|v| v.trim().parse::<u64>().ok())
                .ok_or_else(|| bad(lineno, "time"))?;
            let process = parts
                .next()
                .and_then(|v| v.trim().parse::<u16>().ok())
                .ok_or_else(|| bad(lineno, "process"))?;
            let kind = parts.next().ok_or_else(|| bad(lineno, "kind"))?.trim();
            let arg = parts
                .next()
                .and_then(|v| v.trim().parse::<u64>().ok())
                .ok_or_else(|| bad(lineno, "arg"))?;
            let kind = match kind {
                "sent" => EventKind::Sent { seq: arg },
                "received" => EventKind::Received { seq: arg },
                "start_suspect" => EventKind::StartSuspect {
                    detector: arg as u32,
                },
                "end_suspect" => EventKind::EndSuspect {
                    detector: arg as u32,
                },
                "crash" => EventKind::Crash,
                "restore" => EventKind::Restore,
                other => match other
                    .strip_prefix("app")
                    .and_then(|c| c.parse::<u32>().ok())
                {
                    Some(code) => EventKind::App { code, value: arg },
                    None => return Err(bad(lineno, other)),
                },
            };
            log.record(SimTime::from_micros(at), ProcessId(process), kind);
        }
        Ok(log)
    }
}

impl<'a> IntoIterator for &'a EventLog {
    type Item = &'a Event;
    type IntoIter = std::slice::Iter<'a, Event>;
    fn into_iter(self) -> Self::IntoIter {
        self.events.iter()
    }
}

impl FromIterator<Event> for EventLog {
    /// Builds a log from events that are already in time order.
    ///
    /// # Panics
    ///
    /// Panics if the events are not sorted by time.
    fn from_iter<I: IntoIterator<Item = Event>>(iter: I) -> Self {
        let mut log = EventLog::new();
        for e in iter {
            log.record(e.at, e.process, e.kind);
        }
        log
    }
}

impl Extend<Event> for EventLog {
    fn extend<I: IntoIterator<Item = Event>>(&mut self, iter: I) {
        for e in iter {
            self.record(e.at, e.process, e.kind);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn records_in_order() {
        let mut log = EventLog::new();
        log.record(t(1), ProcessId(0), EventKind::Crash);
        log.record(t(1), ProcessId(0), EventKind::Restore); // equal time is fine
        log.record(t(2), ProcessId(1), EventKind::Sent { seq: 7 });
        assert_eq!(log.len(), 3);
        assert_eq!(log.events()[2].kind, EventKind::Sent { seq: 7 });
    }

    #[test]
    #[should_panic(expected = "out-of-order")]
    fn rejects_out_of_order() {
        let mut log = EventLog::new();
        log.record(t(5), ProcessId(0), EventKind::Crash);
        log.record(t(4), ProcessId(0), EventKind::Restore);
    }

    #[test]
    fn detector_filter_selects_only_that_detector() {
        let mut log = EventLog::new();
        log.record(t(1), ProcessId(0), EventKind::StartSuspect { detector: 3 });
        log.record(t(2), ProcessId(0), EventKind::StartSuspect { detector: 4 });
        log.record(t(3), ProcessId(0), EventKind::EndSuspect { detector: 3 });
        let seen: Vec<_> = log.detector_events(3).map(|e| e.kind).collect();
        assert_eq!(
            seen,
            vec![
                EventKind::StartSuspect { detector: 3 },
                EventKind::EndSuspect { detector: 3 }
            ]
        );
    }

    #[test]
    fn crash_filter_selects_crash_and_restore() {
        let mut log = EventLog::new();
        log.record(t(1), ProcessId(1), EventKind::Sent { seq: 0 });
        log.record(t(2), ProcessId(1), EventKind::Crash);
        log.record(t(3), ProcessId(1), EventKind::Restore);
        assert_eq!(log.crash_events().count(), 2);
    }

    #[test]
    fn from_iterator_and_extend() {
        let base = vec![
            Event::new(t(1), ProcessId(0), EventKind::Crash),
            Event::new(t(2), ProcessId(0), EventKind::Restore),
        ];
        let mut log: EventLog = base.into_iter().collect();
        log.extend([Event::new(t(3), ProcessId(0), EventKind::Crash)]);
        assert_eq!(log.len(), 3);
    }

    #[test]
    fn csv_round_trip_covers_every_kind() {
        let mut log = EventLog::new();
        log.record(t(1), ProcessId(1), EventKind::Sent { seq: 3 });
        log.record(t(2), ProcessId(0), EventKind::Received { seq: 3 });
        log.record(t(3), ProcessId(0), EventKind::StartSuspect { detector: 7 });
        log.record(t(4), ProcessId(0), EventKind::EndSuspect { detector: 7 });
        log.record(t(5), ProcessId(1), EventKind::Crash);
        log.record(t(6), ProcessId(1), EventKind::Restore);
        let path = std::env::temp_dir().join("fdqos_eventlog_roundtrip.csv");
        log.save_csv(&path).unwrap();
        let loaded = EventLog::load_csv(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(log.events(), loaded.events());
    }

    #[test]
    fn csv_load_rejects_garbage() {
        let path = std::env::temp_dir().join("fdqos_eventlog_garbage.csv");
        std::fs::write(&path, "time_us,process,kind,arg\n1,0,frobnicate,0\n").unwrap();
        let err = EventLog::load_csv(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn display_formats() {
        let e = Event::new(t(1), ProcessId(2), EventKind::StartSuspect { detector: 9 });
        assert_eq!(e.to_string(), "StartSuspect[9] @ 1.000000s on p2");
        assert_eq!(EventKind::Sent { seq: 3 }.to_string(), "Sent(m3)");
    }
}
