//! Descriptive statistics used by the experiment reports.

use serde::{Deserialize, Serialize};

/// Streaming mean/variance via Welford's algorithm, plus min/max.
///
/// This is the accumulator behind `SM_CI`'s running estimates and behind the
/// experiment summaries; it is numerically stable for long runs.
///
/// ```
/// use fd_stat::RunningStats;
/// let mut s = RunningStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(x);
/// }
/// assert_eq!(s.mean(), 5.0);
/// assert!((s.population_variance() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds an observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// The sample mean (0 if no observations).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Sample variance with Bessel's correction (0 for n < 2).
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Population variance (0 for n == 0).
    pub fn population_variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Sample standard deviation.
    pub fn sample_std(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Sum of squared deviations from the mean, `Σ (x_i − x̄)²`.
    ///
    /// `SM_CI` uses this directly in its denominator.
    pub fn sum_sq_dev(&self) -> f64 {
        self.m2
    }

    /// Smallest observation (`+∞` if empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`−∞` if empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// The raw accumulator state `(n, mean, m2, min, max)`.
    ///
    /// Together with [`RunningStats::from_raw_parts`] this supports
    /// bit-exact checkpoint/restore of a live accumulator: a restored
    /// accumulator continues the observation stream exactly as the
    /// original would have.
    pub fn raw_parts(&self) -> (u64, f64, f64, f64, f64) {
        (self.n, self.mean, self.m2, self.min, self.max)
    }

    /// Rebuilds an accumulator from state captured by
    /// [`RunningStats::raw_parts`].
    pub fn from_raw_parts(n: u64, mean: f64, m2: f64, min: f64, max: f64) -> Self {
        Self {
            n,
            mean,
            m2,
            min,
            max,
        }
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl FromIterator<f64> for RunningStats {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = RunningStats::new();
        for x in iter {
            s.push(x);
        }
        s
    }
}

impl Extend<f64> for RunningStats {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

/// A two-sided confidence interval for a mean.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConfidenceInterval {
    /// Point estimate (the sample mean).
    pub mean: f64,
    /// Half-width of the interval.
    pub half_width: f64,
    /// The confidence level used, e.g. 0.95.
    pub level: f64,
}

impl ConfidenceInterval {
    /// Lower bound of the interval.
    pub fn lo(&self) -> f64 {
        self.mean - self.half_width
    }

    /// Upper bound of the interval.
    pub fn hi(&self) -> f64 {
        self.mean + self.half_width
    }

    /// `true` if `x` lies inside the interval.
    pub fn contains(&self, x: f64) -> bool {
        x >= self.lo() && x <= self.hi()
    }
}

/// Full descriptive summary of a batch of observations.
///
/// This is what each figure row of the reproduction reports: the paper plots
/// per-detector means of `T_D`, `T_M`, `T_MR` over the 13 runs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Median (50th percentile).
    pub median: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
}

impl Summary {
    /// Summarises a batch of observations.
    ///
    /// Returns `None` for an empty batch — an experiment with no samples has
    /// no summary, and callers must decide what that means for the metric.
    pub fn of(values: &[f64]) -> Option<Summary> {
        if values.is_empty() {
            return None;
        }
        let mut sorted: Vec<f64> = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in summary input"));
        let stats: RunningStats = values.iter().copied().collect();
        Some(Summary {
            n: values.len(),
            mean: stats.mean(),
            std: stats.sample_std(),
            min: sorted[0],
            max: *sorted.last().expect("non-empty"),
            median: percentile_of_sorted(&sorted, 50.0),
            p95: percentile_of_sorted(&sorted, 95.0),
            p99: percentile_of_sorted(&sorted, 99.0),
        })
    }

    /// An arbitrary percentile in `[0, 100]` of the same batch.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile(values: &[f64], p: f64) -> Option<f64> {
        if values.is_empty() {
            return None;
        }
        let mut sorted: Vec<f64> = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
        Some(percentile_of_sorted(&sorted, p))
    }

    /// Normal-approximation confidence interval for the mean at `level`
    /// (e.g. 0.95). Valid for reasonably large n; the experiments collect
    /// hundreds of samples per metric.
    pub fn confidence_interval(values: &[f64], level: f64) -> Option<ConfidenceInterval> {
        if values.is_empty() {
            return None;
        }
        let stats: RunningStats = values.iter().copied().collect();
        let z = z_for_level(level);
        let half = z * stats.sample_std() / (values.len() as f64).sqrt();
        Some(ConfidenceInterval {
            mean: stats.mean(),
            half_width: half,
            level,
        })
    }
}

/// Linear-interpolated percentile of an already-sorted slice.
fn percentile_of_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!((0.0..=100.0).contains(&p), "percentile out of range: {p}");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Standard-normal quantile for the usual confidence levels; falls back to a
/// rational approximation (Acklam) for other levels.
fn z_for_level(level: f64) -> f64 {
    match level {
        l if (l - 0.90).abs() < 1e-9 => 1.6448536269514722,
        l if (l - 0.95).abs() < 1e-9 => 1.959963984540054,
        l if (l - 0.99).abs() < 1e-9 => 2.5758293035489004,
        l => {
            assert!(l > 0.0 && l < 1.0, "confidence level out of range: {l}");
            normal_quantile(0.5 + l / 2.0)
        }
    }
}

/// Acklam's rational approximation to the standard-normal quantile.
fn normal_quantile(p: f64) -> f64 {
    debug_assert!(p > 0.0 && p < 1.0);
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    let p_low = 0.02425;
    if p < p_low {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - p_low {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        -normal_quantile(1.0 - p)
    }
}

/// Fixed-width histogram over `[lo, hi)` with out-of-range counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or `bins == 0`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(lo < hi, "invalid histogram range [{lo}, {hi})");
        assert!(bins > 0, "histogram needs at least one bin");
        Self {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Adds an observation.
    pub fn push(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let idx = ((x - self.lo) / (self.hi - self.lo) * self.bins.len() as f64) as usize;
            let last = self.bins.len() - 1;
            self.bins[idx.min(last)] += 1;
        }
    }

    /// Bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.bins
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the upper bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations including out-of-range ones.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// The `(lo, hi)` bounds of bin `i`.
    pub fn bin_bounds(&self, i: usize) -> (f64, f64) {
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        (self.lo + w * i as f64, self.lo + w * (i + 1) as f64)
    }
}

impl Extend<f64> for Histogram {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

/// Mergeable fixed-bin **log-scale** histogram over `[lo, hi)`.
///
/// Built for latency-style distributions spanning orders of magnitude:
/// bin boundaries grow geometrically, so relative resolution is constant
/// (each bin is `(hi/lo)^(1/bins)` wider than its predecessor) and a p99
/// read out of 64 bins is as sharp at 100 µs as at 100 ms.
///
/// Unlike [`Summary`], which sorts a raw sample vector, a `LogHistogram`
/// is O(1) per observation, O(bins) per quantile, and **mergeable**:
/// accumulators filled on different threads (e.g. fd-serve's query-load
/// workers) combine by adding counts, and merging is associative and
/// order-independent — `(a ⊕ b) ⊕ c = a ⊕ (b ⊕ c)` exactly, because the
/// state is integer counts.
///
/// Observations below `lo` (including zero and negatives) land in an
/// underflow counter, observations at or above `hi` in an overflow
/// counter; both participate in quantiles as `lo` / `hi` so no
/// observation is silently dropped.
///
/// ```
/// use fd_stat::LogHistogram;
/// let mut h = LogHistogram::new(1.0, 1e6, 60);
/// h.extend([3.0, 30.0, 300.0, 3e3, 3e4, 3e5]);
/// let p50 = h.quantile(0.5).unwrap();
/// assert!(p50 > 100.0 && p50 < 3_000.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogHistogram {
    lo: f64,
    hi: f64,
    /// Cached `ln(lo)` and `1 / ln(hi/lo)` so `push` is two flops.
    ln_lo: f64,
    inv_ln_span: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl LogHistogram {
    /// Creates a histogram with `bins` geometric bins over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo <= 0`, `lo >= hi`, or `bins == 0`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(lo > 0.0, "log histogram needs a positive lower bound");
        assert!(lo < hi, "invalid log histogram range [{lo}, {hi})");
        assert!(bins > 0, "log histogram needs at least one bin");
        Self {
            lo,
            hi,
            ln_lo: lo.ln(),
            inv_ln_span: 1.0 / (hi / lo).ln(),
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// A 64-bin histogram over `[1 µs, 10 s)` in microseconds — the
    /// configuration fd-serve uses for query latency and staleness, fixed
    /// here so independently created accumulators always merge.
    pub fn latency_micros() -> Self {
        Self::new(1.0, 1e7, 64)
    }

    /// Adds an observation.
    pub fn push(&mut self, x: f64) {
        if !(x >= self.lo) {
            // NaN compares false and is counted as underflow, not lost.
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let pos = (x.ln() - self.ln_lo) * self.inv_ln_span * self.bins.len() as f64;
            let last = self.bins.len() - 1;
            self.bins[(pos as usize).min(last)] += 1;
        }
    }

    /// `true` if `other` has the identical bin layout, i.e. can be merged.
    pub fn compatible(&self, other: &LogHistogram) -> bool {
        self.lo == other.lo && self.hi == other.hi && self.bins.len() == other.bins.len()
    }

    /// Adds another accumulator's counts into this one.
    ///
    /// # Panics
    ///
    /// Panics if the bin layouts differ.
    pub fn merge(&mut self, other: &LogHistogram) {
        assert!(
            self.compatible(other),
            "merging incompatible log histograms: [{}, {})×{} vs [{}, {})×{}",
            self.lo,
            self.hi,
            self.bins.len(),
            other.lo,
            other.hi,
            other.bins.len()
        );
        for (a, b) in self.bins.iter_mut().zip(&other.bins) {
            *a += b;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
    }

    /// Total observations including out-of-range ones.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.bins
    }

    /// Observations below `lo` (or NaN).
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above `hi`.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// The `[lo, hi)` bounds of bin `i` (geometric).
    pub fn bin_bounds(&self, i: usize) -> (f64, f64) {
        let r = (self.hi / self.lo).powf(1.0 / self.bins.len() as f64);
        (self.lo * r.powi(i as i32), self.lo * r.powi(i as i32 + 1))
    }

    /// The `q`-quantile (`q` in `[0, 1]`), log-interpolated inside the
    /// containing bin. `None` when empty. Underflow reads as `lo`,
    /// overflow as `hi` — quantiles never pretend out-of-range mass does
    /// not exist.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        let total = self.total();
        if total == 0 {
            return None;
        }
        // 1-based rank of the target observation, clamped into [1, total].
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        if rank <= self.underflow {
            return Some(self.lo);
        }
        let mut seen = self.underflow;
        for (i, &c) in self.bins.iter().enumerate() {
            if rank <= seen + c {
                let (b_lo, b_hi) = self.bin_bounds(i);
                // Position of the target inside the bin, in (0, 1].
                let frac = (rank - seen) as f64 / c as f64;
                // bin_bounds reconstructs the geometric edges with powi,
                // so the top bin's upper edge can overshoot `hi` by a few
                // ulps; clamp so answers stay in the documented [lo, hi].
                return Some((b_lo * (b_hi / b_lo).powf(frac)).clamp(self.lo, self.hi));
            }
            seen += c;
        }
        Some(self.hi)
    }
}

impl Extend<f64> for LogHistogram {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

/// Sample autocorrelation of a series at lags `0..=max_lag` (`out[0] == 1`).
///
/// This is the diagnostic behind the link-model calibration: the lag-1
/// autocorrelation of the one-way delays decides whether `LAST` or `MEAN` is
/// the better naive predictor (crossover at ρ₁ = 0.5), and the decay shape
/// is what ARIMA exploits.
///
/// Returns an empty vector for series with fewer than two observations or
/// zero variance.
///
/// ```
/// use fd_stat::autocorrelation;
/// let alternating: Vec<f64> = (0..100).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
/// let acf = autocorrelation(&alternating, 2);
/// assert_eq!(acf[0], 1.0);
/// assert!(acf[1] < -0.9); // perfectly anti-correlated at lag 1
/// assert!(acf[2] > 0.9);
/// ```
pub fn autocorrelation(series: &[f64], max_lag: usize) -> Vec<f64> {
    let n = series.len();
    if n < 2 {
        return Vec::new();
    }
    let mean = series.iter().sum::<f64>() / n as f64;
    let var: f64 = series.iter().map(|x| (x - mean) * (x - mean)).sum();
    if var == 0.0 {
        return Vec::new();
    }
    (0..=max_lag.min(n - 1))
        .map(|lag| {
            series
                .iter()
                .zip(&series[lag..])
                .map(|(a, b)| (a - mean) * (b - mean))
                .sum::<f64>()
                / var
        })
        .collect()
}

/// The mean squared error between observed and predicted series — the
/// accuracy metric (`msqerr`) of the paper's Table 3.
///
/// Only index pairs present in both slices are compared.
///
/// # Panics
///
/// Panics if either slice is empty.
pub fn mean_squared_error(observed: &[f64], predicted: &[f64]) -> f64 {
    let n = observed.len().min(predicted.len());
    assert!(n > 0, "mean_squared_error on empty series");
    observed
        .iter()
        .zip(predicted)
        .take(n)
        .map(|(o, p)| (o - p) * (o - p))
        .sum::<f64>()
        / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_naive() {
        let xs = [1.0, 2.5, -3.0, 7.25, 0.0, 4.5];
        let s: RunningStats = xs.iter().copied().collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((s.mean() - mean).abs() < 1e-12);
        assert!((s.sample_variance() - var).abs() < 1e-12);
        assert_eq!(s.min(), -3.0);
        assert_eq!(s.max(), 7.25);
        assert_eq!(s.count(), 6);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..50).map(|i| (i as f64).sin() * 10.0).collect();
        let (left, right) = xs.split_at(20);
        let mut a: RunningStats = left.iter().copied().collect();
        let b: RunningStats = right.iter().copied().collect();
        a.merge(&b);
        let all: RunningStats = xs.iter().copied().collect();
        assert!((a.mean() - all.mean()).abs() < 1e-10);
        assert!((a.sample_variance() - all.sample_variance()).abs() < 1e-10);
        assert_eq!(a.count(), all.count());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a: RunningStats = [1.0, 2.0].iter().copied().collect();
        let before = a;
        a.merge(&RunningStats::new());
        assert_eq!(a, before);
        let mut empty = RunningStats::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn summary_of_known_batch() {
        let s = Summary::of(&[4.0, 1.0, 3.0, 2.0]).unwrap();
        assert_eq!(s.n, 4);
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.median, 2.5);
    }

    #[test]
    fn summary_of_empty_is_none() {
        assert!(Summary::of(&[]).is_none());
        assert!(Summary::percentile(&[], 50.0).is_none());
        assert!(Summary::confidence_interval(&[], 0.95).is_none());
    }

    #[test]
    fn percentiles_interpolate() {
        let xs = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(Summary::percentile(&xs, 0.0).unwrap(), 10.0);
        assert_eq!(Summary::percentile(&xs, 100.0).unwrap(), 40.0);
        assert!((Summary::percentile(&xs, 50.0).unwrap() - 25.0).abs() < 1e-12);
    }

    #[test]
    fn confidence_interval_contains_mean() {
        let xs: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let ci = Summary::confidence_interval(&xs, 0.95).unwrap();
        assert!(ci.contains(ci.mean));
        assert!(ci.half_width > 0.0);
        assert_eq!(ci.level, 0.95);
        assert!(ci.lo() < ci.hi());
    }

    #[test]
    fn normal_quantile_is_symmetric_and_accurate() {
        assert!((normal_quantile(0.975) - 1.959964).abs() < 1e-4);
        assert!((normal_quantile(0.5)).abs() < 1e-9);
        assert!((normal_quantile(0.025) + normal_quantile(0.975)).abs() < 1e-6);
        // Tail region exercises the p < p_low branch.
        assert!((normal_quantile(0.001) + 3.0902).abs() < 1e-3);
    }

    #[test]
    fn histogram_bins_and_overflow() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.extend([0.5, 1.5, 2.5, 9.99, -1.0, 10.0, 42.0]);
        assert_eq!(h.counts(), &[2, 1, 0, 0, 1]);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.total(), 7);
        assert_eq!(h.bin_bounds(0), (0.0, 2.0));
        assert_eq!(h.bin_bounds(4), (8.0, 10.0));
    }

    #[test]
    fn log_histogram_bins_and_quantiles() {
        let mut h = LogHistogram::new(1.0, 1000.0, 3);
        // Bin bounds: [1, 10), [10, 100), [100, 1000).
        h.extend([2.0, 5.0, 20.0, 50.0, 200.0, 0.5, 5000.0]);
        assert_eq!(h.counts(), &[2, 2, 1]);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.total(), 7);
        let (b_lo, b_hi) = h.bin_bounds(1);
        assert!((b_lo - 10.0).abs() < 1e-9 && (b_hi - 100.0).abs() < 1e-9);
        // Extremes resolve to the range bounds.
        assert_eq!(h.quantile(0.0).unwrap(), 1.0); // rank 1 = the underflow
        assert_eq!(h.quantile(1.0).unwrap(), 1000.0); // rank 7 = the overflow
                                                      // The median (rank 4) is the 2nd observation of bin 1.
        let p50 = h.quantile(0.5).unwrap();
        assert!(p50 >= 10.0 && p50 < 100.0, "p50 = {p50}");
    }

    #[test]
    fn log_histogram_quantile_tracks_exact_percentile() {
        // Dense histogram: quantiles must agree with exact sorting within
        // one bin's relative width.
        let xs: Vec<f64> = (1..=500).map(|i| (i as f64) * (i as f64)).collect();
        let mut h = LogHistogram::new(1.0, 1e6, 240);
        h.extend(xs.iter().copied());
        for q in [0.1, 0.5, 0.9, 0.99] {
            let exact = Summary::percentile(&xs, q * 100.0).unwrap();
            let approx = h.quantile(q).unwrap();
            let rel = (approx / exact).ln().abs();
            assert!(rel < 0.06, "q={q}: approx {approx} vs exact {exact}");
        }
    }

    #[test]
    fn log_histogram_merge_is_associative_and_matches_whole() {
        let xs: Vec<f64> = (0..600).map(|i| 1.5f64.powi(i % 40) + i as f64).collect();
        let mk = |slice: &[f64]| {
            let mut h = LogHistogram::latency_micros();
            h.extend(slice.iter().copied());
            h
        };
        let (a, rest) = xs.split_at(100);
        let (b, c) = rest.split_at(250);
        // (a ⊕ b) ⊕ c
        let mut left = mk(a);
        left.merge(&mk(b));
        left.merge(&mk(c));
        // a ⊕ (b ⊕ c)
        let mut right_tail = mk(b);
        right_tail.merge(&mk(c));
        let mut right = mk(a);
        right.merge(&right_tail);
        assert_eq!(left, right, "merge is not associative");
        assert_eq!(left, mk(&xs), "merged parts differ from the whole");
        assert_eq!(left.total(), xs.len() as u64);
    }

    #[test]
    fn log_histogram_empty_and_nan() {
        let mut h = LogHistogram::new(1.0, 100.0, 4);
        assert_eq!(h.quantile(0.5), None);
        h.push(f64::NAN);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.total(), 1);
        assert_eq!(h.quantile(0.5), Some(1.0));
    }

    #[test]
    #[should_panic(expected = "incompatible")]
    fn log_histogram_incompatible_merge_rejected() {
        let mut a = LogHistogram::new(1.0, 100.0, 4);
        let b = LogHistogram::new(1.0, 100.0, 8);
        a.merge(&b);
    }

    #[test]
    fn autocorrelation_of_iid_noise_decays() {
        // A pseudo-random but deterministic sequence.
        let xs: Vec<f64> = (0..5_000u64)
            .map(|i| ((i.wrapping_mul(2654435761) >> 7) % 1000) as f64)
            .collect();
        let acf = autocorrelation(&xs, 3);
        assert_eq!(acf[0], 1.0);
        assert!(acf[1].abs() < 0.1, "lag1 = {}", acf[1]);
    }

    #[test]
    fn autocorrelation_degenerate_cases() {
        assert!(autocorrelation(&[], 3).is_empty());
        assert!(autocorrelation(&[1.0], 3).is_empty());
        assert!(autocorrelation(&[5.0; 10], 3).is_empty()); // zero variance
                                                            // max_lag clamped to n-1.
        let acf = autocorrelation(&[1.0, 2.0, 3.0], 10);
        assert_eq!(acf.len(), 3);
    }

    #[test]
    fn msqerr_of_perfect_prediction_is_zero() {
        let xs = [1.0, 2.0, 3.0];
        assert_eq!(mean_squared_error(&xs, &xs), 0.0);
    }

    #[test]
    fn msqerr_known_value() {
        let obs = [1.0, 2.0, 3.0];
        let pred = [2.0, 2.0, 1.0];
        // errors: 1, 0, 2 -> msq = (1 + 0 + 4) / 3
        assert!((mean_squared_error(&obs, &pred) - 5.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn msqerr_uses_common_prefix() {
        let obs = [1.0, 2.0, 3.0, 100.0];
        let pred = [1.0, 2.0, 3.0];
        assert_eq!(mean_squared_error(&obs, &pred), 0.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Welford never returns negative variance and min <= mean <= max.
        #[test]
        fn welford_invariants(xs in proptest::collection::vec(-1e6f64..1e6, 1..300)) {
            let s: RunningStats = xs.iter().copied().collect();
            prop_assert!(s.sample_variance() >= 0.0);
            prop_assert!(s.min() <= s.mean() + 1e-9);
            prop_assert!(s.mean() <= s.max() + 1e-9);
        }

        /// Merging a split equals processing the whole, wherever we split.
        #[test]
        fn merge_associativity(
            xs in proptest::collection::vec(-1e3f64..1e3, 2..100),
            split_frac in 0.0f64..1.0,
        ) {
            let split = ((xs.len() as f64 * split_frac) as usize).min(xs.len());
            let mut a: RunningStats = xs[..split].iter().copied().collect();
            let b: RunningStats = xs[split..].iter().copied().collect();
            a.merge(&b);
            let whole: RunningStats = xs.iter().copied().collect();
            prop_assert!((a.mean() - whole.mean()).abs() < 1e-6);
            prop_assert!((a.sum_sq_dev() - whole.sum_sq_dev()).abs() < 1e-3);
        }

        /// Percentiles are monotone in p and bounded by min/max.
        #[test]
        fn percentile_monotone(xs in proptest::collection::vec(-1e3f64..1e3, 1..100)) {
            let p25 = Summary::percentile(&xs, 25.0).unwrap();
            let p50 = Summary::percentile(&xs, 50.0).unwrap();
            let p75 = Summary::percentile(&xs, 75.0).unwrap();
            let s = Summary::of(&xs).unwrap();
            prop_assert!(s.min <= p25 + 1e-9);
            prop_assert!(p25 <= p50 + 1e-9);
            prop_assert!(p50 <= p75 + 1e-9);
            prop_assert!(p75 <= s.max + 1e-9);
        }

        /// Histogram never loses observations.
        #[test]
        fn histogram_conserves_count(xs in proptest::collection::vec(-50.0f64..150.0, 0..200)) {
            let mut h = Histogram::new(0.0, 100.0, 10);
            h.extend(xs.iter().copied());
            prop_assert_eq!(h.total(), xs.len() as u64);
        }

        /// LogHistogram conserves count, merges split == whole at any split
        /// point, and its quantiles are monotone.
        #[test]
        fn log_histogram_merge_any_split(
            xs in proptest::collection::vec(1e-3f64..1e9, 1..200),
            split_frac in 0.0f64..1.0,
        ) {
            let split = ((xs.len() as f64 * split_frac) as usize).min(xs.len());
            let mut a = LogHistogram::latency_micros();
            a.extend(xs[..split].iter().copied());
            let mut b = LogHistogram::latency_micros();
            b.extend(xs[split..].iter().copied());
            a.merge(&b);
            let mut whole = LogHistogram::latency_micros();
            whole.extend(xs.iter().copied());
            prop_assert_eq!(&a, &whole);
            prop_assert_eq!(a.total(), xs.len() as u64);
            let p25 = whole.quantile(0.25).unwrap();
            let p50 = whole.quantile(0.5).unwrap();
            let p99 = whole.quantile(0.99).unwrap();
            prop_assert!(p25 <= p50 && p50 <= p99);
        }

        /// msqerr is non-negative and zero iff series match on the prefix.
        #[test]
        fn msqerr_nonnegative(
            obs in proptest::collection::vec(-1e3f64..1e3, 1..100),
        ) {
            let shifted: Vec<f64> = obs.iter().map(|x| x + 1.0).collect();
            prop_assert!(mean_squared_error(&obs, &obs) == 0.0);
            prop_assert!((mean_squared_error(&obs, &shifted) - 1.0).abs() < 1e-9);
        }
    }
}
