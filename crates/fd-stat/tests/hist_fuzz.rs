//! Invariant-fuzz campaign over [`LogHistogram`]: the mergeable
//! accumulator fd-serve's query-load workers fill in parallel. Merging
//! is the operation that must be *exact* — the serve benchmark's
//! latency percentiles are computed from a tree of merges, so any
//! non-associativity or lost count would skew published numbers in a
//! way no unit example would catch.
//!
//! The campaign feeds seeded hostile floats (`f64::from_bits` of raw
//! PRNG output: NaNs, infinities, subnormals, negatives) alongside
//! in-range values, then checks the algebra on every round.

use fd_check::fuzz::SplitMix64;
use fd_stat::LogHistogram;

const ROUNDS: usize = 300;

/// A histogram filled with `n` seeded observations: ~half drawn
/// log-uniform across (and a little beyond) the bin range, half raw
/// bit-pattern floats — every special value f64 has.
fn fill(h: &mut LogHistogram, rng: &mut SplitMix64, n: usize) {
    for _ in 0..n {
        let x = if rng.one_in(2) {
            // log-uniform over [lo/10, hi*10): exercises underflow,
            // every bin, and overflow.
            let u = rng.below(1 << 20) as f64 / (1 << 20) as f64;
            0.1 * 10f64.powf(u * 8.0)
        } else {
            f64::from_bits(rng.next())
        };
        h.push(x);
    }
}

/// Merge is exact: associative, commutative, and count-conserving, for
/// arbitrary fill patterns — because the merged state is integer
/// counts, not floats. `(a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)` must hold
/// bit-for-bit, not approximately.
#[test]
fn merge_is_associative_commutative_and_conserving() {
    let mut rng = SplitMix64::new(0xfd5_4157);
    for round in 0..ROUNDS {
        let mut parts = [
            LogHistogram::latency_micros(),
            LogHistogram::latency_micros(),
            LogHistogram::latency_micros(),
        ];
        let mut totals = 0;
        for h in &mut parts {
            let n = rng.below(200) as usize;
            fill(h, &mut rng, n);
            totals += h.total();
        }
        let [a, b, c] = parts;

        let mut ab_c = a.clone();
        ab_c.merge(&b);
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_eq!(ab_c, a_bc, "merge not associative (round {round})");

        let mut ba = b.clone();
        ba.merge(&a);
        let mut ab = a.clone();
        ab.merge(&b);
        assert_eq!(ab, ba, "merge not commutative (round {round})");

        assert_eq!(
            ab_c.total(),
            totals,
            "merge lost or invented observations (round {round})"
        );
    }
}

/// Sharded fill equals sequential fill: a stream split across k worker
/// accumulators and merged back is indistinguishable from one
/// accumulator seeing the whole stream — the property that lets
/// fd-serve's per-thread histograms be summed at the end of a run.
#[test]
fn sharded_fill_matches_sequential_fill() {
    let mut rng = SplitMix64::new(0xfd5_5ade);
    for round in 0..ROUNDS {
        let shards = 1 + rng.below(7) as usize;
        let n = rng.below(400) as usize;
        let stream: Vec<f64> = (0..n)
            .map(|_| {
                if rng.one_in(3) {
                    f64::from_bits(rng.next())
                } else {
                    rng.below(20_000_000) as f64 / 2.0
                }
            })
            .collect();

        let mut sequential = LogHistogram::latency_micros();
        sequential.extend(stream.iter().copied());

        let mut workers = vec![LogHistogram::latency_micros(); shards];
        for (i, &x) in stream.iter().enumerate() {
            workers[i % shards].push(x);
        }
        let mut merged = LogHistogram::latency_micros();
        for w in &workers {
            merged.merge(w);
        }
        assert_eq!(
            merged, sequential,
            "{shards}-way sharded fill diverged (round {round}, n {n})"
        );
    }
}

/// Push is total and quantiles stay sane under hostile input: NaN and
/// negatives count as underflow (never dropped, never a panic), totals
/// are conserved, and the quantile function is monotone with every
/// answer inside `[lo, hi]`.
#[test]
fn hostile_floats_never_panic_and_quantiles_stay_monotone() {
    let mut rng = SplitMix64::new(0xfd5_0ddf);
    for round in 0..ROUNDS {
        let mut h = LogHistogram::latency_micros();
        let n = 1 + rng.below(300);
        for _ in 0..n {
            h.push(f64::from_bits(rng.next()));
        }
        assert_eq!(h.total(), n, "hostile pushes dropped (round {round})");

        let mut prev = f64::NEG_INFINITY;
        for i in 0..=20 {
            let q = h
                .quantile(f64::from(i) / 20.0)
                .expect("non-empty histogram");
            assert!(
                q >= prev && (1.0..=1e7).contains(&q),
                "quantile not monotone-in-range: q({}) = {q} after {prev} (round {round})",
                f64::from(i) / 20.0
            );
            prev = q;
        }
    }
}
