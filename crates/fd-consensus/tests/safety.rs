//! Safety and liveness of the consensus protocol under chaos: lossy volatile
//! links, random crash instants, different cluster sizes and detectors.
//! Agreement and validity must hold in *every* execution; termination of the
//! correct majority must hold within the horizon.

use fd_consensus::{run_consensus_experiment, ConsensusSetup};
use fd_core::{Combination, MarginKind, PredictorKind};
use fd_net::WanProfile;
use fd_sim::SimDuration;
use proptest::prelude::*;

fn combo_for(idx: usize) -> Combination {
    let combos = [
        Combination::new(PredictorKind::Last, MarginKind::Jac { phi: 1.0 }),
        Combination::new(PredictorKind::Mean, MarginKind::Ci { gamma: 2.0 }),
        Combination::new(
            PredictorKind::WinMean { window: 10 },
            MarginKind::Jac { phi: 4.0 },
        ),
        Combination::new(
            PredictorKind::Lpf { beta: 0.125 },
            MarginKind::Ci { gamma: 1.0 },
        ),
    ];
    combos[idx % combos.len()]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Whatever the crash instant, link volatility and detector choice:
    /// agreement, validity, and majority termination.
    #[test]
    fn agreement_validity_termination(
        seed in 0u64..10_000,
        n in 3u16..6,
        crash_ms in 0u64..40_000,
        combo_idx in 0usize..4,
        congested in proptest::bool::ANY,
    ) {
        let profile = if congested {
            WanProfile::congested_wan()
        } else {
            WanProfile::italy_japan()
        };
        let setup = ConsensusSetup {
            n,
            fd_combo: combo_for(combo_idx),
            profile,
            crash_coordinator_after: Some(SimDuration::from_millis(crash_ms)),
            start_after: SimDuration::from_secs(5),
            horizon: SimDuration::from_secs(240),
            seed,
            ..ConsensusSetup::default_wan(seed)
        };
        let outcome = run_consensus_experiment(&setup);
        prop_assert!(outcome.agreement(), "split brain: {:?}", outcome.decisions);
        prop_assert!(outcome.validity(), "invented value: {:?}", outcome.decisions);
        // All n−1 survivors decide (p0 may or may not, depending on when it
        // crashed relative to its decision).
        prop_assert!(
            outcome.deciders() >= usize::from(n) - 1,
            "only {}/{} decided: {:?}",
            outcome.deciders(),
            n,
            outcome.decisions
        );
    }

    /// Without failures, every process decides the coordinator's majority
    /// pick in round 0, on every link profile.
    #[test]
    fn failure_free_round_zero(seed in 0u64..10_000, n in 2u16..6) {
        let setup = ConsensusSetup {
            n,
            crash_coordinator_after: None,
            ..ConsensusSetup::default_wan(seed)
        };
        let outcome = run_consensus_experiment(&setup);
        prop_assert_eq!(outcome.deciders(), usize::from(n));
        prop_assert!(outcome.agreement());
        prop_assert!(outcome.validity());
    }
}

#[test]
fn decision_is_a_proposed_value_even_after_rotations() {
    // Deterministic spot-check: the decided value must come from the initial
    // values even when the crash forces coordinator rotation (the locked
    // estimate mechanism).
    let setup = ConsensusSetup {
        n: 5,
        crash_coordinator_after: Some(SimDuration::from_millis(700)),
        start_after: SimDuration::from_millis(500),
        horizon: SimDuration::from_secs(120),
        ..ConsensusSetup::default_wan(77)
    };
    let outcome = run_consensus_experiment(&setup);
    assert!(outcome.deciders() >= 4);
    assert!(outcome.agreement());
    let v = *outcome.decisions.values().next().unwrap();
    assert!(outcome.initial_values.contains(&v), "decided {v}");
}
