//! The consensus protocol as a runtime layer.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use fd_core::{Combination, FailureDetector};
use fd_runtime::{Context, Layer, Message, MessageKind, ProcessId, TimerId};
use fd_sim::{SimDuration, SimTime};
use fd_stat::EventKind;

use crate::metrics::{APP_DECIDED, APP_ROUND};
use crate::wire::ConsensusMsg;

const TIMER_TICK: TimerId = 0;
const TIMER_START: TimerId = 1;
// Timer-ID audit: fd-runtime's wrapping layers (ChaosLayer bit 63,
// SupervisorLayer bit 62) namespace child timers by high bits, so a
// consensus layer wrapped by fabric-level chaos must keep its IDs clear of
// [`fd_runtime::RESERVED_TIMER_BITS`]. Checked at compile time here and
// debug-asserted at every arm site below.
const _: () = assert!(
    TIMER_TICK & fd_runtime::RESERVED_TIMER_BITS == 0
        && TIMER_START & fd_runtime::RESERVED_TIMER_BITS == 0,
    "consensus timer IDs collide with the chaos/supervisor namespaces"
);
/// How many extra Decide floods a decided process performs on later ticks.
const DECIDE_REBROADCASTS: u32 = 3;

/// Checks a timer ID stays out of the reserved wrapper namespaces before
/// arming it — a debug-build guard mirroring the wrappers' own asserts, so
/// a future timer added here cannot silently shadow a chaos or supervisor
/// timer when the layer runs wrapped.
fn set_guarded_timer(ctx: &mut Context, delay: SimDuration, id: TimerId) {
    debug_assert!(
        id & fd_runtime::RESERVED_TIMER_BITS == 0,
        "consensus timer {id:#x} collides with the reserved wrapper bits"
    );
    ctx.set_timer(delay, id);
}

/// An external suspicion oracle for the coordinator check: the fabric's
/// monitor-of-monitors suspect view, a recorded suspicion schedule in a
/// replay, or any other Ω-style source. When installed (see
/// [`ConsensusLayer::with_trust_input`]) it replaces the layer's internal
/// per-peer failure detectors for *coordinator demotion*; heartbeats still
/// feed the internal detectors so their QoS remains observable.
pub trait TrustInput: Send + Sync {
    /// Is `peer` suspected at `now`?
    fn suspects(&self, peer: ProcessId, now: SimTime) -> bool;
}

/// A pre-recorded suspicion schedule: per-peer lists of
/// `(transition time, suspected)` edges, queried by binary search. The
/// fabric uses this to drive ratification runs from the global tier's
/// *measured* monitor-suspicion transitions, so consensus sees exactly the
/// T_D the detector bank delivered.
#[derive(Debug, Clone, Default)]
pub struct ScheduledTrust {
    edges: BTreeMap<ProcessId, Vec<(SimTime, bool)>>,
}

impl ScheduledTrust {
    /// An empty schedule: everyone trusted forever.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a suspicion edge for `peer`. Edges must be pushed in
    /// nondecreasing time order per peer.
    pub fn push(&mut self, peer: ProcessId, at: SimTime, suspected: bool) {
        let edges = self.edges.entry(peer).or_default();
        debug_assert!(
            edges.last().is_none_or(|&(t, _)| t <= at),
            "trust edges must be pushed in time order"
        );
        edges.push((at, suspected));
    }
}

impl TrustInput for ScheduledTrust {
    fn suspects(&self, peer: ProcessId, now: SimTime) -> bool {
        let Some(edges) = self.edges.get(&peer) else {
            return false;
        };
        match edges.partition_point(|&(t, _)| t <= now) {
            0 => false,
            i => edges[i - 1].1,
        }
    }
}

/// A participant in rotating-coordinator consensus.
///
/// Stack it above the heartbeater layers of its process; it consumes
/// heartbeats into its per-peer failure detectors and `Data` messages into
/// the protocol.
pub struct ConsensusLayer {
    me: ProcessId,
    peers: Vec<ProcessId>,
    majority: usize,
    initial: u64,

    estimate: u64,
    ts: u64,
    round: u64,
    decided: Option<u64>,
    decide_floods_left: u32,

    // Round-local state.
    estimates: BTreeMap<ProcessId, (u64, u64)>,
    acks: BTreeSet<ProcessId>,
    proposal: Option<u64>,
    nacked: bool,
    adopted: bool,
    round_deadline: Option<SimTime>,

    fds: BTreeMap<ProcessId, FailureDetector>,
    trust: Option<Arc<dyn TrustInput>>,
    tick: SimDuration,
    round_timeout: SimDuration,
    start_delay: SimDuration,
    started: bool,
    rounds_started: u64,
}

impl std::fmt::Debug for ConsensusLayer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConsensusLayer")
            .field("me", &self.me)
            .field("round", &self.round)
            .field("estimate", &self.estimate)
            .field("decided", &self.decided)
            .field("rounds_started", &self.rounds_started)
            .finish()
    }
}

impl ConsensusLayer {
    /// Creates a participant.
    ///
    /// * `peers` — every participant including `me` (same list everywhere);
    /// * `initial` — this process's proposed value;
    /// * `fd_combo` — the predictor × margin combination used to monitor the
    ///   coordinators (`eta` must match the heartbeat period in use);
    /// * `eta` — the heartbeat period of the accompanying heartbeaters.
    ///
    /// # Panics
    ///
    /// Panics if `peers` does not contain `me` or has fewer than 2 entries.
    pub fn new(
        me: ProcessId,
        peers: Vec<ProcessId>,
        initial: u64,
        fd_combo: Combination,
        eta: SimDuration,
    ) -> Self {
        assert!(peers.len() >= 2, "consensus needs at least two processes");
        assert!(peers.contains(&me), "peers must include this process");
        let fds = peers
            .iter()
            .filter(|&&p| p != me)
            .map(|&p| (p, fd_combo.build(eta)))
            .collect();
        let majority = peers.len() / 2 + 1;
        Self {
            me,
            peers,
            majority,
            initial,
            estimate: initial,
            ts: 0,
            round: 0,
            decided: None,
            decide_floods_left: 0,
            estimates: BTreeMap::new(),
            acks: BTreeSet::new(),
            proposal: None,
            nacked: false,
            adopted: false,
            round_deadline: None,
            fds,
            trust: None,
            start_delay: SimDuration::ZERO,
            started: false,
            tick: SimDuration::from_millis(100),
            // Long enough for several round trips on a WAN; short enough to
            // recover promptly from the stuck-round corner cases.
            round_timeout: SimDuration::from_secs(8),
            rounds_started: 0,
        }
    }

    /// Overrides the protocol tick (retransmission/FD-poll period).
    pub fn with_tick(mut self, tick: SimDuration) -> Self {
        self.tick = tick;
        self
    }

    /// Overrides the stuck-round timeout.
    pub fn with_round_timeout(mut self, timeout: SimDuration) -> Self {
        self.round_timeout = timeout;
        self
    }

    /// Delays the start of the protocol (heartbeats flow immediately, so
    /// the failure detectors warm up before the first round).
    pub fn with_start_delay(mut self, delay: SimDuration) -> Self {
        self.start_delay = delay;
        self
    }

    /// Installs an external [`TrustInput`] as the coordinator-suspicion
    /// oracle. The fabric wires its monitor-of-monitors suspect view in
    /// here, so leader demotion inherits the *fabric* detector's T_D/P_A
    /// instead of re-deriving suspicion from this layer's own heartbeat
    /// stream. Internal detectors keep consuming heartbeats (their QoS
    /// stays observable) but no longer drive round rotation.
    pub fn with_trust_input(mut self, trust: Arc<dyn TrustInput>) -> Self {
        self.trust = Some(trust);
        self
    }

    /// The decided value, if any.
    pub fn decided(&self) -> Option<u64> {
        self.decided
    }

    /// The current round.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// This process's initial proposal.
    pub fn initial(&self) -> u64 {
        self.initial
    }

    fn coordinator(&self, round: u64) -> ProcessId {
        self.peers[(round % self.peers.len() as u64) as usize]
    }

    fn send_msg(&self, ctx: &mut Context, to: ProcessId, msg: ConsensusMsg) {
        ctx.send(Message::data(self.me, to, 0, ctx.now(), msg.encode()));
    }

    fn broadcast(&self, ctx: &mut Context, msg: ConsensusMsg) {
        for &p in &self.peers {
            if p != self.me {
                self.send_msg(ctx, p, msg);
            }
        }
    }

    fn decide(&mut self, ctx: &mut Context, value: u64) {
        if self.decided.is_some() {
            return;
        }
        self.decided = Some(value);
        self.decide_floods_left = DECIDE_REBROADCASTS;
        ctx.emit(EventKind::App {
            code: APP_DECIDED,
            value,
        });
        self.broadcast(ctx, ConsensusMsg::Decide { value });
    }

    fn send_estimate(&mut self, ctx: &mut Context) {
        let coord = self.coordinator(self.round);
        let est = ConsensusMsg::Estimate {
            round: self.round,
            value: self.estimate,
            ts: self.ts,
        };
        if coord == self.me {
            self.estimates.insert(self.me, (self.estimate, self.ts));
            self.try_propose(ctx);
        } else {
            self.send_msg(ctx, coord, est);
        }
    }

    fn advance_round(&mut self, ctx: &mut Context, new_round: u64) {
        debug_assert!(new_round > self.round || self.rounds_started == 0);
        self.round = new_round;
        self.rounds_started += 1;
        self.estimates.clear();
        self.acks.clear();
        self.proposal = None;
        self.nacked = false;
        self.adopted = false;
        self.round_deadline = Some(ctx.now() + self.round_timeout);
        ctx.emit(EventKind::App {
            code: APP_ROUND,
            value: new_round,
        });
        self.send_estimate(ctx);
    }

    /// Coordinator: propose once a majority of estimates is in.
    fn try_propose(&mut self, ctx: &mut Context) {
        if self.proposal.is_some()
            || self.decided.is_some()
            || self.coordinator(self.round) != self.me
            || self.estimates.len() < self.majority
        {
            return;
        }
        let (&value, _) = self
            .estimates
            .values()
            .map(|(v, t)| (v, t))
            .max_by_key(|&(_, t)| *t)
            .expect("majority is non-empty");
        self.proposal = Some(value);
        // The coordinator adopts its own proposal and acks it.
        self.estimate = value;
        self.ts = self.round;
        self.acks.insert(self.me);
        self.broadcast(
            ctx,
            ConsensusMsg::Propose {
                round: self.round,
                value,
            },
        );
        self.try_decide(ctx);
    }

    /// Coordinator: decide once a majority of acks is in.
    fn try_decide(&mut self, ctx: &mut Context) {
        if self.decided.is_some() {
            return;
        }
        if let Some(value) = self.proposal {
            if self.acks.len() >= self.majority {
                self.decide(ctx, value);
            }
        }
    }

    fn on_consensus_msg(&mut self, ctx: &mut Context, from: ProcessId, msg: ConsensusMsg) {
        // A decided process answers everything with the decision.
        if let Some(value) = self.decided {
            if !matches!(msg, ConsensusMsg::Decide { .. }) {
                self.send_msg(ctx, from, ConsensusMsg::Decide { value });
            }
            return;
        }

        // Fast-forward when the cluster has moved past this process.
        let msg_round = match msg {
            ConsensusMsg::Estimate { round, .. }
            | ConsensusMsg::Propose { round, .. }
            | ConsensusMsg::Ack { round }
            | ConsensusMsg::Nack { round } => Some(round),
            ConsensusMsg::Decide { .. } => None,
        };
        if let Some(r) = msg_round {
            if r > self.round {
                self.advance_round(ctx, r);
            }
        }

        match msg {
            ConsensusMsg::Estimate { round, value, ts } => {
                if round == self.round && self.coordinator(round) == self.me {
                    self.estimates.insert(from, (value, ts));
                    self.try_propose(ctx);
                }
            }
            ConsensusMsg::Propose { round, value } => {
                if round == self.round && from == self.coordinator(round) && !self.nacked {
                    self.estimate = value;
                    self.ts = round;
                    self.adopted = true;
                    self.send_msg(ctx, from, ConsensusMsg::Ack { round });
                }
            }
            ConsensusMsg::Ack { round } => {
                if round == self.round && self.coordinator(round) == self.me {
                    self.acks.insert(from);
                    self.try_decide(ctx);
                }
            }
            ConsensusMsg::Nack { round } => {
                if round == self.round && self.coordinator(round) == self.me {
                    // This round is burnt; rotate.
                    self.advance_round(ctx, round + 1);
                }
            }
            ConsensusMsg::Decide { value } => self.decide(ctx, value),
        }
    }

    fn on_tick(&mut self, ctx: &mut Context) {
        let now = ctx.now();

        if let Some(value) = self.decided {
            if self.decide_floods_left > 0 {
                self.decide_floods_left -= 1;
                self.broadcast(ctx, ConsensusMsg::Decide { value });
                set_guarded_timer(ctx, self.tick, TIMER_TICK);
            }
            // Once the floods are spent, the layer goes quiet.
            return;
        }

        // Poll the failure detectors.
        for fd in self.fds.values_mut() {
            fd.check(now);
        }

        let coord = self.coordinator(self.round);
        let coord_suspected = coord != self.me
            && match &self.trust {
                Some(trust) => trust.suspects(coord, now),
                None => self.fds.get(&coord).is_some_and(|fd| fd.is_suspecting()),
            };
        let timed_out = self.round_deadline.is_some_and(|d| now >= d);

        if coord_suspected || timed_out {
            if coord != self.me && !self.nacked {
                self.send_msg(ctx, coord, ConsensusMsg::Nack { round: self.round });
            }
            self.advance_round(ctx, self.round + 1);
        } else {
            // Retransmit the current phase's messages (UDP-style links).
            self.send_estimate(ctx);
            if let Some(value) = self.proposal {
                self.broadcast(
                    ctx,
                    ConsensusMsg::Propose {
                        round: self.round,
                        value,
                    },
                );
            }
            if self.adopted && coord != self.me {
                self.send_msg(ctx, coord, ConsensusMsg::Ack { round: self.round });
            }
        }

        set_guarded_timer(ctx, self.tick, TIMER_TICK);
    }
}

impl ConsensusLayer {
    fn start_protocol(&mut self, ctx: &mut Context) {
        self.started = true;
        self.round_deadline = Some(ctx.now() + self.round_timeout);
        ctx.emit(EventKind::App {
            code: APP_ROUND,
            value: 0,
        });
        self.send_estimate(ctx);
        set_guarded_timer(ctx, self.tick, TIMER_TICK);
    }
}

impl Layer for ConsensusLayer {
    fn on_start(&mut self, ctx: &mut Context) {
        if self.start_delay.is_zero() {
            self.start_protocol(ctx);
        } else {
            set_guarded_timer(ctx, self.start_delay, TIMER_START);
        }
    }

    fn on_deliver(&mut self, ctx: &mut Context, msg: Message) {
        match msg.kind {
            MessageKind::Heartbeat => {
                if let Some(fd) = self.fds.get_mut(&msg.from) {
                    fd.on_heartbeat(msg.seq, ctx.now());
                }
            }
            MessageKind::Data(ref payload) => {
                if !self.started {
                    // Another participant started earlier: join in.
                    self.start_protocol(ctx);
                }
                if let Some(cmsg) = ConsensusMsg::decode(payload) {
                    self.on_consensus_msg(ctx, msg.from, cmsg);
                }
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context, id: TimerId) {
        match id {
            TIMER_TICK => self.on_tick(ctx),
            TIMER_START if !self.started => {
                self.start_protocol(ctx);
            }
            _ => {}
        }
    }

    fn name(&self) -> &str {
        "consensus"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fd_core::{MarginKind, PredictorKind};

    fn combo() -> Combination {
        Combination::new(PredictorKind::Last, MarginKind::Jac { phi: 2.0 })
    }

    fn layer(me: u16, n: u16, initial: u64) -> ConsensusLayer {
        let peers: Vec<ProcessId> = (0..n).map(ProcessId).collect();
        ConsensusLayer::new(
            ProcessId(me),
            peers,
            initial,
            combo(),
            SimDuration::from_millis(200),
        )
    }

    fn drain(ctx: &mut Context) -> Vec<fd_runtime::Action> {
        ctx.take_actions()
    }

    fn sent_consensus(actions: &[fd_runtime::Action]) -> Vec<(ProcessId, ConsensusMsg)> {
        actions
            .iter()
            .filter_map(|a| match a {
                fd_runtime::Action::Send(m) => match &m.kind {
                    MessageKind::Data(p) => ConsensusMsg::decode(p).map(|c| (m.to, c)),
                    MessageKind::Heartbeat => None,
                },
                _ => None,
            })
            .collect()
    }

    #[test]
    fn participant_sends_estimate_to_coordinator_on_start() {
        let mut l = layer(1, 3, 42);
        let mut ctx = Context::new(SimTime::ZERO, ProcessId(1));
        l.on_start(&mut ctx);
        let sent = sent_consensus(&drain(&mut ctx));
        assert_eq!(sent.len(), 1);
        assert_eq!(sent[0].0, ProcessId(0)); // coord(0) = p0
        assert!(matches!(
            sent[0].1,
            ConsensusMsg::Estimate {
                round: 0,
                value: 42,
                ts: 0
            }
        ));
    }

    #[test]
    fn coordinator_proposes_after_majority_estimates() {
        let mut l = layer(0, 3, 10);
        let mut ctx = Context::new(SimTime::ZERO, ProcessId(0));
        l.on_start(&mut ctx); // records its own estimate (1 of 2 needed)
        drain(&mut ctx);
        // Second estimate arrives with a higher timestamp: its value wins.
        let mut ctx = Context::new(SimTime::from_millis(10), ProcessId(0));
        l.on_consensus_msg(
            &mut ctx,
            ProcessId(1),
            ConsensusMsg::Estimate {
                round: 0,
                value: 77,
                ts: 3,
            },
        );
        let sent = sent_consensus(&drain(&mut ctx));
        let proposes: Vec<_> = sent
            .iter()
            .filter(|(_, m)| {
                matches!(
                    m,
                    ConsensusMsg::Propose {
                        round: 0,
                        value: 77
                    }
                )
            })
            .collect();
        assert_eq!(
            proposes.len(),
            2,
            "proposal broadcast to both peers: {sent:?}"
        );
        assert_eq!(l.estimate, 77);
    }

    #[test]
    fn coordinator_decides_after_majority_acks() {
        let mut l = layer(0, 3, 10);
        let mut ctx = Context::new(SimTime::ZERO, ProcessId(0));
        l.on_start(&mut ctx);
        drain(&mut ctx);
        let mut ctx = Context::new(SimTime::from_millis(10), ProcessId(0));
        l.on_consensus_msg(
            &mut ctx,
            ProcessId(1),
            ConsensusMsg::Estimate {
                round: 0,
                value: 10,
                ts: 0,
            },
        );
        drain(&mut ctx);
        // Coordinator self-acked at proposal time; one more ack = majority.
        let mut ctx = Context::new(SimTime::from_millis(20), ProcessId(0));
        l.on_consensus_msg(&mut ctx, ProcessId(1), ConsensusMsg::Ack { round: 0 });
        let actions = drain(&mut ctx);
        assert_eq!(l.decided(), Some(10));
        let decided_events = actions
            .iter()
            .filter(|a| {
                matches!(
                    a,
                    fd_runtime::Action::Emit(EventKind::App { code, .. }) if *code == APP_DECIDED
                )
            })
            .count();
        assert_eq!(decided_events, 1);
    }

    #[test]
    fn participant_adopts_and_acks_proposal() {
        let mut l = layer(1, 3, 5);
        let mut ctx = Context::new(SimTime::ZERO, ProcessId(1));
        l.on_start(&mut ctx);
        drain(&mut ctx);
        let mut ctx = Context::new(SimTime::from_millis(5), ProcessId(1));
        l.on_consensus_msg(
            &mut ctx,
            ProcessId(0),
            ConsensusMsg::Propose {
                round: 0,
                value: 99,
            },
        );
        let sent = sent_consensus(&drain(&mut ctx));
        assert!(sent
            .iter()
            .any(|(to, m)| *to == ProcessId(0) && matches!(m, ConsensusMsg::Ack { round: 0 })));
        assert_eq!(l.estimate, 99);
        assert_eq!(l.ts, 0);
    }

    #[test]
    fn proposal_from_non_coordinator_is_ignored() {
        let mut l = layer(1, 3, 5);
        let mut ctx = Context::new(SimTime::ZERO, ProcessId(1));
        l.on_start(&mut ctx);
        drain(&mut ctx);
        let mut ctx = Context::new(SimTime::from_millis(5), ProcessId(1));
        // p2 is not coord of round 0.
        l.on_consensus_msg(
            &mut ctx,
            ProcessId(2),
            ConsensusMsg::Propose {
                round: 0,
                value: 99,
            },
        );
        assert_eq!(l.estimate, 5, "estimate unchanged");
        assert!(sent_consensus(&drain(&mut ctx)).is_empty());
    }

    #[test]
    fn nack_rotates_the_coordinator() {
        let mut l = layer(0, 3, 10);
        let mut ctx = Context::new(SimTime::ZERO, ProcessId(0));
        l.on_start(&mut ctx);
        drain(&mut ctx);
        let mut ctx = Context::new(SimTime::from_millis(5), ProcessId(0));
        l.on_consensus_msg(&mut ctx, ProcessId(2), ConsensusMsg::Nack { round: 0 });
        assert_eq!(l.round(), 1);
        // The new round's estimate goes to coord(1) = p1.
        let sent = sent_consensus(&drain(&mut ctx));
        assert!(sent
            .iter()
            .any(|(to, m)| *to == ProcessId(1)
                && matches!(m, ConsensusMsg::Estimate { round: 1, .. })));
    }

    #[test]
    fn higher_round_messages_fast_forward() {
        let mut l = layer(2, 3, 1);
        let mut ctx = Context::new(SimTime::ZERO, ProcessId(2));
        l.on_start(&mut ctx);
        drain(&mut ctx);
        let mut ctx = Context::new(SimTime::from_millis(5), ProcessId(2));
        // Round 2's coordinator is p2 itself: an estimate for round 2 both
        // fast-forwards and registers.
        l.on_consensus_msg(
            &mut ctx,
            ProcessId(0),
            ConsensusMsg::Estimate {
                round: 2,
                value: 8,
                ts: 1,
            },
        );
        assert_eq!(l.round(), 2);
    }

    #[test]
    fn decided_process_answers_with_decision() {
        let mut l = layer(1, 3, 5);
        let mut ctx = Context::new(SimTime::ZERO, ProcessId(1));
        l.on_start(&mut ctx);
        drain(&mut ctx);
        let mut ctx = Context::new(SimTime::from_millis(5), ProcessId(1));
        l.on_consensus_msg(&mut ctx, ProcessId(0), ConsensusMsg::Decide { value: 123 });
        drain(&mut ctx);
        assert_eq!(l.decided(), Some(123));
        // A late estimate gets the decision back.
        let mut ctx = Context::new(SimTime::from_millis(10), ProcessId(1));
        l.on_consensus_msg(
            &mut ctx,
            ProcessId(2),
            ConsensusMsg::Estimate {
                round: 0,
                value: 1,
                ts: 0,
            },
        );
        let sent = sent_consensus(&drain(&mut ctx));
        assert!(
            sent.iter()
                .any(|(to, m)| *to == ProcessId(2)
                    && matches!(m, ConsensusMsg::Decide { value: 123 }))
        );
    }

    #[test]
    fn round_timeout_forces_progress() {
        let mut l = layer(1, 3, 5).with_round_timeout(SimDuration::from_secs(2));
        let mut ctx = Context::new(SimTime::ZERO, ProcessId(1));
        l.on_start(&mut ctx);
        drain(&mut ctx);
        // Nothing happens for 3 s; the tick notices the stuck round.
        let mut ctx = Context::new(SimTime::from_secs(3), ProcessId(1));
        l.on_tick(&mut ctx);
        assert_eq!(l.round(), 1);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn single_process_rejected() {
        let _ = ConsensusLayer::new(
            ProcessId(0),
            vec![ProcessId(0)],
            1,
            combo(),
            SimDuration::from_secs(1),
        );
    }

    #[test]
    fn scheduled_trust_answers_by_latest_edge() {
        let mut sched = ScheduledTrust::new();
        sched.push(ProcessId(0), SimTime::from_secs(5), true);
        sched.push(ProcessId(0), SimTime::from_secs(9), false);
        assert!(!sched.suspects(ProcessId(0), SimTime::from_secs(4)));
        assert!(sched.suspects(ProcessId(0), SimTime::from_secs(5)));
        assert!(sched.suspects(ProcessId(0), SimTime::from_secs(8)));
        assert!(!sched.suspects(ProcessId(0), SimTime::from_secs(9)));
        assert!(!sched.suspects(ProcessId(1), SimTime::from_secs(100)));
    }

    /// The external oracle drives round rotation where the internal
    /// detectors (which never saw a heartbeat, let alone a timeout)
    /// would keep round 0's coordinator trusted.
    #[test]
    fn trust_input_demotes_suspected_coordinator() {
        let mut sched = ScheduledTrust::new();
        sched.push(ProcessId(0), SimTime::ZERO, true);
        let mut trusted = layer(1, 3, 5);
        let mut untrusted = layer(1, 3, 5).with_trust_input(Arc::new(sched));
        for l in [&mut trusted, &mut untrusted] {
            let mut ctx = Context::new(SimTime::ZERO, ProcessId(1));
            l.on_start(&mut ctx);
            drain(&mut ctx);
            let mut ctx = Context::new(SimTime::from_millis(100), ProcessId(1));
            l.on_tick(&mut ctx);
        }
        assert_eq!(trusted.round(), 0, "no oracle, no suspicion yet");
        assert_eq!(untrusted.round(), 1, "oracle demotes the coordinator");
    }

    /// The audit the fabric depends on: a consensus layer wrapped by
    /// process-level chaos arms timers that pass the wrapper's namespace
    /// assertion (IDs clear of bits 63/62) and fire back through intact.
    #[test]
    fn chaos_wrapped_consensus_timers_do_not_collide() {
        use fd_runtime::{Action, ChaosLayer, FaultPlan};
        let mut wrapped = ChaosLayer::new(layer(1, 3, 7), FaultPlan::new());
        let mut ctx = Context::new(SimTime::ZERO, ProcessId(1));
        wrapped.on_start(&mut ctx);
        let timers: Vec<TimerId> = drain(&mut ctx)
            .into_iter()
            .filter_map(|a| match a {
                Action::SetTimer { id, .. } => Some(id),
                _ => None,
            })
            .collect();
        assert!(!timers.is_empty(), "start must arm the protocol tick");
        for id in &timers {
            assert_eq!(
                id & fd_runtime::RESERVED_TIMER_BITS,
                0,
                "timer {id:#x} escaped into a wrapper namespace"
            );
        }
        // And the fire routes back to the child: the tick triggers the
        // estimate retransmission of round 0.
        let mut ctx = Context::new(SimTime::from_millis(100), ProcessId(1));
        wrapped.on_timer(&mut ctx, timers[0]);
        assert!(
            !sent_consensus(&drain(&mut ctx)).is_empty(),
            "wrapped tick must reach the consensus layer"
        );
    }
}
