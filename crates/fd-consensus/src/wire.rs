//! Encoding of the consensus protocol messages as `Data` payloads.
//!
//! Length and tag validation go through the shared [`fd_net::framing`]
//! helpers, so a corrupt or foreign payload is classified exactly like a
//! corrupt heartbeat datagram or a malformed fd-serve query frame.

use bytes::{Buf, BufMut};
use fd_net::framing::{self, FrameError};

/// A consensus protocol message. `round` is the rotating-coordinator round;
/// `ts` is the round in which the carried estimate was last adopted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConsensusMsg {
    /// Phase 1: a participant's current estimate, sent to the coordinator.
    Estimate {
        /// Round this estimate is offered for.
        round: u64,
        /// The proposed value.
        value: u64,
        /// Round in which the sender last adopted this value.
        ts: u64,
    },
    /// Phase 2: the coordinator's proposal for the round.
    Propose {
        /// The proposing round.
        round: u64,
        /// The proposed value.
        value: u64,
    },
    /// Phase 3 (positive): the participant adopted the proposal.
    Ack {
        /// The acknowledged round.
        round: u64,
    },
    /// Phase 3 (negative): the participant suspects the coordinator.
    Nack {
        /// The refused round.
        round: u64,
    },
    /// Phase 4: the decision, re-flooded by every receiver once.
    Decide {
        /// The decided value.
        value: u64,
    },
}

const TAG_ESTIMATE: u8 = 1;
const TAG_PROPOSE: u8 = 2;
const TAG_ACK: u8 = 3;
const TAG_NACK: u8 = 4;
const TAG_DECIDE: u8 = 5;

impl ConsensusMsg {
    /// Encodes into a payload for a `Data` message.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(1 + 3 * 8);
        match *self {
            ConsensusMsg::Estimate { round, value, ts } => {
                buf.put_u8(TAG_ESTIMATE);
                buf.put_u64(round);
                buf.put_u64(value);
                buf.put_u64(ts);
            }
            ConsensusMsg::Propose { round, value } => {
                buf.put_u8(TAG_PROPOSE);
                buf.put_u64(round);
                buf.put_u64(value);
            }
            ConsensusMsg::Ack { round } => {
                buf.put_u8(TAG_ACK);
                buf.put_u64(round);
            }
            ConsensusMsg::Nack { round } => {
                buf.put_u8(TAG_NACK);
                buf.put_u64(round);
            }
            ConsensusMsg::Decide { value } => {
                buf.put_u8(TAG_DECIDE);
                buf.put_u64(value);
            }
        }
        buf
    }

    /// Decodes a payload; `None` for anything malformed (e.g. traffic from
    /// another protocol sharing the link). [`ConsensusMsg::classify`] is
    /// the same check with the rejection reason preserved.
    pub fn decode(data: &[u8]) -> Option<ConsensusMsg> {
        ConsensusMsg::classify(data).ok()
    }

    /// Decodes a payload, reporting *why* a malformed one was rejected in
    /// the shared [`FrameError`] taxonomy — what transports count.
    ///
    /// # Errors
    ///
    /// [`FrameError::Truncated`] for short payloads, [`FrameError::BadTag`]
    /// for an unknown message tag.
    pub fn classify(mut data: &[u8]) -> Result<ConsensusMsg, FrameError> {
        framing::need(data, 1)?;
        let tag = data.get_u8();
        let need = match tag {
            TAG_ESTIMATE => 24,
            TAG_PROPOSE => 16,
            TAG_ACK | TAG_NACK | TAG_DECIDE => 8,
            found => return Err(FrameError::BadTag { found }),
        };
        framing::need(data, need)?;
        Ok(match tag {
            TAG_ESTIMATE => ConsensusMsg::Estimate {
                round: data.get_u64(),
                value: data.get_u64(),
                ts: data.get_u64(),
            },
            TAG_PROPOSE => ConsensusMsg::Propose {
                round: data.get_u64(),
                value: data.get_u64(),
            },
            TAG_ACK => ConsensusMsg::Ack {
                round: data.get_u64(),
            },
            TAG_NACK => ConsensusMsg::Nack {
                round: data.get_u64(),
            },
            TAG_DECIDE => ConsensusMsg::Decide {
                value: data.get_u64(),
            },
            _ => unreachable!("tag validated above"),
        })
    }
}

#[cfg(test)]
mod classify_tests {
    use super::*;

    #[test]
    fn rejection_reasons_are_typed() {
        assert_eq!(
            ConsensusMsg::classify(&[]),
            Err(FrameError::Truncated { len: 0, need: 1 })
        );
        assert_eq!(
            ConsensusMsg::classify(&[99, 0, 0]),
            Err(FrameError::BadTag { found: 99 })
        );
        assert_eq!(
            ConsensusMsg::classify(&[TAG_ESTIMATE, 1, 2]),
            Err(FrameError::Truncated { len: 2, need: 24 })
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let msgs = [
            ConsensusMsg::Estimate {
                round: 3,
                value: 42,
                ts: 1,
            },
            ConsensusMsg::Propose { round: 9, value: 7 },
            ConsensusMsg::Ack { round: 11 },
            ConsensusMsg::Nack { round: 0 },
            ConsensusMsg::Decide { value: u64::MAX },
        ];
        for m in msgs {
            assert_eq!(ConsensusMsg::decode(&m.encode()), Some(m));
        }
    }

    #[test]
    fn garbage_is_rejected() {
        assert_eq!(ConsensusMsg::decode(&[]), None);
        assert_eq!(ConsensusMsg::decode(&[99, 0, 0]), None);
        assert_eq!(ConsensusMsg::decode(&[TAG_ESTIMATE, 1, 2]), None); // short
                                                                       // The pull-monitoring request byte is not a consensus message.
        assert_eq!(ConsensusMsg::decode(&[0x50]), None);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn any_estimate_round_trips(round: u64, value: u64, ts: u64) {
            let m = ConsensusMsg::Estimate { round, value, ts };
            prop_assert_eq!(ConsensusMsg::decode(&m.encode()), Some(m));
        }

        #[test]
        fn random_bytes_never_panic(data in proptest::collection::vec(any::<u8>(), 0..40)) {
            let _ = ConsensusMsg::decode(&data);
        }
    }
}
