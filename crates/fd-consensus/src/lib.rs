//! Rotating-coordinator consensus on top of the failure detectors.
//!
//! The paper motivates failure-detector QoS through its impact on upper
//! layers and cites Coccoli, Urbán, Bondavalli & Schiper (DSN 2002), who
//! measured "the relation between accuracy and delay of the failure detector
//! and the QoS of a typical consensus algorithm that uses it". This crate
//! closes that loop inside the reproduction: a Chandra–Toueg-style
//! rotating-coordinator consensus runs over the same layered runtime, driven
//! by the same predictor+margin failure detectors, so the FD's `T_D` and
//! `P_A` translate directly into decision latency and wasted rounds.
//!
//! The protocol (crash-stop, `f < n/2`, ◇S-style detector per process):
//!
//! 1. every process sends its timestamped estimate to the round's
//!    coordinator (`coord(r) = r mod n`);
//! 2. the coordinator collects a majority of estimates, adopts the one with
//!    the highest timestamp and broadcasts it as the round's proposal;
//! 3. a participant either adopts + ACKs the proposal, or — if its failure
//!    detector suspects the coordinator — NACKs and moves to the next round;
//! 4. a majority of ACKs lets the coordinator decide and (reliably, by
//!    re-flooding) broadcast the decision.
//!
//! Messages ride UDP-like lossy links, so every protocol message is
//! periodically retransmitted until it becomes obsolete; handling is
//! idempotent.
//!
//! [`metrics::decision_latencies`] extracts the per-process decision times
//! from the event log (recorded as [`fd_stat::EventKind::App`] events), and
//! [`experiment::run_consensus_experiment`] measures decision latency under
//! a coordinator crash for a configurable failure detector — the
//! FD-QoS → consensus-QoS curve.

pub mod experiment;
pub mod layer;
pub mod metrics;
pub mod wire;

pub use experiment::{run_consensus_experiment, ConsensusOutcome, ConsensusSetup};
pub use layer::{ConsensusLayer, ScheduledTrust, TrustInput};
pub use metrics::{decided_values, decision_latencies, APP_DECIDED, APP_ROUND};
pub use wire::ConsensusMsg;
