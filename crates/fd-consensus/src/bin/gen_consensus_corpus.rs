//! Regenerates the consensus-message seeds of the wire-fuzz corpus in
//! `tests/corpus/wire/` from the *current* codec:
//!
//! ```text
//! cargo run -p fd-consensus --bin gen_consensus_corpus
//! ```
//!
//! One `cons_*` seed per protocol tag, produced by the real encoder
//! (the fuzz campaign asserts they classify as named), plus the two
//! hostile shapes the [`ConsensusMsg::classify`] taxonomy rejects:
//! a truncated `Estimate` body and an unknown tag. The generator lives
//! here rather than in `gen_wire_corpus` because fd-consensus depends
//! on fd-experiments — the serve-corpus generator cannot name
//! [`ConsensusMsg`] without a dependency cycle.

use std::fs;
use std::path::Path;

use fd_consensus::ConsensusMsg;
use fd_net::framing::FrameError;

fn main() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/corpus/wire");
    fs::create_dir_all(&dir).expect("create corpus dir");

    let mut seeds: Vec<(&str, Vec<u8>)> = vec![
        (
            "cons_estimate",
            ConsensusMsg::Estimate {
                round: 3,
                value: 0x0102_0304_0506_0708,
                ts: 1,
            }
            .encode(),
        ),
        (
            "cons_propose",
            ConsensusMsg::Propose {
                round: 9,
                value: 0xDEC1_DE00,
            }
            .encode(),
        ),
        ("cons_ack", ConsensusMsg::Ack { round: 11 }.encode()),
        ("cons_nack", ConsensusMsg::Nack { round: 4 }.encode()),
        (
            "cons_decide",
            ConsensusMsg::Decide { value: u64::MAX }.encode(),
        ),
    ];

    // Hostile shapes: byte-surgery on a valid frame, checked below to be
    // rejected with the typed reason the regression tests pin.
    let mut truncated = seeds[0].1.clone();
    truncated.truncate(9); // tag + one of the three u64 fields
    seeds.push(("cons_truncated", truncated));
    let mut bad_tag = seeds[1].1.clone();
    bad_tag[0] = 0xC5; // outside 1..=5
    seeds.push(("cons_bad_tag", bad_tag));

    for (name, bytes) in &seeds {
        let classified = ConsensusMsg::classify(bytes);
        match *name {
            "cons_truncated" => assert!(
                matches!(classified, Err(FrameError::Truncated { .. })),
                "{name}: expected Truncated, got {classified:?}"
            ),
            "cons_bad_tag" => assert!(
                matches!(classified, Err(FrameError::BadTag { found: 0xC5 })),
                "{name}: expected BadTag, got {classified:?}"
            ),
            _ => {
                let msg = classified.unwrap_or_else(|e| panic!("{name}: rejected: {e}"));
                assert_eq!(msg.encode(), *bytes, "{name}: round-trip changed bytes");
            }
        }
        let path = dir.join(format!("{name}.bin"));
        fs::write(&path, bytes).expect("write seed");
        println!("wrote {} ({} bytes)", path.display(), bytes.len());
    }
}
