//! Measures how failure-detector QoS propagates into consensus QoS — the
//! relation studied by Coccoli, Urbán, Bondavalli & Schiper (DSN 2002),
//! which the paper cites as the motivation for quantitative FD evaluation.
//!
//! For each predictor × margin choice: heartbeats warm the detectors for
//! 30 s, the round-0 coordinator crashes just before the protocol starts,
//! and the table reports when the survivors decide.
//!
//! ```text
//! cargo run --release -p fd-consensus --bin consensus_qos
//! ```

use fd_consensus::{run_consensus_experiment, ConsensusSetup};
use fd_core::{Combination, MarginKind, PredictorKind};
use fd_sim::SimDuration;

fn main() {
    let combos = [
        Combination::new(PredictorKind::Last, MarginKind::Jac { phi: 1.0 }),
        Combination::new(PredictorKind::Last, MarginKind::Jac { phi: 4.0 }),
        Combination::new(PredictorKind::Last, MarginKind::Ci { gamma: 1.0 }),
        Combination::new(PredictorKind::Last, MarginKind::Ci { gamma: 3.31 }),
        Combination::new(
            PredictorKind::Arima {
                p: 2,
                d: 1,
                q: 1,
                refit_every: 1000,
            },
            MarginKind::Ci { gamma: 3.31 },
        ),
        Combination::new(PredictorKind::Mean, MarginKind::Ci { gamma: 3.31 }),
    ];

    println!(
        "{:<28} {:>16} {:>10} {:>10}",
        "failure detector", "decision (ms", "rounds", "deciders"
    );
    println!("{:<28} {:>16}", "", "after crash)");
    for combo in combos {
        let setup = ConsensusSetup {
            fd_combo: combo,
            crash_coordinator_after: Some(SimDuration::from_millis(29_500)),
            start_after: SimDuration::from_secs(30),
            horizon: SimDuration::from_secs(90),
            ..ConsensusSetup::default_wan(0xC0)
        };
        let outcome = run_consensus_experiment(&setup);
        let latency = outcome
            .last_decision()
            .map(|t| t.as_millis_f64() - 29_500.0);
        // Rounds burnt by the *deciders* (the crashed coordinator keeps
        // rotating locally forever; that is not protocol cost).
        let max_round = outcome
            .rounds
            .iter()
            .filter(|(p, _)| outcome.decisions.contains_key(p))
            .map(|(_, &r)| r)
            .max()
            .unwrap_or(0);
        println!(
            "{:<28} {:>16} {:>10} {:>10}",
            combo.label(),
            latency.map_or("-".to_owned(), |l| format!("{l:.0}")),
            max_round,
            outcome.deciders(),
        );
        assert!(outcome.agreement(), "agreement violated");
        assert!(outcome.validity(), "validity violated");
    }
    println!("\n(the detector's T_D is the floor of the post-crash decision latency: the");
    println!(" protocol cannot rotate away from a dead coordinator before suspecting it)");
}
