//! Extraction of consensus QoS from the event log.

use std::collections::BTreeMap;

use fd_sim::SimTime;
use fd_stat::{EventKind, EventLog, ProcessId};

/// Application-event code: a process decided; `value` is the decided value.
pub const APP_DECIDED: u32 = 1;
/// Application-event code: a process entered a round; `value` is the round.
pub const APP_ROUND: u32 = 2;

/// The first decision instant of every process that decided.
pub fn decision_latencies(log: &EventLog) -> BTreeMap<ProcessId, SimTime> {
    let mut out = BTreeMap::new();
    for e in log {
        if let EventKind::App {
            code: APP_DECIDED, ..
        } = e.kind
        {
            out.entry(e.process).or_insert(e.at);
        }
    }
    out
}

/// The decided value of every process that decided.
pub fn decided_values(log: &EventLog) -> BTreeMap<ProcessId, u64> {
    let mut out = BTreeMap::new();
    for e in log {
        if let EventKind::App {
            code: APP_DECIDED,
            value,
        } = e.kind
        {
            out.entry(e.process).or_insert(value);
        }
    }
    out
}

/// The highest round each process reached (how many coordinator rotations
/// the execution burnt — the cost of false suspicions).
pub fn max_rounds(log: &EventLog) -> BTreeMap<ProcessId, u64> {
    let mut out: BTreeMap<ProcessId, u64> = BTreeMap::new();
    for e in log {
        if let EventKind::App {
            code: APP_ROUND,
            value,
        } = e.kind
        {
            let entry = out.entry(e.process).or_insert(0);
            *entry = (*entry).max(value);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extraction_takes_first_decision_and_max_round() {
        let mut log = EventLog::new();
        let p = ProcessId(0);
        log.record(
            SimTime::from_secs(1),
            p,
            EventKind::App {
                code: APP_ROUND,
                value: 0,
            },
        );
        log.record(
            SimTime::from_secs(2),
            p,
            EventKind::App {
                code: APP_ROUND,
                value: 3,
            },
        );
        log.record(
            SimTime::from_secs(3),
            p,
            EventKind::App {
                code: APP_DECIDED,
                value: 9,
            },
        );
        log.record(
            SimTime::from_secs(4),
            p,
            EventKind::App {
                code: APP_DECIDED,
                value: 9,
            },
        );
        assert_eq!(decision_latencies(&log)[&p], SimTime::from_secs(3));
        assert_eq!(decided_values(&log)[&p], 9);
        assert_eq!(max_rounds(&log)[&p], 3);
    }

    #[test]
    fn empty_log_yields_empty_maps() {
        let log = EventLog::new();
        assert!(decision_latencies(&log).is_empty());
        assert!(decided_values(&log).is_empty());
        assert!(max_rounds(&log).is_empty());
    }
}
