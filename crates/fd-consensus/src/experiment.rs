//! The FD-QoS → consensus-QoS experiment.
//!
//! `n` consensus participants run over a full mesh of WAN links, each
//! heartbeating to every other and monitoring coordinators with the
//! configured predictor × margin combination. Optionally the round-0
//! coordinator is crashed at a scripted instant, so the decision latency
//! directly exposes the failure detector's detection time — the dependency
//! studied by Coccoli et al. (the paper's reference \[6\]).

use fd_core::Combination;
use fd_experiments::{HeartbeaterLayer, SimCrashLayer};
use fd_net::WanProfile;
use fd_runtime::{Process, ProcessId, SimEngine};
use fd_sim::{SeedTree, SimDuration, SimTime};
use fd_stat::EventLog;

use crate::layer::ConsensusLayer;
use crate::metrics::{decided_values, decision_latencies, max_rounds};

/// Configuration of one consensus run.
#[derive(Debug, Clone)]
pub struct ConsensusSetup {
    /// Number of participants (≥ 2; tolerance is ⌈n/2⌉−1 crashes).
    pub n: u16,
    /// The failure-detector combination every participant uses.
    pub fd_combo: Combination,
    /// Heartbeat period.
    pub eta: SimDuration,
    /// The link profile of every directed pair.
    pub profile: WanProfile,
    /// If set, crash the round-0 coordinator (p0) at this offset, fail-stop.
    pub crash_coordinator_after: Option<SimDuration>,
    /// Delay before the protocol's first round (heartbeats run from time 0,
    /// warming the failure detectors).
    pub start_after: SimDuration,
    /// Simulation horizon.
    pub horizon: SimDuration,
    /// Root seed.
    pub seed: u64,
}

impl ConsensusSetup {
    /// A 3-process WAN setup with the paper's recommended detector.
    pub fn default_wan(seed: u64) -> Self {
        ConsensusSetup {
            n: 3,
            fd_combo: Combination::new(
                fd_core::PredictorKind::Last,
                fd_core::MarginKind::Jac { phi: 2.0 },
            ),
            eta: SimDuration::from_secs(1),
            profile: WanProfile::italy_japan(),
            crash_coordinator_after: None,
            start_after: SimDuration::ZERO,
            horizon: SimDuration::from_secs(120),
            seed,
        }
    }
}

/// The outcome of a consensus run.
#[derive(Debug, Clone)]
pub struct ConsensusOutcome {
    /// The decided value per deciding process.
    pub decisions: std::collections::BTreeMap<ProcessId, u64>,
    /// First decision instant per deciding process.
    pub latencies: std::collections::BTreeMap<ProcessId, SimTime>,
    /// Highest round reached per process.
    pub rounds: std::collections::BTreeMap<ProcessId, u64>,
    /// The full event log (for further analysis).
    pub log: EventLog,
    /// The initial values, indexed by process.
    pub initial_values: Vec<u64>,
    /// Total messages placed on the links (heartbeats + protocol).
    pub messages_sent: u64,
}

impl ConsensusOutcome {
    /// Uniform agreement: no two processes decided differently.
    pub fn agreement(&self) -> bool {
        let mut values = self.decisions.values();
        match values.next() {
            None => true,
            Some(first) => values.all(|v| v == first),
        }
    }

    /// Validity: every decision is one of the initial values.
    pub fn validity(&self) -> bool {
        self.decisions
            .values()
            .all(|v| self.initial_values.contains(v))
    }

    /// The latest decision instant among deciders, if any decided.
    pub fn last_decision(&self) -> Option<SimTime> {
        self.latencies.values().max().copied()
    }

    /// Number of processes that decided.
    pub fn deciders(&self) -> usize {
        self.decisions.len()
    }
}

/// Runs one consensus execution and extracts its outcome.
///
/// Process `i` proposes value `100 + i`; every pair of processes is
/// connected by an independently seeded instance of the profile's link.
pub fn run_consensus_experiment(setup: &ConsensusSetup) -> ConsensusOutcome {
    let n = setup.n;
    assert!(n >= 2, "consensus needs at least two processes");
    let seeds = SeedTree::new(setup.seed).subtree("consensus");
    let peers: Vec<ProcessId> = (0..n).map(ProcessId).collect();
    let initial_values: Vec<u64> = (0..n).map(|i| 100 + u64::from(i)).collect();

    let mut engine = SimEngine::new();
    for &me in &peers {
        let mut proc = Process::new(me);
        if me == ProcessId(0) {
            if let Some(after) = setup.crash_coordinator_after {
                proc = proc.with_layer(SimCrashLayer::once_at(after, None));
            }
        }
        for &other in &peers {
            if other != me {
                proc = proc.with_layer(HeartbeaterLayer::new(other, setup.eta));
            }
        }
        proc = proc.with_layer(
            ConsensusLayer::new(
                me,
                peers.clone(),
                initial_values[me.0 as usize],
                setup.fd_combo,
                setup.eta,
            )
            .with_start_delay(setup.start_after),
        );
        engine.add_process(proc);
    }
    for &a in &peers {
        for &b in &peers {
            if a != b {
                let label = format!("link-{}-{}", a.0, b.0);
                engine.set_link(a, b, setup.profile.link(seeds.rng(&label)));
            }
        }
    }

    engine.run_until(SimTime::ZERO + setup.horizon);
    let mut messages_sent = 0;
    for &a in &peers {
        for &b in &peers {
            if a != b {
                messages_sent += engine.link_stats(a, b).map_or(0, |s| s.sent);
            }
        }
    }
    let log = engine.into_event_log();
    ConsensusOutcome {
        decisions: decided_values(&log),
        latencies: decision_latencies(&log),
        rounds: max_rounds(&log),
        initial_values,
        messages_sent,
        log,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failure_free_run_decides_quickly_in_round_zero() {
        let setup = ConsensusSetup::default_wan(1);
        let outcome = run_consensus_experiment(&setup);
        assert_eq!(outcome.deciders(), 3, "{:?}", outcome.decisions);
        assert!(outcome.agreement());
        assert!(outcome.validity());
        assert!(outcome.messages_sent > 0);
        // Round 0 suffices without failures.
        assert!(
            outcome.rounds.values().all(|&r| r == 0),
            "{:?}",
            outcome.rounds
        );
        // A couple of WAN round trips: well under two seconds.
        let last = outcome.last_decision().unwrap();
        assert!(last < SimTime::from_secs(2), "decided at {last}");
    }

    #[test]
    fn coordinator_crash_is_survived() {
        let setup = ConsensusSetup {
            crash_coordinator_after: Some(SimDuration::from_millis(350)),
            ..ConsensusSetup::default_wan(2)
        };
        let outcome = run_consensus_experiment(&setup);
        // The two survivors are a majority of 3: they must decide and agree.
        let survivors = [ProcessId(1), ProcessId(2)];
        for p in survivors {
            assert!(
                outcome.decisions.contains_key(&p),
                "{p} undecided: {:?}",
                outcome.decisions
            );
        }
        assert!(outcome.agreement());
        assert!(outcome.validity());
        // At least one rotation happened.
        assert!(
            outcome.rounds.values().any(|&r| r >= 1),
            "{:?}",
            outcome.rounds
        );
    }

    #[test]
    fn crash_after_decision_changes_nothing() {
        let setup = ConsensusSetup {
            crash_coordinator_after: Some(SimDuration::from_secs(60)),
            ..ConsensusSetup::default_wan(3)
        };
        let outcome = run_consensus_experiment(&setup);
        assert_eq!(outcome.deciders(), 3);
        assert!(outcome.agreement());
        assert!(outcome.rounds.values().all(|&r| r == 0));
    }

    #[test]
    fn five_processes_survive_two_crashes_worth_of_rotation() {
        // Only p0 crashes here, but with n = 5 the protocol tolerates it
        // comfortably and all four survivors decide.
        let setup = ConsensusSetup {
            n: 5,
            crash_coordinator_after: Some(SimDuration::from_millis(200)),
            ..ConsensusSetup::default_wan(4)
        };
        let outcome = run_consensus_experiment(&setup);
        assert!(outcome.deciders() >= 4, "{:?}", outcome.decisions);
        assert!(outcome.agreement());
        assert!(outcome.validity());
    }

    #[test]
    fn runs_are_deterministic() {
        let setup = ConsensusSetup::default_wan(5);
        let a = run_consensus_experiment(&setup);
        let b = run_consensus_experiment(&setup);
        assert_eq!(a.decisions, b.decisions);
        assert_eq!(a.latencies, b.latencies);
    }

    #[test]
    fn faster_detector_decides_faster_after_coordinator_crash() {
        // The headline relation of the paper's reference [6]: detector delay
        // flows through to consensus latency. Heartbeats warm the detectors
        // for 30 s; the coordinator crashes just before the protocol starts,
        // so the first round stalls on failure detection. Same predictor,
        // different margins: the tighter margin decides no later.
        let base = ConsensusSetup {
            crash_coordinator_after: Some(SimDuration::from_millis(29_500)),
            start_after: SimDuration::from_secs(30),
            ..ConsensusSetup::default_wan(6)
        };
        let fast = ConsensusSetup {
            fd_combo: Combination::new(
                fd_core::PredictorKind::Last,
                fd_core::MarginKind::Jac { phi: 1.0 },
            ),
            ..base.clone()
        };
        let slow = ConsensusSetup {
            fd_combo: Combination::new(
                fd_core::PredictorKind::Last,
                fd_core::MarginKind::Ci { gamma: 3.31 },
            ),
            ..base
        };
        let a = run_consensus_experiment(&fast);
        let b = run_consensus_experiment(&slow);
        let la = a.last_decision().expect("fast decided");
        let lb = b.last_decision().expect("slow decided");
        assert!(la <= lb, "fast {la} vs slow {lb}");
        // And both decide within a couple of ηs of the crash-start.
        assert!(la < SimTime::from_secs(35), "la={la}");
    }
}
