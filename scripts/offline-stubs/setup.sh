#!/usr/bin/env sh
# Point cargo at the offline stub crates when the registry is unreachable.
# Usage:  . scripts/offline-stubs/setup.sh   (or copy the config below)
#
# Creates an isolated CARGO_HOME so the normal cargo config (and any real
# registry mirrors) stay untouched.
set -e
FDH="${FDH:-/tmp/fdh}"
mkdir -p "$FDH"
cat > "$FDH/config.toml" <<CFG
[source.crates-io]
replace-with = "offline-stubs"

[source.offline-stubs]
directory = "$(cd "$(dirname "$0")/vendor" && pwd)"

[net]
offline = true
CFG
export CARGO_HOME="$FDH"
echo "CARGO_HOME=$FDH (offline stub sources active)"
