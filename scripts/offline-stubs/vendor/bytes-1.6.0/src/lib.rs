//! Minimal API stand-in for `bytes` 1.x (network-isolated builds):
//! `Vec<u8>`-backed buffers with the big-endian `Buf`/`BufMut` accessors
//! this workspace's wire codecs use.

use std::ops::{Deref, DerefMut};

/// Read-side buffer cursor (big-endian accessors, like the real crate).
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        let n = dst.len();
        dst.copy_from_slice(&self.chunk()[..n]);
        self.advance(n);
    }

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }

    fn get_i64(&mut self) -> i64 {
        self.get_u64() as i64
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "buffer underflow");
        *self = &self[cnt..];
    }
}

/// Write-side buffer (big-endian accessors, like the real crate).
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_i64(&mut self, v: i64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Immutable byte container.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    pub fn new() -> Self {
        Self(Vec::new())
    }

    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self(data.to_vec())
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.0.clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self(v)
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Self(v.to_vec())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.0.len()
    }

    fn chunk(&self) -> &[u8] {
        &self.0
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.0.len(), "buffer underflow");
        self.0.drain(..cnt);
    }
}

/// Growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    pub fn new() -> Self {
        Self(Vec::new())
    }

    pub fn with_capacity(cap: usize) -> Self {
        Self(Vec::with_capacity(cap))
    }

    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.0.clone()
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.0
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.0.len()
    }

    fn chunk(&self) -> &[u8] {
        &self.0
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.0.len(), "buffer underflow");
        self.0.drain(..cnt);
    }
}
