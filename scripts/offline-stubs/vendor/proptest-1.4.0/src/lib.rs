//! Minimal API stand-in for `proptest` 1.x (network-isolated builds).
//!
//! Implements the subset this workspace uses: the `proptest!` macro with an
//! optional `#![proptest_config(...)]` header, integer/float range
//! strategies, `collection::vec`, `option::weighted`, `bool::ANY`,
//! `any::<T>()`, `Just`, `prop_map`, `prop_oneof!`, and the
//! `prop_assert*` family returning `TestCaseError`.
//!
//! No shrinking: each test runs `cases` deterministic random inputs seeded
//! from the test's name, and a failure reports the case index so the run
//! can be reproduced (the seed derivation is fixed).

/// Deterministic generator backing all strategies (splitmix64).
#[derive(Debug, Clone)]
pub struct StubRng {
    state: u64,
}

impl StubRng {
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }

    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) as f64))
    }
}

pub mod test_runner {
    /// Test-case failure carrying a message; `prop_assert!` produces it and
    /// helper functions can return it through `?`.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            Self(msg.into())
        }

        /// Mirror of the real crate's `TestCaseError::Fail` constructor
        /// surface (`reject` is treated as failure here).
        pub fn reject(msg: impl Into<String>) -> Self {
            Self(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Runner configuration; only `cases` is honored.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
        pub max_shrink_iters: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            Self {
                cases,
                max_shrink_iters: 0,
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // The real default is 256; trimmed for offline debug-build runs
            // while keeping enough cases to exercise the properties.
            Self::with_cases(64)
        }
    }
}

pub mod strategy {
    use super::StubRng;
    use std::ops::Range;
    use std::rc::Rc;

    /// A value generator. No shrinking; `generate` must be deterministic in
    /// the RNG stream.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut StubRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn prop_filter<F>(self, _whence: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            let s = self;
            BoxedStrategy(Rc::new(move |rng| s.generate(rng)))
        }
    }

    /// Type-erased strategy (used by `prop_oneof!`).
    #[derive(Clone)]
    pub struct BoxedStrategy<V>(Rc<dyn Fn(&mut StubRng) -> V>);

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut StubRng) -> V {
            (self.0)(rng)
        }
    }

    /// Weighted union of same-valued strategies.
    pub struct Union<V> {
        pub arms: Vec<(u32, BoxedStrategy<V>)>,
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut StubRng) -> V {
            let total: u64 = self.arms.iter().map(|(w, _)| u64::from(*w)).sum();
            let mut pick = rng.below(total.max(1));
            for (w, s) in &self.arms {
                if pick < u64::from(*w) {
                    return s.generate(rng);
                }
                pick -= u64::from(*w);
            }
            self.arms.last().expect("empty prop_oneof").1.generate(rng)
        }
    }

    /// Constant strategy.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StubRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut StubRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    pub struct Filter<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut StubRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter rejected 1000 consecutive candidates");
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StubRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StubRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u64;
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut StubRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut StubRng) -> f32 {
            self.start + (rng.unit_f64() as f32) * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut StubRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use super::StubRng;
    use std::marker::PhantomData;

    /// `any::<T>()` support for the primitive types the workspace fuzzes.
    pub struct Any<T>(PhantomData<T>);

    pub fn any<T>() -> Any<T> {
        Any(PhantomData)
    }

    macro_rules! any_int {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StubRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Any<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut StubRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Strategy for Any<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut StubRng) -> f64 {
            // Finite floats across a wide magnitude range.
            let m = rng.unit_f64() * 2.0 - 1.0;
            let e = rng.below(613) as i32 - 306;
            m * 10f64.powi(e)
        }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::StubRng;
    use std::ops::Range;

    /// Size specification: an exact count or a half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StubRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo).max(1) as u64;
            let n = self.size.lo + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    use super::strategy::Strategy;
    use super::StubRng;

    pub struct Weighted<S> {
        p_some: f64,
        inner: S,
    }

    pub fn weighted<S: Strategy>(p_some: f64, inner: S) -> Weighted<S> {
        Weighted { p_some, inner }
    }

    impl<S: Strategy> Strategy for Weighted<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut StubRng) -> Option<S::Value> {
            if rng.unit_f64() < self.p_some {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

pub mod bool {
    use super::strategy::Strategy;
    use super::StubRng;

    /// Uniform boolean strategy (`proptest::bool::ANY`).
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut StubRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Seed derivation for a named test: FNV-1a over the name.
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@munch ($cfg); $($rest)*);
    };
    (@munch ($cfg:expr);) => {};
    (@munch ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let __pt_cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut __pt_rng = $crate::StubRng::new($crate::seed_for(concat!(
                module_path!(), "::", stringify!($name)
            )));
            for __pt_case in 0..__pt_cfg.cases {
                $(
                    let __pt_gen = $crate::strategy::Strategy::generate(&($strat), &mut __pt_rng);
                    let $pat = __pt_gen;
                )+
                let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body Ok(()) })();
                if let Err(e) = result {
                    panic!(
                        "proptest case {}/{} of {} failed: {}",
                        __pt_case + 1, __pt_cfg.cases, stringify!($name), e
                    );
                }
            }
        }
        $crate::proptest!(@munch ($cfg); $($rest)*);
    };
    (@munch ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident : $ty:ty),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $crate::proptest!(@munch ($cfg);
            $(#[$meta])*
            fn $name($($arg in $crate::arbitrary::any::<$ty>()),+) $body
            $($rest)*
        );
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@munch ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} == {} ({:?} vs {:?})",
                stringify!($a), stringify!($b), a, b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "{} ({:?} vs {:?})", format!($($fmt)*), a, b
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if a == b {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} != {} (both {:?})",
                stringify!($a), stringify!($b), a
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            // No rejection machinery: treat an unmet assumption as a pass
            // for this case.
            return Ok(());
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union {
            arms: vec![
                $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
            ],
        }
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union {
            arms: vec![
                $((1u32, $crate::strategy::Strategy::boxed($strat))),+
            ],
        }
    };
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::collection;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
    /// The real prelude exposes the `prop` module alias.
    pub mod prop {
        pub use crate::{bool, collection, option};
    }
}
