//! Minimal API-compatible stand-in for `rand` 0.8, for network-isolated
//! builds (see `scripts/offline-stubs/README.md`).
//!
//! `SmallRng` is implemented as xoshiro256++ with the rand_core splitmix64
//! `seed_from_u64` expansion — the same construction rand 0.8 uses on
//! 64-bit targets — so draw streams match the real crate for the
//! `next_u32`/`next_u64`/`gen::<f64>` surface this workspace exercises.

/// Error type returned by fallible RNG operations (never constructed here).
#[derive(Debug)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("rng error")
    }
}

impl std::error::Error for Error {}

/// Core RNG interface, mirroring `rand_core::RngCore`.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types drawable from the standard distribution (the subset used here).
pub trait StandardDraw {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardDraw for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardDraw for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardDraw for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // rand 0.8 `Standard` for f64: 53 high bits, uniform in [0, 1).
        let scale = 1.0 / ((1u64 << 53) as f64);
        (rng.next_u64() >> 11) as f64 * scale
    }
}

impl StandardDraw for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let scale = 1.0 / ((1u32 << 24) as f32);
        (rng.next_u32() >> 8) as f32 * scale
    }
}

impl StandardDraw for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl StandardDraw for u8 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u8
    }
}

impl StandardDraw for u16 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u16
    }
}

/// User-facing RNG convenience methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn gen<T: StandardDraw>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable RNG construction, mirroring `rand_core::SeedableRng`.
pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// rand_core's documented splitmix64 expansion.
    fn seed_from_u64(mut state: u64) -> Self {
        const PHI: u64 = 0x9e37_79b9_7f4a_7c15;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(PHI);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }

    fn from_entropy() -> Self {
        // Deterministic on purpose: this stand-in exists for reproducible
        // offline test runs only.
        Self::seed_from_u64(0x5eed_5eed_5eed_5eed)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++, the algorithm behind rand 0.8's 64-bit `SmallRng`.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            let mut chunks = dest.chunks_exact_mut(8);
            for chunk in &mut chunks {
                chunk.copy_from_slice(&self.next_u64().to_le_bytes());
            }
            let rem = chunks.into_remainder();
            if !rem.is_empty() {
                let n = rem.len();
                rem.copy_from_slice(&self.next_u64().to_le_bytes()[..n]);
            }
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (word, chunk) in s.iter_mut().zip(seed.chunks_exact(8)) {
                *word = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            if s == [0; 4] {
                s = [
                    0x9e37_79b9_7f4a_7c15,
                    0xbf58_476d_1ce4_e5b9,
                    0x94d0_49bb_1331_11eb,
                    0x2545_f491_4f6c_dd1d,
                ];
            }
            Self { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
