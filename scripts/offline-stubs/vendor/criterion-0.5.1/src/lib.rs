//! Placeholder for `criterion` (bench targets are not built in tier-1
//! offline runs; this exists only so dependency resolution succeeds).

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}
