//! Minimal API stand-in for `parking_lot` (network-isolated builds):
//! std-backed, poison-transparent locks.

pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}
