//! Offline stand-in for `crossbeam` (declared but unused by this workspace).
