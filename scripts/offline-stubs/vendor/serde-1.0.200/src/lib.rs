//! Minimal API stand-in for `serde` 1.x (network-isolated builds).
//!
//! The workspace derives `Serialize`/`Deserialize` on config/report types
//! but serializes exclusively through hand-rolled writers, so the traits
//! here are markers and the derive macros are no-ops.

pub trait Serialize {}

pub trait Deserialize<'de>: Sized {}

pub trait Serializer {}

pub trait Deserializer<'de> {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

pub mod ser {
    pub use crate::{Serialize, Serializer};
}

pub mod de {
    pub use crate::{Deserialize, Deserializer};
}
