#!/usr/bin/env bash
# Mutation guard for the fd-check model suite.
#
# A model checker that always passes proves nothing: the suite is only
# trustworthy if breaking the code it guards makes it fail. This script
# re-introduces the two ordering bugs the PR-4 review centered on —
# each as a minimal source mutation of `publish_words` — and asserts
# that `cargo test -p fd-serve --features check` fails deterministically
# under each one, then passes again once the source is restored.
#
# Mutants:
#   fence  — delete the leading release fence, so a later epoch's
#            relaxed word stores may become visible before the previous
#            epoch's seq release store (mixed-epoch snapshots).
#   ring   — bump seq before filling the delta ring, so a client can
#            ack an epoch whose word deltas were never sent.
#
# Run from the repo root: scripts/check-mutants.sh
set -euo pipefail

cd "$(dirname "$0")/.."
VIEW=crates/fd-serve/src/view.rs

if ! git diff --quiet -- "$VIEW"; then
    echo "check-mutants: $VIEW has uncommitted changes; refusing to mutate" >&2
    exit 2
fi

restore() { git checkout -- "$VIEW"; }
trap restore EXIT

run_suite() {
    FD_CHECK_BUDGET_MS="${FD_CHECK_BUDGET_MS:-60000}" \
        cargo test -q -p fd-serve --features check --test model_seqlock "$@"
}

mutate() {
    python3 - "$1" <<'EOF'
import pathlib, sys

view = pathlib.Path("crates/fd-serve/src/view.rs")
src = view.read_text()

RING = """        {
            let mut ring = seg.deltas.lock().expect("delta ring poisoned");
            if ring.len() == DELTA_RING {
                ring.remove(0);
            }
            ring.push(DeltaEntry { epoch, changes });
        }
        // The release store is the publication point: everything above
        // happens-before any reader that observes the new sequence.
        seg.seq.store(epoch * 2, Ordering::Release);"""

MUTANTS = {
    # Revert the release fence that orders this epoch's word stores
    # after the previous epoch's seq store.
    "fence": (
        "        fence(Ordering::Release);",
        "        if false { fence(Ordering::Release); } // MUTANT",
    ),
    # Publish seq before the delta ring holds the epoch's changes.
    "ring": (
        RING,
        "        seg.seq.store(epoch * 2, Ordering::Release); // MUTANT\n"
        + "\n".join(RING.splitlines()[:7]),
    ),
}

before, after = MUTANTS[sys.argv[1]]
assert src.count(before) == 1, f"mutation site for {sys.argv[1]!r} not found exactly once"
view.write_text(src.replace(before, after, 1))
EOF
}

echo "== baseline: model suite must pass on pristine source"
run_suite

for mutant in fence ring; do
    echo "== mutant '$mutant': model suite must FAIL"
    mutate "$mutant"
    if run_suite >/tmp/check-mutants-$mutant.log 2>&1; then
        echo "check-mutants: mutant '$mutant' SURVIVED — the model suite is not sensitive to it" >&2
        exit 1
    fi
    echo "   killed (see /tmp/check-mutants-$mutant.log)"
    restore
done

echo "== restored: model suite must pass again"
run_suite
echo "check-mutants: all mutants killed"
