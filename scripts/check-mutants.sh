#!/usr/bin/env bash
# Mutation guard for the model suite and the shard-recovery invariant.
#
# A model checker that always passes proves nothing: the suites are only
# trustworthy if breaking the code they guard makes them fail. This script
# re-introduces known bugs — each as a minimal source mutation — and
# asserts that the guarding suite fails deterministically under each one,
# then passes again once the source is restored.
#
# Mutants:
#   fence  — (view.rs) delete the leading release fence, so a later
#            epoch's relaxed word stores may become visible before the
#            previous epoch's seq release store (mixed-epoch snapshots).
#            Killed by the fd-check model suite.
#   ring   — (view.rs) bump seq before filling the delta ring, so a
#            client can ack an epoch whose word deltas were never sent.
#            Killed by the fd-check model suite.
#   dirty  — (view.rs) sabotage incremental-publish dirty tracking: drop
#            the previous publication's changes from the rewrite cover,
#            so the epoch written two buffers ago leaks a stale word into
#            the new epoch. Killed by the incremental-publish equivalence
#            invariant in the fd-check model suite.
#   warm   — (sharded.rs) sabotage the warm restart path: the supervisor
#            still replays from the checkpoint position, but the bank's
#            snapshot image is never restored, so a "warm" shard comes
#            back with amnesiac detectors. Killed by the digest-identity
#            test `warm_restart_is_bit_identical_across_shard_counts`.
#   phi    — (predictor.rs) disable the φ-accrual start phase on a flap:
#            the window still cold-restarts but start_left is forced to
#            zero, so the σ-floored start timeout never applies and the
#            recovery transient's second beat is wrongly suspected.
#            Killed by the flapping-chaos suite's zero-mistake assertion.
#
# Run from the repo root: scripts/check-mutants.sh
set -euo pipefail

cd "$(dirname "$0")/.."
VIEW=crates/fd-serve/src/view.rs
SHARDED=crates/fd-runtime/src/sharded.rs
PRED=crates/fd-core/src/predictor.rs

if ! git diff --quiet -- "$VIEW" "$SHARDED" "$PRED"; then
    echo "check-mutants: $VIEW, $SHARDED or $PRED has uncommitted changes; refusing to mutate" >&2
    exit 2
fi

restore() { git checkout -- "$VIEW" "$SHARDED" "$PRED"; }
trap restore EXIT

run_model_suite() {
    FD_CHECK_BUDGET_MS="${FD_CHECK_BUDGET_MS:-60000}" \
        cargo test -q -p fd-serve --features check --test model_seqlock "$@"
}

run_warm_suite() {
    cargo test -q -p fd-runtime warm_restart_is_bit_identical_across_shard_counts
}

run_phi_suite() {
    cargo test -q -p fd-core --test flapping_chaos
}

# The suite that must kill each mutant (and must pass on pristine source).
suite_for() {
    case "$1" in
        warm) run_warm_suite ;;
        phi) run_phi_suite ;;
        *) run_model_suite ;;
    esac
}

mutate() {
    python3 - "$1" <<'EOF'
import pathlib, sys

RING = """        {
            let mut ring = seg.deltas.lock().expect("delta ring poisoned");
            if ring.len() == DELTA_RING {
                ring.remove(0);
            }
            ring.push(DeltaEntry { epoch, changes });
        }
        // The release store is the publication point: everything above
        // happens-before any reader that observes the new sequence.
        seg.seq.store(epoch * 2, Ordering::Release);"""

WARM = """        let warm = mode == RestartMode::Warm;
        if warm {
            bank.restore_bytes(&ckpt.bank)
                .expect("checkpoint bank image must round-trip");
        }"""

MUTANTS = {
    # Revert the release fence that orders this epoch's word stores
    # after the previous epoch's seq store.
    "fence": (
        "crates/fd-serve/src/view.rs",
        "        fence(Ordering::Release);",
        "        if false { fence(Ordering::Release); } // MUTANT",
    ),
    # Publish seq before the delta ring holds the epoch's changes.
    "ring": (
        "crates/fd-serve/src/view.rs",
        RING,
        "        seg.seq.store(epoch * 2, Ordering::Release); // MUTANT\n"
        + "\n".join(RING.splitlines()[:7]),
    ),
    # Incremental publish that forgets the previous epoch's changes:
    # the buffer being written still holds the state from two epochs
    # ago, so a word changed last epoch but clean this epoch goes stale.
    "dirty": (
        "crates/fd-serve/src/view.rs",
        "                let mut cand: Vec<u32> = Vec::with_capacity(self.prev_changed.len() + 16);\n"
        + "                cand.extend_from_slice(&self.prev_changed);",
        "                let mut cand: Vec<u32> = Vec::with_capacity(self.prev_changed.len() + 16);\n"
        + "                // MUTANT: previous publication's changes dropped from the cover",
    ),
    # Warm restart that forgets to restore the bank image: replay still
    # runs, but the detectors start from scratch — digests must diverge.
    "warm": (
        "crates/fd-runtime/src/sharded.rs",
        WARM,
        WARM.replace("if warm {", "if warm && false { // MUTANT", 1),
    ),
    # φ-accrual flap with the start phase disabled: the cold-restarted
    # window has σ ≈ 0, the timeout collapses onto the first
    # post-recovery delay, and the transient's second beat becomes a
    # wrongful suspicion.
    "phi": (
        "crates/fd-core/src/predictor.rs",
        "            self.start_left = self.start_len();",
        "            self.start_left = 0; // MUTANT",
    ),
}

path, before, after = MUTANTS[sys.argv[1]]
view = pathlib.Path(path)
src = view.read_text()
assert src.count(before) == 1, f"mutation site for {sys.argv[1]!r} not found exactly once in {path}"
view.write_text(src.replace(before, after, 1))
EOF
}

echo "== baseline: guarding suites must pass on pristine source"
run_model_suite
run_warm_suite
run_phi_suite

for mutant in fence ring dirty warm phi; do
    echo "== mutant '$mutant': guarding suite must FAIL"
    mutate "$mutant"
    if suite_for "$mutant" >/tmp/check-mutants-$mutant.log 2>&1; then
        echo "check-mutants: mutant '$mutant' SURVIVED — the suite is not sensitive to it" >&2
        exit 1
    fi
    echo "   killed (see /tmp/check-mutants-$mutant.log)"
    restore
done

echo "== restored: guarding suites must pass again"
run_model_suite
run_warm_suite
run_phi_suite
echo "check-mutants: all mutants killed"
