//! Property-based tests across the whole stack: random workloads through the
//! full simulation must preserve the failure-detector invariants.
//!
//! `system_properties.proptest-regressions` (next to this file) holds the
//! shrunk counterexamples proptest found in the past. Upstream proptest
//! replays it automatically, but the replay depends on proptest's own RNG —
//! under a different proptest implementation (or after a strategy change)
//! the saved seed no longer reproduces the historical case. Each entry is
//! therefore *also* pinned below as an explicit deterministic test
//! (see [`pinned_regression_low_floor_heavy_loss`]), which runs everywhere.

use fdqos::core::combinations::Combination;
use fdqos::core::{MarginKind, PredictorKind};
use fdqos::experiments::{HeartbeaterLayer, MonitorLayer, SimCrashLayer};
use fdqos::net::{BernoulliLoss, LinkModel, ShiftedGammaDelay};
use fdqos::runtime::{Process, ProcessId, SimEngine};
use fdqos::sim::{DetRng, SimDuration, SimTime};
use fdqos::stat::{extract_metrics, EventKind};
use proptest::prelude::*;

fn run_system(
    seed: u64,
    mttc_s: u64,
    ttr_s: u64,
    loss: f64,
    delay_floor_ms: f64,
    horizon_s: u64,
) -> (fdqos::stat::EventLog, SimTime, usize) {
    let eta = SimDuration::from_secs(1);
    let detectors = vec![
        Combination::new(PredictorKind::Last, MarginKind::Jac { phi: 2.0 }).build(eta),
        Combination::new(
            PredictorKind::WinMean { window: 5 },
            MarginKind::Ci { gamma: 2.0 },
        )
        .build(eta),
    ];
    let n = detectors.len();
    let mut engine = SimEngine::new();
    engine.add_process(Process::new(ProcessId(0)).with_layer(MonitorLayer::new(detectors)));
    engine.add_process(
        Process::new(ProcessId(1))
            .with_layer(SimCrashLayer::new(
                SimDuration::from_secs(mttc_s),
                SimDuration::from_secs(ttr_s),
                DetRng::seed_from(seed),
            ))
            .with_layer(HeartbeaterLayer::new(ProcessId(0), eta)),
    );
    engine.set_link(
        ProcessId(1),
        ProcessId(0),
        LinkModel::new(
            ShiftedGammaDelay::new(delay_floor_ms, 1.5, 5.0),
            BernoulliLoss::new(loss),
            DetRng::seed_from(seed + 1),
        ),
    );
    let end = SimTime::from_secs(horizon_s);
    engine.run_until(end);
    (engine.into_event_log(), end, n)
}

/// The saved regression from `system_properties.proptest-regressions`,
/// pinned verbatim: `seed = 799, mttc_s = 30, ttr_s = 5,
/// loss = 0.07982319648074791, floor = 1.0`. A 1 ms delay floor with ~8%
/// loss once produced a detection-time sample that broke the
/// `T_D ≤ TTR + 1.5·MTTC + slack` bound. Kept as a plain test so the case
/// runs on every `cargo test`, independent of proptest's replay machinery.
#[test]
fn pinned_regression_low_floor_heavy_loss() {
    let (seed, mttc_s, ttr_s, loss, floor) = (799, 30, 5, 0.07982319648074791, 1.0);
    let (log, end, n) = run_system(seed, mttc_s, ttr_s, loss, floor, 400);
    for d in 0..n as u32 {
        let m = extract_metrics(&log, d, end);
        assert!(m.undetected_crashes <= m.total_crashes);
        assert_eq!(
            m.detection_times_ms.len() + m.undetected_crashes,
            m.total_crashes
        );
        for &td in &m.detection_times_ms {
            assert!(td >= 0.0 && td.is_finite());
            assert!(
                td <= (ttr_s as f64 + mttc_s as f64 * 1.5 + 2.0) * 1_000.0,
                "detector {d}: T_D = {td} ms"
            );
        }
        if let Some(pa) = m.query_accuracy() {
            assert!((0.0..=1.0).contains(&pa));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Whatever the workload, the extracted QoS metrics satisfy their
    /// structural invariants for every detector.
    #[test]
    fn metrics_invariants_under_random_workloads(
        seed in 0u64..1_000,
        mttc_s in 30u64..120,
        ttr_s in 5u64..20,
        loss in 0.0f64..0.15,
        floor in 1.0f64..300.0,
    ) {
        let (log, end, n) = run_system(seed, mttc_s, ttr_s, loss, floor, 400);
        for d in 0..n as u32 {
            let m = extract_metrics(&log, d, end);
            prop_assert!(m.undetected_crashes <= m.total_crashes);
            prop_assert_eq!(
                m.detection_times_ms.len() + m.undetected_crashes,
                m.total_crashes
            );
            for &td in &m.detection_times_ms {
                prop_assert!(td >= 0.0 && td.is_finite());
                // Detection can never take longer than the repair interval
                // plus slack (the permanent suspicion starts before restore).
                prop_assert!(td <= (ttr_s as f64 + mttc_s as f64 * 1.5 + 2.0) * 1_000.0);
            }
            for &tm in &m.mistake_durations_ms {
                // Zero-length mistakes are possible: a deadline expiring at
                // the very instant the correcting heartbeat arrives.
                prop_assert!(tm >= 0.0 && tm.is_finite());
            }
            for &tmr in &m.mistake_recurrences_ms {
                prop_assert!(tmr >= 0.0 && tmr.is_finite());
            }
            if let Some(pa) = m.query_accuracy() {
                prop_assert!((0.0..=1.0).contains(&pa));
            }
        }
    }

    /// Suspicion edges strictly alternate for each detector in the log.
    #[test]
    fn edges_alternate(seed in 0u64..500) {
        let (log, _, n) = run_system(seed, 60, 10, 0.05, 100.0, 300);
        let mut state = vec![false; n];
        for e in log.iter() {
            match e.kind {
                EventKind::StartSuspect { detector } => {
                    let s = &mut state[detector as usize];
                    prop_assert!(!*s, "double start at {}", e.at);
                    *s = true;
                }
                EventKind::EndSuspect { detector } => {
                    let s = &mut state[detector as usize];
                    prop_assert!(*s, "end without start at {}", e.at);
                    *s = false;
                }
                _ => {}
            }
        }
    }

    /// The event log is globally time-ordered and crash/restore alternate.
    #[test]
    fn log_is_ordered_and_crashes_alternate(seed in 0u64..500) {
        let (log, _, _) = run_system(seed, 50, 8, 0.02, 50.0, 300);
        let mut last = SimTime::ZERO;
        let mut down = false;
        for e in log.iter() {
            prop_assert!(e.at >= last);
            last = e.at;
            match e.kind {
                EventKind::Crash => {
                    prop_assert!(!down);
                    down = true;
                }
                EventKind::Restore => {
                    prop_assert!(down);
                    down = false;
                }
                _ => {}
            }
        }
    }

    /// Determinism: identical parameters give bit-identical logs.
    #[test]
    fn full_system_determinism(seed in 0u64..200) {
        let (a, _, _) = run_system(seed, 45, 6, 0.08, 120.0, 200);
        let (b, _, _) = run_system(seed, 45, 6, 0.08, 120.0, 200);
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            prop_assert_eq!(x, y);
        }
    }
}
