//! Tests of the paper-literal experimental architecture (its Figure 3): a
//! MultiPlexer layer feeding independent detector components, plus the
//! engine behaviours the architecture relies on (message reordering, stale
//! heartbeats, multi-process monitoring).

use fdqos::core::{ConstantMargin, FailureDetector, JacobsonMargin, Last, WinMean};
use fdqos::experiments::{HeartbeaterLayer, MonitorLayer, SimCrashLayer};
use fdqos::net::{LinkModel, NoLoss, TruncatedNormalDelay, WanProfile};
use fdqos::runtime::{
    Context, Layer, Message, MultiplexerLayer, Process, ProcessId, SimEngine, TimerId,
};
use fdqos::sim::{DetRng, SimDuration, SimTime};
use fdqos::stat::{extract_metrics, EventKind};

/// One failure detector wrapped as a multiplexer child component, emitting
/// suspicion edges under its own detector id.
struct FdComponent {
    id: u32,
    fd: FailureDetector,
}

impl Layer for FdComponent {
    fn on_deliver(&mut self, ctx: &mut Context, msg: Message) {
        if !msg.is_heartbeat() {
            return;
        }
        let before = self.fd.next_deadline();
        if let Some(fdqos::core::FdTransition::EndSuspect) =
            self.fd.on_heartbeat(msg.seq, ctx.now())
        {
            ctx.emit(EventKind::EndSuspect { detector: self.id });
        }
        if self.fd.next_deadline() != before {
            if let Some(deadline) = self.fd.next_deadline() {
                let delay = deadline
                    .checked_duration_since(ctx.now())
                    .unwrap_or(SimDuration::ZERO);
                ctx.set_timer(delay, 0);
            }
        }
    }
    fn on_timer(&mut self, ctx: &mut Context, _id: TimerId) {
        if let Some(fdqos::core::FdTransition::StartSuspect) = self.fd.check(ctx.now()) {
            ctx.emit(EventKind::StartSuspect { detector: self.id });
        }
    }
    fn name(&self) -> &str {
        "fd-component"
    }
}

fn identical_fd() -> FailureDetector {
    FailureDetector::new(
        "mux-fd",
        Last::new(),
        ConstantMargin::new(100.0),
        SimDuration::from_secs(1),
    )
}

#[test]
fn multiplexed_identical_detectors_agree_exactly() {
    // The MultiPlexer guarantee: identical components fed the identical
    // stream produce identical suspicion histories.
    let mux = MultiplexerLayer::new()
        .with_child(FdComponent {
            id: 0,
            fd: identical_fd(),
        })
        .with_child(FdComponent {
            id: 1,
            fd: identical_fd(),
        })
        .with_child(FdComponent {
            id: 2,
            fd: identical_fd(),
        });
    let mut engine = SimEngine::new();
    engine.add_process(Process::new(ProcessId(0)).with_layer(mux));
    engine.add_process(
        Process::new(ProcessId(1))
            .with_layer(SimCrashLayer::new(
                SimDuration::from_secs(60),
                SimDuration::from_secs(10),
                DetRng::seed_from(5),
            ))
            .with_layer(HeartbeaterLayer::new(
                ProcessId(0),
                SimDuration::from_secs(1),
            )),
    );
    engine.set_link(
        ProcessId(1),
        ProcessId(0),
        WanProfile::italy_japan().link(DetRng::seed_from(6)),
    );
    let end = SimTime::from_secs(600);
    engine.run_until(end);

    let histories: Vec<Vec<(SimTime, bool)>> = (0..3u32)
        .map(|d| {
            engine
                .event_log()
                .iter()
                .filter_map(|e| match e.kind {
                    EventKind::StartSuspect { detector } if detector == d => Some((e.at, true)),
                    EventKind::EndSuspect { detector } if detector == d => Some((e.at, false)),
                    _ => None,
                })
                .collect()
        })
        .collect();
    assert!(!histories[0].is_empty(), "some suspicion activity expected");
    assert_eq!(histories[0], histories[1]);
    assert_eq!(histories[1], histories[2]);
}

#[test]
fn multiplexed_different_detectors_diverge() {
    // Different margins behind the same multiplexer must behave differently
    // while still seeing the same stream.
    let tight = FailureDetector::new(
        "tight",
        WinMean::new(5),
        JacobsonMargin::new(1.0),
        SimDuration::from_secs(1),
    );
    let loose = FailureDetector::new(
        "loose",
        WinMean::new(5),
        ConstantMargin::new(2_000.0),
        SimDuration::from_secs(1),
    );
    let mux = MultiplexerLayer::new()
        .with_child(FdComponent { id: 0, fd: tight })
        .with_child(FdComponent { id: 1, fd: loose });
    let mut engine = SimEngine::new();
    engine.add_process(Process::new(ProcessId(0)).with_layer(mux));
    engine.add_process(Process::new(ProcessId(1)).with_layer(HeartbeaterLayer::new(
        ProcessId(0),
        SimDuration::from_secs(1),
    )));
    // Lossy-ish volatile link to provoke mistakes on the tight detector.
    engine.set_link(
        ProcessId(1),
        ProcessId(0),
        WanProfile::congested_wan().link(DetRng::seed_from(7)),
    );
    let end = SimTime::from_secs(900);
    engine.run_until(end);
    let m_tight = extract_metrics(engine.event_log(), 0, end);
    let m_loose = extract_metrics(engine.event_log(), 1, end);
    assert!(
        m_tight.mistake_durations_ms.len() > m_loose.mistake_durations_ms.len(),
        "tight {} vs loose {}",
        m_tight.mistake_durations_ms.len(),
        m_loose.mistake_durations_ms.len()
    );
}

#[test]
fn reordered_heartbeats_are_observed_but_do_not_regress_freshness() {
    // With η = 10 ms and delay σ ≫ η, messages overtake each other on the
    // link; the detector must consume the stale ones as delay observations
    // without ever moving its freshness point backwards.
    let eta = SimDuration::from_millis(10);
    let fd = FailureDetector::new("r", Last::new(), ConstantMargin::new(500.0), eta);
    let mut engine = SimEngine::new();
    engine.add_process(Process::new(ProcessId(0)).with_layer(MonitorLayer::new(vec![fd])));
    engine.add_process(
        Process::new(ProcessId(1)).with_layer(HeartbeaterLayer::new(ProcessId(0), eta)),
    );
    engine.set_link(
        ProcessId(1),
        ProcessId(0),
        LinkModel::new(
            TruncatedNormalDelay::new(50.0, 30.0, 1.0),
            NoLoss,
            DetRng::seed_from(8),
        ),
    );
    engine.run_until(SimTime::from_secs(30));

    // Reordering actually happened…
    let monitor = engine.process_mut(ProcessId(0));
    let layer = monitor.layer_mut(0);
    assert_eq!(layer.name(), "monitor");
    // …observable through the Received sequence in the log.
    let seqs: Vec<u64> = engine
        .event_log()
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::Received { seq } => Some(seq),
            _ => None,
        })
        .collect();
    assert!(seqs.len() > 2_000, "received {}", seqs.len());
    let out_of_order = seqs.windows(2).filter(|w| w[1] < w[0]).count();
    assert!(
        out_of_order > 50,
        "expected real reordering, got {out_of_order}"
    );
    // The detector never got stuck suspecting the (alive) process.
    let m = extract_metrics(engine.event_log(), 0, SimTime::from_secs(30));
    assert_eq!(m.total_crashes, 0);
    for pair in m
        .mistake_durations_ms
        .iter()
        .zip(m.mistake_recurrences_ms.iter())
    {
        assert!(pair.0.is_finite() && pair.1.is_finite());
    }
}

#[test]
fn one_monitor_watches_two_senders_independently() {
    // Two monitored processes, one monitor process with two source-filtered
    // monitor layers; only the crashing sender's detector fires.
    let eta = SimDuration::from_secs(1);
    let fd_a = FailureDetector::new("a", Last::new(), ConstantMargin::new(150.0), eta);
    let fd_b = FailureDetector::new("b", Last::new(), ConstantMargin::new(150.0), eta);
    let mut engine = SimEngine::new();
    engine.add_process(
        Process::new(ProcessId(0))
            .with_layer(MonitorLayer::new(vec![fd_a]).for_source(ProcessId(1)))
            .with_layer(
                MonitorLayer::new(vec![fd_b])
                    .for_source(ProcessId(2))
                    .with_detector_base(1),
            ),
    );
    engine.add_process(
        Process::new(ProcessId(1))
            .with_layer(SimCrashLayer::new(
                SimDuration::from_secs(50),
                SimDuration::from_secs(10),
                DetRng::seed_from(9),
            ))
            .with_layer(HeartbeaterLayer::new(ProcessId(0), eta)),
    );
    engine.add_process(
        Process::new(ProcessId(2)).with_layer(HeartbeaterLayer::new(ProcessId(0), eta)),
    );
    for (p, s) in [(1u16, 20u64), (2, 21)] {
        engine.set_link(
            ProcessId(p),
            ProcessId(0),
            LinkModel::new(
                TruncatedNormalDelay::new(100.0, 5.0, 50.0),
                NoLoss,
                DetRng::seed_from(s),
            ),
        );
    }
    let end = SimTime::from_secs(400);
    engine.run_until(end);
    // fd_a (detector id 0) watches the crashing p1; fd_b (detector id 1)
    // watches the healthy p2 through the pass-through monitor stack.
    let m_a = extract_metrics(engine.event_log(), 0, end);
    assert!(m_a.total_crashes >= 3);
    assert_eq!(m_a.undetected_crashes, 0);
    let m_b = extract_metrics(engine.event_log(), 1, end);
    // p2 never crashes: its detector must make no suspicions at all on a
    // constant lossless link. (Crash events in the log belong to p1; for
    // detector 1 they are ground truth of the *wrong* process, so check the
    // raw suspicion stream instead.)
    let b_suspicions = engine
        .event_log()
        .iter()
        .filter(|e| matches!(e.kind, EventKind::StartSuspect { detector: 1 }))
        .count();
    assert_eq!(b_suspicions, 0, "healthy sender wrongly suspected");
    let _ = m_b;
}
