//! Integration tests of the Section 5.1 pipeline: trace recording, link
//! characterisation (Table 4), predictor accuracy (Table 3) and ARIMA
//! identification (Table 2).

use fdqos::arima::{select_best_model, ArimaSpec};
use fdqos::experiments::accuracy::accuracy_table_for_delays;
use fdqos::experiments::{predictor_accuracy_experiment, AccuracyParams};
use fdqos::net::DelayModel;
use fdqos::net::{DelayTrace, TraceReplayDelay, WanProfile};
use fdqos::sim::{DetRng, SimDuration, SimTime};

#[test]
fn table4_characteristics_match_the_paper_shape() {
    let profile = WanProfile::italy_japan();
    let trace = DelayTrace::record(&profile, 30_000, SimDuration::from_secs(1), 0xACC);
    let ch = trace.characteristics().unwrap();
    // The paper's live link: mean ≈ 200, σ ≈ 7.6, min 192, max 340, loss < 1%.
    assert!((ch.mean_ms - 198.0).abs() < 5.0, "mean {}", ch.mean_ms);
    assert!(ch.std_ms > 4.0 && ch.std_ms < 11.0, "std {}", ch.std_ms);
    assert!(ch.min_ms >= 192.0, "min {}", ch.min_ms);
    assert!(ch.max_ms > 250.0 && ch.max_ms < 420.0, "max {}", ch.max_ms);
    assert!(ch.loss_probability < 0.01, "loss {}", ch.loss_probability);
}

#[test]
fn table3_headline_findings_hold() {
    if !fdqos::experiments::real_rng_enabled() {
        eprintln!(
            "skipped: table3_headline_findings_hold asserts rankings over rand's \
             SmallRng stream; set FD_REAL_RNG=1 to run (CI does)"
        );
        return;
    }
    let profile = WanProfile::italy_japan();
    let params = AccuracyParams {
        n_one_way: 20_000,
        ..AccuracyParams::paper()
    };
    let table = predictor_accuracy_experiment(&profile, &params);
    // Paper: ARIMA most accurate; WINMEAN < MEAN < LAST among the rest.
    assert_eq!(table.rank_of("ARIMA"), Some(0), "{table}");
    let winmean = table.rank_of("WINMEAN").unwrap();
    let mean = table.rank_of("MEAN").unwrap();
    let last = table.rank_of("LAST").unwrap();
    assert!(winmean < mean, "{table}");
    assert!(mean < last, "{table}");
}

#[test]
fn accuracy_on_replayed_trace_equals_original() {
    // A predictor only sees the delay sequence, so replaying a recorded
    // trace must reproduce the accuracy table exactly.
    let profile = WanProfile::italy_japan();
    let trace = DelayTrace::record(&profile, 3_000, SimDuration::from_secs(1), 5);
    let original = accuracy_table_for_delays(&trace.delays_ms(), "orig");

    let mut replay = TraceReplayDelay::new(&trace);
    let mut rng = DetRng::seed_from(99); // replay ignores the rng
    let delivered = trace.delays_ms().len();
    let replayed: Vec<f64> = (0..delivered)
        .map(|i| {
            replay
                .sample(SimTime::from_secs(i as u64), &mut rng)
                .as_millis_f64()
        })
        .collect();
    let again = accuracy_table_for_delays(&replayed, "replay");

    for (a, b) in original.rows.iter().zip(&again.rows) {
        assert_eq!(a.predictor, b.predictor);
        // Microsecond quantisation in SimDuration makes this approximate.
        assert!(
            (a.msqerr - b.msqerr).abs() < 0.05,
            "{} vs {}",
            a.msqerr,
            b.msqerr
        );
    }
}

#[test]
fn csv_persistence_round_trips_through_the_pipeline() {
    let profile = WanProfile::italy_japan();
    let trace = DelayTrace::record(&profile, 2_000, SimDuration::from_secs(1), 6);
    let path = std::env::temp_dir().join("fdqos_itest_trace.csv");
    trace.save_csv(&path).unwrap();
    let loaded = DelayTrace::load_csv(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(trace, loaded);
    assert_eq!(
        trace.characteristics().unwrap(),
        loaded.characteristics().unwrap()
    );
}

#[test]
fn arima_identification_prefers_structured_models() {
    let profile = WanProfile::italy_japan();
    let trace = DelayTrace::record(&profile, 8_000, SimDuration::from_secs(1), 7);
    let report = select_best_model(&trace.delays_ms(), 2, 1, 1).unwrap();
    // The white-noise-around-a-constant model must not win on a correlated
    // WAN trace.
    assert_ne!(
        report.best.spec,
        ArimaSpec::new(0, 0, 0),
        "{:?}",
        report.best
    );
    let mean_model = report
        .ranked
        .iter()
        .find(|r| r.spec == ArimaSpec::new(0, 0, 0))
        .unwrap();
    assert!(report.best.msqerr < mean_model.msqerr);
}

#[test]
fn profiles_differ_in_difficulty() {
    // The generalisation profiles must actually be harder than the baseline:
    // higher predictor error on congested/mobile links.
    let params = AccuracyParams {
        n_one_way: 6_000,
        ..AccuracyParams::quick()
    };
    let base = predictor_accuracy_experiment(&WanProfile::italy_japan(), &params);
    let congested = predictor_accuracy_experiment(&WanProfile::congested_wan(), &params);
    let mobile = predictor_accuracy_experiment(&WanProfile::mobile(), &params);
    let best = |t: &fdqos::experiments::AccuracyTable| t.rows[0].msqerr;
    assert!(best(&congested) > 3.0 * best(&base));
    assert!(best(&mobile) > 3.0 * best(&base));
}
