//! Integration tests of the full QoS experiment pipeline (Figures 4–8 at
//! reduced scale): 30 detectors, crash injection, metric extraction,
//! figure-table construction.

use fdqos::experiments::{run_qos_experiment, run_qos_single, ExperimentParams, Metric};
use fdqos::net::WanProfile;
use fdqos::stat::extract_metrics;

fn quick_params() -> ExperimentParams {
    ExperimentParams {
        num_cycles: 600,
        runs: 2,
        ..ExperimentParams::quick()
    }
}

#[test]
fn figures_cover_the_full_grid() {
    let results = run_qos_experiment(&WanProfile::italy_japan(), &quick_params());
    for metric in Metric::all() {
        let fig = results.figure(metric);
        assert_eq!(fig.rows.len(), 5, "five predictors");
        assert_eq!(fig.margin_labels.len(), 6, "six margins");
        for (p, values) in &fig.rows {
            assert_eq!(values.len(), 6, "{p}");
            if matches!(metric, Metric::Td | Metric::TdUpper) {
                // Detection metrics must be measurable for every combo.
                assert!(values.iter().all(|v| v.is_some()), "{p}: {values:?}");
            }
        }
        assert!(fig
            .title
            .contains(&format!("Figure {}", metric.figure_number())));
    }
}

#[test]
fn td_upper_dominates_td_for_every_combination() {
    let results = run_qos_experiment(&WanProfile::italy_japan(), &quick_params());
    for (i, label) in results.labels.iter().enumerate() {
        let td = results.value(i, Metric::Td).unwrap();
        let tdu = results.value(i, Metric::TdUpper).unwrap();
        assert!(tdu >= td, "{label}: T_D^U {tdu} < mean T_D {td}");
    }
}

#[test]
fn larger_gamma_means_longer_detection_and_longer_tmr() {
    // Within the SM_CI family the margin grows with γ; since the margin is
    // predictor-independent, every predictor's T_D must grow monotonically
    // across CI_low → CI_med → CI_high.
    let results = run_qos_experiment(&WanProfile::italy_japan(), &quick_params());
    let fig = results.figure(Metric::Td);
    for (p, values) in &fig.rows {
        let (lo, med, hi) = (values[0].unwrap(), values[1].unwrap(), values[2].unwrap());
        assert!(lo < med && med < hi, "{p}: {lo} {med} {hi}");
    }
}

#[test]
fn all_runs_pool_their_samples() {
    let profile = WanProfile::italy_japan();
    let params = quick_params();
    let pooled = run_qos_experiment(&profile, &params);

    // Reconstruct run 0's metrics and confirm the pool is strictly bigger.
    let (log, run_end, _) = run_qos_single(&profile, &params, 0);
    let single = extract_metrics(&log, 0, run_end);
    assert!(
        pooled.metrics[0].detection_times_ms.len() > single.detection_times_ms.len(),
        "pooled {} vs single {}",
        pooled.metrics[0].detection_times_ms.len(),
        single.detection_times_ms.len()
    );
    assert!(pooled.metrics[0].total_crashes > single.total_crashes);
}

#[test]
fn experiment_is_reproducible_end_to_end() {
    let profile = WanProfile::italy_japan();
    let params = quick_params();
    let a = run_qos_experiment(&profile, &params);
    let b = run_qos_experiment(&profile, &params);
    assert_eq!(a.labels, b.labels);
    for (ma, mb) in a.metrics.iter().zip(&b.metrics) {
        assert_eq!(ma, mb);
    }
}

#[test]
fn changing_the_seed_changes_the_outcome() {
    let profile = WanProfile::italy_japan();
    let params = quick_params();
    let other = ExperimentParams {
        seed: params.seed + 1,
        ..params.clone()
    };
    let a = run_qos_experiment(&profile, &params);
    let b = run_qos_experiment(&profile, &other);
    assert_ne!(a.metrics[0], b.metrics[0]);
}

#[test]
fn figure_value_lookup_matches_results() {
    let results = run_qos_experiment(&WanProfile::italy_japan(), &quick_params());
    let fig = results.figure(Metric::Td);
    let idx = results
        .labels
        .iter()
        .position(|l| l.starts_with("LAST+SM_JAC(1)"))
        .expect("LAST+SM_JAC(1) exists");
    assert_eq!(fig.value("LAST", "JAC_low"), results.value(idx, Metric::Td));
}

#[test]
fn detection_times_scale_with_eta() {
    // Halving the heartbeat period roughly halves detection time (the
    // dominant term is the wait for the next freshness point).
    let profile = WanProfile::italy_japan();
    let slow = quick_params();
    let fast = ExperimentParams {
        eta: fdqos::sim::SimDuration::from_millis(500),
        num_cycles: 1_200,
        ..quick_params()
    };
    let a = run_qos_experiment(&profile, &slow);
    let b = run_qos_experiment(&profile, &fast);
    let td_slow = a.value(0, Metric::Td).unwrap();
    let td_fast = b.value(0, Metric::Td).unwrap();
    assert!(
        td_fast < 0.8 * td_slow,
        "η/2 should cut T_D markedly: slow={td_slow}, fast={td_fast}"
    );
}
