//! End-to-end fabric scenario through the public `fdqos` facade: a
//! 3-region federated monitor survives the canonical
//! crash → partition → heal chaos schedule, the global tier diagnoses
//! the crashed monitor with the same QoS machinery the regions apply to
//! sources, the Ω consumer demotes the crashed leader (and only real
//! demotions count against it), and the whole pipeline replays
//! bit-identically.
//!
//! The serve-plane half of the same scenario — the diagnosed block
//! crossing an origin server *and a relay* flagged
//! `FLAG_SEGMENT_DEGRADED` — runs in
//! `fd-fabric`'s `chaos_row_serves_the_degraded_block_through_the_relay`
//! unit test and in the `fabric` binary's chaos row; this test pins the
//! virtual-time story end to end without sockets.

use fdqos::fabric::{elect, fabric_digest, reference_combo, run_global, run_region};
use fdqos::runtime::fabric::{FabricChaosPlan, FabricTopology};
use fdqos::sim::{SimDuration, SimTime};

fn run(
    seed: u64,
) -> (
    Vec<fdqos::fabric::RegionRun>,
    fdqos::fabric::GlobalOutcome,
    fdqos::fabric::ElectionOutcome,
    FabricChaosPlan,
    FabricTopology,
) {
    let topo = FabricTopology::symmetric(3, 64, 2, SimDuration::from_secs(55), seed);
    // Crash the leader monitor (region 0) at 14 s for 18 s; partition
    // region 2 at 38 s for 6 s.
    let plan = FabricChaosPlan::crash_partition_heal(
        0,
        SimDuration::from_secs(14),
        SimDuration::from_secs(18),
        2,
        SimDuration::from_secs(38),
        SimDuration::from_secs(6),
    );
    let combos = vec![reference_combo()];
    let runs: Vec<_> = (0..3)
        .map(|r| run_region(&topo, r, &plan, &combos))
        .collect();
    let global = run_global(&topo, &runs, &plan, reference_combo());
    let election = elect(
        3,
        &global.transitions,
        &plan,
        reference_combo(),
        topo.summary_every,
        &topo.regions[0].profile,
        topo.horizon + topo.summary_every * 8,
        seed,
    );
    (runs, global, election, plan, topo)
}

#[test]
fn federated_fabric_diagnoses_demotes_and_replays_identically() {
    let (runs, global, election, _, _) = run(41);

    // Regional tier: every region produced a trace and measured real
    // detector QoS over its own sources (crashes are injected per-region).
    for run in &runs {
        assert!(
            !run.trace.is_empty(),
            "region {} emitted nothing",
            run.region
        );
        assert!(
            run.qos[fdqos::fabric::REF_COMBO].crashes > 0,
            "region {} measured no source crashes",
            run.region
        );
    }
    // The crashed monitor's emission was suppressed while it was down.
    assert!(runs[0].suppressed >= 16, "crash window barely suppressed");

    // Global tier: the crash is diagnosed, the heal observed, and the
    // QoS accounting sees exactly one monitor crash, detected.
    let crash = SimTime::from_secs(14);
    let detected = global
        .first_suspected_after(0, crash)
        .expect("monitor crash undiagnosed");
    assert!(
        detected < SimTime::from_secs(26),
        "diagnosis too slow: {detected}"
    );
    let trusted = global
        .first_trusted_after(0, detected)
        .expect("heal unobserved");
    assert!(trusted >= SimTime::from_secs(32), "trusted at {trusted}?");
    assert_eq!(global.monitor_qos.crashes, 1);
    assert_eq!(global.monitor_qos.detections, 1);
    // The partitioned region dropped frames at the WAN but never died.
    assert!(global.partition_dropped > 0);

    // Election consumer: the crashed leader was demoted, within the
    // diagnosis latency plus one cadence tick, and the ratification run
    // (trust replayed from the *measured* transitions) decided among the
    // survivors and agreed.
    let demote = election.demote_latency.expect("leader never demoted");
    assert!(
        demote <= (detected - crash) + SimDuration::from_secs(1),
        "demotion ({demote}) lags the diagnosis ({})",
        detected - crash
    );
    assert!(election.agreement, "ratification disagreed");
    assert!(
        election.deciders >= 2,
        "only {} deciders",
        election.deciders
    );
    assert!(
        election.decision_latency.is_some(),
        "ratification never decided"
    );

    // Determinism: the whole pipeline replays bit-identically.
    let (runs2, global2, election2, _, _) = run(41);
    assert_eq!(
        fabric_digest(&runs, &global),
        fabric_digest(&runs2, &global2)
    );
    assert_eq!(election.trajectory, election2.trajectory);
}

#[test]
fn clean_fabric_elects_monitor_zero_and_never_demotes_it_for_long() {
    let topo = FabricTopology::symmetric(3, 64, 2, SimDuration::from_secs(45), 43);
    let plan = FabricChaosPlan::none();
    let combos = vec![reference_combo()];
    let runs: Vec<_> = (0..3)
        .map(|r| run_region(&topo, r, &plan, &combos))
        .collect();
    let global = run_global(&topo, &runs, &plan, reference_combo());
    let election = elect(
        3,
        &global.transitions,
        &plan,
        reference_combo(),
        topo.summary_every,
        &topo.regions[0].profile,
        topo.horizon,
        43,
    );
    assert_eq!(election.demote_latency, None);
    assert_eq!(election.decision_latency, None);
    assert_eq!(
        election.trajectory.first(),
        Some(&(SimTime::ZERO, 0)),
        "Ω must seed with monitor 0"
    );
    // Any demotion in a clean run is by definition spurious — and bounded
    // by the global detector's mistake count.
    assert!(
        election.spurious_demotions
            <= global.monitor_qos.mistakes + global.monitor_qos.open_mistakes,
        "more spurious demotions than detector mistakes"
    );
}
