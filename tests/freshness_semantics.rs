//! Black-box checks of the freshness-point semantics of Section 2.3 against
//! hand-computed schedules — the definitional core of the paper's detector,
//! exercised through the public API only.

use fdqos::core::{ConstantMargin, FailureDetector, FdOutput, FdTransition, Last, Mean};
use fdqos::sim::{SimDuration, SimTime};

fn ms(v: u64) -> SimTime {
    SimTime::from_millis(v)
}

#[test]
fn freshness_point_formula_matches_the_paper() {
    // τ_{i+1} = σ_{i+1} + pred_{i+1} + sm_{i+1}, σ_i = i·η.
    let eta = SimDuration::from_millis(750);
    let mut fd = FailureDetector::new("t", Last::new(), ConstantMargin::new(60.0), eta);
    // m_4 sent at σ_4 = 3000 ms arrives at 3130 ms: delay 130 ms.
    fd.on_heartbeat(4, ms(3_130));
    // τ_5 = 5·750 + 130 + 60 = 3940 ms.
    assert_eq!(fd.next_deadline(), Some(ms(3_940)));
    assert_eq!(fd.predicted_delay_ms(), 130.0);
    assert_eq!(fd.margin_ms(), 60.0);
    assert_eq!(fd.current_timeout_ms(), 190.0);
}

#[test]
fn suspicion_interval_is_closed_open_per_paper() {
    // "p suspects q if, at time t ∈ [τ_i, τ_{i+1}], it has not received a
    // heartbeat with timestamp k ≥ i": the left endpoint suspects.
    let eta = SimDuration::from_secs(1);
    let mut fd = FailureDetector::new("t", Last::new(), ConstantMargin::new(0.0), eta);
    fd.on_heartbeat(0, ms(100));
    let tau1 = fd.next_deadline().unwrap();
    assert_eq!(tau1, ms(1_100));
    assert_eq!(fd.check(ms(1_099)), None);
    assert_eq!(fd.check(tau1), Some(FdTransition::StartSuspect));
}

#[test]
fn mean_predictor_detector_matches_manual_computation() {
    // Delays 100, 200, 300 → running means 100, 150, 200.
    let eta = SimDuration::from_secs(1);
    let mut fd = FailureDetector::new("m", Mean::new(), ConstantMargin::new(10.0), eta);
    fd.on_heartbeat(0, ms(100));
    assert_eq!(fd.next_deadline(), Some(ms(1_000 + 100 + 10)));
    fd.on_heartbeat(1, ms(1_200));
    assert_eq!(fd.next_deadline(), Some(ms(2_000 + 150 + 10)));
    fd.on_heartbeat(2, ms(2_300));
    assert_eq!(fd.next_deadline(), Some(ms(3_000 + 200 + 10)));
}

#[test]
fn late_heartbeat_after_deadline_still_counts_as_fresh() {
    // A heartbeat that arrives after its own freshness point expired must
    // still refresh trust (it carries timestamp k ≥ i).
    let eta = SimDuration::from_secs(1);
    let mut fd = FailureDetector::new("t", Last::new(), ConstantMargin::new(50.0), eta);
    fd.on_heartbeat(0, ms(100));
    assert!(fd.check(ms(5_000)).is_some());
    assert_eq!(fd.output(), FdOutput::Suspect);
    // m_1 arrives four seconds late.
    assert_eq!(
        fd.on_heartbeat(1, ms(5_050)),
        Some(FdTransition::EndSuspect)
    );
    assert_eq!(fd.output(), FdOutput::Trust);
    // τ_2 = 2000 + (5050−1000) + 50 = 6100 ms: the huge observed delay
    // inflates the next prediction — exactly LAST's behaviour.
    assert_eq!(fd.next_deadline(), Some(ms(6_100)));
}

#[test]
fn sequence_gaps_count_from_the_freshest_heartbeat() {
    // After receiving m_7, the relevant freshness point is τ_8 regardless of
    // how many earlier heartbeats were lost.
    let eta = SimDuration::from_secs(1);
    let mut fd = FailureDetector::new("t", Last::new(), ConstantMargin::new(25.0), eta);
    fd.on_heartbeat(2, ms(2_150));
    fd.on_heartbeat(7, ms(7_175));
    assert_eq!(fd.next_deadline(), Some(ms(8_000 + 175 + 25)));
    assert_eq!(fd.heartbeats(), 2);
    assert_eq!(fd.stale_heartbeats(), 0);
}

#[test]
fn duplicate_sequence_is_stale() {
    let eta = SimDuration::from_secs(1);
    let mut fd = FailureDetector::new("t", Last::new(), ConstantMargin::new(25.0), eta);
    fd.on_heartbeat(3, ms(3_100));
    let deadline = fd.next_deadline();
    // The same heartbeat delivered again (e.g. network duplication is
    // excluded by the fair-lossy model, but a retransmitting upper layer
    // could do this): observed, but freshness untouched.
    assert_eq!(fd.on_heartbeat(3, ms(3_200)), None);
    assert_eq!(fd.next_deadline(), deadline);
    assert_eq!(fd.stale_heartbeats(), 1);
}
