//! The streaming-metrics differential: the correctness anchor of the
//! online QoS spine.
//!
//! Three pipelines measure the same sharded runs and must agree exactly:
//!
//! 1. the **engine's online roll-ups** — each shard folds its edges into
//!    a summary-mode `QosAccumulator` as they are emitted, partials
//!    merged across shards ([`ShardedReport::qos`]);
//! 2. a **full-mode accumulator replay** of the retained merged log —
//!    per-sample vectors, the `AccumulateSink` path at full fidelity;
//! 3. the **retained pipeline** — `RetainSink` → per-source
//!    `extract_metrics` ([`RetainSink::extract_grid`]), the reference
//!    semantics every PR since the seed has been tested against.
//!
//! (2) and (3) must agree sample-for-sample — the pipelines append
//! samples in different orders (streaming is time-major, extraction is
//! source-major), so vectors are compared as sorted multisets, each
//! sample bit-exact; (1) must equal the integer-µs summary of (2) —
//! counts exact, sums and extrema reconstructed µs-for-µs, histograms
//! bin-for-bin. Checked at 1k and 10k sources across three seeds, all
//! 30 grid combinations, on multi-threaded (2-shard) runs.

use fdqos::core::FdTransition;
use fdqos::runtime::{MonitorEvent, ShardedConfig, ShardedEngine};
use fdqos::sim::SimTime;
use fdqos::stat::{EventSink, LogHistogram, QosAccumulator, QosMetrics, QosSummary, RetainSink};

const COMBOS: usize = 30;

fn run_retained(sources: usize, seed: u64) -> (Vec<MonitorEvent>, SimTime) {
    let mut cfg = ShardedConfig::paper_grid(sources, 3, seed);
    cfg.shards = 2;
    cfg.retain_events = true;
    // Lively loss/spikes so every combo records mistakes.
    cfg.loss = 0.05;
    cfg.spike_prob = 0.05;
    let report = ShardedEngine::new(cfg).run();
    assert_eq!(report.qos.len(), COMBOS);
    assert!(
        report.start_suspects > 0,
        "{sources} sources, seed {seed}: no suspicion edges"
    );
    let run_end = report.events.last().map_or(SimTime::ZERO, |e| e.at);
    (report.events, run_end)
}

/// Replays a merged log into any sink (events are time-sorted, as the
/// streaming contract requires).
fn replay<S: EventSink>(events: &[MonitorEvent], sink: &mut S) {
    for e in events {
        match e.transition {
            FdTransition::StartSuspect => sink.start_suspect(e.at, e.source, e.combo),
            FdTransition::EndSuspect => sink.end_suspect(e.at, e.source, e.combo),
        }
    }
}

/// Collapses one combo's full-fidelity metrics to the integer-µs summary
/// fields a `QosSummary` would hold — counts from vector lengths, sums/
/// extrema/histograms from the samples, which are exact µs/1000 values.
fn summarize(m: &QosMetrics) -> (u64, u64, [u64; 3], [u64; 3], [u64; 3], LogHistogram) {
    let us = |ms: f64| -> u64 { (ms * 1000.0).round() as u64 };
    let fold = |xs: &[f64]| -> [u64; 3] {
        xs.iter().fold([0, u64::MAX, 0], |[sum, min, max], &ms| {
            [sum + us(ms), min.min(us(ms)), max.max(us(ms))]
        })
    };
    let mut tm_hist = LogHistogram::latency_micros();
    for &ms in &m.mistake_durations_ms {
        tm_hist.push(us(ms) as f64);
    }
    (
        m.mistake_durations_ms.len() as u64,
        m.mistake_recurrences_ms.len() as u64,
        fold(&m.detection_times_ms),
        fold(&m.mistake_durations_ms),
        fold(&m.mistake_recurrences_ms),
        tm_hist,
    )
}

/// Sorts the sample vectors by total order so pipelines that append in
/// different orders compare as multisets, each sample still bit-exact.
fn canon(m: &QosMetrics) -> QosMetrics {
    let sorted = |xs: &[f64]| {
        let mut v = xs.to_vec();
        v.sort_by(f64::total_cmp);
        v
    };
    QosMetrics {
        detection_times_ms: sorted(&m.detection_times_ms),
        mistake_durations_ms: sorted(&m.mistake_durations_ms),
        mistake_recurrences_ms: sorted(&m.mistake_recurrences_ms),
        undetected_crashes: m.undetected_crashes,
        total_crashes: m.total_crashes,
    }
}

#[test]
fn streaming_accumulator_matches_retained_extraction() {
    for sources in [1_000usize, 10_000] {
        for seed in [11u64, 47, 2025] {
            let (events, run_end) = run_retained(sources, seed);
            let ctx = format!("{sources} sources, seed {seed}");

            // Pipeline 2: full-mode accumulator over the merged log.
            let mut acc = QosAccumulator::full(sources, COMBOS);
            replay(&events, &mut acc);
            let accumulated = acc.finish_full(run_end);

            // Pipeline 3: RetainSink → per-source extract_metrics.
            let mut retain = RetainSink::new();
            replay(&events, &mut retain);
            let extracted = retain.extract_grid(COMBOS, run_end);

            assert_eq!(accumulated.len(), COMBOS, "{ctx}");
            for (combo, (a, e)) in accumulated.iter().zip(&extracted).enumerate() {
                assert_eq!(
                    canon(a),
                    canon(e),
                    "{ctx}: combo {combo} diverged (streaming vs retained)"
                );
            }
            let episodes: usize = accumulated
                .iter()
                .map(|m| m.mistake_durations_ms.len())
                .sum();
            assert!(episodes > 0, "{ctx}: differential compared nothing");
        }
    }
}

#[test]
fn engine_online_rollups_match_full_fidelity_replay() {
    for (sources, seed) in [(1_000usize, 11u64), (1_000, 47), (10_000, 2025)] {
        let ctx = format!("{sources} sources, seed {seed}");
        let mut cfg = ShardedConfig::paper_grid(sources, 3, seed);
        cfg.shards = 2;
        cfg.retain_events = true;
        cfg.loss = 0.05;
        cfg.spike_prob = 0.05;
        let report = ShardedEngine::new(cfg).run();
        let run_end = report.events.last().map_or(SimTime::ZERO, |e| e.at);

        // Exact check: the engine's merged summaries equal a single
        // summary-mode accumulator replay of the whole log.
        let mut sacc = QosAccumulator::summary(sources, COMBOS);
        replay(&report.events, &mut sacc);
        assert_eq!(
            sacc.finish_summaries(run_end),
            report.qos,
            "{ctx}: online roll-ups != summary replay"
        );

        // Cross-modal check: the summaries also agree with the
        // full-fidelity sample vectors, field by field.
        let mut facc = QosAccumulator::full(sources, COMBOS);
        replay(&report.events, &mut facc);
        for (combo, (full, sum)) in facc
            .finish_full(run_end)
            .iter()
            .zip(&report.qos)
            .enumerate()
        {
            let (mistakes, recurrences, td, tm, tmr, tm_hist) = summarize(full);
            assert_eq!(sum.mistakes, mistakes, "{ctx}: combo {combo} mistakes");
            assert_eq!(
                sum.recurrences, recurrences,
                "{ctx}: combo {combo} recurrences"
            );
            assert_eq!(
                sum.crashes, full.total_crashes as u64,
                "{ctx}: combo {combo}"
            );
            assert_eq!(
                [sum.td_sum_us, sum.td_min_us, sum.td_max_us],
                td,
                "{ctx}: combo {combo} T_D"
            );
            assert_eq!(
                [sum.tm_sum_us, sum.tm_min_us, sum.tm_max_us],
                tm,
                "{ctx}: combo {combo} T_M"
            );
            assert_eq!(
                [sum.tmr_sum_us, sum.tmr_min_us, sum.tmr_max_us],
                tmr,
                "{ctx}: combo {combo} T_MR"
            );
            assert_eq!(sum.tm_hist, tm_hist, "{ctx}: combo {combo} T_M histogram");
        }
    }
}

/// `QosSummary` partials merge exactly: splitting the combined summaries
/// by shard and re-merging in any grouping is bit-identical (the engine
/// relies on this to be shard-count invariant; checked here end-to-end
/// by comparing 1-shard and 5-shard runs' summaries).
#[test]
fn merged_summaries_are_shard_count_invariant() {
    let config = |shards: usize| {
        let mut cfg = ShardedConfig::paper_grid(600, 3, 9);
        cfg.shards = shards;
        cfg.loss = 0.05;
        cfg.spike_prob = 0.05;
        cfg
    };
    let one = ShardedEngine::new(config(1)).run();
    let five = ShardedEngine::new(config(5)).run();
    assert_eq!(one.qos, five.qos);
    assert_eq!(one.digest, five.digest);
    let total: u64 = one.qos.iter().map(|s: &QosSummary| s.mistakes).sum();
    assert!(total > 0, "nothing measured");
}
