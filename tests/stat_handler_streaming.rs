//! Streaming-vs-batch equivalence of the NekoStat handler: feeding events
//! one at a time through `FdStatHandler` must equal offline extraction from
//! the complete log, whatever the interleaving of detectors.

use fdqos::sim::SimTime;
use fdqos::stat::{extract_metrics, EventKind, EventLog, FdStatHandler, ProcessId};
use proptest::prelude::*;

proptest! {
    #[test]
    fn streaming_equals_batch_for_every_detector(
        steps in proptest::collection::vec((0u64..3, 1u64..30), 1..80),
        n_detectors in 1u32..4,
    ) {
        // Build a multi-detector log: step kind 0 = crash/restore toggles,
        // 1..=2 = suspicion toggles of detector (kind-1) % n.
        let mut log = EventLog::new();
        let p = ProcessId(0);
        let mut t = 0u64;
        let mut down = false;
        let mut suspecting = vec![false; n_detectors as usize];
        for &(kind, gap) in &steps {
            t += gap;
            let at = SimTime::from_secs(t);
            if kind == 0 {
                if down {
                    log.record(at, p, EventKind::Restore);
                } else {
                    log.record(at, p, EventKind::Crash);
                }
                down = !down;
            } else {
                let d = (kind - 1) as u32 % n_detectors;
                let s = &mut suspecting[d as usize];
                if *s {
                    log.record(at, p, EventKind::EndSuspect { detector: d });
                } else {
                    log.record(at, p, EventKind::StartSuspect { detector: d });
                }
                *s = !*s;
            }
        }
        let run_end = SimTime::from_secs(t + 50);

        for d in 0..n_detectors {
            let batch = extract_metrics(&log, d, run_end);
            let mut handler = FdStatHandler::new(d);
            for e in &log {
                handler.on_event(e);
            }
            let streamed = handler.finish(run_end);
            prop_assert_eq!(batch, streamed, "detector {}", d);
        }
    }
}
