//! The paper's push-vs-pull comparison (Section 2.2), measured end-to-end:
//! for continuous monitoring, push achieves comparable detection QoS with
//! half the messages.

use fdqos::core::{ConstantMargin, FailureDetector, Last, PullFailureDetector};
use fdqos::experiments::{
    HeartbeaterLayer, MonitorLayer, PullMonitorLayer, ResponderLayer, SimCrashLayer,
};
use fdqos::net::{ConstantDelay, LinkModel, NoLoss};
use fdqos::runtime::{Process, ProcessId, SimEngine};
use fdqos::sim::{DetRng, SimDuration, SimTime};
use fdqos::stat::{extract_metrics, QosMetrics};

const PERIOD_S: u64 = 1;
const DELAY_MS: u64 = 100;
const HORIZON_S: u64 = 900;

fn link(seed: u64) -> LinkModel {
    LinkModel::new(
        ConstantDelay::new(SimDuration::from_millis(DELAY_MS)),
        NoLoss,
        DetRng::seed_from(seed),
    )
}

fn crash_layer(seed: u64) -> SimCrashLayer {
    SimCrashLayer::new(
        SimDuration::from_secs(100),
        SimDuration::from_secs(20),
        DetRng::seed_from(seed),
    )
}

/// Runs push monitoring; returns (metrics, messages on the wire).
fn run_push(seed: u64) -> (QosMetrics, u64) {
    let eta = SimDuration::from_secs(PERIOD_S);
    let fd = FailureDetector::new("push", Last::new(), ConstantMargin::new(100.0), eta);
    let mut engine = SimEngine::new();
    engine.add_process(Process::new(ProcessId(0)).with_layer(MonitorLayer::new(vec![fd])));
    engine.add_process(
        Process::new(ProcessId(1))
            .with_layer(crash_layer(seed))
            .with_layer(HeartbeaterLayer::new(ProcessId(0), eta)),
    );
    engine.set_link(ProcessId(1), ProcessId(0), link(seed + 10));
    let end = SimTime::from_secs(HORIZON_S);
    engine.run_until(end);
    let messages = engine.link_stats(ProcessId(1), ProcessId(0)).unwrap().sent;
    (extract_metrics(engine.event_log(), 0, end), messages)
}

/// Runs pull monitoring with the same period; returns (metrics, messages).
fn run_pull(seed: u64) -> (QosMetrics, u64) {
    let period = SimDuration::from_secs(PERIOD_S);
    let fd = PullFailureDetector::new("pull", Last::new(), ConstantMargin::new(100.0), period);
    let mut engine = SimEngine::new();
    engine.add_process(
        Process::new(ProcessId(0)).with_layer(PullMonitorLayer::new(fd, ProcessId(1))),
    );
    engine.add_process(
        Process::new(ProcessId(1))
            .with_layer(crash_layer(seed))
            .with_layer(ResponderLayer::new()),
    );
    engine.set_link(ProcessId(1), ProcessId(0), link(seed + 10));
    engine.set_link(ProcessId(0), ProcessId(1), link(seed + 11));
    let end = SimTime::from_secs(HORIZON_S);
    engine.run_until(end);
    let to_monitor = engine.link_stats(ProcessId(1), ProcessId(0)).unwrap().sent;
    let to_target = engine.link_stats(ProcessId(0), ProcessId(1)).unwrap().sent;
    (
        extract_metrics(engine.event_log(), 0, end),
        to_monitor + to_target,
    )
}

#[test]
fn pull_uses_about_twice_the_messages() {
    let (_, push_msgs) = run_push(1);
    let (_, pull_msgs) = run_pull(1);
    let ratio = pull_msgs as f64 / push_msgs as f64;
    // Requests keep flowing while crashed (responses don't), so the ratio is
    // slightly below 2 only because push heartbeats pause during crashes.
    assert!(
        (1.6..=2.4).contains(&ratio),
        "pull/push message ratio = {ratio} ({pull_msgs}/{push_msgs})"
    );
}

#[test]
fn both_styles_detect_every_crash() {
    let (push, _) = run_push(2);
    let (pull, _) = run_pull(2);
    assert!(push.total_crashes >= 5);
    assert!(pull.total_crashes >= 5);
    assert_eq!(push.undetected_crashes, 0);
    assert_eq!(pull.undetected_crashes, 0);
}

#[test]
fn detection_quality_is_comparable() {
    // Same period, same link: mean detection times are within the same
    // order (pull waits for a missing *response*, push for a missing
    // heartbeat; both are bounded by the period + RTT + margin).
    let (push, _) = run_push(3);
    let (pull, _) = run_pull(3);
    let td_push = push.mean_td().unwrap();
    let td_pull = pull.mean_td().unwrap();
    assert!(
        (td_pull - td_push).abs() < 1_000.0,
        "push {td_push} vs pull {td_pull}"
    );
    // Neither style makes mistakes on a perfect constant link.
    assert!(push.mistake_durations_ms.is_empty());
    assert!(pull.mistake_durations_ms.is_empty());
}

#[test]
fn rto_margin_runs_in_the_full_detector() {
    // The Bertier-style RTO margin (extension beyond the paper's families)
    // composes with the push detector and adapts like SM_JAC.
    use fdqos::core::combinations::Combination;
    use fdqos::core::{MarginKind, PredictorKind};
    let eta = SimDuration::from_secs(1);
    let combo = Combination::new(PredictorKind::Last, MarginKind::Rto { k: 4.0 });
    assert_eq!(combo.label(), "LAST+SM_RTO(4)");
    let fd = combo.build(eta);

    let mut engine = SimEngine::new();
    engine.add_process(Process::new(ProcessId(0)).with_layer(MonitorLayer::new(vec![fd])));
    engine.add_process(
        Process::new(ProcessId(1))
            .with_layer(crash_layer(7))
            .with_layer(HeartbeaterLayer::new(ProcessId(0), eta)),
    );
    engine.set_link(
        ProcessId(1),
        ProcessId(0),
        fdqos::net::WanProfile::italy_japan().link(DetRng::seed_from(77)),
    );
    let end = SimTime::from_secs(900);
    engine.run_until(end);
    let m = extract_metrics(engine.event_log(), 0, end);
    assert_eq!(m.undetected_crashes, 0);
    if let Some(pa) = m.query_accuracy() {
        assert!((0.0..=1.0).contains(&pa));
    }
}
