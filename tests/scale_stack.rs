//! Tier-1 tests of the million-source scaling stack, asserting the three
//! equivalences the design rests on:
//!
//! 1. the hierarchical timer wheel is a drop-in for the heap queue — the
//!    same simulation driven through both backends is bit-identical;
//! 2. the `SourceBank` (structure-of-arrays, N sources × 30 combos) agrees
//!    with per-source `DetectorBank`s on every observable;
//! 3. the sharded engine's merged log, streaming digest and online QoS
//!    roll-ups are independent of the shard count — at tier-1 scale with
//!    the retained log cross-checked, and at 1k/10k sources on the pure
//!    streaming path (no retention).

use fdqos::core::{DetectorBank, HeartbeatObs, SourceBank};
use fdqos::runtime::{ShardedConfig, ShardedEngine};
use fdqos::sim::{QueueBackend, SimDuration, SimTime, Simulator};
use proptest::prelude::*;

/// A deterministic pseudo-delay for heartbeat `seq` of source `s`, in µs:
/// mostly ~100–160 ms with an occasional large spike, so detectors see both
/// quiet stretches and suspicion churn.
fn delay_us(s: u64, seq: u64) -> u64 {
    let mix = (s.wrapping_mul(0x9e37_79b9) ^ seq.wrapping_mul(0x85eb_ca6b)) % 64_000;
    let spike = if (s + seq) % 11 == 0 { 2_400_000 } else { 0 };
    100_000 + mix + spike
}

/// Drives a chained heartbeat/deadline workload (the sharded engine's
/// event shape) through one backend and returns the full pop sequence.
fn drive(backend: QueueBackend) -> Vec<(u64, u64)> {
    const SOURCES: u64 = 20;
    let eta = SimDuration::from_secs(1);
    let horizon = SimTime::ZERO + eta * 12;
    let mut sim: Simulator<u64> = Simulator::with_backend_and_capacity(backend, 64);
    for s in 0..SOURCES {
        sim.schedule_at(SimTime::ZERO + SimDuration::from_micros(delay_us(s, 0)), s);
    }
    let mut seqs = vec![0u64; SOURCES as usize];
    let mut out = Vec::new();
    while let Some((at, s)) = sim.next_event_before(horizon) {
        out.push((at.as_micros(), s));
        let seq = seqs[s as usize] + 1;
        seqs[s as usize] = seq;
        let nominal = SimTime::ZERO + eta * seq + SimDuration::from_micros(delay_us(s, seq));
        sim.schedule_at(nominal.max(at), s);
    }
    out.push((sim.now().as_micros(), sim.pending() as u64));
    out
}

#[test]
fn timer_wheel_backend_is_bit_identical_to_heap() {
    let heap = drive(QueueBackend::Heap);
    let wheel = drive(QueueBackend::Wheel);
    assert!(heap.len() > 200, "workload too small to be meaningful");
    assert_eq!(heap, wheel);
}

#[test]
fn source_bank_agrees_with_independent_detector_banks() {
    const SOURCES: u32 = 3;
    const CYCLES: u64 = 40;
    let eta = SimDuration::from_secs(1);
    let mut bank = SourceBank::paper_grid(eta, SOURCES as usize);
    let mut singles: Vec<DetectorBank> = (0..SOURCES)
        .map(|_| DetectorBank::paper_grid(eta))
        .collect();
    assert_eq!(bank.combos().len(), 30, "the paper grid is 30 combinations");

    for seq in 0..CYCLES {
        // Heartbeats of one cycle, batch-observed on the SourceBank and
        // looped over the independent banks.
        let batch: Vec<HeartbeatObs> = (0..SOURCES)
            .map(|s| HeartbeatObs {
                source: s,
                seq,
                arrival: SimTime::ZERO
                    + eta * seq
                    + SimDuration::from_micros(delay_us(u64::from(s), seq)),
            })
            .collect();
        // Interleave a mid-cycle sweep so deadline checks also run.
        let mid = SimTime::ZERO + eta * seq + SimDuration::from_millis(900);
        bank.check_all_at(mid);
        for (s, single) in singles.iter_mut().enumerate() {
            single.check_at(mid);
            single.observe_heartbeat(seq, batch[s].arrival);
        }
        bank.observe_all(&batch);
    }

    for s in 0..SOURCES {
        let single = &singles[s as usize];
        for c in 0..30 {
            assert_eq!(
                bank.next_deadline(s, c),
                single.next_deadline(c),
                "deadline diverged at source {s} combo {c}"
            );
            assert_eq!(bank.is_suspecting(s, c), single.is_suspecting(c));
            assert_eq!(
                bank.predicted_delay_ms(s, c).to_bits(),
                single.predicted_delay_ms(c).to_bits(),
                "prediction diverged at source {s} combo {c}"
            );
            assert_eq!(
                bank.margin_ms(s, c).to_bits(),
                single.margin_ms(c).to_bits(),
                "margin diverged at source {s} combo {c}"
            );
        }
    }
    assert_eq!(
        bank.heartbeats(),
        u64::from(SOURCES) * CYCLES,
        "every heartbeat must be counted once"
    );
}

#[test]
fn sharded_engine_is_invariant_under_shard_count() {
    let config = |shards: usize| {
        let mut cfg = ShardedConfig::paper_grid(22, 6, 1337);
        cfg.shards = shards;
        cfg.loss = 0.08;
        cfg.spike_prob = 0.06;
        cfg.retain_events = true;
        cfg
    };
    let baseline = ShardedEngine::new(config(1)).run();
    assert!(
        !baseline.events.is_empty(),
        "fault model produced no suspicion edges to compare"
    );
    for shards in [2usize, 8] {
        let sharded = ShardedEngine::new(config(shards)).run();
        assert_eq!(
            baseline.fingerprint, sharded.fingerprint,
            "merged-log fingerprint diverged at {shards} shards"
        );
        assert_eq!(
            baseline.digest, sharded.digest,
            "streaming digest diverged at {shards} shards"
        );
        assert_eq!(
            baseline.qos, sharded.qos,
            "online QoS roll-ups diverged at {shards} shards"
        );
        assert_eq!(baseline.events, sharded.events);
        assert_eq!(baseline.heartbeats, sharded.heartbeats);
        assert_eq!(baseline.lost, sharded.lost);
    }
}

/// Every family in the registry — the paper's five plus φ-accrual (both
/// lifecycles), the adaptive μ+Kσ window and the online model, via
/// `PredictorKind::all_for_test()` — agrees between the SourceBank column
/// path and per-source DetectorBanks, through a schedule whose silences
/// are long enough to trip the φ flap lifecycle.
#[test]
fn source_bank_agrees_on_every_registry_family() {
    use fdqos::core::{Combination, MarginKind, PredictorKind};
    const SOURCES: u32 = 3;
    const CYCLES: u64 = 36;
    let combos: Vec<Combination> = PredictorKind::all_for_test()
        .into_iter()
        .flat_map(|k| {
            [
                Combination::new(k, MarginKind::Jac { phi: 1.0 }),
                Combination::new(k, MarginKind::Ci { gamma: 2.0 }),
            ]
        })
        .collect();
    assert_eq!(combos.len(), 18, "9 registry families × 2 margins");
    let eta = SimDuration::from_secs(1);
    let mut bank = SourceBank::new(&combos, eta, SOURCES as usize);
    let mut singles: Vec<DetectorBank> = (0..SOURCES)
        .map(|_| DetectorBank::new(&combos, eta))
        .collect();

    for seq in 0..CYCLES {
        let mid = SimTime::ZERO + eta * seq + SimDuration::from_millis(900);
        bank.check_all_at(mid);
        for (s, single) in singles.iter_mut().enumerate() {
            single.check_at(mid);
            // Source 1 goes silent for 5 cycles mid-run (a flap) and
            // source 2 loses every 7th beat (sub-flap gaps).
            if s == 1 && (12..17).contains(&seq) {
                continue;
            }
            if s == 2 && seq % 7 == 3 {
                continue;
            }
            let at = SimTime::ZERO + eta * seq + SimDuration::from_micros(delay_us(s as u64, seq));
            single.observe_heartbeat(seq, at);
            bank.observe_heartbeat(s as u32, seq, at);
        }
    }

    for s in 0..SOURCES {
        let single = &singles[s as usize];
        for c in 0..combos.len() {
            assert_eq!(
                bank.next_deadline(s, c),
                single.next_deadline(c),
                "deadline diverged at source {s} combo {c}"
            );
            assert_eq!(bank.is_suspecting(s, c), single.is_suspecting(c));
            assert_eq!(
                bank.predicted_delay_ms(s, c).to_bits(),
                single.predicted_delay_ms(c).to_bits(),
                "prediction diverged at source {s} combo {c}"
            );
            assert_eq!(
                bank.margin_ms(s, c).to_bits(),
                single.margin_ms(c).to_bits(),
                "margin diverged at source {s} combo {c}"
            );
        }
    }
}

/// One 64-bit mix per (seed, source, seq) decision point, so the loss and
/// crash schedules below are deterministic functions of the proptest draw.
fn mix64(seed: u64, s: u64, seq: u64) -> u64 {
    let mut z =
        seed ^ s.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ seq.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Drives `bank` through cycles `[from, to)` of a lossy schedule with
/// crash windows: each (source, seq) heartbeat is dropped with probability
/// `loss_num/128`, and source `s` is silent for `down` whole cycles out of
/// every `period` (its crash window, staggered per source). Deadline
/// sweeps run mid-cycle so suspicion edges fire on both sides of the cut.
/// Returns every edge observed, for cross-bank comparison.
fn drive_bank_lossy(
    bank: &mut SourceBank,
    eta: SimDuration,
    from: u64,
    to: u64,
    seed: u64,
    loss_num: u64,
    period: u64,
    down: u64,
) -> Vec<(u64, fdqos::core::SourceTransition)> {
    let sources = bank.sources() as u32;
    let mut edges = Vec::new();
    for seq in from..to {
        for s in 0..sources {
            let crashed = (seq + u64::from(s)) % period < down;
            let lost = mix64(seed, u64::from(s), seq) % 128 < loss_num;
            if crashed || lost {
                continue;
            }
            let jitter = mix64(seed ^ 0xA5A5, u64::from(s), seq) % 400_000;
            let at = SimTime::ZERO + eta * seq + SimDuration::from_micros(100_000 + jitter);
            for t in bank.check_source_at(s, at) {
                edges.push((at.as_micros(), *t));
            }
            bank.observe_heartbeat(s, seq, at);
            for t in bank.transitions() {
                edges.push((at.as_micros(), *t));
            }
        }
        let mid = SimTime::ZERO + eta * (seq + 1) + SimDuration::from_millis(700);
        for t in bank.check_all_at(mid) {
            edges.push((mid.as_micros(), *t));
        }
    }
    edges
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The warm-restart contract the shard supervisor relies on, as a
    /// property: a `SourceBank` snapshot taken at *any* cycle boundary of
    /// a lossy workload with crashing sources restores into a fresh bank
    /// that continues the stream bit-identically — same suspicion edges,
    /// same re-serialized image after more traffic.
    #[test]
    fn source_bank_snapshot_roundtrip_is_bit_identical_under_loss_and_crashes(
        seed in 0u64..(1u64 << 48),
        sources in 2usize..10,
        cut in 2u64..20,
        tail in 3u64..12,
        loss_num in 0u64..48,
        period in 3u64..8,
        extended in any::<bool>(),
    ) {
        let eta = SimDuration::from_secs(1);
        let down = period / 2; // crash windows cover ~half a period
        // Half the cases run the extended grid, so the φ lifecycle, the
        // adaptive window, the ML arenas and the impact tail all cross
        // the snapshot cut (crash windows several cycles long trip the
        // flap machinery on both sides of it).
        let combos = if extended {
            fdqos::core::extended_combinations()
        } else {
            fdqos::core::all_combinations()
        };
        let mut original = SourceBank::new(&combos, eta, sources);
        if extended {
            let weights: Vec<f64> = (0..sources).map(|s| 1.0 + s as f64 * 0.5).collect();
            original.set_impact_weights(&weights);
        }
        drive_bank_lossy(&mut original, eta, 0, cut, seed, loss_num, period, down);

        let bytes = original.snapshot_bytes();
        let mut restored = SourceBank::new(&combos, eta, sources);
        restored.restore_bytes(&bytes).expect("restore of a fresh snapshot");
        prop_assert_eq!(restored.heartbeats(), original.heartbeats());
        prop_assert_eq!(
            restored.snapshot_bytes(),
            bytes,
            "re-snapshot of a restored bank must reproduce the image"
        );

        let ea = drive_bank_lossy(&mut original, eta, cut, cut + tail, seed, loss_num, period, down);
        let eb = drive_bank_lossy(&mut restored, eta, cut, cut + tail, seed, loss_num, period, down);
        prop_assert_eq!(ea, eb, "suspicion edges diverged after restore");
        prop_assert_eq!(
            original.snapshot_bytes(),
            restored.snapshot_bytes(),
            "post-restore trajectories diverged"
        );
    }
}

/// The acceptance criterion at scale: on the streaming path (nothing
/// retained) the digest and QoS roll-ups are bit-identical across shard
/// counts 1, 2 and 8 at 1k and 10k sources.
#[test]
fn streaming_digest_is_shard_invariant_at_scale() {
    for sources in [1_000usize, 10_000] {
        let config = |shards: usize| {
            let mut cfg = ShardedConfig::paper_grid(sources, 3, 2024);
            cfg.shards = shards;
            cfg.loss = 0.03;
            cfg.spike_prob = 0.03;
            cfg
        };
        let baseline = ShardedEngine::new(config(1)).run();
        assert!(baseline.events.is_empty(), "scale path must not retain");
        assert!(
            baseline.start_suspects > 0,
            "{sources} sources: no suspicion activity to digest"
        );
        for shards in [2usize, 8] {
            let sharded = ShardedEngine::new(config(shards)).run();
            assert_eq!(
                baseline.digest, sharded.digest,
                "digest diverged at {sources} sources, {shards} shards"
            );
            assert_eq!(
                baseline.qos, sharded.qos,
                "QoS roll-ups diverged at {sources} sources, {shards} shards"
            );
            assert_eq!(baseline.heartbeats, sharded.heartbeats);
        }
    }
}

/// Shard invariance on the 54-combination extended grid: the streaming
/// digest and QoS roll-ups are shard-count independent with the new
/// families in the mix, under loss and a source-crash plan long enough to
/// trip the φ flap lifecycle inside every shard.
#[test]
fn streaming_digest_is_shard_invariant_on_the_extended_grid() {
    let config = |shards: usize| {
        let mut cfg = ShardedConfig::paper_grid(600, 5, 77);
        cfg.combos = fdqos::core::extended_combinations();
        cfg.shards = shards;
        cfg.loss = 0.05;
        cfg.spike_prob = 0.05;
        cfg.source_crashes = Some(fdqos::runtime::SourceCrashPlan {
            frac: 0.2,
            down_cycles: 3,
        });
        cfg
    };
    let baseline = ShardedEngine::new(config(1)).run();
    assert_eq!(baseline.qos.len(), 54, "extended grid rolls up 54 combos");
    assert!(
        baseline.start_suspects > 0,
        "no suspicion activity on the extended grid"
    );
    for shards in [2usize, 5] {
        let sharded = ShardedEngine::new(config(shards)).run();
        assert_eq!(
            baseline.digest, sharded.digest,
            "digest diverged at {shards} shards on the extended grid"
        );
        assert_eq!(
            baseline.qos, sharded.qos,
            "QoS roll-ups diverged at {shards} shards on the extended grid"
        );
        assert_eq!(baseline.heartbeats, sharded.heartbeats);
    }
}
