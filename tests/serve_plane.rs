//! Tier-1 tests of the suspect-query serving plane, asserting the two
//! properties the design rests on:
//!
//! 1. **snapshot integrity** — a validated seqlock read is always a
//!    uniform single-epoch snapshot, even under a deliberate
//!    writer/reader race (torn reads are detected and retried, never
//!    served);
//! 2. **answer fidelity** — a point query served through the full wire
//!    path (`Request` encode → server `respond` → `Response` decode)
//!    equals `SourceBank::is_suspecting` at the published epoch, for
//!    arbitrary heartbeat schedules.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use fdqos::core::SourceBank;
use fdqos::runtime::sharded::partition;
use fdqos::serve::wire::{FLAG_PUBLISHED, FLAG_SUSPECTING};
use fdqos::serve::{
    respond, DeltaRead, EnginePublisher, Request, Response, ServeStats, SuspectView,
};
use fdqos::sim::{SimDuration, SimTime};
use proptest::prelude::*;

const PAT_ODD: u64 = 0x5555_5555_5555_5555;
const PAT_EVEN: u64 = 0xAAAA_AAAA_AAAA_AAAA;

/// One writer flips the whole 256-source bitmap between two patterns
/// keyed to the epoch's parity; concurrent readers assert every
/// *validated* read is one pattern, whole — any blend of epochs (a torn
/// read escaping the seqlock) trips the counter.
#[test]
fn concurrent_readers_never_observe_a_torn_snapshot() {
    const WORDS: usize = 4;
    const EPOCHS: u64 = 2_000;
    let view = SuspectView::new(1, &[(0, WORDS * 64)]);
    let stop = AtomicBool::new(false);
    let torn = AtomicU64::new(0);
    let reads = AtomicU64::new(0);
    std::thread::scope(|s| {
        for _ in 0..4 {
            let (view, stop, torn, reads) = (&view, &stop, &torn, &reads);
            s.spawn(move || {
                while !stop.load(Ordering::Acquire) {
                    // Mix point and range reads: both must validate.
                    if let Some(r) = view.range(0, 0, WORDS) {
                        reads.fetch_add(1, Ordering::Relaxed);
                        let expect = if r.epoch % 2 == 0 { PAT_EVEN } else { PAT_ODD };
                        if r.words.iter().any(|&w| w != expect) {
                            torn.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    if let Some(p) = view.point(129, 0) {
                        reads.fetch_add(1, Ordering::Relaxed);
                        // Source 129 is bit 1 of word 2: set under
                        // PAT_EVEN (…1010), clear under PAT_ODD (…0101).
                        if p.suspecting != (p.epoch % 2 == 0) {
                            torn.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
        let mut writer = view.writer(0);
        for e in 1..=EPOCHS {
            let pat = if e % 2 == 0 { PAT_EVEN } else { PAT_ODD };
            writer.publish_words(&[pat; WORDS], SimTime::from_micros(e));
        }
        // The final epoch stays published, so on a loaded scheduler wait
        // for the readers to validate some reads before stopping them.
        while reads.load(Ordering::Relaxed) < 8 {
            std::thread::yield_now();
        }
        stop.store(true, Ordering::Release);
    });
    assert_eq!(
        torn.load(Ordering::Relaxed),
        0,
        "a torn snapshot escaped seqlock validation ({} reads, {} retries)",
        reads.load(Ordering::Relaxed),
        view.torn_retries()
    );
    assert!(reads.load(Ordering::Relaxed) > 0, "readers never ran");
}

/// Replays a delta subscription stream against range snapshots: applying
/// the word changes to the epoch-N bitmap must reproduce the epoch-M
/// bitmap exactly.
#[test]
fn delta_stream_reconstructs_later_epochs() {
    let view = SuspectView::new(2, &[(0, 128)]); // 2 words per combo
    let mut writer = view.writer(0);
    let epochs: Vec<[u64; 4]> = vec![
        [0b1, 0, 0, 0],
        [0b1, 0b10, 0, 0b100],
        [0b11, 0b10, 0, 0b100],
        [0b11, 0, 0b1000, 0b100],
    ];
    writer.publish_words(&epochs[0], SimTime::from_secs(1));
    let mut held = epochs[0];
    let held_epoch = 1u64;
    for (i, words) in epochs.iter().enumerate().skip(1) {
        writer.publish_words(words, SimTime::from_secs(1 + i as u64));
    }
    match view.delta_since(0, held_epoch).expect("published") {
        DeltaRead::Changes {
            from_epoch,
            to_epoch,
            changes,
        } => {
            assert_eq!((from_epoch, to_epoch), (1, 4));
            for d in changes {
                held[d.index as usize] = d.value;
            }
            assert_eq!(held, epochs[3]);
        }
        DeltaRead::Resync { .. } => panic!("window of 3 epochs should be retained"),
    }
}

/// Drives a bank through an arbitrary heartbeat schedule, publishes it,
/// and checks every (source, combo) point answer served through the full
/// wire path against `SourceBank::is_suspecting` — the serving plane
/// must be a faithful snapshot of the monitor, bit for bit.
fn assert_served_equals_bank(delays_ms: &[u16], check_at_s: u64) {
    const SOURCES: usize = 16;
    let eta = SimDuration::from_secs(1);
    let mut bank = SourceBank::paper_grid(eta, SOURCES);
    let combos = bank.len();
    let mut seqs = [0u64; SOURCES];
    for (i, &d) in delays_ms.iter().enumerate() {
        let source = (i % SOURCES) as u32;
        let seq = seqs[source as usize];
        seqs[source as usize] += 1;
        let arrival = SimTime::ZERO + eta * seq + SimDuration::from_millis(u64::from(d));
        bank.observe_heartbeat(source, seq, arrival);
    }
    let now = SimTime::from_secs(check_at_s);
    bank.check_all_at(now);

    let view = SuspectView::new(combos, &[(0, SOURCES)]);
    let mut writer = view.writer(0);
    writer.publish(&bank, now);

    let stats = ServeStats::default();
    for source in 0..SOURCES as u32 {
        for combo in 0..combos as u16 {
            let frame = Request::Point {
                token: 1,
                source,
                combo,
            }
            .encode();
            let reply = respond(&view, &stats, &frame).expect("point reply");
            match Response::decode(&reply).expect("decodable reply") {
                Response::PointResp { flags, epoch, .. } => {
                    assert_eq!(epoch, 1);
                    assert_ne!(flags & FLAG_PUBLISHED, 0);
                    assert_eq!(
                        flags & FLAG_SUSPECTING != 0,
                        bank.is_suspecting(source, usize::from(combo)),
                        "served bit diverged from the bank at s{source} c{combo}"
                    );
                }
                other => panic!("expected point response, got {other:?}"),
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The differential oracle over random schedules: serving plane ==
    /// `is_suspecting` at the published epoch, for every grid cell.
    #[test]
    fn served_point_matches_is_suspecting(
        delays_ms in proptest::collection::vec(50u16..3_000, 1..96),
        check_at_s in 1u64..40,
    ) {
        assert_served_equals_bank(&delays_ms, check_at_s);
    }
}

/// The pinned hand case: a mixed quiet/spiky schedule checked mid-run
/// (runs even where the proptest RNG differs).
#[test]
fn pinned_served_point_differential() {
    let delays: Vec<u16> = (0..64)
        .map(|i| {
            if i % 7 == 0 {
                2_800
            } else {
                120 + (i as u16 % 40)
            }
        })
        .collect();
    assert_served_equals_bank(&delays, 12);
}

/// Delta-ring wraparound under adaptive cadence: a churn-driven
/// publisher burns through epochs far faster than a lagging subscriber
/// polls, so the 64-epoch delta window is routinely gone. The contract
/// under test: a stale `delta_since` is answered with a *flagged*
/// `Resync` — never a delta chain rooted anywhere but the requested
/// epoch — and a replica maintained by apply-or-resnapshot converges to
/// the published bitmap bit for bit.
#[test]
fn lagging_subscriber_is_resynced_across_ring_wraparound_under_adaptive_cadence() {
    use fdqos::runtime::sharded::{PublishCadence, ShardedConfig, ShardedEngine};

    let mut config = ShardedConfig::paper_grid(192, 8, 11);
    config.shards = 2;
    config.loss = 0.05;
    config.spike_prob = 0.05;
    let blocks = partition(config.sources, config.shards);
    let combos = config.combos.len();
    let view = SuspectView::new(combos, &blocks);
    let publisher = EnginePublisher::new(&view);
    let engine = ShardedEngine::new(config);

    // Aggressive churn trigger: publish on every 4 suspicion edges with
    // a 1 ms virtual floor — thousands of epochs across an 8-cycle run.
    let cadence = PublishCadence::adaptive(
        SimDuration::from_millis(1),
        SimDuration::from_millis(500),
        4,
    );

    let seg = 0usize;
    let (_, len) = (blocks[seg].0, blocks[seg].1);
    let words_per = combos * len.div_ceil(64);
    let done = AtomicBool::new(false);
    let resyncs = AtomicU64::new(0);
    let applied = AtomicU64::new(0);

    std::thread::scope(|s| {
        let reader = s.spawn(|| {
            // A deliberately slow subscriber: sleeps between polls so the
            // adaptive publisher laps the delta ring repeatedly.
            let mut replica = vec![0u64; words_per];
            let mut held = 0u64;
            loop {
                let finished = done.load(Ordering::Acquire);
                match view.delta_since(seg, held) {
                    Some(DeltaRead::Changes {
                        from_epoch,
                        to_epoch,
                        changes,
                    }) => {
                        assert_eq!(
                            from_epoch, held,
                            "delta chain rooted at an epoch the subscriber does not hold"
                        );
                        for d in changes {
                            replica[d.index as usize] = d.value;
                        }
                        held = to_epoch;
                        applied.fetch_add(1, Ordering::Relaxed);
                    }
                    Some(DeltaRead::Resync { current_epoch }) => {
                        // Window gone: the only legal recovery is a full
                        // snapshot — take it one combo at a time at one
                        // consistent epoch.
                        resyncs.fetch_add(1, Ordering::Relaxed);
                        let words = len.div_ceil(64);
                        let mut epoch_seen = None;
                        let mut ok = true;
                        for combo in 0..combos {
                            let r = view
                                .range(combo as u32, blocks[seg].0 as u32, words)
                                .expect("published segment readable");
                            if *epoch_seen.get_or_insert(r.epoch) != r.epoch {
                                ok = false; // writer raced the page walk
                                break;
                            }
                            replica[combo * words..combo * words + r.words.len()]
                                .copy_from_slice(&r.words);
                        }
                        if ok {
                            held = epoch_seen.unwrap_or(current_epoch);
                        }
                    }
                    None => {}
                }
                if finished {
                    return (replica, held);
                }
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        });
        engine.run_published_with(cadence, &publisher);
        done.store(true, Ordering::Release);
        let (mut replica, mut held) = reader.join().expect("reader panicked");

        // The run must actually have lapped the 64-epoch ring...
        let current = view.epoch(seg);
        assert!(
            current > 100,
            "adaptive cadence published only {current} epochs; churn trigger dead?"
        );
        // ...and a subscriber still holding a pre-wraparound epoch gets a
        // flagged resync, never a silently mis-rooted delta.
        match view.delta_since(seg, 1).expect("published") {
            DeltaRead::Resync { current_epoch } => assert_eq!(current_epoch, current),
            DeltaRead::Changes { .. } => {
                panic!("64-entry ring claimed a delta chain across {current} epochs")
            }
        }

        // Quiesced now: one final catch-up, after which the replica must
        // equal the served bitmap exactly.
        match view.delta_since(seg, held).expect("published") {
            DeltaRead::Changes {
                to_epoch, changes, ..
            } => {
                for d in changes {
                    replica[d.index as usize] = d.value;
                }
                held = to_epoch;
            }
            DeltaRead::Resync { .. } => {
                let words = len.div_ceil(64);
                for combo in 0..combos {
                    let r = view
                        .range(combo as u32, blocks[seg].0 as u32, words)
                        .expect("published");
                    replica[combo * words..combo * words + r.words.len()].copy_from_slice(&r.words);
                    held = r.epoch;
                }
            }
        }
        assert_eq!(held, current, "replica not at the head epoch");
        let words = len.div_ceil(64);
        for combo in 0..combos {
            let r = view
                .range(combo as u32, blocks[seg].0 as u32, words)
                .expect("published");
            assert_eq!(
                &replica[combo * words..combo * words + r.words.len()],
                &r.words[..],
                "replica diverged from the published bitmap at combo {combo}"
            );
        }
    });
}

/// The engine-facing bridge: a view laid out by `partition` accepts each
/// shard's bank through the `ShardPublisher` hook and serves its bits.
#[test]
fn engine_publisher_bridges_sharded_banks() {
    use fdqos::runtime::ShardPublisher;
    const SOURCES: usize = 40;
    let eta = SimDuration::from_secs(1);
    let blocks = partition(SOURCES, 3);
    let combos = SourceBank::paper_grid(eta, 1).len();
    let view = SuspectView::new(combos, &blocks);
    let publisher = EnginePublisher::new(&view);

    let now = SimTime::from_secs(30);
    let mut banks: Vec<SourceBank> = Vec::new();
    for (shard, &(start, len)) in blocks.iter().enumerate() {
        let mut bank = SourceBank::paper_grid(eta, len);
        for local in 0..len as u32 {
            // Shard-dependent liveness: even shards keep sources fresh.
            let arrival = if shard % 2 == 0 {
                now - SimDuration::from_millis(300)
            } else {
                SimTime::from_millis(200)
            };
            bank.observe_heartbeat(local, 0, arrival);
        }
        bank.check_all_at(now);
        publisher.publish(shard, start, &bank, now);
        banks.push(bank);
    }
    for (shard, &(start, len)) in blocks.iter().enumerate() {
        for local in 0..len as u32 {
            for combo in 0..combos as u32 {
                let ans = view
                    .point(start as u32 + local, combo)
                    .expect("all segments published");
                assert_eq!(ans.epoch, 1);
                assert_eq!(
                    ans.suspecting,
                    banks[shard].is_suspecting(local, combo as usize),
                    "shard {shard} local {local} combo {combo}"
                );
            }
        }
    }
    let _ = Arc::clone(&view);
}
