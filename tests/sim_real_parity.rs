//! The Neko property: the same layer stacks run on the simulation engine and
//! on the real UDP engine. These tests run the identical code under both and
//! check the behaviours agree structurally (exact timing obviously differs).

use std::time::Duration;

use fdqos::core::combinations::Combination;
use fdqos::core::{MarginKind, PredictorKind};
use fdqos::experiments::{HeartbeaterLayer, MonitorLayer};
use fdqos::net::{ConstantDelay, LinkModel, NoLoss};
use fdqos::runtime::{Process, ProcessId, RealEngine, RealEngineConfig, SimEngine};
use fdqos::sim::{DetRng, SimDuration, SimTime};
use fdqos::stat::{EventKind, EventLog};

fn stacks(eta: SimDuration) -> Vec<Process> {
    let detectors = vec![
        Combination::new(PredictorKind::Last, MarginKind::Jac { phi: 2.0 }).build(eta),
        Combination::new(PredictorKind::Mean, MarginKind::Ci { gamma: 2.0 }).build(eta),
    ];
    vec![
        Process::new(ProcessId(0)).with_layer(MonitorLayer::new(detectors)),
        Process::new(ProcessId(1)).with_layer(HeartbeaterLayer::new(ProcessId(0), eta)),
    ]
}

fn count(log: &EventLog, pred: impl Fn(&EventKind) -> bool) -> usize {
    log.iter().filter(|e| pred(&e.kind)).count()
}

#[test]
fn same_stack_runs_on_both_engines() {
    let eta = SimDuration::from_millis(50);

    // --- Simulated run: 2 virtual seconds over a near-ideal link.
    let mut procs = stacks(eta).into_iter();
    let mut engine = SimEngine::new();
    engine.add_process(procs.next().unwrap());
    engine.add_process(procs.next().unwrap());
    engine.set_link(
        ProcessId(1),
        ProcessId(0),
        LinkModel::new(
            ConstantDelay::new(SimDuration::from_micros(200)),
            NoLoss,
            DetRng::seed_from(1),
        ),
    );
    engine.run_until(SimTime::from_secs(2));
    let sim_log = engine.into_event_log();

    // --- Real run: 2 wall seconds over localhost UDP.
    let config = RealEngineConfig::localhost(2).expect("bind localhost");
    let real = RealEngine::new(stacks(eta), config);
    let (_p, real_log, stats) = real.run_for(Duration::from_secs(2)).expect("real run");

    // Both runs send roughly duration/η heartbeats and deliver almost all.
    let sim_sent = count(&sim_log, |k| matches!(k, EventKind::Sent { .. }));
    let real_sent = count(&real_log, |k| matches!(k, EventKind::Sent { .. }));
    assert!((35..=45).contains(&sim_sent), "sim sent {sim_sent}");
    assert!((30..=48).contains(&real_sent), "real sent {real_sent}");

    let sim_recv = count(&sim_log, |k| matches!(k, EventKind::Received { .. }));
    let real_recv = count(&real_log, |k| matches!(k, EventKind::Received { .. }));
    assert!(
        sim_recv >= sim_sent - 1,
        "sim delivered {sim_recv}/{sim_sent}"
    );
    assert!(
        real_recv >= real_sent / 2,
        "real delivered {real_recv}/{real_sent}"
    );
    assert_eq!(stats[0].decode_errors, 0);

    // Neither run should leave a detector permanently suspecting a live
    // process: suspicion edges must balance within one.
    for log in [&sim_log, &real_log] {
        for d in 0..2u32 {
            let starts = count(
                log,
                |k| matches!(k, EventKind::StartSuspect { detector } if *detector == d),
            );
            let ends = count(
                log,
                |k| matches!(k, EventKind::EndSuspect { detector } if *detector == d),
            );
            assert!(
                starts.abs_diff(ends) <= 1,
                "detector {d}: {starts} starts vs {ends} ends"
            );
        }
    }
}

#[test]
fn real_engine_returns_processes_in_id_order() {
    let eta = SimDuration::from_millis(100);
    let config = RealEngineConfig::localhost(2).expect("bind localhost");
    let engine = RealEngine::new(stacks(eta), config);
    let (procs, _log, stats) = engine.run_for(Duration::from_millis(300)).expect("run");
    assert_eq!(procs.len(), 2);
    assert_eq!(procs[0].id(), ProcessId(0));
    assert_eq!(procs[1].id(), ProcessId(1));
    assert_eq!(stats.len(), 2);
}

#[test]
fn localhost_config_assigns_distinct_ports() {
    let config = RealEngineConfig::localhost(5).expect("bind localhost");
    let mut ports: Vec<u16> = config.addrs.iter().map(|a| a.port()).collect();
    ports.sort_unstable();
    ports.dedup();
    assert_eq!(ports.len(), 5, "ports must be distinct");
}
