//! End-to-end semantics of crash injection and detection on controlled
//! links, spanning fd-core, fd-runtime, fd-experiments and fd-stat.

use fdqos::core::{ConstantMargin, FailureDetector, Last};
use fdqos::experiments::{HeartbeaterLayer, MonitorLayer, SimCrashLayer};
use fdqos::net::{BernoulliLoss, ConstantDelay, LinkModel, NoLoss};
use fdqos::runtime::{Process, ProcessId, SimEngine};
use fdqos::sim::{DetRng, SimDuration, SimTime};
use fdqos::stat::{extract_metrics, EventKind};

fn engine_with(
    mttc_s: u64,
    ttr_s: u64,
    delay_ms: u64,
    loss: f64,
    margin_ms: f64,
    seed: u64,
) -> SimEngine {
    let eta = SimDuration::from_secs(1);
    let fd = FailureDetector::new("itest", Last::new(), ConstantMargin::new(margin_ms), eta);
    let mut engine = SimEngine::new();
    engine.add_process(Process::new(ProcessId(0)).with_layer(MonitorLayer::new(vec![fd])));
    engine.add_process(
        Process::new(ProcessId(1))
            .with_layer(SimCrashLayer::new(
                SimDuration::from_secs(mttc_s),
                SimDuration::from_secs(ttr_s),
                DetRng::seed_from(seed),
            ))
            .with_layer(HeartbeaterLayer::new(ProcessId(0), eta)),
    );
    engine.set_link(
        ProcessId(1),
        ProcessId(0),
        LinkModel::new(
            ConstantDelay::new(SimDuration::from_millis(delay_ms)),
            BernoulliLoss::new(loss),
            DetRng::seed_from(seed + 1),
        ),
    );
    engine
}

#[test]
fn perfect_link_every_crash_detected_no_mistakes() {
    let mut engine = engine_with(120, 15, 200, 0.0, 150.0, 1);
    let end = SimTime::from_secs(1_800);
    engine.run_until(end);
    let m = extract_metrics(engine.event_log(), 0, end);
    assert!(m.total_crashes >= 8, "crashes={}", m.total_crashes);
    assert_eq!(m.undetected_crashes, 0);
    assert!(m.mistake_durations_ms.is_empty());
    assert_eq!(m.query_accuracy(), Some(1.0));
    // Every T_D is bounded by η + delay + margin.
    for &td in &m.detection_times_ms {
        assert!(td <= 1_000.0 + 200.0 + 150.0 + 1.0, "T_D = {td}");
    }
}

#[test]
fn lossy_link_causes_mistakes_but_all_crashes_still_detected() {
    // 10% loss: missing heartbeats trigger false suspicions corrected by the
    // following heartbeat.
    let mut engine = engine_with(200, 20, 100, 0.10, 50.0, 2);
    let end = SimTime::from_secs(2_000);
    engine.run_until(end);
    let m = extract_metrics(engine.event_log(), 0, end);
    assert_eq!(m.undetected_crashes, 0, "completeness must hold");
    assert!(
        m.mistake_durations_ms.len() > 20,
        "10% loss must cause many mistakes, got {}",
        m.mistake_durations_ms.len()
    );
    // Mistakes last about one heartbeat period (until the next arrival).
    let mean_tm = m.mean_tm().unwrap();
    assert!(mean_tm < 2_500.0, "T_M = {mean_tm}");
    let pa = m.query_accuracy().unwrap();
    assert!(pa < 1.0 && pa > 0.5, "P_A = {pa}");
}

#[test]
fn crash_isolates_both_directions() {
    // The SimCrash layer must drop traffic *from* the crashed process: the
    // monitor receives nothing between crash and restore (modulo in-flight).
    let mut engine = engine_with(100, 30, 50, 0.0, 100.0, 3);
    let end = SimTime::from_secs(600);
    engine.run_until(end);
    let log = engine.event_log();
    let crash = log
        .iter()
        .find(|e| matches!(e.kind, EventKind::Crash))
        .expect("a crash happened")
        .at;
    let restore = log
        .iter()
        .find(|e| matches!(e.kind, EventKind::Restore) && e.at > crash)
        .expect("a restore happened")
        .at;
    let in_flight_horizon = crash + SimDuration::from_millis(50);
    for e in log.iter() {
        if let EventKind::Received { .. } = e.kind {
            let during_crash = e.at > in_flight_horizon && e.at < restore;
            assert!(
                !during_crash,
                "received at {} inside crash [{crash}, {restore}]",
                e.at
            );
        }
    }
}

#[test]
fn suspicion_edges_alternate_per_detector() {
    let mut engine = engine_with(90, 10, 150, 0.05, 30.0, 4);
    let end = SimTime::from_secs(1_200);
    engine.run_until(end);
    let mut suspecting = false;
    for e in engine.event_log().iter() {
        match e.kind {
            EventKind::StartSuspect { detector: 0 } => {
                assert!(!suspecting, "double StartSuspect at {}", e.at);
                suspecting = true;
            }
            EventKind::EndSuspect { detector: 0 } => {
                assert!(suspecting, "EndSuspect without StartSuspect at {}", e.at);
                suspecting = false;
            }
            _ => {}
        }
    }
}

#[test]
fn larger_margin_trades_accuracy_for_delay() {
    // The paper's core trade-off, demonstrated end-to-end: a larger constant
    // margin yields fewer/shorter mistakes but longer detection times.
    let run = |margin: f64| {
        let mut engine = engine_with(150, 20, 100, 0.08, margin, 5);
        let end = SimTime::from_secs(3_000);
        engine.run_until(end);
        extract_metrics(engine.event_log(), 0, end)
    };
    let tight = run(20.0);
    let loose = run(1_200.0);
    assert!(
        loose.mean_td().unwrap() > tight.mean_td().unwrap(),
        "detection slower with bigger margin"
    );
    // A margin larger than η + delay (1.2 s > 1.1 s) means a single lost
    // heartbeat no longer triggers suspicion: the following heartbeat
    // arrives at σ_{k+1} + η + delay, before τ_{k+1} = σ_{k+1} + delay + sm.
    assert!(
        loose.mistake_durations_ms.len() < tight.mistake_durations_ms.len() / 4,
        "tight={} loose={}",
        tight.mistake_durations_ms.len(),
        loose.mistake_durations_ms.len()
    );
}

#[test]
fn no_heartbeats_no_suspicion() {
    // A monitor with no incoming link never produces output transitions.
    let eta = SimDuration::from_secs(1);
    let fd = FailureDetector::new("idle", Last::new(), ConstantMargin::new(10.0), eta);
    let mut engine = SimEngine::new();
    engine.add_process(Process::new(ProcessId(0)).with_layer(MonitorLayer::new(vec![fd])));
    engine.add_process(
        Process::new(ProcessId(1)).with_layer(HeartbeaterLayer::new(ProcessId(0), eta)),
    );
    // No link configured: all heartbeats drop.
    engine.run_until(SimTime::from_secs(100));
    assert_eq!(
        engine
            .event_log()
            .iter()
            .filter(|e| matches!(e.kind, EventKind::StartSuspect { .. }))
            .count(),
        0
    );
    let _ = NoLoss; // keep the import exercised for the doc example
}
