//! End-to-end calibration workflow: record a trace on one link, fit a
//! profile to it, and run the QoS experiment on the *fitted* link — the
//! "measure once, simulate forever" path a downstream user would take.

use fdqos::experiments::{run_qos_experiment, ExperimentParams};
use fdqos::net::{calibrate_profile, DelayTrace, WanProfile};
use fdqos::sim::SimDuration;

#[test]
fn fitted_profile_supports_the_full_experiment() {
    let measured = DelayTrace::record(
        &WanProfile::italy_japan(),
        8_000,
        SimDuration::from_secs(1),
        0xF17,
    );
    let (fitted, _) = calibrate_profile(&measured, "fitted-link").expect("calibratable");

    let params = ExperimentParams {
        num_cycles: 600,
        runs: 2,
        ..ExperimentParams::quick()
    };
    let results = run_qos_experiment(&fitted, &params);
    assert_eq!(results.labels.len(), 30);
    for (label, m) in results.labels.iter().zip(&results.metrics) {
        assert!(m.total_crashes >= 10, "{label}");
        assert_eq!(
            m.detection_times_ms.len() + m.undetected_crashes,
            m.total_crashes,
            "{label}"
        );
        if let Some(pa) = m.query_accuracy() {
            assert!((0.0..=1.0).contains(&pa), "{label}: {pa}");
        }
    }
}

#[test]
fn fit_quality_carries_qos_shape() {
    // The headline orderings survive the measure→fit→simulate round trip:
    // detection times on the fitted link stay within the same regime as on
    // the original (sub-second differences, same η-dominated scale).
    let measured = DelayTrace::record(
        &WanProfile::italy_japan(),
        10_000,
        SimDuration::from_secs(1),
        0xF18,
    );
    let (fitted, _) = calibrate_profile(&measured, "fitted-link").expect("calibratable");
    let params = ExperimentParams {
        num_cycles: 1_000,
        runs: 2,
        ..ExperimentParams::quick()
    };
    let original = run_qos_experiment(&WanProfile::italy_japan(), &params);
    let refit = run_qos_experiment(&fitted, &params);
    let td_orig = original.metrics[0].mean_td().unwrap();
    let td_fit = refit.metrics[0].mean_td().unwrap();
    assert!(
        (td_orig - td_fit).abs() < 150.0,
        "T_D regime shifted: {td_orig} vs {td_fit}"
    );
}
