//! The wire-protocol leg of the invariant-fuzz campaign: mutational
//! fuzzing of the fd-net framing layer, the fd-serve query plane and
//! the fd-consensus message codec, with `SourceBank::is_suspecting` as
//! the semantic oracle.
//!
//! Three properties, each over thousands of structure-aware mutants of
//! the seed corpus in `tests/corpus/wire/`:
//!
//! 1. **totality** — `Request::decode`, `Response::decode`,
//!    `Heartbeat::decode`, `ConsensusMsg::classify` and the full server
//!    `respond` path never panic on any input, however mangled;
//! 2. **canonical round-trip** — any mutant that still decodes
//!    re-encodes to a frame that decodes to the same value;
//! 3. **oracle fidelity** — a mutant that still decodes as an
//!    *in-range* point query is answered with exactly the bank's
//!    `is_suspecting` bit; corruption may destroy a frame but can
//!    never flip an answer.
//!
//! Everything is seeded, so a failure reproduces from the printed
//! `(seed, corpus entry, iteration)` triple, and the whole campaign is
//! byte-for-byte repeatable — asserted by running it twice and
//! comparing fingerprints. New crashers get a named `regression_*`
//! test and a corpus file.

use std::path::Path;

use fd_check::fuzz::{load_corpus, Mutator, SplitMix64};
use fdqos::consensus::ConsensusMsg;
use fdqos::core::SourceBank;
use fdqos::net::wire::Heartbeat;
use fdqos::serve::wire::FLAG_SUSPECTING;
use fdqos::serve::{respond, Request, Response, ServeStats, SuspectView};
use fdqos::sim::{SimDuration, SimTime};

const CAMPAIGN_SEED: u64 = 0xfd5_f022;
const MUTANTS_PER_SEED: usize = 400;
const MAX_FRAME: usize = 1_400;

fn corpus() -> Vec<(String, Vec<u8>)> {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus/wire");
    let corpus = load_corpus(&dir);
    assert!(
        corpus.len() >= 25,
        "wire corpus missing or pruned: {} entries in {}",
        corpus.len(),
        dir.display()
    );
    corpus
}

/// A published 16-source view plus the bank it mirrors: the oracle pair
/// the fuzzed server is checked against.
fn oracle_pair(seed: u64) -> (std::sync::Arc<SuspectView>, SourceBank, ServeStats) {
    const SOURCES: usize = 16;
    let eta = SimDuration::from_secs(1);
    let mut bank = SourceBank::paper_grid(eta, SOURCES);
    let mut rng = SplitMix64::new(seed);
    for seq in 0..24u64 {
        for source in 0..SOURCES as u32 {
            if rng.one_in(9) {
                continue; // lost heartbeat
            }
            let delay = SimDuration::from_millis(50 + rng.below(2_500));
            bank.observe_heartbeat(source, seq, SimTime::ZERO + eta * seq + delay);
        }
    }
    let now = SimTime::from_secs(26);
    bank.check_all_at(now);
    let view = SuspectView::new(bank.len(), &[(0, SOURCES)]);
    view.writer(0).publish(&bank, now);
    (view, bank, ServeStats::default())
}

/// FNV-1a over everything the campaign observes, so two runs with the
/// same seed can be compared byte for byte.
#[derive(Default)]
struct Fingerprint(u64);

impl Fingerprint {
    fn new() -> Self {
        Fingerprint(0xcbf2_9ce4_8422_2325)
    }
    fn eat(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

/// One full campaign pass: mutate every corpus entry, drive the three
/// decoders and the server, fingerprint every outcome. Panics anywhere
/// in here are the bugs the campaign exists to catch.
fn run_campaign(seed: u64) -> (u64, u64, u64, u64) {
    let (view, bank, stats) = oracle_pair(seed);
    let mut fp = Fingerprint::new();
    let (mut decoded_ok, mut answered, mut consensus_ok) = (0u64, 0u64, 0u64);
    let mut mutator = Mutator::new(seed);
    for (name, bytes) in corpus() {
        let mut frame = bytes.clone();
        for iteration in 0..MUTANTS_PER_SEED {
            mutator.mutate(&mut frame, MAX_FRAME);
            // Structure awareness: half the time, re-stamp the valid
            // magic + version so mutation energy lands on the tag,
            // token and body instead of bouncing off the header check.
            if frame.len() >= 5 && mutator.rng().one_in(2) {
                frame[..4].copy_from_slice(&fdqos::serve::wire::MAGIC.to_be_bytes());
                frame[4] = fdqos::serve::wire::VERSION;
            }
            let ctx = || format!("seed {seed:#x}, corpus {name:?}, iteration {iteration}");

            // Totality: none of the decoders may panic; outcomes are
            // fingerprinted so replay divergence is caught.
            fp.eat(&frame);
            match Heartbeat::decode(&frame) {
                Ok(hb) => fp.eat(&hb.encode()),
                Err(e) => fp.eat(e.to_string().as_bytes()),
            }
            match Response::decode(&frame) {
                Ok(resp) => fp.eat(&resp.encode()),
                Err(e) => fp.eat(e.to_string().as_bytes()),
            }
            // The consensus codec is total too, its infallible decoder
            // agrees with the classifying one, and anything it accepts
            // survives a canonical round-trip.
            let classified = ConsensusMsg::classify(&frame);
            assert_eq!(
                ConsensusMsg::decode(&frame),
                classified.ok(),
                "decode and classify disagree ({})",
                ctx()
            );
            match classified {
                Ok(msg) => {
                    consensus_ok += 1;
                    let reenc = msg.encode();
                    fp.eat(&reenc);
                    assert_eq!(
                        ConsensusMsg::classify(&reenc),
                        Ok(msg),
                        "round-trip changed a consensus message ({})",
                        ctx()
                    );
                }
                Err(e) => fp.eat(e.to_string().as_bytes()),
            }
            let req = match Request::decode(&frame) {
                Ok(req) => {
                    decoded_ok += 1;
                    // Canonical round-trip: re-encoding loses nothing.
                    let reenc = req.encode();
                    fp.eat(&reenc);
                    assert_eq!(
                        Request::decode(&reenc),
                        Ok(req),
                        "round-trip changed a decoded request ({})",
                        ctx()
                    );
                    Some(req)
                }
                Err(e) => {
                    fp.eat(e.to_string().as_bytes());
                    None
                }
            };

            // The server is total on raw bytes...
            let reply = respond(&view, &stats, &frame);
            if let Some(ref reply) = reply {
                let mut decoded = Response::decode(reply)
                    .unwrap_or_else(|e| panic!("undecodable server reply {e} ({})", ctx()));
                assert_eq!(
                    decoded.token(),
                    req.expect("reply without a decodable request").token(),
                    "reply token does not echo the request ({})",
                    ctx()
                );
                // Snapshot age is wall-clock and legitimately varies
                // between runs; zero it before fingerprinting so the
                // replay-determinism check sees only protocol content.
                match decoded {
                    Response::PointResp { ref mut age_us, .. }
                    | Response::RangeResp { ref mut age_us, .. }
                    | Response::DeltaResp { ref mut age_us, .. } => *age_us = 0,
                    _ => {}
                }
                fp.eat(&decoded.encode());
            }

            // ...and corruption can reshape a query but never flip an
            // answer: an in-range point query must match the bank.
            if let Some(Request::Point { source, combo, .. }) = req {
                if (source as usize) < bank.sources() && (combo as usize) < bank.len() {
                    answered += 1;
                    match Response::decode(&reply.expect("in-range point query unanswered"))
                        .expect("point reply decodes")
                    {
                        Response::PointResp { flags, .. } => assert_eq!(
                            flags & FLAG_SUSPECTING != 0,
                            bank.is_suspecting(source, combo as usize),
                            "served bit diverged from the bank oracle ({})",
                            ctx()
                        ),
                        other => panic!("point query answered with {other:?} ({})", ctx()),
                    }
                }
            }

            // Periodically restart from the pristine seed so the walk
            // keeps coverage near the interesting structured shapes.
            if iteration % 16 == 15 {
                frame = bytes.clone();
            }
        }
    }
    (fp.0, decoded_ok, answered, consensus_ok)
}

/// The campaign proper: no decoder or server panic across ~7 000
/// mutants, and the structural walk actually exercises both the accept
/// and reject paths of every decoder.
#[test]
fn mutated_corpus_never_breaks_decoders_or_server() {
    let (_, decoded_ok, answered, consensus_ok) = run_campaign(CAMPAIGN_SEED);
    assert!(
        decoded_ok > 100,
        "mutation walk never reaches the accept path ({decoded_ok} decodes)"
    );
    assert!(
        answered >= 10,
        "mutation walk never produced an in-range point query ({answered} answers)"
    );
    assert!(
        consensus_ok > 100,
        "mutation walk never reaches the consensus accept path ({consensus_ok} decodes)"
    );
}

/// The oracle sweep: seeded *generated* queries (valid and
/// deliberately out-of-range) rather than mutation luck, so every round
/// checks the full answer semantics — point bits against
/// `is_suspecting`, range words bit-for-bit against the bank, and
/// out-of-range queries answered with a typed error, never garbage.
#[test]
fn generated_queries_match_the_bank_oracle() {
    use fdqos::serve::wire::ERR_OUT_OF_RANGE;

    let (view, bank, stats) = oracle_pair(0xfd5_0_ac1e);
    let mut rng = SplitMix64::new(0xfd5_9e9);
    let (mut in_range, mut rejected) = (0u64, 0u64);
    for i in 0..600u32 {
        // Overshoot the valid ranges ~1/3 of the time.
        let source = rng.below(bank.sources() as u64 + 8) as u32;
        let combo = rng.below(bank.len() as u64 + 12) as u16;
        let frame = if rng.one_in(3) {
            Request::Range {
                token: i,
                combo,
                first_source: source,
                max_words: 1 + rng.below(4) as u16,
            }
        } else {
            Request::Point {
                token: i,
                source,
                combo,
            }
        }
        .encode();
        let reply = respond(&view, &stats, &frame).expect("queries always answered");
        match Response::decode(&reply).expect("reply decodes") {
            Response::PointResp { token, flags, .. } => {
                in_range += 1;
                assert_eq!(token, i);
                assert_eq!(
                    flags & FLAG_SUSPECTING != 0,
                    bank.is_suspecting(source, usize::from(combo)),
                    "point answer diverged at source {source} combo {combo}"
                );
            }
            Response::RangeResp {
                token,
                first_word_source,
                words,
                ..
            } => {
                in_range += 1;
                assert_eq!(token, i);
                assert!(!words.is_empty(), "empty range reply for a valid query");
                for (w, &word) in words.iter().enumerate() {
                    for b in 0..64u32 {
                        let s = first_word_source + 64 * w as u32 + b;
                        if (s as usize) < bank.sources() {
                            assert_eq!(
                                word >> b & 1 != 0,
                                bank.is_suspecting(s, usize::from(combo)),
                                "range word bit diverged at source {s} combo {combo}"
                            );
                        }
                    }
                }
            }
            Response::Err { token, code } => {
                rejected += 1;
                assert_eq!(token, i);
                assert_eq!(code, ERR_OUT_OF_RANGE);
                assert!(
                    source as usize >= bank.sources() || usize::from(combo) >= bank.len(),
                    "in-range query (source {source}, combo {combo}) rejected"
                );
            }
            other => panic!("unexpected reply {other:?}"),
        }
    }
    assert!(
        in_range > 200 && rejected > 50,
        "sweep unbalanced: {in_range} answered, {rejected} rejected"
    );
}

/// Corpus replay is deterministic: the identical seed reproduces the
/// identical campaign, outcome for outcome — the property that makes a
/// CI failure reproducible from its printed triple.
#[test]
fn campaign_replay_is_deterministic() {
    assert_eq!(
        run_campaign(0xfd5_ab1e),
        run_campaign(0xfd5_ab1e),
        "same seed must replay the same campaign"
    );
}

/// The pinned corpus decodes exactly as named: `req_*`/`resp_*` seeds
/// are accepted by their decoder, `cons_*` seeds by the consensus codec
/// (and *only* by it — they must not alias a serve frame), the hostile
/// shapes are rejected by everything — so a codec change that silently
/// widens or narrows the accepted language fails here, not in
/// production.
#[test]
fn corpus_seeds_decode_as_named() {
    for (name, bytes) in corpus() {
        let req = Request::decode(&bytes);
        let resp = Response::decode(&bytes);
        if let Some(stem) = name.strip_suffix(".bin") {
            if stem.starts_with("req_") {
                assert!(req.is_ok(), "{name}: request seed rejected: {req:?}");
            } else if stem.starts_with("resp_") && !stem.ends_with("_liar") {
                assert!(resp.is_ok(), "{name}: response seed rejected: {resp:?}");
            } else if stem.starts_with("cons_") {
                let cons = ConsensusMsg::classify(&bytes);
                if stem.starts_with("cons_truncated") || stem.starts_with("cons_bad_tag") {
                    assert!(cons.is_err(), "{name}: hostile consensus seed accepted");
                } else {
                    assert!(cons.is_ok(), "{name}: consensus seed rejected: {cons:?}");
                }
                assert!(
                    req.is_err() && resp.is_err(),
                    "{name}: consensus seed aliases a serve frame (req {req:?}, resp {resp:?})"
                );
            } else {
                assert!(
                    req.is_err() && resp.is_err(),
                    "{name}: hostile seed was accepted (req {req:?}, resp {resp:?})"
                );
            }
        }
    }
}

/// The hostile consensus seeds are rejected with the *typed* reason the
/// `FrameError` taxonomy promises — truncation reported as `Truncated`
/// (not `BadTag` or a silent `None`), an unknown tag as `BadTag` — so
/// transport-side rejection counters keep attributing drops correctly.
#[test]
fn consensus_seeds_reject_with_typed_reasons() {
    use fdqos::net::framing::FrameError;

    let corpus = corpus();
    let find = |stem: &str| {
        &corpus
            .iter()
            .find(|(name, _)| name == &format!("{stem}.bin"))
            .unwrap_or_else(|| panic!("{stem} seed present"))
            .1
    };
    assert!(
        matches!(
            ConsensusMsg::classify(find("cons_truncated")),
            Err(FrameError::Truncated { .. })
        ),
        "truncated estimate not classified as Truncated"
    );
    assert!(
        matches!(
            ConsensusMsg::classify(find("cons_bad_tag")),
            Err(FrameError::BadTag { .. })
        ),
        "unknown tag not classified as BadTag"
    );
}

/// Regression (found by an early campaign run): a `RangeResp`/`DeltaResp`
/// whose count field claims far more elements than the datagram holds
/// must be rejected as truncated — with the need computed via the
/// overflow-checked counted-body helper, not a raw multiply.
#[test]
fn regression_counted_body_length_liar() {
    let corpus = corpus();
    for liar in ["resp_range_liar.bin", "resp_delta_liar.bin"] {
        let (_, bytes) = corpus
            .iter()
            .find(|(name, _)| name == liar)
            .expect("liar seed present");
        assert!(
            matches!(
                Response::decode(bytes),
                Err(fdqos::net::framing::FrameError::Truncated { .. })
            ),
            "{liar}: lying count field not rejected as truncated"
        );
    }
}
