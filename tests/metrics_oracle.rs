//! Cross-validation of the QoS metric extraction against an independent
//! brute-force oracle.
//!
//! `fd_stat::extract_metrics` is the measurement instrument behind every
//! figure of the reproduction, so its correctness is checked here against a
//! second, deliberately naive implementation that works directly on
//! explicit interval lists rather than a streaming handler.

use fdqos::sim::SimTime;
use fdqos::stat::{extract_metrics, Event, EventKind, EventLog, ProcessId};
use proptest::prelude::*;

/// The brute-force oracle: builds interval lists and classifies them.
fn oracle(
    crashes: &[(u64, u64)],          // [start, end) seconds
    episodes: &[(u64, Option<u64>)], // start, optional end
    run_end_s: u64,
) -> (Vec<f64>, Vec<f64>, usize) {
    // Detection: for each crash, the episode active at restore time.
    let active_at = |t: u64, (s, e): (u64, Option<u64>)| s <= t && e.is_none_or(|e| t < e);
    let mut detections = Vec::new();
    let mut detection_idx = Vec::new();
    let mut undetected = 0;
    for &(c, r) in crashes {
        match episodes.iter().position(|&ep| active_at(r, ep)) {
            Some(i) => {
                detection_idx.push(i);
                detections.push((episodes[i].0.saturating_sub(c) * 1_000) as f64);
            }
            None => undetected += 1,
        }
    }
    // Mistakes: closed episodes starting while up, excluding detections.
    let down_at = |t: u64| crashes.iter().any(|&(c, r)| t >= c && t < r);
    let mut mistakes = Vec::new();
    for (i, &(s, e)) in episodes.iter().enumerate() {
        if detection_idx.contains(&i) || down_at(s) {
            continue;
        }
        if let Some(e) = e {
            mistakes.push(((e - s) * 1_000) as f64);
        }
    }
    let _ = run_end_s;
    (detections, mistakes, undetected)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Streaming extraction and the brute-force oracle agree on T_D samples,
    /// T_M samples and the undetected count for arbitrary well-formed
    /// schedules.
    #[test]
    fn extraction_matches_oracle(
        crash_gaps in proptest::collection::vec(10u64..40, 0..4),
        episode_gaps in proptest::collection::vec(1u64..25, 1..12),
        leave_open in proptest::bool::ANY,
    ) {
        // Build non-overlapping crash intervals.
        let mut crashes = Vec::new();
        let mut t = 17u64;
        for g in &crash_gaps {
            let c = t + g;
            let r = c + 8;
            crashes.push((c, r));
            t = r + 5;
        }
        let run_end_s = t + 200;

        // Build alternating suspicion episodes.
        let mut episodes: Vec<(u64, Option<u64>)> = Vec::new();
        let mut t = 3u64;
        let mut start: Option<u64> = None;
        for g in &episode_gaps {
            t += g;
            match start {
                None => start = Some(t),
                Some(s) => {
                    episodes.push((s, Some(t)));
                    start = None;
                }
            }
        }
        if let Some(s) = start {
            if leave_open {
                episodes.push((s, None));
            }
        }

        // Interleave into a time-ordered event log.
        let mut events: Vec<Event> = Vec::new();
        let p = ProcessId(0);
        for &(c, r) in &crashes {
            events.push(Event::new(SimTime::from_secs(c), p, EventKind::Crash));
            events.push(Event::new(SimTime::from_secs(r), p, EventKind::Restore));
        }
        for &(s, e) in &episodes {
            events.push(Event::new(
                SimTime::from_secs(s),
                p,
                EventKind::StartSuspect { detector: 0 },
            ));
            if let Some(e) = e {
                events.push(Event::new(
                    SimTime::from_secs(e),
                    p,
                    EventKind::EndSuspect { detector: 0 },
                ));
            }
        }
        events.sort_by_key(|e| e.at);
        let log: EventLog = events.into_iter().collect();

        let m = extract_metrics(&log, 0, SimTime::from_secs(run_end_s));
        let (td_oracle, tm_oracle, undetected_oracle) =
            oracle(&crashes, &episodes, run_end_s);

        prop_assert_eq!(&m.detection_times_ms, &td_oracle);
        prop_assert_eq!(&m.mistake_durations_ms, &tm_oracle);
        prop_assert_eq!(m.undetected_crashes, undetected_oracle);
        prop_assert_eq!(m.total_crashes, crashes.len());
    }
}
