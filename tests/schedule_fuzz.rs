//! Schedule-fuzzing the sharded engine: the shard-invariance claim —
//! the merged event log and its fingerprint are bit-identical whatever
//! the shard count — proved not just at the two hand-picked shard
//! counts of `scale_stack.rs` but across seeded random grids, random
//! shard counts, and random publication pause points injected through
//! the `ShardPublisher` hook.
//!
//! Publication is the schedule lever: `run_published` interleaves
//! publisher callbacks (which share the worker thread with event
//! processing) at every multiple of the interval, so fuzzing the
//! interval moves the pause points around the virtual timeline. A
//! fingerprint that shifts under any of it means shard state leaked
//! across a boundary the design says is private.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use fd_check::fuzz::SplitMix64;
use fdqos::core::SourceBank;
use fdqos::runtime::sharded::partition;
use fdqos::runtime::{ShardPublisher, ShardedConfig, ShardedEngine, ShardedReport, StreamDigest};
use fdqos::sim::{SimDuration, SimTime};

/// A publisher that only observes: counts callbacks and folds every
/// published snapshot into an order-independent [`StreamDigest`] (the
/// same multiset digest the engine uses for its event stream — shards
/// publish concurrently, so the observation order is nondeterministic
/// even when the observations themselves are not). The engine's
/// "publication is pure observation" claim is thus exercised by a
/// callback that actually reads the bank — without perturbing the run.
#[derive(Default)]
struct ObservingPublisher {
    publishes: AtomicU64,
    digest: Mutex<StreamDigest>,
}

impl ObservingPublisher {
    fn digest_value(&self) -> u64 {
        self.digest.lock().unwrap().value()
    }
}

impl ShardPublisher for ObservingPublisher {
    fn publish(&self, shard: usize, start: usize, bank: &SourceBank, now: SimTime) {
        self.publishes.fetch_add(1, Ordering::Relaxed);
        // One snapshot = one digest tuple: (shard, start, now, words...).
        let words = bank.suspect_words();
        let mut tuple = Vec::with_capacity(24 + words.len() * 8);
        tuple.extend_from_slice(&(shard as u64).to_le_bytes());
        tuple.extend_from_slice(&(start as u64).to_le_bytes());
        tuple.extend_from_slice(&now.as_micros().to_le_bytes());
        for &w in words {
            tuple.extend_from_slice(&w.to_le_bytes());
        }
        self.digest.lock().unwrap().fold_bytes(&tuple);
    }
}

fn grid(rng: &mut SplitMix64) -> ShardedConfig {
    let mut cfg = ShardedConfig::paper_grid(
        4 + rng.below(28) as usize, // sources
        3 + rng.below(6),           // cycles
        rng.next(),                 // engine seed
    );
    // Wiggle the WAN so suspect/trust edge density varies per round.
    cfg.loss = [0.0, 0.01, 0.08][rng.below(3) as usize];
    cfg.spike_prob = [0.0, 0.02, 0.10][rng.below(3) as usize];
    // Retain the log so the fuzz compares full event streams, not just
    // the streaming digest.
    cfg.retain_events = true;
    cfg
}

fn assert_same_run(a: &ShardedReport, b: &ShardedReport, what: &str) {
    assert_eq!(a.fingerprint, b.fingerprint, "{what}: fingerprint diverged");
    assert_eq!(a.digest, b.digest, "{what}: streaming digest diverged");
    assert_eq!(a.qos, b.qos, "{what}: online QoS roll-ups diverged");
    assert_eq!(a.events, b.events, "{what}: merged event log diverged");
    assert_eq!(
        (a.heartbeats, a.lost, a.start_suspects, a.end_suspects),
        (b.heartbeats, b.lost, b.start_suspects, b.end_suspects),
        "{what}: counters diverged"
    );
}

/// The campaign: every seeded grid must produce one identical report
/// under a random shard count (including counts past the source count,
/// which clamp) and under randomly placed publication pauses.
#[test]
fn fingerprint_is_invariant_under_fuzzed_shards_and_pause_points() {
    let mut rng = SplitMix64::new(0xfd5_5cad);
    for round in 0..10 {
        let cfg = grid(&mut rng);
        let baseline = ShardedEngine::new(cfg.clone()).run();
        assert!(
            baseline.heartbeats > 0,
            "round {round}: degenerate grid, nothing simulated"
        );

        // Random shard count, deliberately overshooting sometimes: the
        // partition clamps, the fingerprint must not notice.
        let shards = 1 + rng.below(cfg.sources as u64 + 4) as usize;
        let mut sharded_cfg = cfg.clone();
        sharded_cfg.shards = shards;
        let sharded = ShardedEngine::new(sharded_cfg.clone()).run();
        assert_same_run(
            &baseline,
            &sharded,
            &format!("round {round}, {shards} shards"),
        );
        assert_eq!(sharded.shards, partition(cfg.sources, shards).len());

        // Random pause points: publish every 1..=3×eta of virtual time,
        // through a publisher that reads every shard's state.
        let every = SimDuration::from_millis(250 + rng.below(2_750));
        let publisher = ObservingPublisher::default();
        let published = ShardedEngine::new(sharded_cfg).run_published(every, &publisher);
        assert_same_run(
            &baseline,
            &published,
            &format!("round {round}, publishing every {every:?}"),
        );
        assert!(
            publisher.publishes.load(Ordering::Relaxed) >= sharded.shards as u64,
            "round {round}: publisher never saw every shard"
        );
    }
}

/// Pause-point placement is itself invisible: two published runs of the
/// same grid with *different* publication intervals still agree with
/// each other — and a re-run with the identical interval reproduces the
/// identical observation digest, so the publisher hook is deterministic
/// too, not merely harmless.
#[test]
fn pause_point_placement_never_leaks_into_the_run() {
    let mut rng = SplitMix64::new(0xfd5_ba5e);
    for round in 0..4 {
        let mut cfg = grid(&mut rng);
        cfg.shards = 1 + rng.below(6) as usize;
        let fast = SimDuration::from_millis(200 + rng.below(400));
        let slow = SimDuration::from_secs(2 + rng.below(3));

        let pa = ObservingPublisher::default();
        let pb = ObservingPublisher::default();
        let pa2 = ObservingPublisher::default();
        let a = ShardedEngine::new(cfg.clone()).run_published(fast, &pa);
        let b = ShardedEngine::new(cfg.clone()).run_published(slow, &pb);
        let a2 = ShardedEngine::new(cfg).run_published(fast, &pa2);

        assert_same_run(&a, &b, &format!("round {round}, {fast:?} vs {slow:?}"));
        assert_same_run(&a, &a2, &format!("round {round}, repeat of {fast:?}"));
        assert_eq!(
            pa.digest_value(),
            pa2.digest_value(),
            "round {round}: publisher observations not reproducible"
        );
        assert!(
            pa.publishes.load(Ordering::Relaxed) >= pb.publishes.load(Ordering::Relaxed),
            "round {round}: faster interval published less"
        );
    }
}
