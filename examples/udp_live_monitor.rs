//! Run the *same* layers on a real network: a monitored process heartbeats
//! over localhost UDP while a monitor runs three failure detectors on the
//! live datagram stream (the Neko promise — identical code, real transport).
//! The resulting suspicion state is then exposed through the fd-serve
//! query plane: the run's suspect/trust edges are published into a
//! `SuspectView`, a UDP query server fronts it, and a client asks it the
//! paper's query — "do you suspect p?" — for each detector.
//!
//! ```text
//! cargo run --example udp_live_monitor
//! ```

use std::sync::Arc;
use std::time::Duration;

use fdqos::core::combinations::Combination;
use fdqos::core::{MarginKind, PredictorKind};
use fdqos::experiments::{HeartbeaterLayer, MonitorLayer};
use fdqos::runtime::{Process, ProcessId, RealEngine, RealEngineConfig};
use fdqos::serve::wire::{FLAG_PUBLISHED, FLAG_SUSPECTING};
use fdqos::serve::{Response, ServeClient, ServeConfig, ServeServer, SuspectView};
use fdqos::sim::{SimDuration, SimTime};
use fdqos::stat::{extract_metrics, EventKind};

fn main() -> std::io::Result<()> {
    // Fast heartbeats (η = 50 ms) so a short run collects real statistics.
    let eta = SimDuration::from_millis(50);
    let detectors = vec![
        Combination::new(PredictorKind::Last, MarginKind::Jac { phi: 2.0 }).build(eta),
        Combination::new(
            PredictorKind::WinMean { window: 10 },
            MarginKind::Ci { gamma: 2.0 },
        )
        .build(eta),
        Combination::new(PredictorKind::Mean, MarginKind::Ci { gamma: 3.31 }).build(eta),
    ];
    let labels: Vec<String> = detectors.iter().map(|d| d.name().to_owned()).collect();

    let monitor = Process::new(ProcessId(0)).with_layer(MonitorLayer::new(detectors));
    let monitored = Process::new(ProcessId(1)).with_layer(HeartbeaterLayer::new(ProcessId(0), eta));

    let config = RealEngineConfig::localhost(2)?;
    println!("monitor  at {}", config.addrs[0]);
    println!("monitored at {}", config.addrs[1]);

    let engine = RealEngine::new(vec![monitor, monitored], config);
    let wall = Duration::from_secs(3);
    println!("running for {wall:?} of real time …");
    let (_procs, log, stats) = engine.run_for(wall)?;

    let sent = log
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Sent { .. }))
        .count();
    let received = log
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Received { .. }))
        .count();
    println!("\nheartbeats: {sent} sent, {received} received");
    println!("datagram counters: {stats:?}");

    let run_end = SimTime::from_micros(wall.as_micros() as u64);
    for (idx, label) in labels.iter().enumerate() {
        let m = extract_metrics(&log, idx as u32, run_end);
        println!(
            "{label:<28} mistakes={:<3} P_A={}",
            m.mistake_durations_ms.len(),
            m.query_accuracy()
                .map_or("n/a".to_owned(), |p| format!("{p:.5}")),
        );
    }
    println!("\n(no crashes were injected: every suspicion above is a mistake)");

    // Expose the live suspicion state through the serving plane: replay
    // the run's suspect/trust edges into a 1-source × 3-combo view
    // (publishing an epoch per edge), then query it over UDP like any
    // external client would.
    let view = SuspectView::new(labels.len(), &[(0, 1)]);
    let mut writer = view.writer(0);
    let mut words = vec![0u64; labels.len()]; // one word per combo row
    writer.publish_words(&words, SimTime::ZERO);
    for e in log.iter() {
        match e.kind {
            EventKind::StartSuspect { detector } if (detector as usize) < words.len() => {
                words[detector as usize] = 1;
            }
            EventKind::EndSuspect { detector } if (detector as usize) < words.len() => {
                words[detector as usize] = 0;
            }
            _ => continue,
        }
        writer.publish_words(&words, e.at);
    }
    let server = ServeServer::start(Arc::clone(&view), ServeConfig::default())?;
    let mut client = ServeClient::connect(server.local_addr(), Duration::from_secs(2))?;
    println!(
        "\nserving plane at {} ({} epochs published — one per suspicion edge):",
        server.local_addr(),
        view.epoch(0)
    );
    for (idx, label) in labels.iter().enumerate() {
        if let Response::PointResp { flags, epoch, .. } = client.point(0, idx as u16)? {
            let answer = if flags & FLAG_PUBLISHED == 0 {
                "unpublished"
            } else if flags & FLAG_SUSPECTING != 0 {
                "SUSPECTED"
            } else {
                "trusted"
            };
            println!("{label:<28} query → {answer} (epoch {epoch})");
        }
    }
    Ok(())
}
