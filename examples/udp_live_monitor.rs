//! Run the *same* layers on a real network: a monitored process heartbeats
//! over localhost UDP while a monitor runs three failure detectors on the
//! live datagram stream (the Neko promise — identical code, real transport).
//!
//! ```text
//! cargo run --example udp_live_monitor
//! ```

use std::time::Duration;

use fdqos::core::combinations::Combination;
use fdqos::core::{MarginKind, PredictorKind};
use fdqos::experiments::{HeartbeaterLayer, MonitorLayer};
use fdqos::runtime::{Process, ProcessId, RealEngine, RealEngineConfig};
use fdqos::sim::{SimDuration, SimTime};
use fdqos::stat::{extract_metrics, EventKind};

fn main() -> std::io::Result<()> {
    // Fast heartbeats (η = 50 ms) so a short run collects real statistics.
    let eta = SimDuration::from_millis(50);
    let detectors = vec![
        Combination::new(PredictorKind::Last, MarginKind::Jac { phi: 2.0 }).build(eta),
        Combination::new(
            PredictorKind::WinMean { window: 10 },
            MarginKind::Ci { gamma: 2.0 },
        )
        .build(eta),
        Combination::new(PredictorKind::Mean, MarginKind::Ci { gamma: 3.31 }).build(eta),
    ];
    let labels: Vec<String> = detectors.iter().map(|d| d.name().to_owned()).collect();

    let monitor = Process::new(ProcessId(0)).with_layer(MonitorLayer::new(detectors));
    let monitored = Process::new(ProcessId(1)).with_layer(HeartbeaterLayer::new(ProcessId(0), eta));

    let config = RealEngineConfig::localhost(2)?;
    println!("monitor  at {}", config.addrs[0]);
    println!("monitored at {}", config.addrs[1]);

    let engine = RealEngine::new(vec![monitor, monitored], config);
    let wall = Duration::from_secs(3);
    println!("running for {wall:?} of real time …");
    let (_procs, log, stats) = engine.run_for(wall)?;

    let sent = log
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Sent { .. }))
        .count();
    let received = log
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Received { .. }))
        .count();
    println!("\nheartbeats: {sent} sent, {received} received");
    println!("datagram counters: {stats:?}");

    let run_end = SimTime::from_micros(wall.as_micros() as u64);
    for (idx, label) in labels.iter().enumerate() {
        let m = extract_metrics(&log, idx as u32, run_end);
        println!(
            "{label:<28} mistakes={:<3} P_A={}",
            m.mistake_durations_ms.len(),
            m.query_accuracy()
                .map_or("n/a".to_owned(), |p| format!("{p:.5}")),
        );
    }
    println!("\n(no crashes were injected: every suspicion above is a mistake)");
    Ok(())
}
