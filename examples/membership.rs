//! Group membership on top of failure detection — the application the paper
//! motivates ("the use of a failure detector as low level service of group
//! membership applications implies that the most important metrics are those
//! related to accuracy").
//!
//! A coordinator watches three members, each heartbeating over its own WAN
//! link; one member crashes mid-run. The membership view is recomputed from
//! the per-member failure detectors, and every view change is printed —
//! false removals are exactly the detector's mistakes.
//!
//! ```text
//! cargo run --example membership
//! ```

use std::collections::BTreeMap;

use fdqos::core::combinations::Combination;
use fdqos::core::{FailureDetector, MarginKind, PredictorKind};
use fdqos::experiments::{HeartbeaterLayer, SimCrashLayer};
use fdqos::net::WanProfile;
use fdqos::runtime::{Context, Layer, Message, Process, ProcessId, SimEngine, TimerId};
use fdqos::sim::{DetRng, SimDuration, SimTime};

/// One failure detector per member; the membership view is the set of
/// trusted members. Built entirely on the public API.
struct MembershipLayer {
    detectors: BTreeMap<ProcessId, FailureDetector>,
    view: Vec<ProcessId>,
    view_changes: u32,
}

impl MembershipLayer {
    fn new(members: &[ProcessId], eta: SimDuration) -> Self {
        // Accuracy matters most for membership, so use the paper's accuracy
        // recommendation: a good predictor with an error-independent margin.
        let combo = Combination::new(
            PredictorKind::Arima {
                p: 2,
                d: 1,
                q: 1,
                refit_every: 1000,
            },
            MarginKind::Ci { gamma: 3.31 },
        );
        let detectors = members.iter().map(|&m| (m, combo.build(eta))).collect();
        Self {
            detectors,
            view: members.to_vec(),
            view_changes: 0,
        }
    }

    fn recompute_view(&mut self, now: SimTime) {
        let next: Vec<ProcessId> = self
            .detectors
            .iter()
            .filter(|(_, fd)| !fd.is_suspecting())
            .map(|(&m, _)| m)
            .collect();
        if next != self.view {
            self.view_changes += 1;
            println!(
                "  {:>10}  view #{:<3} {:?}",
                now.to_string(),
                self.view_changes,
                next.iter().map(|m| m.to_string()).collect::<Vec<_>>()
            );
            self.view = next;
        }
    }
}

impl Layer for MembershipLayer {
    fn on_start(&mut self, ctx: &mut Context) {
        ctx.set_timer(SimDuration::from_millis(100), u64::MAX);
    }

    fn on_deliver(&mut self, ctx: &mut Context, msg: Message) {
        if let Some(fd) = self.detectors.get_mut(&msg.from) {
            fd.on_heartbeat(msg.seq, ctx.now());
        }
        self.recompute_view(ctx.now());
    }

    fn on_timer(&mut self, ctx: &mut Context, _id: TimerId) {
        // A coarse 100 ms poll keeps the example simple; the QoS experiments
        // use exact per-deadline timers instead.
        let now = ctx.now();
        for fd in self.detectors.values_mut() {
            fd.check(now);
        }
        self.recompute_view(now);
        ctx.set_timer(SimDuration::from_millis(100), u64::MAX);
    }

    fn name(&self) -> &str {
        "membership"
    }
}

fn main() {
    let eta = SimDuration::from_secs(1);
    let members = [ProcessId(1), ProcessId(2), ProcessId(3)];

    let mut engine = SimEngine::new();
    engine.add_process(Process::new(ProcessId(0)).with_layer(MembershipLayer::new(&members, eta)));

    // Members 1 and 2 are stable; member 3 crashes around t ≈ 60–180 s.
    for &m in &members {
        let mut p = Process::new(m);
        if m == ProcessId(3) {
            p = p.with_layer(SimCrashLayer::new(
                SimDuration::from_secs(120),
                SimDuration::from_secs(30),
                DetRng::seed_from(33),
            ));
        }
        engine.add_process(p.with_layer(HeartbeaterLayer::new(ProcessId(0), eta)));
    }

    // Each member reaches the coordinator over its own WAN path.
    for (i, &m) in members.iter().enumerate() {
        let profile = WanProfile::italy_japan();
        engine.set_link(
            m,
            ProcessId(0),
            profile.link(DetRng::seed_from(100 + i as u64)),
        );
    }

    println!("membership over {} members, η = {eta}:", members.len());
    println!(
        "  {:>10}  view #0   {:?}",
        "0s",
        members.iter().map(|m| m.to_string()).collect::<Vec<_>>()
    );
    engine.run_until(SimTime::from_secs(400));

    let crashes = engine
        .event_log()
        .iter()
        .filter(|e| matches!(e.kind, fdqos::stat::EventKind::Crash))
        .count();
    println!("\ndone: {crashes} real crash(es) injected on p3.");
    println!("(every view change not matching a crash/restore is a false suspicion — the accuracy cost the paper's P_A metric quantifies)");
}
