//! Record a heartbeat delay trace, persist it, characterise the link
//! (Table 4 style) and rank the predictors on it (Table 3 style) — the
//! paper's Section 5.1 workflow as a library user would run it.
//!
//! ```text
//! cargo run --release --example trace_analysis
//! ```

use fdqos::arima::select_best_model;
use fdqos::experiments::accuracy::accuracy_table_for_delays;
use fdqos::net::{DelayTrace, WanProfile};
use fdqos::sim::SimDuration;
use fdqos::stat::autocorrelation;

fn main() -> std::io::Result<()> {
    // 1. Record 20 000 heartbeat delays over the Italy–Japan profile.
    let profile = WanProfile::italy_japan();
    let trace = DelayTrace::record(&profile, 20_000, SimDuration::from_secs(1), 2005);

    // 2. Persist and reload (the artefact a real measurement campaign keeps).
    let path = std::env::temp_dir().join("fdqos_italy_japan_trace.csv");
    trace.save_csv(&path)?;
    let reloaded = DelayTrace::load_csv(&path)?;
    assert_eq!(trace, reloaded);
    println!(
        "trace saved to {} ({} heartbeats)",
        path.display(),
        reloaded.len()
    );

    // 3. Characterise the link (the paper's Table 4).
    let ch = reloaded.characteristics().expect("non-empty trace");
    println!("\nlink characteristics:\n{ch}");

    // 3b. Correlation structure: why history-based predictors can win here.
    let delays = reloaded.delays_ms();
    let acf = autocorrelation(&delays, 5);
    print!("\nautocorrelation of the delays:");
    for (lag, rho) in acf.iter().enumerate().skip(1) {
        print!("  ρ_{lag} = {rho:.3}");
    }
    println!();
    println!("(ρ_1 < 0.5 ⇒ MEAN beats LAST in msqerr; ρ_1 > 0 ⇒ ARIMA has structure to exploit)");

    // 4. Rank the five paper predictors by msqerr (the paper's Table 3).
    let table = accuracy_table_for_delays(&reloaded.delays_ms(), &profile.name);
    println!("\n{table}");

    // 5. Identify the best ARIMA orders on this trace (the paper's Table 2,
    //    done with the RPS toolkit; reduced grid here for runtime).
    if let Some(report) = select_best_model(&delays[..8_000.min(delays.len())], 3, 1, 1) {
        println!(
            "best ARIMA orders on this trace: {} (held-out msqerr {:.2} ms²)",
            report.best.spec, report.best.msqerr
        );
    }
    Ok(())
}
