//! Quickstart: monitor one process over a simulated WAN link and watch the
//! failure detector's output change as the process crashes and recovers.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use fdqos::core::combinations::Combination;
use fdqos::core::{MarginKind, PredictorKind};
use fdqos::experiments::{HeartbeaterLayer, MonitorLayer, SimCrashLayer};
use fdqos::net::WanProfile;
use fdqos::runtime::{Process, ProcessId, SimEngine};
use fdqos::sim::{DetRng, SimDuration, SimTime};
use fdqos::stat::{extract_metrics, EventKind};

fn main() {
    // The paper's overall winner: LAST predictor + Jacobson safety margin.
    let eta = SimDuration::from_secs(1);
    let combo = Combination::new(PredictorKind::Last, MarginKind::Jac { phi: 2.0 });
    let detector = combo.build(eta);
    println!("detector: {}", detector.name());

    // Monitor (process 0) and monitored (process 1, crashing every ~60 s).
    let mut engine = SimEngine::new();
    engine.add_process(Process::new(ProcessId(0)).with_layer(MonitorLayer::new(vec![detector])));
    engine.add_process(
        Process::new(ProcessId(1))
            .with_layer(SimCrashLayer::new(
                SimDuration::from_secs(60),
                SimDuration::from_secs(10),
                DetRng::seed_from(7),
            ))
            .with_layer(HeartbeaterLayer::new(ProcessId(0), eta)),
    );

    // An Italy→Japan WAN link (≈ 200 ms one-way, < 1% bursty loss).
    let profile = WanProfile::italy_japan();
    engine.set_link(
        ProcessId(1),
        ProcessId(0),
        profile.link(DetRng::seed_from(8)),
    );

    // Five minutes of virtual time.
    let end = SimTime::from_secs(300);
    engine.run_until(end);

    // Timeline of what happened.
    println!("\ntimeline:");
    for event in engine.event_log().iter() {
        match event.kind {
            EventKind::Crash => println!("  {:>10}  process crashed", event.at.to_string()),
            EventKind::Restore => println!("  {:>10}  process restored", event.at.to_string()),
            EventKind::StartSuspect { .. } => {
                println!("  {:>10}  detector suspects", event.at.to_string())
            }
            EventKind::EndSuspect { .. } => {
                println!("  {:>10}  detector trusts again", event.at.to_string())
            }
            _ => {}
        }
    }

    // And the QoS numbers the paper reports.
    let metrics = extract_metrics(engine.event_log(), 0, end);
    println!("\nQoS over {end}:");
    println!(
        "  crashes: {} (detected {})",
        metrics.total_crashes,
        metrics.total_crashes - metrics.undetected_crashes
    );
    if let Some(td) = metrics.mean_td() {
        println!("  mean detection time T_D   = {td:.0} ms");
    }
    if let Some(tdu) = metrics.td_upper() {
        println!("  max detection time  T_D^U = {tdu:.0} ms");
    }
    println!("  mistakes: {}", metrics.mistake_durations_ms.len());
    if let Some(pa) = metrics.query_accuracy() {
        println!("  query accuracy      P_A   = {pa:.5}");
    }
}
