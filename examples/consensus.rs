//! Consensus on top of failure detection: the upper layer the paper's QoS
//! numbers are *for*. Three processes agree on a value across WAN links; the
//! round-0 coordinator crashes mid-run and the survivors rotate past it as
//! soon as their failure detectors suspect it.
//!
//! ```text
//! cargo run --release --example consensus
//! ```

use fdqos::consensus::{run_consensus_experiment, ConsensusSetup};
use fdqos::core::{MarginKind, PredictorKind};
use fdqos::sim::SimDuration;
use fdqos::stat::EventKind;

fn main() {
    let setup = ConsensusSetup {
        n: 3,
        fd_combo: fdqos::core::combinations::Combination::new(
            PredictorKind::Last,
            MarginKind::Jac { phi: 2.0 },
        ),
        crash_coordinator_after: Some(SimDuration::from_millis(9_700)),
        start_after: SimDuration::from_secs(10),
        horizon: SimDuration::from_secs(60),
        ..ConsensusSetup::default_wan(2005)
    };
    println!(
        "3 processes, detector {}, coordinator p0 crashes 0.3 s before the protocol starts",
        setup.fd_combo.label()
    );

    let outcome = run_consensus_experiment(&setup);

    println!("\nprotocol trace (until the last decision):");
    let last_decision = outcome.last_decision();
    for e in outcome.log.iter() {
        if last_decision.is_some_and(|t| e.at > t) {
            break; // the crashed p0 keeps rotating locally forever — elide
        }
        match e.kind {
            EventKind::Crash => println!("  {:>12}  {} crashed", e.at.to_string(), e.process),
            EventKind::App { code, value } if code == fdqos::consensus::APP_ROUND => {
                println!(
                    "  {:>12}  {} entered round {value}",
                    e.at.to_string(),
                    e.process
                )
            }
            EventKind::App { code, value } if code == fdqos::consensus::APP_DECIDED => {
                println!("  {:>12}  {} DECIDED {value}", e.at.to_string(), e.process)
            }
            _ => {}
        }
    }

    println!(
        "\nagreement: {}   validity: {}",
        outcome.agreement(),
        outcome.validity()
    );
    if let Some(last) = outcome.last_decision() {
        println!(
            "all survivors decided {:.1} ms after the crash",
            last.as_millis_f64() - 9_700.0
        );
    }
}
