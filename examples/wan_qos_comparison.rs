//! Compare all 30 predictor × safety-margin combinations on a WAN link —
//! a scaled-down rendition of the paper's Figures 4–8 — and print the
//! trade-off the paper's conclusions describe.
//!
//! ```text
//! cargo run --release --example wan_qos_comparison
//! ```

use fdqos::experiments::{run_qos_experiment, ExperimentParams, Metric};
use fdqos::net::WanProfile;

fn main() {
    let profile = WanProfile::italy_japan();
    let params = ExperimentParams {
        num_cycles: 2_000,
        runs: 3,
        ..ExperimentParams::paper()
    };
    eprintln!(
        "running {} runs x {} cycles over '{}' (30 detectors)…",
        params.runs, params.num_cycles, profile.name
    );
    let results = run_qos_experiment(&profile, &params);

    for metric in Metric::all() {
        println!("{}", results.figure(metric));
    }

    // The paper's headline trade-off: nothing is best at both delay and
    // accuracy.
    let td = results.figure(Metric::Td);
    let pa = results.figure(Metric::Pa);
    let (td_p, td_m, td_v) = td.best().expect("measured T_D");
    let (pa_p, pa_m, pa_v) = pa.best().expect("measured P_A");
    println!("fastest detection : {td_p} + {td_m} (T_D = {td_v:.1} ms)");
    println!("most accurate     : {pa_p} + {pa_m} (P_A = {pa_v:.5})");
    if (td_p.as_str(), td_m.as_str()) != (pa_p.as_str(), pa_m.as_str()) {
        println!("→ as the paper concludes: no combination wins both.");
    }
}
